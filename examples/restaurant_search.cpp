// Experiential restaurant search (the Yelp stand-in), demonstrating two
// engine capabilities beyond plain querying:
//   1. Combining objective predicates (cuisine, price range) with
//      subjective ones.
//   2. Review-qualification filters: re-aggregating the marker summaries
//      over prolific reviewers only and over recent reviews only, as in
//      the paper's "consider only reviewers who reviewed at least 10
//      hotels" / "reviews after 2010" examples.
#include <cstdio>

#include "datagen/domain_spec.h"
#include "eval/experiment.h"

using namespace opinedb;

namespace {

void PrintTop(const core::OpineDb& db, const std::string& sql) {
  auto result = db.Execute(sql);
  if (!result.ok()) {
    printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  for (const auto& r : result->results) {
    printf("  %-16s %.3f\n", r.entity_name.c_str(), r.score);
  }
}

}  // namespace

int main() {
  eval::BuildOptions options;
  options.generator.num_entities = 60;
  options.generator.seed = 9;
  options.seed = 9;
  printf("Building the restaurant subjective database...\n");
  auto artifacts = eval::BuildArtifacts(datagen::RestaurantDomain(),
                                        options);
  auto& db = *artifacts.db;
  printf("Built: %zu restaurants, %zu reviews.\n\n",
         db.corpus().num_entities(), db.corpus().num_reviews());

  const std::string query =
      "select * from restaurants where cuisine = 'japanese' and "
      "\"delicious food\" and \"quiet tables\" limit 5";
  printf("Query: %s\n", query.c_str());
  PrintTop(db, query);

  // Restrict to prolific reviewers: the summaries are recomputed from the
  // extraction relation with a reviewer-qualification filter (the marker
  // summaries are views over the extractions).
  printf("\nSame query, counting only reviewers with >= 5 reviews:\n");
  auto filtered = db.options().aggregation;
  filtered.min_reviewer_reviews = 5;
  db.Reaggregate(filtered);
  PrintTop(db, query);

  // Restrict to recent reviews instead.
  printf("\nSame query, counting only reviews from the last ~3 years "
         "(date >= 2500):\n");
  auto recent = db.options().aggregation;
  recent.min_reviewer_reviews.reset();
  recent.min_date = 2500;
  db.Reaggregate(recent);
  PrintTop(db, query);

  // And back to the full corpus.
  auto all = db.options().aggregation;
  all.min_date.reset();
  db.Reaggregate(all);

  // A peek at the schema the engine derived: linguistic domain sizes.
  printf("\nDerived schema:\n");
  for (const auto& attribute : db.schema().attributes) {
    printf("  %-14s %4zu variations, markers: ", attribute.name.c_str(),
           attribute.linguistic_domain.size());
    for (const auto& marker : attribute.summary_type.markers) {
      printf("[%s] ", marker.c_str());
    }
    printf("\n");
  }
  return 0;
}
