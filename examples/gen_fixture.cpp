// gen_fixture — builds a large synthesized fixture (datagen::ScaleSpec)
// and snapshots it to disk with SaveDatabase, so benchmarks and serving
// experiments can open a 100k–1M entity database without paying the
// build each run.
//
//   gen_fixture <out_dir> [num_entities] [seed]
//
// Example:
//   gen_fixture /tmp/hotels_100k 100000
//   (reopen with OpineDb::OpenDatabase("/tmp/hotels_100k"))

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/columnar.h"
#include "core/engine.h"
#include "datagen/scale.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <out_dir> [num_entities=100000] [seed=42]\n",
                 argv[0]);
    return 2;
  }
  const std::string out_dir = argv[1];

  opinedb::datagen::ScaleSpec spec;
  if (argc > 2) {
    const long long n = std::atoll(argv[2]);
    if (n <= 0) {
      std::fprintf(stderr, "bad entity count '%s'\n", argv[2]);
      return 2;
    }
    spec.num_entities = static_cast<size_t>(n);
  }
  if (argc > 3) spec.seed = static_cast<uint64_t>(std::atoll(argv[3]));

  std::printf("Building %zu-entity fixture (seed %llu)...\n",
              spec.num_entities,
              static_cast<unsigned long long>(spec.seed));
  opinedb::datagen::ScaledFixture fixture =
      opinedb::datagen::BuildScaledFixture(spec);

  const auto* store = fixture.db->columnar_store();
  std::printf("  %zu entities, %zu attributes, columnar store %.1f MiB\n",
              spec.num_entities, fixture.db->schema().num_attributes(),
              store != nullptr ? static_cast<double>(store->bytes()) / (1 << 20)
                               : 0.0);

  opinedb::Status status = fixture.db->SaveDatabase(out_dir);
  if (!status.ok()) {
    std::fprintf(stderr, "SaveDatabase failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("Wrote snapshot to %s\n", out_dir.c_str());

  // Prove the snapshot round-trips: one query against the saved state.
  const std::string sql = "select * from " + fixture.table_name +
                          " where \"" + fixture.subjective_predicates[0] +
                          "\" limit 3";
  auto result = fixture.db->Execute(sql);
  if (result.ok()) {
    std::printf("Sample query: %s\n", sql.c_str());
    for (const auto& ranked : result->results) {
      std::printf("  %-24s %.4f\n", ranked.entity_name.c_str(),
                  ranked.score);
    }
  }
  return 0;
}
