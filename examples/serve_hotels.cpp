// Serves a synthetic hotel domain over the HTTP front door
// (docs/SERVING.md): builds the database, starts the query server with
// a per-request deadline ceiling, fires a few requests at itself to
// show the surface, then (with --listen) stays up for manual curl.
//
//   ./build/examples/serve_hotels            # self-demo, then exits
//   ./build/examples/serve_hotels --listen   # keep serving on :8080
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "server/http_client.h"
#include "server/server.h"

using namespace opinedb;

namespace {

void Show(server::HttpClient* client, const std::string& method,
          const std::string& target, const std::string& body) {
  printf("----------------------------------------------------------\n");
  printf("%s %s", method.c_str(), target.c_str());
  if (!body.empty()) printf("  %s", body.c_str());
  printf("\n");
  auto response = method == "GET" ? client->Get(target)
                                  : client->Post(target, body);
  if (!response.ok()) {
    printf("  transport error: %s\n", response.status().ToString().c_str());
    return;
  }
  printf("HTTP %d\n%s\n", response->status, response->body.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool listen = argc > 1 && std::strcmp(argv[1], "--listen") == 0;

  printf("Building the synthetic hotel domain (a minute of training)...\n");
  eval::BuildOptions build;
  build.generator.num_entities = 40;
  build.generator.seed = 42;
  build.seed = 42;
  auto artifacts = eval::BuildArtifacts(datagen::HotelDomain(), build);
  artifacts.db->SetTraceLevel(obs::TraceLevel::kStats);  // enable /metrics

  server::QueryServerOptions options;
  options.httpd.port = listen ? 8080 : 0;  // 0 = ephemeral
  options.max_deadline_ms = 5000;          // operator ceiling per request
  server::QueryServer server(artifacts.db.get(), options);
  const Status started = server.Start();
  if (!started.ok()) {
    fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  printf("Serving on http://127.0.0.1:%u\n", server.port());

  server::HttpClient client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) return 1;
  Show(&client, "POST", "/query",
       "{\"sql\": \"select * from hotels where \\\"clean room\\\" and "
       "\\\"friendly staff\\\" limit 3\", \"deadline_ms\": 500}");
  Show(&client, "POST", "/explain",
       "{\"sql\": \"select * from hotels where \\\"clean room\\\" limit 3\"}");
  Show(&client, "GET", "/healthz", "");
  Show(&client, "GET", "/metrics", "");

  if (listen) {
    printf("Listening; try the curl lines from README.md. Ctrl-C to quit.\n");
    for (;;) pause();
  }
  server.Stop();
  printf("Done.\n");
  return 0;
}
