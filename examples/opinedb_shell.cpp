// An interactive subjective-SQL shell over a synthetic hotel domain.
//
//   $ ./examples/opinedb_shell
//   opinedb> select * from hotels where "clean room" limit 5
//   opinedb> \schema
//   opinedb> \summary hotel_003 room_cleanliness
//   opinedb> \explain romantic getaway
//   opinedb> \quit
//
// Reads from stdin (pipe a script for non-interactive use); exits on EOF.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "datagen/domain_spec.h"
#include "eval/experiment.h"

using namespace opinedb;

namespace {

const char* MethodName(core::InterpretMethod method) {
  switch (method) {
    case core::InterpretMethod::kWord2Vec:
      return "word2vec";
    case core::InterpretMethod::kCooccurrence:
      return "co-occurrence";
    case core::InterpretMethod::kTextFallback:
      return "text retrieval";
  }
  return "?";
}

void PrintHelp() {
  printf(
      "Commands:\n"
      "  select * from hotels where ... — run subjective SQL\n"
      "  \\schema                        — list subjective attributes\n"
      "  \\entities [n]                  — list entities\n"
      "  \\summary <entity> <attribute>  — show a marker summary\n"
      "  \\explain <predicate>           — show how a predicate is "
      "interpreted\n"
      "  \\help                          — this text\n"
      "  \\quit                          — exit\n");
}

void ShowSchema(const core::OpineDb& db) {
  for (const auto& attribute : db.schema().attributes) {
    printf("  %-18s %-11s markers:", attribute.name.c_str(),
           attribute.summary_type.kind ==
                   core::SummaryKind::kLinearlyOrdered
               ? "linear"
               : "categorical");
    for (const auto& marker : attribute.summary_type.markers) {
      printf(" [%s]", marker.c_str());
    }
    printf("  (%zu variations)\n", attribute.linguistic_domain.size());
  }
}

void ShowEntities(const core::OpineDb& db, size_t n) {
  for (size_t e = 0; e < db.corpus().num_entities() && e < n; ++e) {
    printf("  %-14s %zu reviews\n",
           db.corpus().entity_name(static_cast<text::EntityId>(e)).c_str(),
           db.corpus().entity_reviews(static_cast<text::EntityId>(e))
               .size());
  }
}

void ShowSummary(const core::OpineDb& db, const std::string& entity_name,
                 const std::string& attribute_name) {
  const int attribute = db.schema().AttributeIndex(attribute_name);
  if (attribute < 0) {
    printf("unknown attribute: %s\n", attribute_name.c_str());
    return;
  }
  for (size_t e = 0; e < db.corpus().num_entities(); ++e) {
    const auto entity = static_cast<text::EntityId>(e);
    if (db.corpus().entity_name(entity) != entity_name) continue;
    const auto& summary = db.summary(attribute, entity);
    printf("  %s\n", summary.ToString().c_str());
    // Evidence: one supporting review per populated marker.
    for (size_t m = 0; m < summary.num_markers(); ++m) {
      const auto& cell = summary.cell(m);
      if (cell.provenance.empty()) continue;
      const auto& review = db.corpus().review(cell.provenance[0]);
      printf("  [%s] e.g.: \"%.70s...\"\n",
             summary.type().markers[m].c_str(), review.body.c_str());
    }
    return;
  }
  printf("unknown entity: %s\n", entity_name.c_str());
}

void Explain(const core::OpineDb& db, const std::string& predicate) {
  const auto interpretation = db.interpreter().Interpret(predicate);
  printf("  method: %s\n", MethodName(interpretation.method));
  for (const auto& atom : interpretation.atoms) {
    printf("  -> %s.\"%s\" (score %.3f)\n",
           db.schema().attributes[atom.attribute].name.c_str(),
           db.schema()
               .attributes[atom.attribute]
               .summary_type.markers[atom.marker]
               .c_str(),
           atom.score);
  }
  if (interpretation.atoms.size() > 1) {
    printf("  combined with %s\n",
           interpretation.conjunctive ? "AND" : "OR");
  }
}

void RunSql(const core::OpineDb& db, const std::string& sql) {
  auto result = db.Execute(sql);
  if (!result.ok()) {
    printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (!result->plan_text.empty()) {  // EXPLAIN: plan only, no execution.
    printf("%s", result->plan_text.c_str());
    return;
  }
  printf("  %-16s %s\n", "entity", "degree of truth");
  for (const auto& r : result->results) {
    printf("  %-16s %.3f\n", r.entity_name.c_str(), r.score);
  }
  if (result->results.empty()) printf("  (no results)\n");
}

}  // namespace

int main() {
  eval::BuildOptions options;
  options.generator.num_entities = 50;
  printf("Building the hotel subjective database...\n");
  auto artifacts = eval::BuildArtifacts(datagen::HotelDomain(), options);
  const auto& db = *artifacts.db;
  printf("Ready: %zu hotels, %zu reviews. Type \\help for commands.\n",
         db.corpus().num_entities(), db.corpus().num_reviews());

  std::string line;
  while (true) {
    printf("opinedb> ");
    fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream tokens(line);
    std::string command;
    tokens >> command;
    if (command.empty()) continue;
    if (command == "\\quit" || command == "\\q") break;
    if (command == "\\help") {
      PrintHelp();
    } else if (command == "\\schema") {
      ShowSchema(db);
    } else if (command == "\\entities") {
      size_t n = 10;
      tokens >> n;
      ShowEntities(db, n);
    } else if (command == "\\summary") {
      std::string entity, attribute;
      tokens >> entity >> attribute;
      ShowSummary(db, entity, attribute);
    } else if (command == "\\explain") {
      std::string rest;
      std::getline(tokens, rest);
      while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      Explain(db, rest);
    } else {
      RunSql(db, line);
    }
  }
  printf("\nbye\n");
  return 0;
}
