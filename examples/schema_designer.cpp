// The schema designer's workflow (Section 4): starting from raw reviews
// and a handful of seed phrases, watch OpineDB
//   1. expand the seeds with word2vec synonyms,
//   2. train the attribute classifier from the expanded cross product,
//   3. discover each attribute's linguistic domain from extractions, and
//   4. suggest markers automatically — sentiment bucketing for
//      linearly-ordered attributes, k-means medoids for categorical ones.
#include <cstdio>

#include "core/attribute_classifier.h"
#include "core/marker_induction.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"

using namespace opinedb;

int main() {
  // Build a hotel corpus but strip the designer-specified markers so the
  // engine must induce them.
  auto spec = datagen::HotelDomain();
  for (auto& attribute : spec.attributes) attribute.markers.clear();
  eval::BuildOptions options;
  options.generator.num_entities = 60;
  printf("Building (markers will be induced automatically)...\n\n");
  auto artifacts = eval::BuildArtifacts(spec, options);
  const auto& db = *artifacts.db;

  // 1. Seed expansion.
  printf("== Seed expansion (word2vec synonyms) ==\n");
  const auto& seeds = db.schema().attributes[0].seeds;
  printf("room_cleanliness aspect seeds:");
  for (const auto& seed : seeds.aspect_terms) printf(" %s", seed.c_str());
  printf("\nexpanded:");
  for (const auto& term :
       core::ExpandSeeds(seeds.aspect_terms, db.embeddings(), 3)) {
    printf(" %s", term.c_str());
  }
  printf("\n\n");

  // 2. Attribute classifier quality on a few hand-labeled pairs.
  printf("== Attribute classification of extracted pairs ==\n");
  struct Probe {
    const char* aspect;
    const char* opinion;
  } probes[] = {
      {"room", "very clean"},   {"staff", "rude"},
      {"bathroom", "luxurious"}, {"street", "noisy"},
      {"breakfast", "stale"},    {"bar", "lively"},
  };
  for (const auto& probe : probes) {
    const int attr = db.attribute_classifier().Classify(probe.aspect,
                                                        probe.opinion);
    printf("  (%s, %s) -> %s\n", probe.aspect, probe.opinion,
           db.schema().attributes[attr].name.c_str());
  }
  printf("  (training set built from %zu seed-expanded tuples)\n\n",
         db.attribute_classifier().training_set_size());

  // 3. Discovered linguistic domains.
  printf("== Discovered linguistic domains ==\n");
  for (size_t a = 0; a < db.schema().num_attributes() && a < 3; ++a) {
    const auto& attribute = db.schema().attributes[a];
    printf("  %s (%zu phrases):", attribute.name.c_str(),
           attribute.linguistic_domain.size());
    for (size_t p = 0; p < attribute.linguistic_domain.size() && p < 6;
         ++p) {
      printf(" \"%s\"", attribute.linguistic_domain[p].c_str());
    }
    printf(" ...\n");
  }
  printf("\n");

  // 4. Induced markers.
  printf("== Induced markers ==\n");
  for (const auto& attribute : db.schema().attributes) {
    printf("  %-16s (%s):",
           attribute.name.c_str(),
           attribute.summary_type.kind ==
                   core::SummaryKind::kLinearlyOrdered
               ? "linear"
               : "categorical");
    for (const auto& marker : attribute.summary_type.markers) {
      printf(" [%s]", marker.c_str());
    }
    printf("\n");
  }

  // 5. A resulting marker summary, with provenance counts.
  printf("\n== A marker summary (hotel 0, attribute 0) ==\n  %s\n",
         db.summary(0, 0).ToString().c_str());
  return 0;
}
