// Voyageur: a miniature experiential travel search session (the paper's
// Section 7 application, powered by OpineDB). Demonstrates the
// forward-looking features on top of the core engine:
//   * user profiles re-ranking results by what this traveler cares about,
//   * expectation mining ("an expensive hotel with dirty rooms is worth
//     pointing out"),
//   * degree-of-truth caching and Threshold-Algorithm top-k, and
//   * persisting the subjective database to disk and reloading it.
#include <cstdio>
#include <sstream>

#include "core/degree_cache.h"
#include "core/personalize.h"
#include "core/serialize.h"
#include "datagen/domain_spec.h"
#include "embedding/io.h"
#include "eval/experiment.h"

using namespace opinedb;

int main() {
  eval::BuildOptions options;
  options.generator.num_entities = 60;
  options.generator.seed = 31;
  options.seed = 31;
  printf("Voyageur: building the travel subjective database...\n\n");
  auto artifacts = eval::BuildArtifacts(datagen::HotelDomain(), options);
  const auto& db = *artifacts.db;

  // A base experiential query.
  const char* sql =
      "select * from hotels where \"clean room\" and \"comfortable bed\" "
      "limit 5";
  printf("Query: %s\n", sql);
  auto result = db.Execute(sql);
  if (!result.ok()) {
    printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  for (const auto& r : result->results) {
    printf("  %-12s %.3f\n", r.entity_name.c_str(), r.score);
  }

  // The same traveler cares mostly about nightlife: personalize.
  printf("\nSame results re-ranked for a nightlife-focused traveler:\n");
  auto profile = core::UserProfile::FromWeights(
      db, {{"bar_nightlife", 1.0}, {"quietness", 0.1}});
  for (const auto& r :
       core::PersonalizeResults(db, profile, result->results, 0.5)) {
    printf("  %-12s %.3f (affinity %.3f)\n", r.entity_name.c_str(),
           r.score, core::ProfileAffinity(db, profile, r.entity));
  }

  // Expectation mining: surprises worth surfacing to the user.
  printf("\nUnexpected findings (price vs experience):\n");
  auto findings = core::FindUnexpected(
      db, artifacts.domain.objective_table, "price_pn", 3);
  if (findings.ok()) {
    for (const auto& finding : *findings) {
      printf("  %s\n", finding.description.c_str());
    }
  }

  // Degree caching + Threshold-Algorithm top-k for a hot query path.
  printf("\nCached conjunctive top-3 via the Threshold Algorithm:\n");
  core::DegreeCache cache(&db);
  fuzzy::TaStats stats;
  for (const auto& ranked : cache.TopKConjunction(
           {"friendly staff", "delicious breakfast"}, 3, &stats)) {
    printf("  %-12s %.3f\n",
           db.corpus().entity_name(ranked.entity).c_str(), ranked.score);
  }
  printf("  (%zu sorted accesses instead of %zu)\n", stats.sorted_accesses,
         2 * db.corpus().num_entities());

  // Persist and reload the queryable state.
  std::stringstream schema_file, summaries_file, embeddings_file;
  if (core::SaveSchema(db.schema(), &schema_file).ok() &&
      core::SaveSummaries(db.tables(), &summaries_file).ok() &&
      embedding::SaveEmbeddings(db.embeddings(), &embeddings_file).ok()) {
    auto schema = core::LoadSchema(&schema_file);
    auto summaries =
        schema.ok() ? core::LoadSummaries(*schema, &summaries_file)
                    : Result<core::SubjectiveTables>(schema.status());
    auto embeddings = embedding::LoadEmbeddings(&embeddings_file);
    printf("\nPersisted + reloaded: schema %s, summaries %s, embeddings "
           "%s (%zu words).\n",
           schema.ok() ? "ok" : "FAILED",
           summaries.ok() ? "ok" : "FAILED",
           embeddings.ok() ? "ok" : "FAILED",
           embeddings.ok() ? embeddings->size() : 0);
  }
  return 0;
}
