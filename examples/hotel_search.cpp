// Experiential hotel search: builds a full synthetic hotel domain (the
// Booking.com stand-in), trains every model end-to-end, and answers a set
// of experiential queries — including one interpreted via co-occurrence
// ("romantic getaway") and one only text retrieval can answer ("good for
// motorcyclists") — printing the interpretation each predicate received.
#include <cstdio>

#include "datagen/domain_spec.h"
#include "eval/experiment.h"

using namespace opinedb;

namespace {

const char* MethodName(core::InterpretMethod method) {
  switch (method) {
    case core::InterpretMethod::kWord2Vec:
      return "word2vec";
    case core::InterpretMethod::kCooccurrence:
      return "co-occurrence";
    case core::InterpretMethod::kTextFallback:
      return "text retrieval";
  }
  return "?";
}

void RunQuery(const core::OpineDb& db, const std::string& sql) {
  printf("----------------------------------------------------------\n");
  printf("Query: %s\n", sql.c_str());
  auto result = db.Execute(sql);
  if (!result.ok()) {
    printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  // How each subjective predicate was interpreted.
  auto parsed = core::ParseSubjectiveSql(sql);
  for (size_t c = 0; c < result->interpretations.size(); ++c) {
    if (parsed.ok() &&
        parsed->conditions[c].kind != core::Condition::Kind::kSubjective) {
      continue;
    }
    const auto& interpretation = result->interpretations[c];
    printf("  \"%s\" -> %s", parsed->conditions[c].subjective.c_str(),
           MethodName(interpretation.method));
    for (const auto& atom : interpretation.atoms) {
      printf("  %s.\"%s\"",
             db.schema().attributes[atom.attribute].name.c_str(),
             db.schema()
                 .attributes[atom.attribute]
                 .summary_type.markers[atom.marker]
                 .c_str());
    }
    printf("\n");
  }
  printf("  %-14s %s\n", "hotel", "degree of truth");
  for (const auto& r : result->results) {
    printf("  %-14s %.3f\n", r.entity_name.c_str(), r.score);
  }
}

}  // namespace

int main() {
  eval::BuildOptions options;
  options.generator.num_entities = 60;
  options.generator.min_reviews_per_entity = 20;
  options.generator.max_reviews_per_entity = 40;
  printf("Building the hotel subjective database "
         "(extractor, embeddings, summaries, membership model)...\n");
  auto artifacts = eval::BuildArtifacts(datagen::HotelDomain(), options);
  const auto& db = *artifacts.db;
  printf("Built: %zu hotels, %zu reviews, %zu extracted opinions.\n\n",
         db.corpus().num_entities(), db.corpus().num_reviews(),
         db.tables().extractions.size());

  RunQuery(db,
           "select * from hotels where city = 'london' and price_pn < 300 "
           "and \"really clean rooms\" and \"friendly staff\" limit 5");
  RunQuery(db,
           "select * from hotels where \"romantic getaway\" limit 5");
  RunQuery(db,
           "select * from hotels where \"quiet street\" and "
           "(\"lively bar\" or \"delicious breakfast\") limit 5");
  RunQuery(db, "select * from hotels where \"good for motorcyclists\" "
               "limit 5");

  // Provenance: why was the top romantic hotel returned?
  auto romantic = db.Execute(
      "select * from hotels where \"romantic getaway\" limit 1");
  if (romantic.ok() && !romantic->results.empty()) {
    const auto winner = romantic->results[0].entity;
    const int service = db.schema().AttributeIndex("staff_service");
    printf("\nEvidence for %s:\n  staff_service summary %s\n",
           romantic->results[0].entity_name.c_str(),
           db.summary(service, winner).ToString().c_str());
    const auto& cell = db.summary(service, winner).cell(0);
    if (!cell.provenance.empty()) {
      const auto& review = db.corpus().review(cell.provenance[0]);
      printf("  sample supporting review: \"%.90s...\"\n",
             review.body.c_str());
    }
  }
  return 0;
}
