// Quickstart: build a tiny subjective database from a handful of raw
// reviews and run a subjective SQL query against it.
//
//   $ ./examples/quickstart
//
// This walks the full pipeline on toy data: train an opinion extractor,
// build the engine (embeddings, attribute classifier, marker summaries),
// register an objective table, and execute subjective SQL.
#include <cstdio>

#include "core/engine.h"
#include "datagen/domain_spec.h"
#include "datagen/generator.h"

using namespace opinedb;

int main() {
  // 1. Raw review data: three hotels with very different characters.
  text::ReviewCorpus corpus;
  auto grand = corpus.AddEntity("grand_plaza");
  auto budget = corpus.AddEntity("budget_inn");
  auto boutique = corpus.AddEntity("boutique_belle");
  struct Seeded {
    text::EntityId entity;
    const char* body;
  } reviews[] = {
      {grand, "the room was spotless. the staff was exceptional. "
              "the bathroom was luxurious."},
      {grand, "very clean sheets and a very comfortable bed. "
              "the service was very friendly."},
      {grand, "spotless carpet. the concierge was helpful. "
              "it felt like a romantic getaway."},
      {budget, "the carpet was filthy and the staff was rude. "
               "the mattress was lumpy."},
      {budget, "dirty room. the shower was dated. noisy street."},
      {budget, "the sheets were stained. the reception was unhelpful. "
               "cheap rate though."},
      {boutique, "the bathroom was modern and the room was clean. "
                 "the bed was firm."},
      {boutique, "stylish shower, tidy room, polite staff."},
      {boutique, "the lounge was lively and the street was quiet."},
  };
  // Each review is observed several times (different reviewers saying
  // similar things) so the tiny corpus still trains usable embeddings.
  int date = 0;
  for (int copy = 0; copy < 6; ++copy) {
    for (const auto& r : reviews) {
      corpus.AddReview(r.entity, /*reviewer=*/date % 9, /*date=*/date++,
                       r.body);
    }
  }

  // 2. The designer's schema: attributes, seeds, markers. We reuse the
  //    hotel domain spec's schema as the designer's input.
  core::SubjectiveSchema schema =
      datagen::SchemaFromSpec(datagen::HotelDomain());

  // 3. Train an extractor (here: on synthetic labeled sentences; a real
  //    deployment labels a few hundred review sentences, Section 4.1).
  auto labeled =
      datagen::GenerateLabeledSentences(datagen::HotelDomain(), 400, 1);
  extract::ExtractionPipeline pipeline(
      extract::OpinionTagger::Train(labeled));

  // 4. Build the subjective database. Tiny corpus => tiny w2v model.
  core::EngineOptions options;
  options.w2v.min_count = 1;
  options.w2v.epochs = 25;
  auto db = core::OpineDb::Build(corpus, schema, pipeline, options);

  // 5. Objective table (row i == entity i).
  storage::Table hotels("hotels", {{"name", storage::ValueType::kString},
                                   {"price_pn", storage::ValueType::kInt}});
  (void)hotels.Append({storage::Value(std::string("grand_plaza")),
                       storage::Value(int64_t{320})});
  (void)hotels.Append({storage::Value(std::string("budget_inn")),
                       storage::Value(int64_t{70})});
  (void)hotels.Append({storage::Value(std::string("boutique_belle")),
                       storage::Value(int64_t{150})});
  Status status = db->SetObjectiveTable(std::move(hotels));
  if (!status.ok()) {
    printf("error: %s\n", status.ToString().c_str());
    return 1;
  }

  // 6. Subjective SQL.
  const char* sql =
      "select * from hotels where price_pn < 400 and "
      "\"really clean rooms\" and \"friendly staff\" limit 3";
  printf("Query: %s\n\n", sql);
  auto result = db->Execute(sql);
  if (!result.ok()) {
    printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  printf("%-18s %s\n", "hotel", "degree of truth");
  for (const auto& r : result->results) {
    printf("%-18s %.3f\n", r.entity_name.c_str(), r.score);
  }

  // 7. Evidence: the cleanliness marker summary behind the top answer.
  const int attr = db->schema().AttributeIndex("room_cleanliness");
  if (attr >= 0 && !result->results.empty()) {
    printf("\nroom_cleanliness summary of %s: %s\n",
           result->results[0].entity_name.c_str(),
           db->summary(attr, result->results[0].entity).ToString().c_str());
  }
  return 0;
}
