#ifndef OPINEDB_DATAGEN_GENERATOR_H_
#define OPINEDB_DATAGEN_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/schema.h"
#include "datagen/domain_spec.h"
#include "extract/opinion_tagger.h"
#include "storage/table.h"
#include "text/corpus.h"

namespace opinedb::datagen {

/// Generator knobs. Every experiment fixes the seed, so corpora are
/// reproducible bit-for-bit.
struct GeneratorOptions {
  size_t num_entities = 120;
  size_t min_reviews_per_entity = 15;
  size_t max_reviews_per_entity = 45;
  size_t num_reviewers = 400;
  /// Review length range in sentences.
  size_t min_sentences_per_review = 2;
  size_t max_sentences_per_review = 5;
  /// Latent qualities are drawn as Uniform^(1/quality_skew): skew > 1
  /// biases entities toward high quality (Yelp-style positivity).
  double quality_skew = 1.0;
  /// Probability a review sentence is off-topic filler.
  double filler_probability = 0.25;
  /// Std-dev of the polarity noise around the latent quality.
  double polarity_noise = 0.35;
  /// Probability an opinion sentence contradicts the latent quality
  /// outright (a dissenting reviewer).
  double contradiction_probability = 0.07;
  /// Probability a negative opinion is rendered as a negated positive
  /// phrase ("not clean" instead of "dirty").
  double negation_probability = 0.12;
  uint64_t seed = 42;
};

/// One synthetic entity: the latent ground truth behind its reviews.
struct SyntheticEntity {
  std::string name;
  /// Latent quality per attribute in [0, 1] — the ground truth that
  /// review text is sampled from and that sat(q, e) labels derive from.
  std::vector<double> quality;
  /// Hotel objective attributes.
  std::string city;
  int64_t price = 0;
  /// Restaurant objective attributes.
  std::string cuisine;
  int64_t price_range = 0;
  /// Aggregate rating (mean quality + noise) — the ByRating baseline's
  /// input, mirroring the site-wide star rating.
  double rating = 0.0;
  /// Per-attribute site scores (quality + noise) — the k-Attribute
  /// baseline's input, mirroring booking.com's queryable category scores.
  std::vector<double> site_scores;
};

/// A generated domain: entities with latent ground truth, the review
/// corpus sampled from it, the designer schema (with seeds), and the
/// objective table (row i == entity i).
struct SyntheticDomain {
  DomainSpec spec;
  GeneratorOptions options;
  std::vector<SyntheticEntity> entities;
  text::ReviewCorpus corpus;
  core::SubjectiveSchema schema;
  storage::Table objective_table;
};

/// Generates a full synthetic domain.
SyntheticDomain GenerateDomain(const DomainSpec& spec,
                               const GeneratorOptions& options);

/// Builds the designer schema (seeds + markers) from a DomainSpec. Seeds
/// take the aspect nouns and a *subset* of the opinion vocabulary — the
/// classifier must generalize to the rest via seed expansion.
core::SubjectiveSchema SchemaFromSpec(const DomainSpec& spec);

/// A sentence realized with gold token tags (for the extractor datasets).
struct RealizedSentence {
  std::vector<std::string> tokens;
  std::vector<int> tags;
};

/// Realizes one opinion clause "the <aspect> was <opinion>"-style; the
/// template is chosen by `rng`. Gold AS/OP tags track the slot fillers.
RealizedSentence RealizeOpinionSentence(const std::string& aspect,
                                        const std::string& opinion,
                                        Rng* rng);

/// Samples an opinion phrase for latent quality `q` (polarity tracks
/// 2q - 1 with Gaussian noise).
const OpinionPhrase& SampleOpinion(const AttributeSpec& attribute, double q,
                                   double noise, Rng* rng);

/// Knobs for labeled-sentence generation (Table 6 datasets).
struct LabeledSentenceOptions {
  /// Probability of a neutral-context sentence that mentions an aspect
  /// noun without any opinion ("we asked about the room at the desk") —
  /// gold tags are all O, so gazetteer-style tagging over-predicts.
  double ambiguous_probability = 0.18;
  /// Probability of flipping a gold tag (annotation noise); apply to
  /// training sets only.
  double label_noise = 0.0;
  /// Probability of prepending an intensifier to the opinion span.
  double intensifier_probability = 0.25;
  /// When true, every 4th opinion phrase and aspect noun of each
  /// attribute is withheld from generation. Training sets use this so the
  /// test set contains out-of-vocabulary words the tagger never saw —
  /// the generalization gap that separates models in Table 6.
  bool exclude_holdout_vocabulary = false;
};

/// Generates labeled tagging sentences for a spec (Table 6 datasets).
std::vector<extract::LabeledSentence> GenerateLabeledSentences(
    const DomainSpec& spec, size_t n, uint64_t seed,
    const LabeledSentenceOptions& options = LabeledSentenceOptions());

}  // namespace opinedb::datagen

#endif  // OPINEDB_DATAGEN_GENERATOR_H_
