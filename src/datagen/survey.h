#ifndef OPINEDB_DATAGEN_SURVEY_H_
#define OPINEDB_DATAGEN_SURVEY_H_

#include <string>
#include <vector>

namespace opinedb::datagen {

/// One search criterion named by a survey respondent, with the manual
/// (conservative) subjective/objective judgment of Section 5.1.
struct Criterion {
  std::string text;
  bool subjective = false;
};

/// One domain's survey responses.
struct DomainSurvey {
  std::string domain;
  std::vector<Criterion> criteria;

  /// Fraction of criteria judged subjective.
  double SubjectiveFraction() const;
  /// Up to `n` example subjective criteria, for display.
  std::vector<std::string> ExampleSubjective(size_t n) const;
};

/// The frozen survey corpus standing in for the paper's MTurk study
/// (Table 3): 7 domains, ~30 criteria each, conservatively labeled.
/// "wifi" counts as objective (is there wifi), matching the paper's
/// conservative protocol.
std::vector<DomainSurvey> SurveyData();

}  // namespace opinedb::datagen

#endif  // OPINEDB_DATAGEN_SURVEY_H_
