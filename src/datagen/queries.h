#ifndef OPINEDB_DATAGEN_QUERIES_H_
#define OPINEDB_DATAGEN_QUERIES_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/generator.h"

namespace opinedb::datagen {

/// One subjective query predicate with its gold interpretation and the
/// latent-quality ground truth it tests.
struct QueryPredicate {
  std::string text;
  /// The attribute a human labeler would map the predicate to; -1 for
  /// predicates that only text fallback can answer.
  int gold_attribute = -1;
  /// sat(q, e) ground truth: min trigger quality >= threshold.
  double threshold = 0.6;
  /// Attributes whose latent quality the predicate constrains (usually
  /// just gold_attribute; correlated concepts constrain several).
  std::vector<int> quality_attributes;
  bool correlated = false;
};

/// Builds the domain's predicate pool (the Section 5.2.2 collections:
/// 190 hotel / 185 restaurant predicates): templated positive phrasings
/// of every attribute plus the correlated-concept phrases.
std::vector<QueryPredicate> BuildPredicatePool(const DomainSpec& spec,
                                               size_t target_count,
                                               uint64_t seed);

/// Ground truth sat(q, e): does the entity's latent quality satisfy the
/// predicate?
bool SatisfiesGroundTruth(const SyntheticEntity& entity,
                          const QueryPredicate& predicate);

/// A sampled subjective query: a conjunction of pool predicates.
struct WorkloadQuery {
  std::vector<size_t> predicate_indices;
};

/// Samples `count` conjunctive queries of `conjuncts` predicates each by
/// uniform sampling without replacement within a query.
std::vector<WorkloadQuery> SampleWorkload(size_t pool_size, size_t conjuncts,
                                          size_t count, uint64_t seed);

}  // namespace opinedb::datagen

#endif  // OPINEDB_DATAGEN_QUERIES_H_
