#include "datagen/survey.h"

namespace opinedb::datagen {

double DomainSurvey::SubjectiveFraction() const {
  if (criteria.empty()) return 0.0;
  int subjective = 0;
  for (const auto& criterion : criteria) {
    if (criterion.subjective) ++subjective;
  }
  return static_cast<double>(subjective) /
         static_cast<double>(criteria.size());
}

std::vector<std::string> DomainSurvey::ExampleSubjective(size_t n) const {
  std::vector<std::string> examples;
  for (const auto& criterion : criteria) {
    if (criterion.subjective) {
      examples.push_back(criterion.text);
      if (examples.size() == n) break;
    }
  }
  return examples;
}

std::vector<DomainSurvey> SurveyData() {
  // S = subjective, O = objective. Counts per domain are chosen so the
  // tabulated fractions land on the Table 3 figures.
  auto S = [](const char* t) { return Criterion{t, true}; };
  auto O = [](const char* t) { return Criterion{t, false}; };
  std::vector<DomainSurvey> surveys;

  surveys.push_back({"Hotel",
                     {
                         S("cleanliness"), S("comfortable beds"),
                         S("good food"), S("friendly staff"),
                         S("quiet rooms"), S("nice view"),
                         S("cozy atmosphere"), S("modern bathrooms"),
                         S("good service"), S("safe neighborhood"),
                         S("lively bar"), S("relaxing spa"),
                         S("spacious rooms"), S("good breakfast"),
                         S("romantic feel"), S("family friendly"),
                         S("value for money"), S("stylish decor"),
                         S("welcoming lobby"), S("peaceful location"),
                         O("wifi"), O("parking"), O("pool"),
                         O("distance to center"), O("pet policy"),
                         O("check-in time"), O("airport shuttle"),
                         O("number of beds"), O("air conditioning"),
                     }});
  surveys.push_back({"Restaurant",
                     {
                         S("delicious food"), S("good ambiance"),
                         S("menu variety"), S("friendly service"),
                         S("fresh ingredients"), S("romantic setting"),
                         S("generous portions"), S("clean tables"),
                         S("quiet enough to talk"), S("nice presentation"),
                         S("good drinks"), S("fast service"),
                         S("authentic flavors"), S("kid friendly"),
                         S("good value"), S("cozy seating"),
                         S("creative dishes"), S("lively vibe"),
                         O("cuisine type"), O("price range"),
                         O("opening hours"), O("reservations"),
                         O("distance"), O("outdoor seating"),
                         O("vegetarian options"), O("parking"),
                         O("delivery"), O("wheelchair access"),
                     }});
  surveys.push_back({"Vacation",
                     {
                         S("good weather"), S("safety"),
                         S("interesting culture"), S("nightlife"),
                         S("beautiful scenery"), S("relaxing beaches"),
                         S("friendly locals"), S("good food scene"),
                         S("walkable towns"), S("romantic spots"),
                         S("family friendly"), S("clean beaches"),
                         S("lively festivals"), S("peaceful retreats"),
                         S("adventurous hikes"), S("charming villages"),
                         S("affordable overall"), S("authentic experiences"),
                         S("uncrowded attractions"),
                         O("visa requirements"), O("flight time"),
                         O("currency"), O("language spoken"),
                     }});
  surveys.push_back({"College",
                     {
                         S("dorm quality"), S("faculty quality"),
                         S("diversity"), S("campus beauty"),
                         S("social life"), S("academic rigor"),
                         S("career support"), S("food quality"),
                         S("class sizes feel small"), S("safety on campus"),
                         S("school spirit"), S("research opportunities"),
                         S("welcoming community"), S("strong alumni network"),
                         S("good advising"), S("mental health support"),
                         S("surrounding town vibe"), S("study spaces"),
                         S("intramural culture"), S("arts scene"),
                         S("prestige"), S("party scene"),
                         S("professor accessibility"), S("innovative teaching"),
                         O("tuition"), O("location"), O("enrollment"),
                         O("majors offered"), O("acceptance rate"),
                         O("student-faculty ratio"), O("on-campus housing"),
                     }});
  surveys.push_back({"Home",
                     {
                         S("space"), S("good schools"), S("quiet street"),
                         S("safe area"), S("natural light"),
                         S("nice backyard"), S("modern kitchen"),
                         S("friendly neighbors"), S("walkable area"),
                         S("charming style"), S("move-in ready"),
                         S("good layout"), S("storage space"),
                         S("curb appeal"), S("low traffic"),
                         S("near good cafes"), S("quiet at night"),
                         S("well maintained"), S("energy efficient feel"),
                         S("spacious garage"), S("cozy living room"),
                         S("good resale prospects"),
                         O("price"), O("bedrooms"), O("bathrooms"),
                         O("square footage"), O("lot size"),
                         O("year built"), O("hoa fees"), O("property tax"),
                         O("distance to work"), O("garage spaces"),
                     }});
  surveys.push_back({"Career",
                     {
                         S("work-life balance"), S("good colleagues"),
                         S("company culture"), S("growth opportunities"),
                         S("interesting work"), S("supportive manager"),
                         S("job security"), S("social good"),
                         S("dynamic team"), S("learning opportunities"),
                         S("recognition"), S("autonomy"),
                         S("low stress"), S("clear mission"),
                         S("fair promotion process"), S("mentorship"),
                         S("creative freedom"), S("transparent leadership"),
                         S("reasonable hours"), S("team collaboration"),
                         S("prestige of employer"), S("innovative products"),
                         S("inclusive environment"), S("stability"),
                         S("meaningful impact"),
                         O("salary"), O("benefits"), O("remote policy"),
                         O("vacation days"), O("commute"), O("stock options"),
                         O("title"), O("industry"), O("company size"),
                         O("401k match"), O("relocation package"),
                         O("signing bonus"), O("office location"),
                     }});
  surveys.push_back({"Car",
                     {
                         S("comfortable"), S("safety"), S("reliability"),
                         S("fun to drive"), S("quiet cabin"),
                         S("good handling"), S("stylish design"),
                         S("smooth ride"), S("roomy interior"),
                         S("good visibility"), S("easy to park"),
                         S("solid build quality"), S("responsive steering"),
                         S("premium feel"),
                         O("price"), O("fuel economy"), O("seats"),
                         O("cargo space"), O("horsepower"), O("warranty"),
                         O("electric range"), O("towing capacity"),
                         O("all-wheel drive"), O("maintenance cost"),
                         O("resale value"),
                     }});
  return surveys;
}

}  // namespace opinedb::datagen
