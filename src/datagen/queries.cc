#include "datagen/queries.h"

#include <algorithm>
#include <set>

namespace opinedb::datagen {

std::vector<QueryPredicate> BuildPredicatePool(const DomainSpec& spec,
                                               size_t target_count,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<QueryPredicate> pool;
  std::set<std::string> seen;
  auto add = [&](QueryPredicate predicate) {
    if (seen.insert(predicate.text).second) {
      pool.push_back(std::move(predicate));
    }
  };

  // Correlated concepts first: they are the interpreter's hard cases.
  for (const auto& cc : spec.concepts) {
    QueryPredicate predicate;
    predicate.text = cc.phrase;
    predicate.gold_attribute = cc.gold_attribute;
    predicate.quality_attributes = cc.trigger_attributes;
    predicate.threshold = 0.6;
    predicate.correlated = true;
    add(std::move(predicate));
  }

  // Hard paraphrases: out-of-vocabulary user wording.
  for (const auto& hard : spec.hard_queries) {
    QueryPredicate predicate;
    predicate.text = hard.text;
    predicate.gold_attribute = spec.AttributeIndex(hard.gold_attribute);
    if (predicate.gold_attribute >= 0) {
      predicate.quality_attributes = {predicate.gold_attribute};
    }
    predicate.threshold = 0.6;
    predicate.correlated = true;  // Keep them in the trimmed pool.
    add(std::move(predicate));
  }

  // Templated positive phrasings of every attribute.
  const std::vector<std::string> prefixes = {"", "has ", "with ",
                                             "a place with "};
  for (size_t a = 0; a < spec.attributes.size(); ++a) {
    const auto& attribute = spec.attributes[a];
    for (const auto& opinion : attribute.opinions) {
      if (opinion.polarity < 0.3) continue;  // Users ask for the good.
      for (const auto& aspect : attribute.aspect_nouns) {
        for (const auto& prefix : prefixes) {
          QueryPredicate predicate;
          predicate.text = prefix + opinion.text + " " + aspect;
          predicate.gold_attribute = static_cast<int>(a);
          predicate.quality_attributes = {static_cast<int>(a)};
          // Stronger language -> stricter ground truth.
          predicate.threshold = opinion.polarity >= 0.8 ? 0.7 : 0.6;
          add(std::move(predicate));
        }
      }
    }
  }
  rng.Shuffle(&pool);
  // Keep all correlated predicates (move them to the front first).
  std::stable_partition(pool.begin(), pool.end(),
                        [](const QueryPredicate& p) { return p.correlated; });
  if (pool.size() > target_count) pool.resize(target_count);
  rng.Shuffle(&pool);
  return pool;
}

bool SatisfiesGroundTruth(const SyntheticEntity& entity,
                          const QueryPredicate& predicate) {
  if (predicate.quality_attributes.empty()) return false;
  double min_quality = 1.0;
  for (int a : predicate.quality_attributes) {
    min_quality = std::min(min_quality, entity.quality[a]);
  }
  return min_quality >= predicate.threshold;
}

std::vector<WorkloadQuery> SampleWorkload(size_t pool_size, size_t conjuncts,
                                          size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<WorkloadQuery> workload;
  workload.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    WorkloadQuery query;
    query.predicate_indices =
        rng.SampleIndices(pool_size, std::min(conjuncts, pool_size));
    workload.push_back(std::move(query));
  }
  return workload;
}

}  // namespace opinedb::datagen
