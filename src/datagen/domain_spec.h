#ifndef OPINEDB_DATAGEN_DOMAIN_SPEC_H_
#define OPINEDB_DATAGEN_DOMAIN_SPEC_H_

#include <string>
#include <vector>

#include "core/marker_summary.h"

namespace opinedb::datagen {

/// A graded opinion phrase: its surface text and its polarity in [-1, 1].
/// The generator samples phrases whose polarity tracks the entity's
/// latent quality for the attribute.
struct OpinionPhrase {
  std::string text;
  double polarity = 0.0;
};

/// The generator's specification of one subjective attribute.
struct AttributeSpec {
  std::string name;
  /// Aspect nouns reviews use for this attribute ("room", "carpet", ...).
  std::vector<std::string> aspect_nouns;
  /// Graded opinion vocabulary, best to worst mixtures allowed.
  std::vector<OpinionPhrase> opinions;
  core::SummaryKind kind = core::SummaryKind::kLinearlyOrdered;
  /// Designer-provided markers (empty = induce automatically).
  std::vector<std::string> markers;
};

/// A concept with no attribute of its own that reviews mention when some
/// underlying attributes are good — the substrate of the co-occurrence
/// interpretation method ("romantic getaway" etc.).
struct CorrelatedConcept {
  /// The phrase as it appears in reviews and in query predicates.
  std::string phrase;
  /// The sentence realization emitted into reviews.
  std::string sentence;
  /// Attributes (by index) whose latent quality must be high for the
  /// sentence to be emitted.
  std::vector<int> trigger_attributes;
  /// The attribute a human labeler would call closest (gold for
  /// Table 8); usually the first trigger.
  int gold_attribute = 0;
};

/// A hard query paraphrase: wording users type but reviews never use
/// (mostly out-of-vocabulary), with the attribute a human labeler would
/// assign. These are the cases where the w2v method loses confidence.
struct HardQuery {
  std::string text;
  /// Name of the gold attribute; empty = only text fallback could ever
  /// answer it (e.g. "good for motorcyclists").
  std::string gold_attribute;
};

/// A full synthetic domain specification.
struct DomainSpec {
  std::string name;
  std::vector<AttributeSpec> attributes;
  std::vector<CorrelatedConcept> concepts;
  std::vector<HardQuery> hard_queries;
  /// Off-topic filler sentences (no opinionated content).
  std::vector<std::string> fillers;

  int AttributeIndex(const std::string& attr_name) const;
};

/// The hotel domain (Booking.com stand-in).
DomainSpec HotelDomain();

/// The restaurant domain (Yelp stand-in).
DomainSpec RestaurantDomain();

/// A laptop domain used only for the Table 6 extractor datasets
/// (SemEval-14 Laptop stand-in).
DomainSpec LaptopDomain();

}  // namespace opinedb::datagen

#endif  // OPINEDB_DATAGEN_DOMAIN_SPEC_H_
