#include "datagen/generator.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace opinedb::datagen {

namespace {

std::vector<std::string> SplitTokens(const std::string& phrase) {
  return SplitWhitespace(phrase);
}

void AppendTagged(const std::vector<std::string>& words, int tag,
                  RealizedSentence* out) {
  for (const auto& word : words) {
    out->tokens.push_back(word);
    out->tags.push_back(tag);
  }
}

void AppendPlain(const std::string& words, RealizedSentence* out) {
  AppendTagged(SplitTokens(words), extract::kO, out);
}

}  // namespace

RealizedSentence RealizeOpinionSentence(const std::string& aspect,
                                        const std::string& opinion,
                                        Rng* rng) {
  RealizedSentence out;
  const auto aspect_tokens = SplitTokens(aspect);
  const auto opinion_tokens = SplitTokens(opinion);
  switch (rng->Below(4)) {
    case 0:  // "the <asp> was <op>"
      AppendPlain("the", &out);
      AppendTagged(aspect_tokens, extract::kAS, &out);
      AppendPlain("was", &out);
      AppendTagged(opinion_tokens, extract::kOP, &out);
      break;
    case 1:  // "<op> <asp>"
      AppendTagged(opinion_tokens, extract::kOP, &out);
      AppendTagged(aspect_tokens, extract::kAS, &out);
      break;
    case 2:  // "the <asp> seemed <op> to us"
      AppendPlain("the", &out);
      AppendTagged(aspect_tokens, extract::kAS, &out);
      AppendPlain("seemed", &out);
      AppendTagged(opinion_tokens, extract::kOP, &out);
      AppendPlain("to us", &out);
      break;
    default:  // "we thought the <asp> was <op>"
      AppendPlain("we thought the", &out);
      AppendTagged(aspect_tokens, extract::kAS, &out);
      AppendPlain("was", &out);
      AppendTagged(opinion_tokens, extract::kOP, &out);
      break;
  }
  return out;
}

const OpinionPhrase& SampleOpinion(const AttributeSpec& attribute, double q,
                                   double noise, Rng* rng) {
  const double target =
      std::clamp(2.0 * q - 1.0 + rng->Gaussian(0.0, noise), -1.0, 1.0);
  size_t best = 0;
  double best_gap = 10.0;
  for (size_t i = 0; i < attribute.opinions.size(); ++i) {
    const double gap = std::abs(attribute.opinions[i].polarity - target);
    // Jitter breaks ties so equally-distant phrases alternate.
    const double jittered = gap + rng->Uniform() * 0.05;
    if (jittered < best_gap) {
      best_gap = jittered;
      best = i;
    }
  }
  return attribute.opinions[best];
}

core::SubjectiveSchema SchemaFromSpec(const DomainSpec& spec) {
  core::SubjectiveSchema schema;
  schema.objective_table = spec.name + "s";
  schema.key_column = "name";
  for (const auto& attribute : spec.attributes) {
    core::SubjectiveAttribute subjective;
    subjective.name = attribute.name;
    subjective.summary_type.name = attribute.name;
    subjective.summary_type.kind = attribute.kind;
    subjective.summary_type.markers = attribute.markers;
    subjective.seeds.aspect_terms = attribute.aspect_nouns;
    // Only every other opinion phrase becomes a seed; the classifier must
    // reach the rest through seed expansion and smoothing.
    for (size_t i = 0; i < attribute.opinions.size(); i += 2) {
      subjective.seeds.opinion_terms.push_back(attribute.opinions[i].text);
    }
    schema.attributes.push_back(std::move(subjective));
  }
  return schema;
}

namespace {

std::string RenderReview(const DomainSpec& spec,
                         const SyntheticEntity& entity,
                         const GeneratorOptions& options, Rng* rng) {
  const size_t num_sentences =
      options.min_sentences_per_review +
      rng->Below(options.max_sentences_per_review -
                 options.min_sentences_per_review + 1);
  std::vector<std::string> sentences;
  for (size_t s = 0; s < num_sentences; ++s) {
    if (rng->Bernoulli(options.filler_probability) && !spec.fillers.empty()) {
      sentences.push_back(spec.fillers[rng->Below(spec.fillers.size())]);
      continue;
    }
    const size_t a = rng->Below(spec.attributes.size());
    const auto& attribute = spec.attributes[a];
    double q = entity.quality[a];
    if (rng->Bernoulli(options.contradiction_probability)) q = 1.0 - q;
    const OpinionPhrase& opinion =
        SampleOpinion(attribute, q, options.polarity_noise, rng);
    const auto& aspect =
        attribute.aspect_nouns[rng->Below(attribute.aspect_nouns.size())];
    std::string opinion_text = opinion.text;
    if (opinion.polarity < -0.2 &&
        rng->Bernoulli(options.negation_probability)) {
      // Render the negative as a negated positive.
      const OpinionPhrase* positive = nullptr;
      for (const auto& candidate : attribute.opinions) {
        if (candidate.polarity >= 0.5) {
          positive = &candidate;
          break;
        }
      }
      if (positive != nullptr) opinion_text = "not " + positive->text;
    }
    RealizedSentence realized =
        RealizeOpinionSentence(aspect, opinion_text, rng);
    sentences.push_back(Join(realized.tokens, " "));
  }
  // Correlated-concept sentences fire when the trigger qualities are high.
  for (const auto& cc : spec.concepts) {
    double min_quality = 1.0;
    for (int t : cc.trigger_attributes) {
      min_quality = std::min(min_quality, entity.quality[t]);
    }
    if (min_quality >= 0.6 && rng->Bernoulli(0.35 * min_quality)) {
      sentences.push_back(cc.sentence);
      // A reviewer who mentions the concept also praises the attributes
      // behind it ("romantic getaway ... exceptional service"): this is
      // the co-occurrence signal the interpreter mines.
      for (int t : cc.trigger_attributes) {
        const auto& trigger = spec.attributes[t];
        const OpinionPhrase& praise =
            SampleOpinion(trigger, entity.quality[t], 0.15, rng);
        const auto& aspect =
            trigger.aspect_nouns[rng->Below(trigger.aspect_nouns.size())];
        RealizedSentence praised =
            RealizeOpinionSentence(aspect, praise.text, rng);
        sentences.push_back(Join(praised.tokens, " "));
      }
    }
  }
  std::string body;
  for (const auto& sentence : sentences) {
    body += sentence;
    body += ". ";
  }
  return body;
}

}  // namespace

SyntheticDomain GenerateDomain(const DomainSpec& spec,
                               const GeneratorOptions& options) {
  SyntheticDomain domain;
  domain.spec = spec;
  domain.options = options;
  domain.schema = SchemaFromSpec(spec);
  Rng rng(options.seed);

  const bool is_hotel = spec.name == "hotel";
  const std::vector<std::string> cuisines = {"japanese", "italian", "french",
                                             "mexican", "thai"};

  for (size_t e = 0; e < options.num_entities; ++e) {
    SyntheticEntity entity;
    char buf[64];
    snprintf(buf, sizeof(buf), "%s_%03zu", spec.name.c_str(), e);
    entity.name = buf;
    entity.quality.resize(spec.attributes.size());
    for (auto& q : entity.quality) {
      q = std::pow(rng.Uniform(), 1.0 / options.quality_skew);
    }
    if (is_hotel) {
      entity.city = rng.Bernoulli(0.6) ? "london" : "amsterdam";
      entity.price = rng.Int(60, 500);
    } else {
      entity.cuisine = cuisines[rng.Below(cuisines.size())];
      entity.price_range = rng.Int(1, 4);
    }
    double mean_quality = 0.0;
    for (double q : entity.quality) mean_quality += q;
    mean_quality /= static_cast<double>(entity.quality.size());
    entity.rating = std::clamp(
        1.0 + 4.0 * mean_quality + rng.Gaussian(0.0, 0.3), 1.0, 5.0);
    entity.site_scores.resize(spec.attributes.size());
    for (size_t a = 0; a < spec.attributes.size(); ++a) {
      // Site category scores are coarse aggregates (star widgets, survey
      // checkboxes), noticeably noisier than the latent quality.
      entity.site_scores[a] = std::clamp(
          entity.quality[a] + rng.Gaussian(0.0, 0.28), 0.0, 1.0);
    }
    domain.entities.push_back(std::move(entity));
    domain.corpus.AddEntity(domain.entities.back().name);
  }

  // Reviews.
  for (size_t e = 0; e < options.num_entities; ++e) {
    const size_t n = options.min_reviews_per_entity +
                     rng.Below(options.max_reviews_per_entity -
                               options.min_reviews_per_entity + 1);
    for (size_t r = 0; r < n; ++r) {
      const auto reviewer =
          static_cast<text::ReviewerId>(rng.Below(options.num_reviewers));
      const auto date = static_cast<int32_t>(rng.Int(0, 3650));
      domain.corpus.AddReview(
          static_cast<text::EntityId>(e), reviewer, date,
          RenderReview(spec, domain.entities[e], options, &rng));
    }
  }

  // Objective table (row i == entity i).
  if (is_hotel) {
    domain.objective_table = storage::Table(
        domain.schema.objective_table,
        {{"name", storage::ValueType::kString},
         {"city", storage::ValueType::kString},
         {"price_pn", storage::ValueType::kInt},
         {"rating", storage::ValueType::kDouble}});
    for (const auto& entity : domain.entities) {
      domain.objective_table
          .Append({storage::Value(entity.name), storage::Value(entity.city),
                   storage::Value(entity.price),
                   storage::Value(entity.rating)})
          .ok();
    }
  } else {
    domain.objective_table = storage::Table(
        domain.schema.objective_table,
        {{"name", storage::ValueType::kString},
         {"cuisine", storage::ValueType::kString},
         {"price_range", storage::ValueType::kInt},
         {"rating", storage::ValueType::kDouble}});
    for (const auto& entity : domain.entities) {
      domain.objective_table
          .Append({storage::Value(entity.name),
                   storage::Value(entity.cuisine),
                   storage::Value(entity.price_range),
                   storage::Value(entity.rating)})
          .ok();
    }
  }
  return domain;
}

namespace {

/// Neutral-context templates that mention an aspect noun without
/// expressing any opinion about it: every token is gold-O.
RealizedSentence RealizeNeutralSentence(const std::string& aspect,
                                        Rng* rng) {
  RealizedSentence out;
  switch (rng->Below(4)) {
    case 0:
      AppendPlain("we asked about the " + aspect + " at the desk", &out);
      break;
    case 1:
      AppendPlain("the " + aspect + " is on the third floor", &out);
      break;
    case 2:
      AppendPlain("we paid for the " + aspect + " in advance", &out);
      break;
    default:
      AppendPlain("they showed us the " + aspect + " before booking",
                  &out);
      break;
  }
  return out;
}

const char* kIntensifiers[] = {"very", "really", "quite", "extremely",
                               "pretty", "so"};

}  // namespace

std::vector<extract::LabeledSentence> GenerateLabeledSentences(
    const DomainSpec& spec, size_t n, uint64_t seed,
    const LabeledSentenceOptions& options) {
  Rng rng(seed);
  DomainSpec effective = spec;
  if (options.exclude_holdout_vocabulary) {
    for (auto& attribute : effective.attributes) {
      std::vector<OpinionPhrase> kept_opinions;
      for (size_t i = 0; i < attribute.opinions.size(); ++i) {
        if (i % 4 != 3) kept_opinions.push_back(attribute.opinions[i]);
      }
      if (!kept_opinions.empty()) attribute.opinions = kept_opinions;
      std::vector<std::string> kept_aspects;
      for (size_t i = 0; i < attribute.aspect_nouns.size(); ++i) {
        if (i % 4 != 3) kept_aspects.push_back(attribute.aspect_nouns[i]);
      }
      if (!kept_aspects.empty()) attribute.aspect_nouns = kept_aspects;
    }
  }
  std::vector<extract::LabeledSentence> sentences;
  sentences.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    extract::LabeledSentence sentence;
    const double kind = rng.Uniform();
    const auto& random_attribute =
        effective.attributes[rng.Below(effective.attributes.size())];
    const auto& random_aspect = random_attribute.aspect_nouns[rng.Below(
        random_attribute.aspect_nouns.size())];
    if (kind < 0.08 && !effective.fillers.empty()) {
      // Pure filler: everything O.
      const auto tokens = SplitWhitespace(
          effective.fillers[rng.Below(effective.fillers.size())]);
      sentence.tokens.assign(tokens.begin(), tokens.end());
      sentence.tags.assign(tokens.size(), extract::kO);
    } else if (kind < 0.08 + options.ambiguous_probability) {
      RealizedSentence realized = RealizeNeutralSentence(random_aspect,
                                                         &rng);
      sentence.tokens = std::move(realized.tokens);
      sentence.tags = std::move(realized.tags);
    } else {
      const size_t clauses = kind < 0.78 ? 1 : 2;
      RealizedSentence realized;
      for (size_t c = 0; c < clauses; ++c) {
        if (c > 0) AppendPlain("and", &realized);
        const auto& attribute =
            effective.attributes[rng.Below(effective.attributes.size())];
        const auto& aspect = attribute.aspect_nouns[rng.Below(
            attribute.aspect_nouns.size())];
        const auto& opinion = SampleOpinion(
            attribute, rng.Uniform(), 0.4, &rng);
        std::string opinion_text = opinion.text;
        if (rng.Bernoulli(options.intensifier_probability)) {
          opinion_text =
              std::string(kIntensifiers[rng.Below(std::size(kIntensifiers))]) +
              " " + opinion_text;
        }
        RealizedSentence clause =
            RealizeOpinionSentence(aspect, opinion_text, &rng);
        realized.tokens.insert(realized.tokens.end(), clause.tokens.begin(),
                               clause.tokens.end());
        realized.tags.insert(realized.tags.end(), clause.tags.begin(),
                             clause.tags.end());
      }
      sentence.tokens = std::move(realized.tokens);
      sentence.tags = std::move(realized.tags);
    }
    // Annotation noise on gold tags (training sets only).
    if (options.label_noise > 0.0) {
      for (auto& tag : sentence.tags) {
        if (rng.Bernoulli(options.label_noise)) {
          tag = static_cast<int>(rng.Below(extract::kNumTags));
        }
      }
    }
    sentences.push_back(std::move(sentence));
  }
  return sentences;
}

}  // namespace opinedb::datagen
