#ifndef OPINEDB_DATAGEN_SCALE_H_
#define OPINEDB_DATAGEN_SCALE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/domain_spec.h"

namespace opinedb::datagen {

/// Parameters of a large synthetic fixture (docs/SCALING.md). The
/// regular generator renders full review text and pushes every review
/// through extraction, which is O(reviews) and tops out around a few
/// thousand entities in reasonable wall time. The scale path instead
/// trains all models on a small "vocabulary" sub-corpus and then
/// synthesizes marker summaries for the full entity set directly — the
/// data plane (aggregated summaries, objective columns) is full-size
/// while the text plane stays small.
struct ScaleSpec {
  /// Total entities in the fixture (summaries + objective rows).
  size_t num_entities = 100000;
  /// Entities that carry real rendered reviews; every model (word2vec,
  /// extractor, interpreter variations) trains on these.
  size_t vocab_entities = 96;
  /// Synthesized opinion mass (fractional phrase count) per entity,
  /// drawn uniformly from [min, max] and split across attributes.
  double min_opinion_mass = 10.0;
  double max_opinion_mass = 100.0;
  /// Attribute popularity skew: attribute a receives mass proportional
  /// to 1 / (a + 1)^zipf_exponent, mirroring the long-tailed aspect
  /// frequency of real review corpora.
  double zipf_exponent = 1.1;
  /// word2vec dimensionality; small by default so centroid columns at
  /// 1M entities stay in the hundreds of megabytes.
  size_t embedding_dim = 16;
  /// Labeled sentences for extractor training on the vocab corpus.
  size_t extractor_sentences = 400;
  /// Sampled (entity, marker) tuples for membership-model training;
  /// 0 skips training and leaves the heuristic membership function.
  size_t membership_tuples = 512;
  /// Engine worker threads (1 = serial; benchmarks sweep this).
  size_t num_threads = 1;
  uint64_t seed = 42;
};

/// A built engine plus the ground truth the synthesis used, for
/// benchmarks and differential tests.
struct ScaledFixture {
  ScaleSpec spec;
  DomainSpec domain;
  std::unique_ptr<core::OpineDb> db;
  /// Latent per-entity quality in [0, 1]; marker histograms concentrate
  /// around position (1 - quality) * (K - 1) of each linear scale.
  std::vector<double> quality;
  /// One predicate per (attribute, marker) — exactly the phrases the
  /// interpreter resolves through its word2vec variation table.
  std::vector<std::string> subjective_predicates;
  /// Name of the installed objective table ("hotels").
  std::string table_name;
};

/// Builds a deterministic fixture: same spec -> bit-identical engine
/// state (summaries, objective rows, models). See ScaleSpec for the
/// vocab-subcorpus construction. The returned engine has columnar mode
/// per `engine_options()`-defaults (on) and an objective table with one
/// row per entity.
ScaledFixture BuildScaledFixture(const ScaleSpec& spec);

}  // namespace opinedb::datagen

#endif  // OPINEDB_DATAGEN_SCALE_H_
