#include "datagen/scale.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.h"
#include "core/marker_summary.h"
#include "core/membership.h"
#include "datagen/generator.h"
#include "embedding/vector_ops.h"
#include "extract/opinion_tagger.h"
#include "extract/pipeline.h"
#include "storage/table.h"

namespace opinedb::datagen {

namespace {

constexpr uint64_t kEntityStride = 0x9e3779b97f4a7c15ull;

const char* const kCities[] = {"amsterdam", "berlin",  "chicago", "denver",
                               "eugene",    "fukuoka", "geneva",  "helsinki"};
constexpr size_t kNumCities = sizeof(kCities) / sizeof(kCities[0]);

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

}  // namespace

ScaledFixture BuildScaledFixture(const ScaleSpec& spec) {
  ScaledFixture fixture;
  fixture.spec = spec;
  fixture.domain = HotelDomain();
  const size_t num_entities = std::max<size_t>(1, spec.num_entities);
  const size_t vocab = std::min(std::max<size_t>(8, spec.vocab_entities),
                                num_entities);

  // 1. Small rendered sub-corpus: trains word2vec, the extractor and the
  // interpreter's variation table (schema markers seed variations, so
  // marker-phrase predicates interpret even after the extraction
  // relation is replaced below).
  GeneratorOptions vocab_options;
  vocab_options.num_entities = vocab;
  vocab_options.seed = spec.seed;
  SyntheticDomain small = GenerateDomain(fixture.domain, vocab_options);

  // 2. Full-size corpus: the vocab entities keep their rendered reviews,
  // the tail is review-less (their summaries are synthesized, not
  // aggregated, so extraction cost stays O(vocab)).
  text::ReviewCorpus corpus;
  for (size_t e = 0; e < num_entities; ++e) {
    if (e < vocab) {
      corpus.AddEntity(small.corpus.entity_name(
          static_cast<text::EntityId>(e)));
    } else {
      corpus.AddEntity("hotel_" + std::to_string(e));
    }
  }
  for (const auto& review : small.corpus.reviews()) {
    corpus.AddReview(review.entity, review.reviewer, review.date,
                     review.body);
  }

  auto tagger = extract::OpinionTagger::Train(GenerateLabeledSentences(
      fixture.domain, spec.extractor_sentences, spec.seed));
  extract::ExtractionPipeline pipeline(std::move(tagger));

  core::EngineOptions engine;
  engine.w2v.dim = std::max<size_t>(4, spec.embedding_dim);
  engine.num_threads = spec.num_threads;
  fixture.db = core::OpineDb::Build(corpus, small.schema, pipeline, engine);

  core::OpineDb& db = *fixture.db;
  const core::SubjectiveSchema& schema = db.schema();
  const size_t num_attributes = schema.num_attributes();
  const size_t dim = db.phrase_embedder().dim();

  // Marker-phrase centroid bases, one Represent() per (attribute,
  // marker). A marker whose words fell below word2vec's min_count gets a
  // deterministic pseudo-embedding so its cosine features stay
  // non-degenerate.
  std::vector<std::vector<embedding::Vec>> bases(num_attributes);
  for (size_t a = 0; a < num_attributes; ++a) {
    const auto& markers = schema.attributes[a].summary_type.markers;
    bases[a].reserve(markers.size());
    for (size_t m = 0; m < markers.size(); ++m) {
      embedding::Vec base = db.phrase_embedder().Represent(markers[m]);
      if (base.size() != dim) base.assign(dim, 0.0f);
      if (embedding::Norm(base) == 0.0) {
        Rng rng(spec.seed ^ (a * 131 + m + 1));
        for (auto& v : base) {
          v = static_cast<float>(rng.Gaussian(0.0, 0.3));
        }
      }
      bases[a].push_back(std::move(base));
    }
  }

  // Zipf attribute popularity, normalized.
  std::vector<double> attribute_weight(num_attributes);
  double weight_sum = 0.0;
  for (size_t a = 0; a < num_attributes; ++a) {
    attribute_weight[a] =
        1.0 / std::pow(static_cast<double>(a + 1), spec.zipf_exponent);
    weight_sum += attribute_weight[a];
  }
  for (auto& w : attribute_weight) w /= weight_sum;

  // 3. Synthesize the full-size summaries. Per entity: a latent quality
  // q, opinion mass split across attributes by the zipf weights, and a
  // gaussian bump of mass centered at scale position (1 - q) * (K - 1).
  // Centroids are the marker bases with a small jitter on the first two
  // coordinates — an additive perturbation, so per-entity cosines vary
  // (a multiplicative one would leave cosine invariant).
  std::vector<std::vector<core::MarkerSummary>> summaries(num_attributes);
  for (size_t a = 0; a < num_attributes; ++a) {
    summaries[a].assign(
        num_entities,
        core::MarkerSummary(&schema.attributes[a].summary_type, dim));
  }
  fixture.quality.resize(num_entities);
  for (size_t e = 0; e < num_entities; ++e) {
    Rng rng(spec.seed ^ (kEntityStride * (e + 1)));
    const double q = rng.Uniform();
    fixture.quality[e] = q;
    const double mass =
        rng.Uniform(spec.min_opinion_mass, spec.max_opinion_mass);
    for (size_t a = 0; a < num_attributes; ++a) {
      core::MarkerSummary& summary = summaries[a][e];
      const size_t num_markers = summary.num_markers();
      if (num_markers == 0) continue;
      const double attr_mass = mass * attribute_weight[a];
      const double position =
          Clamp((1.0 - q) * static_cast<double>(num_markers - 1) +
                    rng.Gaussian(0.0, 0.35),
                0.0, static_cast<double>(num_markers - 1));
      std::vector<double> bump(num_markers);
      double bump_sum = 0.0;
      for (size_t m = 0; m < num_markers; ++m) {
        const double d = (static_cast<double>(m) - position) / 0.7;
        bump[m] = std::exp(-0.5 * d * d);
        bump_sum += bump[m];
      }
      for (size_t m = 0; m < num_markers; ++m) {
        const double count = attr_mass * bump[m] / bump_sum;
        core::MarkerCell cell;
        cell.count = count;
        if (count > 1e-6) {
          const double polarity =
              num_markers > 1
                  ? 1.0 - 2.0 * static_cast<double>(m) /
                              static_cast<double>(num_markers - 1)
                  : 0.0;
          cell.mean_sentiment =
              Clamp(polarity + rng.Gaussian(0.0, 0.1), -1.0, 1.0);
          cell.centroid = bases[a][m];
          cell.centroid[0] +=
              static_cast<float>(rng.Gaussian(0.0, 0.05));
          if (dim > 1) {
            cell.centroid[1] +=
                static_cast<float>(rng.Gaussian(0.0, 0.05));
          }
        } else {
          cell.count = 0.0;
          cell.centroid = embedding::Zeros(dim);
        }
        summary.RestoreCell(m, std::move(cell));
      }
      summary.SetUnmatchedCount(attr_mass * 0.05 * rng.Uniform());
    }
  }
  Status installed = db.InstallSummaries(std::move(summaries));
  (void)installed;

  // 4. Full-size objective table, one row per entity in id order.
  storage::Table table(schema.objective_table,
                       {{"name", storage::ValueType::kString},
                        {"city", storage::ValueType::kString},
                        {"price_pn", storage::ValueType::kInt},
                        {"rating", storage::ValueType::kDouble}});
  {
    Rng rng(spec.seed + 0x5eed);
    for (size_t e = 0; e < num_entities; ++e) {
      const int64_t price = 40 + static_cast<int64_t>(rng.Below(360));
      const double rating = Clamp(
          2.0 + 3.0 * fixture.quality[e] + rng.Gaussian(0.0, 0.15), 1.0,
          5.0);
      table
          .Append({storage::Value(db.corpus().entity_name(
                       static_cast<text::EntityId>(e))),
                   storage::Value(std::string(
                       kCities[rng.Below(kNumCities)])),
                   storage::Value(price), storage::Value(rating)})
          .ok();
    }
  }
  Status table_status = db.SetObjectiveTable(std::move(table));
  (void)table_status;

  // 5. Membership model, trained on tuples whose labels come from the
  // synthesis ground truth: a marker is "true" of an entity when it sits
  // within one step of the entity's expected scale position.
  if (spec.membership_tuples > 0) {
    Rng rng(spec.seed + 3);
    std::vector<core::MembershipModel::LabeledTuple> tuples;
    tuples.reserve(spec.membership_tuples);
    for (size_t i = 0; i < spec.membership_tuples; ++i) {
      const size_t a = rng.Below(num_attributes);
      const auto& markers = schema.attributes[a].summary_type.markers;
      if (markers.empty()) continue;
      const size_t m = rng.Below(markers.size());
      const size_t e = rng.Below(num_entities);
      const embedding::Vec rep = db.phrase_embedder().Represent(markers[m]);
      const double senti = db.analyzer().ScorePhrase(markers[m]);
      core::MembershipModel::LabeledTuple tuple;
      tuple.features = core::MembershipFeatures(
          db.summary(a, static_cast<text::EntityId>(e)), static_cast<int>(m),
          rep, senti);
      const double expected =
          (1.0 - fixture.quality[e]) * static_cast<double>(markers.size() - 1);
      tuple.label =
          std::abs(static_cast<double>(m) - expected) <= 1.0 ? 1 : 0;
      tuples.push_back(std::move(tuple));
    }
    Status trained = db.TrainMembership(tuples, spec.seed + 4);
    (void)trained;
  }

  for (size_t a = 0; a < num_attributes; ++a) {
    for (const auto& marker : schema.attributes[a].summary_type.markers) {
      fixture.subjective_predicates.push_back(marker);
    }
  }
  fixture.table_name = schema.objective_table;
  return fixture;
}

}  // namespace opinedb::datagen
