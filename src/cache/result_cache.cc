#include "cache/result_cache.h"

#include <algorithm>

namespace opinedb::cache {

ResultCache::ResultCache(size_t byte_budget, size_t num_shards)
    : byte_budget_(byte_budget),
      shard_budget_(byte_budget / std::max<size_t>(1, num_shards)),
      shards_(std::max<size_t>(1, num_shards)) {}

uint64_t ResultCache::Fingerprint(std::string_view key) {
  // FNV-1a, 64-bit.
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

size_t ResultCache::ApproxBytes(const std::string& key,
                                const CachedResult& value) {
  // Flat struct sizes plus owned heap payloads; the fixed 128-byte
  // overhead stands in for the map node, LRU node and allocator slack so
  // many tiny entries cannot blow past the budget "for free".
  size_t total = 128 + key.size() + sizeof(CachedResult);
  for (const auto& r : value.results) {
    total += sizeof(core::RankedResult) + r.entity_name.size();
  }
  for (const auto& i : value.interpretations) {
    total += sizeof(core::PredicateInterpretation) +
             i.atoms.size() * sizeof(core::AtomInterpretation);
  }
  return total;
}

bool ResultCache::Lookup(const std::string& key, uint64_t epoch,
                         CachedResult* out) {
  Shard& shard = shards_[Fingerprint(key) % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (it->second.epoch == epoch) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
        *out = it->second.value;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // Stale epoch: the wholesale clear raced us; drop it now.
      EraseLocked(&shard, it);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

size_t ResultCache::Insert(const std::string& key, uint64_t epoch,
                           CachedResult value) {
  const size_t entry_bytes = ApproxBytes(key, value);
  if (entry_bytes > shard_budget_) return 0;  // Never cacheable.
  Shard& shard = shards_[Fingerprint(key) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) EraseLocked(&shard, it);
  shard.lru.push_front(key);
  Entry entry;
  entry.value = std::move(value);
  entry.epoch = epoch;
  entry.bytes = entry_bytes;
  entry.lru_it = shard.lru.begin();
  shard.map.emplace(key, std::move(entry));
  shard.bytes += entry_bytes;
  bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
  size_t evicted = 0;
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    auto victim = shard.map.find(shard.lru.back());
    EraseLocked(&shard, victim);
    ++evicted;
  }
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

void ResultCache::EraseLocked(
    Shard* shard, std::unordered_map<std::string, Entry>::iterator it) {
  shard->bytes -= it->second.bytes;
  bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
  shard->lru.erase(it->second.lru_it);
  shard->map.erase(it);
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes_.fetch_sub(shard.bytes, std::memory_order_relaxed);
    shard.bytes = 0;
    shard.lru.clear();
    shard.map.clear();
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace opinedb::cache
