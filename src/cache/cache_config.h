#ifndef OPINEDB_CACHE_CACHE_CONFIG_H_
#define OPINEDB_CACHE_CACHE_CONFIG_H_

#include <cstddef>

namespace opinedb::cache {

/// Engine-level caching knobs (see docs/CACHING.md). Both layers default
/// to OFF: caching is an opt-in serving optimization, and the default
/// engine keeps the exact pre-cache execution profile (trace goldens,
/// metric counts) of earlier releases.
struct CacheConfig {
  /// Memoize the Fig. 5 interpretation cascade per (normalized predicate
  /// text, epoch). Also persisted as the "interp_cache" snapshot section
  /// so a reopened database serves warm.
  bool enable_interpretation = false;
  /// Memoize full query results per (canonical query key, epoch) in a
  /// sharded, byte-budgeted LRU.
  bool enable_results = false;
  /// Total byte budget of the result cache, split evenly across shards.
  /// Entries larger than one shard's budget are never cached.
  size_t result_cache_bytes = 4u << 20;  // 4 MiB.
  /// Lock-striping widths. More shards = less contention under
  /// concurrent serving, at a small fixed memory cost. The defaults
  /// preserve the historical hard-coded counts.
  size_t result_cache_shards = 8;
  size_t interp_cache_shards = 16;
};

}  // namespace opinedb::cache

#endif  // OPINEDB_CACHE_CACHE_CONFIG_H_
