#ifndef OPINEDB_CACHE_RESULT_CACHE_H_
#define OPINEDB_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/engine.h"

namespace opinedb::cache {

/// The cached portion of a QueryResult: the fields that are a pure
/// function of (query, database state at one epoch). Stats, trace and
/// plan_text are per-execution observability and are rebuilt fresh on a
/// hit; `plan` records the shape that produced the entry at fill time.
struct CachedResult {
  std::vector<core::RankedResult> results;
  std::vector<core::PredicateInterpretation> interpretations;
  core::PlanKind plan = core::PlanKind::kDenseScan;
};

/// Sharded, byte-budgeted LRU over full query results, keyed by the
/// planner's canonical query key (see core::CanonicalQueryKey) plus the
/// engine's cache epoch. The engine clears the cache wholesale on every
/// epoch bump; the per-entry epoch tag makes a stale entry a miss even
/// if a clear raced a reader.
///
/// Sharding: a key lives in shard Fingerprint(key) % num_shards, each
/// shard owns budget/num_shards bytes and its own mutex + LRU list, so
/// eviction pressure in one shard never touches entries in another.
/// Entries larger than one shard's budget are never cached. Lookups are
/// exclusive per shard (a hit touches the LRU list) but copy the value
/// out, so no references escape the lock.
class ResultCache {
 public:
  /// `num_shards` is clamped to at least 1; the count is fixed for the
  /// cache's lifetime (the engine rebuilds the layer to change it).
  explicit ResultCache(size_t byte_budget, size_t num_shards = 8);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Copies the cached result for `key` into `*out` and returns true on
  /// an epoch-matching hit (which also moves the entry to the front of
  /// its shard's LRU list).
  bool Lookup(const std::string& key, uint64_t epoch, CachedResult* out);

  /// Inserts (or replaces) the entry for `key`, then evicts from the
  /// shard's LRU tail until the shard is back under budget. Returns the
  /// number of entries evicted (0 when the value was too large to cache
  /// at all).
  size_t Insert(const std::string& key, uint64_t epoch, CachedResult value);

  /// Drops every entry (the wholesale epoch-bump invalidation).
  void Clear();

  size_t size() const;
  size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  size_t byte_budget() const { return byte_budget_; }
  size_t num_shards() const { return shards_.size(); }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// FNV-1a 64-bit fingerprint of a canonical key — the shard selector,
  /// also exported as the root query span's `query_fingerprint`
  /// attribute so traces of the same logical query correlate.
  static uint64_t Fingerprint(std::string_view key);

  /// The byte charge of one entry (key + results + interpretations +
  /// bookkeeping overhead) used for budget accounting.
  static size_t ApproxBytes(const std::string& key,
                            const CachedResult& value);

 private:
  struct Entry {
    CachedResult value;
    uint64_t epoch = 0;
    size_t bytes = 0;
    /// Position in the shard's LRU list (front = most recent).
    std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<std::string> lru;
    std::unordered_map<std::string, Entry> map;
    size_t bytes = 0;
  };

  /// Erases `it` from `shard` and updates byte accounting. Requires
  /// shard.mu held.
  void EraseLocked(Shard* shard,
                   std::unordered_map<std::string, Entry>::iterator it);

  const size_t byte_budget_;
  const size_t shard_budget_;
  /// Sized once at construction; never resized (shards own mutexes).
  std::vector<Shard> shards_;
  std::atomic<size_t> bytes_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace opinedb::cache

#endif  // OPINEDB_CACHE_RESULT_CACHE_H_
