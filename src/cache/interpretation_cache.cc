#include "cache/interpretation_cache.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <vector>

namespace opinedb::cache {

namespace {

constexpr char kInterpCacheMagic[] = "opinedb-interp-cache";
constexpr int kInterpCacheVersion = 1;

/// Plausibility bounds on deserialized sizes (same doctrine as
/// core/serialize.cc): a corrupt or truncated payload must produce a
/// ParseError, not a multi-gigabyte allocation.
constexpr size_t kMaxEntries = 1u << 22;       // 4M predicates.
constexpr size_t kMaxAtoms = 1u << 12;         // Atoms per predicate.
constexpr size_t kMaxRepDim = 1u << 16;        // Embedding dims.
constexpr size_t kMaxStringLength = 1u << 20;  // 1 MiB per key.

/// Netstring-style string encoding: "<length>:<bytes>" — robust to
/// spaces inside normalized predicates.
void WriteString(const std::string& s, std::ostream* out) {
  *out << s.size() << ':' << s;
}

Result<std::string> ReadString(std::istream* in) {
  size_t length = 0;
  char colon = 0;
  if (!(*in >> length) || !in->get(colon) || colon != ':') {
    return Status::ParseError("bad string header");
  }
  if (length > kMaxStringLength) {
    return Status::ParseError("implausible string length " +
                              std::to_string(length));
  }
  std::string s(length, '\0');
  if (!in->read(s.data(), static_cast<std::streamsize>(length))) {
    return Status::ParseError("truncated string");
  }
  return s;
}

char MethodChar(core::InterpretMethod method) {
  switch (method) {
    case core::InterpretMethod::kWord2Vec:
      return 'w';
    case core::InterpretMethod::kCooccurrence:
      return 'c';
    case core::InterpretMethod::kTextFallback:
      return 't';
  }
  return 't';
}

Result<core::InterpretMethod> MethodFromChar(char c) {
  switch (c) {
    case 'w':
      return core::InterpretMethod::kWord2Vec;
    case 'c':
      return core::InterpretMethod::kCooccurrence;
    case 't':
      return core::InterpretMethod::kTextFallback;
    default:
      return Status::ParseError(std::string("unknown interpret method '") +
                                c + "'");
  }
}

}  // namespace

InterpretationCache::InterpretationCache(size_t num_shards)
    : shards_(std::max<size_t>(1, num_shards)) {}

InterpretationCache::Shard& InterpretationCache::ShardFor(
    const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const InterpretationCache::Shard& InterpretationCache::ShardFor(
    const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool InterpretationCache::Lookup(const std::string& key, uint64_t epoch,
                                 Entry* out) const {
  const Shard& shard = ShardFor(key);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.epoch == epoch) {
      *out = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void InterpretationCache::Insert(const std::string& key, Entry entry) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  shard.map[key] = std::move(entry);
}

void InterpretationCache::Clear() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map.clear();
  }
}

std::vector<std::string> InterpretationCache::Keys() const {
  std::vector<std::string> keys;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.map) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t InterpretationCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

Status SaveInterpretationCache(const InterpretationCache& cache,
                               std::ostream* out) {
  // Snapshot the entries under shard locks, then write sorted by key:
  // unordered_map iteration order is not stable across instances, and
  // the persistence suite pins save → open → save byte-identity.
  std::vector<std::pair<std::string, InterpretationCache::Entry>> entries;
  for (const auto& shard : cache.shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.map) {
      entries.emplace_back(key, entry);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  out->precision(std::numeric_limits<double>::max_digits10);
  *out << kInterpCacheMagic << ' ' << kInterpCacheVersion << '\n'
       << entries.size() << '\n';
  for (const auto& [key, entry] : entries) {
    WriteString(key, out);
    *out << ' ' << MethodChar(entry.interpretation.method) << ' '
         << (entry.interpretation.conjunctive ? 1 : 0) << ' '
         << entry.interpretation.confidence << ' ' << entry.sentiment
         << ' ' << entry.interpretation.atoms.size() << ' '
         << entry.rep.size() << '\n';
    for (const auto& atom : entry.interpretation.atoms) {
      *out << atom.attribute << ' ' << atom.marker << ' ' << atom.score
           << '\n';
    }
    for (size_t i = 0; i < entry.rep.size(); ++i) {
      if (i > 0) *out << ' ';
      *out << entry.rep[i];
    }
    if (!entry.rep.empty()) *out << '\n';
  }
  *out << "end\n";
  if (!out->good()) return Status::Internal("write failed");
  return Status::OK();
}

Status LoadInterpretationCache(std::istream* in, uint64_t epoch,
                               InterpretationCache* cache) {
  cache->Clear();
  std::string magic;
  int version = 0;
  if (!(*in >> magic >> version) || magic != kInterpCacheMagic) {
    return Status::ParseError("not an opinedb interpretation-cache payload");
  }
  if (version != kInterpCacheVersion) {
    return Status::NotSupported("interpretation-cache version " +
                                std::to_string(version));
  }
  size_t num_entries = 0;
  if (!(*in >> num_entries)) {
    return Status::ParseError("bad entry count");
  }
  if (num_entries > kMaxEntries) {
    cache->Clear();
    return Status::ParseError("implausible entry count " +
                              std::to_string(num_entries));
  }
  for (size_t i = 0; i < num_entries; ++i) {
    auto key = ReadString(in);
    if (!key.ok()) {
      cache->Clear();
      return key.status();
    }
    InterpretationCache::Entry entry;
    entry.epoch = epoch;
    char method = 0;
    int conjunctive = 0;
    size_t num_atoms = 0, rep_dim = 0;
    if (!(*in >> method >> conjunctive >>
          entry.interpretation.confidence >> entry.sentiment >> num_atoms >>
          rep_dim)) {
      cache->Clear();
      return Status::ParseError("bad entry header: " + *key);
    }
    auto parsed_method = MethodFromChar(method);
    if (!parsed_method.ok()) {
      cache->Clear();
      return parsed_method.status();
    }
    entry.interpretation.method = *parsed_method;
    entry.interpretation.conjunctive = conjunctive != 0;
    if (num_atoms > kMaxAtoms || rep_dim > kMaxRepDim) {
      cache->Clear();
      return Status::ParseError("implausible entry sizes for " + *key);
    }
    entry.interpretation.atoms.resize(num_atoms);
    for (auto& atom : entry.interpretation.atoms) {
      if (!(*in >> atom.attribute >> atom.marker >> atom.score)) {
        cache->Clear();
        return Status::ParseError("truncated atoms for " + *key);
      }
    }
    entry.rep.resize(rep_dim);
    for (auto& v : entry.rep) {
      if (!(*in >> v)) {
        cache->Clear();
        return Status::ParseError("truncated embedding for " + *key);
      }
    }
    cache->Insert(*key, std::move(entry));
  }
  std::string sentinel;
  if (!(*in >> sentinel) || sentinel != "end") {
    // The count said we were done but the closing sentinel is missing:
    // the payload was truncated at an entry boundary.
    cache->Clear();
    return Status::ParseError("missing end sentinel");
  }
  return Status::OK();
}

}  // namespace opinedb::cache
