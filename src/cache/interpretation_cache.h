#ifndef OPINEDB_CACHE_INTERPRETATION_CACHE_H_
#define OPINEDB_CACHE_INTERPRETATION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <istream>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/interpreter.h"
#include "embedding/phrase_rep.h"

namespace opinedb::cache {

/// Memoizes the interpretation prologue of ExecuteQuery per (normalized
/// predicate text, epoch): the Fig. 5 cascade output plus the query
/// embedding and sentiment the scoring phase needs. Safe to key on
/// NormalizePredicate(text) because every downstream consumer of the
/// predicate (PhraseEmbedder::Represent, Analyzer::ScorePhrase,
/// Interpreter::Interpret, the BM25 text fallback) tokenizes it with the
/// lowercasing, punctuation-dropping Tokenizer first — two predicates
/// with the same normalization are indistinguishable to all of them.
///
/// Entries are tagged with the engine's cache epoch; a lookup whose
/// epoch does not match is a miss, and the engine clears the cache
/// wholesale on every epoch bump (Reaggregate / OpenDatabase /
/// TrainMembership). Degraded interpretations are never inserted.
///
/// Thread-safe: sharded shared_mutex maps, same discipline as
/// core::DegreeCache. Lookups copy the entry out, so no references
/// escape a shard lock.
class InterpretationCache {
 public:
  struct Entry {
    core::PredicateInterpretation interpretation;
    embedding::Vec rep;
    double sentiment = 0.0;
    uint64_t epoch = 0;
  };

  /// `num_shards` is clamped to at least 1; the count is fixed for the
  /// cache's lifetime (the engine rebuilds the layer to change it).
  explicit InterpretationCache(size_t num_shards = 16);
  InterpretationCache(const InterpretationCache&) = delete;
  InterpretationCache& operator=(const InterpretationCache&) = delete;

  /// Copies the entry for `key` into `*out` and returns true when
  /// present with a matching epoch. A present-but-stale entry is a miss
  /// (the engine clears on every bump, so staleness here means a racing
  /// reader loaded before the clear — the epoch tag is the backstop).
  bool Lookup(const std::string& key, uint64_t epoch, Entry* out) const;

  /// Inserts (or overwrites) the entry for `key`. Callers must not
  /// insert degraded interpretations — the cache would happily serve
  /// them forever while the underlying fault is long gone.
  void Insert(const std::string& key, Entry entry);

  /// Drops every entry (under all shard locks).
  void Clear();

  /// Snapshot of all resident keys (per-shard shared locks, key-sorted
  /// for determinism). The ingest path uses it to re-derive entries at
  /// the new epoch instead of dropping the warm set wholesale.
  std::vector<std::string> Keys() const;

  /// Resident entries across all shards.
  size_t size() const;

  /// Lock-striping width this cache was built with.
  size_t num_shards() const { return shards_.size(); }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  friend Status SaveInterpretationCache(const InterpretationCache& cache,
                                        std::ostream* out);
  friend Status LoadInterpretationCache(std::istream* in, uint64_t epoch,
                                        InterpretationCache* cache);

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, Entry> map;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  /// Sized once at construction; never resized (shards own mutexes).
  std::vector<Shard> shards_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

/// Serializes the resident entries in a deterministic (key-sorted)
/// line-oriented text format — the "interp_cache" snapshot section
/// payload. Deterministic so save → open → save produces byte-identical
/// sections. Doubles are written with max_digits10, so a reloaded entry
/// is bit-exact.
Status SaveInterpretationCache(const InterpretationCache& cache,
                               std::ostream* out);

/// Reads a payload written by SaveInterpretationCache into `cache`,
/// tagging every entry with `epoch` (the engine's post-open epoch). On
/// any parse error the cache is cleared and the error returned — a
/// half-loaded cache never serves.
Status LoadInterpretationCache(std::istream* in, uint64_t epoch,
                               InterpretationCache* cache);

}  // namespace opinedb::cache

#endif  // OPINEDB_CACHE_INTERPRETATION_CACHE_H_
