#ifndef OPINEDB_FUZZY_LOGIC_H_
#define OPINEDB_FUZZY_LOGIC_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace opinedb::fuzzy {

/// The fuzzy-logic variant used to combine degrees of truth (Section 3.1).
enum class Variant {
  /// Classic Zadeh/Gödel: x⊗y = min(x,y), x⊕y = max(x,y).
  kGodel,
  /// Product variant (OpineDB's choice): x⊗y = xy,
  /// x⊕y = 1 - (1-x)(1-y).
  kProduct,
};

/// x ⊗ y under `variant`.
double And(Variant variant, double x, double y);
/// x ⊕ y under `variant`.
double Or(Variant variant, double x, double y);
/// ¬x = 1 - x (both variants).
double Not(double x);

/// A fuzzy boolean expression tree over leaf truth values.
///
/// Leaves are identified by an index; evaluation pulls the leaf degrees of
/// truth from a callback so the same compiled expression can be evaluated
/// for every entity.
class Expr {
 public:
  enum class Kind { kLeaf, kAnd, kOr, kNot };

  using Ptr = std::shared_ptr<const Expr>;

  /// Leaf referencing the `index`-th atomic condition.
  static Ptr Leaf(size_t index);
  /// Conjunction of `children` (at least one).
  static Ptr MakeAnd(std::vector<Ptr> children);
  /// Disjunction of `children` (at least one).
  static Ptr MakeOr(std::vector<Ptr> children);
  /// Negation.
  static Ptr MakeNot(Ptr child);

  Kind kind() const { return kind_; }
  size_t leaf_index() const { return leaf_index_; }
  const std::vector<Ptr>& children() const { return children_; }

  /// Evaluates the expression; `leaf` maps a leaf index to its degree of
  /// truth in [0, 1].
  double Evaluate(Variant variant,
                  const std::function<double(size_t)>& leaf) const;

  /// Number of leaves (max leaf index + 1) in the expression.
  size_t NumLeaves() const;

  /// Renders e.g. "(p0 ⊗ (p1 ⊕ p2))" for diagnostics.
  std::string ToString() const;

 private:
  Expr(Kind kind, size_t leaf_index, std::vector<Ptr> children)
      : kind_(kind), leaf_index_(leaf_index),
        children_(std::move(children)) {}

  Kind kind_;
  size_t leaf_index_ = 0;
  std::vector<Ptr> children_;
};

}  // namespace opinedb::fuzzy

#endif  // OPINEDB_FUZZY_LOGIC_H_
