#include "fuzzy/logic.h"

#include <algorithm>
#include <cassert>

namespace opinedb::fuzzy {

double And(Variant variant, double x, double y) {
  switch (variant) {
    case Variant::kGodel:
      return std::min(x, y);
    case Variant::kProduct:
      return x * y;
  }
  return 0.0;
}

double Or(Variant variant, double x, double y) {
  switch (variant) {
    case Variant::kGodel:
      return std::max(x, y);
    case Variant::kProduct:
      return 1.0 - (1.0 - x) * (1.0 - y);
  }
  return 0.0;
}

double Not(double x) { return 1.0 - x; }

Expr::Ptr Expr::Leaf(size_t index) {
  return Ptr(new Expr(Kind::kLeaf, index, {}));
}

Expr::Ptr Expr::MakeAnd(std::vector<Ptr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  return Ptr(new Expr(Kind::kAnd, 0, std::move(children)));
}

Expr::Ptr Expr::MakeOr(std::vector<Ptr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  return Ptr(new Expr(Kind::kOr, 0, std::move(children)));
}

Expr::Ptr Expr::MakeNot(Ptr child) {
  assert(child != nullptr);
  return Ptr(new Expr(Kind::kNot, 0, {std::move(child)}));
}

double Expr::Evaluate(Variant variant,
                      const std::function<double(size_t)>& leaf) const {
  switch (kind_) {
    case Kind::kLeaf:
      return leaf(leaf_index_);
    case Kind::kAnd: {
      double acc = children_[0]->Evaluate(variant, leaf);
      for (size_t i = 1; i < children_.size(); ++i) {
        acc = And(variant, acc, children_[i]->Evaluate(variant, leaf));
      }
      return acc;
    }
    case Kind::kOr: {
      double acc = children_[0]->Evaluate(variant, leaf);
      for (size_t i = 1; i < children_.size(); ++i) {
        acc = Or(variant, acc, children_[i]->Evaluate(variant, leaf));
      }
      return acc;
    }
    case Kind::kNot:
      return Not(children_[0]->Evaluate(variant, leaf));
  }
  return 0.0;
}

size_t Expr::NumLeaves() const {
  switch (kind_) {
    case Kind::kLeaf:
      return leaf_index_ + 1;
    default: {
      size_t max_leaves = 0;
      for (const auto& child : children_) {
        max_leaves = std::max(max_leaves, child->NumLeaves());
      }
      return max_leaves;
    }
  }
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kLeaf:
      return "p" + std::to_string(leaf_index_);
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kNot:
      return "NOT " + children_[0]->ToString();
  }
  return "";
}

}  // namespace opinedb::fuzzy
