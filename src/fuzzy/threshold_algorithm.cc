#include "fuzzy/threshold_algorithm.h"

#include <algorithm>
#include <unordered_set>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace opinedb::fuzzy {

namespace {

double Aggregate(const std::vector<const std::vector<double>*>& lists,
                 int32_t e, Variant variant) {
  double acc = 1.0;
  bool first = true;
  for (const auto* list : lists) {
    if (first) {
      acc = (*list)[e];
      first = false;
    } else {
      acc = And(variant, acc, (*list)[e]);
    }
  }
  return acc;
}

void SortAndTrim(std::vector<RankedEntity>* ranked, size_t k) {
  std::sort(ranked->begin(), ranked->end(),
            [](const RankedEntity& a, const RankedEntity& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.entity < b.entity;
            });
  if (ranked->size() > k) ranked->resize(k);
}

std::vector<const std::vector<double>*> BorrowLists(
    const std::vector<std::vector<double>>& lists) {
  std::vector<const std::vector<double>*> borrowed;
  borrowed.reserve(lists.size());
  for (const auto& list : lists) borrowed.push_back(&list);
  return borrowed;
}

}  // namespace

std::vector<RankedEntity> ThresholdAlgorithmTopK(
    const std::vector<const std::vector<double>*>& lists, size_t k,
    Variant variant, TaStats* stats, const QueryDeadline* deadline) {
  std::vector<RankedEntity> result;
  if (lists.empty() || lists[0]->empty() || k == 0) return result;
  const size_t num_entities = lists[0]->size();
  const size_t num_lists = lists.size();
  // When observability wants the access counts but the caller didn't,
  // collect them locally; otherwise keep the nullptr fast path.
  obs::TraceSpan span("fuzzy.ta");
  TaStats local_stats;
  if (stats == nullptr && (span.active() || obs::MetricsEnabled())) {
    stats = &local_stats;
  }
  span.AddAttribute("lists", static_cast<uint64_t>(num_lists));
  span.AddAttribute("entities", static_cast<uint64_t>(num_entities));
  span.AddAttribute("k", static_cast<uint64_t>(k));

  // Sorted access order per list.
  std::vector<std::vector<int32_t>> order(num_lists);
  for (size_t j = 0; j < num_lists; ++j) {
    order[j].resize(num_entities);
    for (size_t e = 0; e < num_entities; ++e) {
      order[j][e] = static_cast<int32_t>(e);
    }
    std::sort(order[j].begin(), order[j].end(),
              [&lists, j](int32_t a, int32_t b) {
                if ((*lists[j])[a] != (*lists[j])[b]) {
                  return (*lists[j])[a] > (*lists[j])[b];
                }
                return a < b;
              });
  }

  std::unordered_set<int32_t> seen;
  std::vector<RankedEntity> top;
  bool early_terminated = false;
  bool deadline_expired = false;
  for (size_t depth = 0; depth < num_entities; ++depth) {
    OPINEDB_FAULT("ta.round");
    // Per-round checkpoint: rounds are cheap and bounded, so one poll
    // per round keeps overshoot to a handful of random accesses.
    if (deadline != nullptr && deadline->Expired()) {
      deadline_expired = true;
      break;
    }
    if (stats != nullptr) ++stats->rounds;
    // One sorted access per list at this depth.
    for (size_t j = 0; j < num_lists; ++j) {
      const int32_t e = order[j][depth];
      if (stats != nullptr) ++stats->sorted_accesses;
      if (seen.insert(e).second) {
        if (stats != nullptr) stats->random_accesses += num_lists - 1;
        top.push_back(RankedEntity{e, Aggregate(lists, e, variant)});
      }
    }
    SortAndTrim(&top, k);
    // Threshold: aggregate of the current depth's per-list scores.
    double threshold = (*lists[0])[order[0][depth]];
    for (size_t j = 1; j < num_lists; ++j) {
      threshold = And(variant, threshold, (*lists[j])[order[j][depth]]);
    }
    if (top.size() >= k && top.back().score >= threshold) {
      early_terminated = true;
      break;
    }
  }
  if (stats != nullptr) {
    stats->entities_seen = seen.size();
    stats->deadline_expired = deadline_expired;
    span.AddAttribute("rounds", static_cast<uint64_t>(stats->rounds));
    span.AddAttribute("sorted_accesses",
                      static_cast<uint64_t>(stats->sorted_accesses));
    span.AddAttribute("random_accesses",
                      static_cast<uint64_t>(stats->random_accesses));
    span.AddAttribute("entities_seen",
                      static_cast<uint64_t>(stats->entities_seen));
    OPINEDB_METRIC_COUNT("fuzzy.ta_rounds", stats->rounds);
    OPINEDB_METRIC_COUNT("fuzzy.ta_sorted_accesses", stats->sorted_accesses);
    OPINEDB_METRIC_COUNT("fuzzy.ta_random_accesses",
                         stats->random_accesses);
  }
  span.AddAttribute("early_terminated", early_terminated);
  if (deadline_expired) span.AddAttribute("deadline_expired", true);
  OPINEDB_METRIC_COUNT("fuzzy.ta_calls", 1);
  return top;
}

std::vector<RankedEntity> ThresholdAlgorithmTopK(
    const std::vector<std::vector<double>>& lists, size_t k, Variant variant,
    TaStats* stats) {
  return ThresholdAlgorithmTopK(BorrowLists(lists), k, variant, stats);
}

std::vector<RankedEntity> FullScanTopK(
    const std::vector<const std::vector<double>*>& lists, size_t k,
    Variant variant) {
  std::vector<RankedEntity> ranked;
  if (lists.empty()) return ranked;
  const size_t num_entities = lists[0]->size();
  ranked.reserve(num_entities);
  for (size_t e = 0; e < num_entities; ++e) {
    ranked.push_back(RankedEntity{static_cast<int32_t>(e),
                                  Aggregate(lists, static_cast<int32_t>(e),
                                            variant)});
  }
  SortAndTrim(&ranked, k);
  return ranked;
}

std::vector<RankedEntity> FullScanTopK(
    const std::vector<std::vector<double>>& lists, size_t k,
    Variant variant) {
  return FullScanTopK(BorrowLists(lists), k, variant);
}

}  // namespace opinedb::fuzzy
