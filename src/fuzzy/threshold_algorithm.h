#ifndef OPINEDB_FUZZY_THRESHOLD_ALGORITHM_H_
#define OPINEDB_FUZZY_THRESHOLD_ALGORITHM_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "fuzzy/logic.h"

namespace opinedb::fuzzy {

/// An entity with its aggregated score.
struct RankedEntity {
  int32_t entity = 0;
  double score = 0.0;
};

/// Statistics about a Threshold Algorithm run, for benchmarking.
struct TaStats {
  size_t sorted_accesses = 0;
  size_t random_accesses = 0;
  size_t rounds = 0;
  /// Distinct entities whose aggregate was materialized before the
  /// threshold bound stopped the scan (== num_entities when TA never
  /// early-terminates). The engine surfaces this as entities_scored.
  size_t entities_seen = 0;
  /// True when a deadline stopped the scan before the threshold bound
  /// proved the top-k complete: the returned entities carry exact
  /// scores, but better entities may exist below the scan frontier.
  bool deadline_expired = false;
};

/// Fagin's Threshold Algorithm (Fagin, Lotem & Naor 2003) for monotone
/// top-k aggregation over per-predicate score lists.
///
/// `(*lists[j])[e]` is the degree of truth of predicate j for entity e
/// (dense: every list covers all entities). The aggregate is the fuzzy
/// conjunction of all predicates under `variant` — which is monotone, so
/// TA's early-termination bound applies. The conjunction folds in list
/// order (acc = And(acc, next)), matching fuzzy::Expr::Evaluate over an
/// AND of leaves, so results are bit-identical to a dense combine pass.
/// Returns the top-k entities by aggregate score, best first, ties broken
/// by smaller entity id.
///
/// The pointer form borrows the lists (e.g. straight out of a
/// DegreeCache) without copying them; pointers must stay valid for the
/// duration of the call.
///
/// `deadline` (optional) is polled once per sorted-access round; when it
/// expires the scan stops and the current top-k is returned — every
/// returned score is exact (TA materializes full aggregates), but
/// entities below the frontier were never considered. Such a run sets
/// TaStats::deadline_expired.
std::vector<RankedEntity> ThresholdAlgorithmTopK(
    const std::vector<const std::vector<double>*>& lists, size_t k,
    Variant variant, TaStats* stats = nullptr,
    const QueryDeadline* deadline = nullptr);

/// Owning-lists convenience wrapper over the pointer form.
std::vector<RankedEntity> ThresholdAlgorithmTopK(
    const std::vector<std::vector<double>>& lists, size_t k, Variant variant,
    TaStats* stats = nullptr);

/// Baseline: full scan computing the same aggregate for all entities.
std::vector<RankedEntity> FullScanTopK(
    const std::vector<const std::vector<double>*>& lists, size_t k,
    Variant variant);
std::vector<RankedEntity> FullScanTopK(
    const std::vector<std::vector<double>>& lists, size_t k, Variant variant);

}  // namespace opinedb::fuzzy

#endif  // OPINEDB_FUZZY_THRESHOLD_ALGORITHM_H_
