#ifndef OPINEDB_FUZZY_THRESHOLD_ALGORITHM_H_
#define OPINEDB_FUZZY_THRESHOLD_ALGORITHM_H_

#include <cstdint>
#include <vector>

#include "fuzzy/logic.h"

namespace opinedb::fuzzy {

/// An entity with its aggregated score.
struct RankedEntity {
  int32_t entity = 0;
  double score = 0.0;
};

/// Statistics about a Threshold Algorithm run, for benchmarking.
struct TaStats {
  size_t sorted_accesses = 0;
  size_t random_accesses = 0;
  size_t rounds = 0;
};

/// Fagin's Threshold Algorithm (Fagin, Lotem & Naor 2003) for monotone
/// top-k aggregation over per-predicate score lists.
///
/// `lists[j][e]` is the degree of truth of predicate j for entity e
/// (dense: every list covers all entities). The aggregate is the fuzzy
/// conjunction of all predicates under `variant` — which is monotone, so
/// TA's early-termination bound applies. Returns the top-k entities by
/// aggregate score, best first, ties broken by smaller entity id.
std::vector<RankedEntity> ThresholdAlgorithmTopK(
    const std::vector<std::vector<double>>& lists, size_t k, Variant variant,
    TaStats* stats = nullptr);

/// Baseline: full scan computing the same aggregate for all entities.
std::vector<RankedEntity> FullScanTopK(
    const std::vector<std::vector<double>>& lists, size_t k, Variant variant);

}  // namespace opinedb::fuzzy

#endif  // OPINEDB_FUZZY_THRESHOLD_ALGORITHM_H_
