#include "extract/pairing.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace opinedb::extract {

namespace {

/// Token gap between two spans (0 when adjacent/overlapping).
int SpanDistance(const Span& a, const Span& b) {
  if (a.end <= b.begin) return b.begin - a.end;
  if (b.end <= a.begin) return a.begin - b.end;
  return 0;
}

}  // namespace

std::vector<OpinionPair> RuleBasedPairing(const std::vector<Span>& spans) {
  std::vector<OpinionPair> pairs;
  std::vector<const Span*> aspects;
  for (const Span& span : spans) {
    if (span.tag == kAS) aspects.push_back(&span);
  }
  for (const Span& span : spans) {
    if (span.tag != kOP) continue;
    const Span* best = nullptr;
    int best_dist = std::numeric_limits<int>::max();
    for (const Span* aspect : aspects) {
      const int d = SpanDistance(*aspect, span);
      // Ties resolve to the leftmost aspect (aspects are in order).
      if (d < best_dist) {
        best_dist = d;
        best = aspect;
      }
    }
    OpinionPair pair;
    pair.opinion = span;
    if (best != nullptr) {
      pair.aspect = *best;
    } else {
      pair.aspect = Span{span.begin, span.begin, kAS};  // Empty aspect.
    }
    pairs.push_back(pair);
  }
  return pairs;
}

std::vector<double> PairingFeatures(const std::vector<Span>& spans,
                                    const Span& aspect, const Span& opinion) {
  const int dist = SpanDistance(aspect, opinion);
  const bool opinion_after = opinion.begin >= aspect.end;
  int spans_between = 0;
  const int lo = std::min(aspect.end, opinion.end);
  const int hi = std::max(aspect.begin, opinion.begin);
  for (const Span& s : spans) {
    if (s.begin >= lo && s.end <= hi &&
        !(s == aspect) && !(s == opinion)) {
      ++spans_between;
    }
  }
  int num_aspects = 0;
  int num_opinions = 0;
  for (const Span& s : spans) {
    if (s.tag == kAS) ++num_aspects;
    if (s.tag == kOP) ++num_opinions;
  }
  return {
      static_cast<double>(dist),
      std::log1p(static_cast<double>(dist)),
      opinion_after ? 1.0 : 0.0,
      static_cast<double>(spans_between),
      static_cast<double>(aspect.end - aspect.begin),
      static_cast<double>(opinion.end - opinion.begin),
      dist <= 1 ? 1.0 : 0.0,
      static_cast<double>(num_aspects),
      static_cast<double>(num_opinions),
  };
}

PairingClassifier PairingClassifier::Train(
    const std::vector<Example>& examples, uint64_t seed) {
  PairingClassifier classifier;
  std::vector<ml::Example> training;
  training.reserve(examples.size());
  for (const auto& ex : examples) {
    ml::Example t;
    t.features = PairingFeatures(ex.spans, ex.aspect, ex.opinion);
    t.label = ex.correct ? 1 : 0;
    training.push_back(std::move(t));
  }
  ml::LogRegOptions options;
  options.seed = seed;
  classifier.model_ = ml::LogisticRegression::Train(training, options);
  return classifier;
}

double PairingClassifier::Score(const std::vector<Span>& spans,
                                const Span& aspect,
                                const Span& opinion) const {
  return model_.Predict(PairingFeatures(spans, aspect, opinion));
}

std::vector<OpinionPair> PairingClassifier::Pair(
    const std::vector<Span>& spans) const {
  std::vector<OpinionPair> pairs;
  std::vector<const Span*> aspects;
  for (const Span& span : spans) {
    if (span.tag == kAS) aspects.push_back(&span);
  }
  for (const Span& span : spans) {
    if (span.tag != kOP) continue;
    const Span* best = nullptr;
    double best_score = 0.5;
    for (const Span* aspect : aspects) {
      const double s = Score(spans, *aspect, span);
      if (s >= best_score) {
        best_score = s;
        best = aspect;
      }
    }
    OpinionPair pair;
    pair.opinion = span;
    pair.aspect =
        best != nullptr ? *best : Span{span.begin, span.begin, kAS};
    pairs.push_back(pair);
  }
  return pairs;
}

double PairingClassifier::Accuracy(
    const std::vector<Example>& examples) const {
  if (examples.empty()) return 0.0;
  int correct = 0;
  for (const auto& ex : examples) {
    const bool predicted = Score(ex.spans, ex.aspect, ex.opinion) >= 0.5;
    if (predicted == ex.correct) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

}  // namespace opinedb::extract
