#ifndef OPINEDB_EXTRACT_PIPELINE_H_
#define OPINEDB_EXTRACT_PIPELINE_H_

#include <string>
#include <vector>

#include "extract/opinion_tagger.h"
#include "extract/pairing.h"
#include "sentiment/analyzer.h"
#include "text/corpus.h"
#include "text/tokenizer.h"

namespace opinedb {
class ThreadPool;
}

namespace opinedb::extract {

/// One extracted opinion with full provenance (Section 4.2.2: "any result
/// returned can be supported with evidence from the reviews").
struct ExtractedOpinion {
  text::EntityId entity = 0;
  text::ReviewId review = 0;
  int sentence_index = 0;
  /// The aspect term (may be empty for stand-alone opinions).
  std::string aspect;
  /// The opinion term.
  std::string opinion;
  /// concat(aspect, opinion) — the linguistic-variation phrase the rest of
  /// the system (attribute classifier, marker matching) operates on.
  std::string phrase;
  /// Sentiment of the opinion term in [-1, 1].
  double sentiment = 0.0;
};

/// The two-stage extractor of Section 4.1: tag tokens with an
/// OpinionTagger, then pair aspect and opinion spans.
class ExtractionPipeline {
 public:
  explicit ExtractionPipeline(OpinionTagger tagger)
      : tagger_(std::move(tagger)) {}

  /// Extracts all opinions from one review.
  std::vector<ExtractedOpinion> ExtractFromReview(
      const text::Review& review) const;

  /// Extracts from every review in a corpus. With a pool, reviews fan
  /// out across workers; results are concatenated in review order, so
  /// the output is identical to the serial scan.
  std::vector<ExtractedOpinion> ExtractFromCorpus(
      const text::ReviewCorpus& corpus, ThreadPool* pool = nullptr) const;

 private:
  OpinionTagger tagger_;
  text::Tokenizer tokenizer_;
  sentiment::Analyzer analyzer_;
};

}  // namespace opinedb::extract

#endif  // OPINEDB_EXTRACT_PIPELINE_H_
