#include "extract/pipeline.h"

#include "common/thread_pool.h"

namespace opinedb::extract {

std::vector<ExtractedOpinion> ExtractionPipeline::ExtractFromReview(
    const text::Review& review) const {
  std::vector<ExtractedOpinion> opinions;
  const auto sentences = text::Tokenizer::SplitSentences(review.body);
  for (size_t s = 0; s < sentences.size(); ++s) {
    const auto tokens = tokenizer_.Tokenize(sentences[s]);
    if (tokens.empty()) continue;
    const auto tags = tagger_.Tag(tokens);
    const auto spans = SpansFromTags(tags);
    const auto pairs = RuleBasedPairing(spans);
    for (const auto& pair : pairs) {
      ExtractedOpinion opinion;
      opinion.entity = review.entity;
      opinion.review = review.id;
      opinion.sentence_index = static_cast<int>(s);
      opinion.aspect = SpanText(tokens, pair.aspect);
      opinion.opinion = SpanText(tokens, pair.opinion);
      opinion.phrase = opinion.aspect.empty()
                           ? opinion.opinion
                           : opinion.opinion + " " + opinion.aspect;
      opinion.sentiment = analyzer_.ScorePhrase(opinion.opinion);
      opinions.push_back(std::move(opinion));
    }
  }
  return opinions;
}

std::vector<ExtractedOpinion> ExtractionPipeline::ExtractFromCorpus(
    const text::ReviewCorpus& corpus, ThreadPool* pool) const {
  const auto& reviews = corpus.reviews();
  std::vector<std::vector<ExtractedOpinion>> per_review(reviews.size());
  auto extract_range = [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      per_review[r] = ExtractFromReview(reviews[r]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, reviews.size(), extract_range, /*min_grain=*/4);
  } else {
    extract_range(0, reviews.size());
  }
  std::vector<ExtractedOpinion> all;
  for (auto& opinions : per_review) {
    all.insert(all.end(), std::make_move_iterator(opinions.begin()),
               std::make_move_iterator(opinions.end()));
  }
  return all;
}

}  // namespace opinedb::extract
