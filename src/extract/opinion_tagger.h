#ifndef OPINEDB_EXTRACT_OPINION_TAGGER_H_
#define OPINEDB_EXTRACT_OPINION_TAGGER_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "extract/tags.h"
#include "ml/perceptron_tagger.h"
#include "sentiment/analyzer.h"

namespace opinedb::extract {

/// One labeled sentence: tokens + gold tags.
struct LabeledSentence {
  std::vector<std::string> tokens;
  std::vector<int> tags;
};

/// Builds the emission feature bundle for each token of `tokens`.
///
/// Features include lexical identity, affixes, word shape, opinion-lexicon
/// membership with valence sign, intensifier/negation flags, and a +/-2
/// context window — the hand-engineered analogue of the contextual
/// representations the paper obtains from BERT.
std::vector<std::vector<std::string>> TaggingFeatures(
    const std::vector<std::string>& tokens,
    const sentiment::Lexicon& lexicon);

/// The trained opinion-term tagger of Section 4.1 (our BERT+BiLSTM+CRF
/// substitute): averaged-perceptron sequence model over TaggingFeatures.
class OpinionTagger {
 public:
  /// Trains on labeled sentences.
  static OpinionTagger Train(const std::vector<LabeledSentence>& data,
                             int epochs = 8, uint64_t seed = 42);

  /// Predicts tags for a tokenized sentence.
  std::vector<int> Tag(const std::vector<std::string>& tokens) const;

 private:
  ml::PerceptronTagger model_;
  sentiment::Lexicon lexicon_ = sentiment::Lexicon::Default();
};

/// Rule/lexicon baseline tagger standing in for the pre-BERT prior art
/// (the CMLA/RNCRF line the paper compares against in Table 6): tags a
/// token OP if it is an opinion-lexicon word (or an intensifier/negation
/// directly preceding one) and AS if it is a known aspect noun.
class RuleBasedTagger {
 public:
  /// `aspect_nouns` is the baseline's aspect gazetteer.
  explicit RuleBasedTagger(std::unordered_set<std::string> aspect_nouns);

  std::vector<int> Tag(const std::vector<std::string>& tokens) const;

 private:
  std::unordered_set<std::string> aspect_nouns_;
  sentiment::Lexicon lexicon_ = sentiment::Lexicon::Default();
};

}  // namespace opinedb::extract

#endif  // OPINEDB_EXTRACT_OPINION_TAGGER_H_
