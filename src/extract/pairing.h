#ifndef OPINEDB_EXTRACT_PAIRING_H_
#define OPINEDB_EXTRACT_PAIRING_H_

#include <string>
#include <vector>

#include "extract/tags.h"
#include "ml/logistic_regression.h"

namespace opinedb::extract {

/// A paired (aspect term, opinion term) extraction from one sentence.
struct OpinionPair {
  Span aspect;
  Span opinion;

  bool operator==(const OpinionPair& other) const {
    return aspect == other.aspect && opinion == other.opinion;
  }
};

/// Rule-based pairing (Appendix C, method 1): each opinion span links to
/// the closest aspect span by token distance — a proxy for the parse-tree
/// distance heuristic — resolving ties to the left. Opinion spans with no
/// aspect in the sentence are paired with an empty aspect span (the
/// opinion stands alone, e.g. "amazing!").
std::vector<OpinionPair> RuleBasedPairing(const std::vector<Span>& spans);

/// Dense features describing a candidate (aspect, opinion) link, used by
/// the supervised pairing classifier (Appendix C, method 2).
std::vector<double> PairingFeatures(const std::vector<Span>& spans,
                                    const Span& aspect, const Span& opinion);

/// Supervised pairing model: a binary classifier scoring candidate links;
/// each opinion span is paired to its highest-scoring aspect (if any
/// candidate scores >= 0.5).
class PairingClassifier {
 public:
  /// Training example: all spans of a sentence, one candidate link, and
  /// whether that link is correct.
  struct Example {
    std::vector<Span> spans;
    Span aspect;
    Span opinion;
    bool correct = false;
  };

  static PairingClassifier Train(const std::vector<Example>& examples,
                                 uint64_t seed = 42);

  /// Probability the link is correct.
  double Score(const std::vector<Span>& spans, const Span& aspect,
               const Span& opinion) const;

  /// Pairs all opinion spans using the classifier.
  std::vector<OpinionPair> Pair(const std::vector<Span>& spans) const;

  /// Accuracy on held-out link examples.
  double Accuracy(const std::vector<Example>& examples) const;

 private:
  ml::LogisticRegression model_;
};

}  // namespace opinedb::extract

#endif  // OPINEDB_EXTRACT_PAIRING_H_
