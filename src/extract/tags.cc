#include "extract/tags.h"

namespace opinedb::extract {

std::vector<Span> SpansFromTags(const std::vector<int>& tags) {
  std::vector<Span> spans;
  size_t i = 0;
  while (i < tags.size()) {
    if (tags[i] == kO) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < tags.size() && tags[j] == tags[i]) ++j;
    spans.push_back(Span{static_cast<int>(i), static_cast<int>(j),
                         static_cast<Tag>(tags[i])});
    i = j;
  }
  return spans;
}

std::string SpanText(const std::vector<std::string>& tokens,
                     const Span& span) {
  std::string out;
  for (int i = span.begin; i < span.end; ++i) {
    if (i > span.begin) out += ' ';
    out += tokens[i];
  }
  return out;
}

}  // namespace opinedb::extract
