#ifndef OPINEDB_EXTRACT_TAGS_H_
#define OPINEDB_EXTRACT_TAGS_H_

#include <string>
#include <vector>

namespace opinedb::extract {

/// Token tags for opinion extraction (paper Fig. 6): part of an aspect
/// term, part of an opinion term, or irrelevant.
enum Tag : int {
  kO = 0,   // Irrelevant.
  kAS = 1,  // Aspect term.
  kOP = 2,  // Opinion term.
};

inline constexpr int kNumTags = 3;

/// A contiguous tagged span [begin, end) of one tag type.
struct Span {
  int begin = 0;
  int end = 0;
  Tag tag = kO;

  bool operator==(const Span& other) const {
    return begin == other.begin && end == other.end && tag == other.tag;
  }
};

/// Extracts maximal non-O spans from a tag sequence.
std::vector<Span> SpansFromTags(const std::vector<int>& tags);

/// Joins tokens[span.begin, span.end) with single spaces.
std::string SpanText(const std::vector<std::string>& tokens,
                     const Span& span);

}  // namespace opinedb::extract

#endif  // OPINEDB_EXTRACT_TAGS_H_
