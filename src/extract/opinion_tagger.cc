#include "extract/opinion_tagger.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace opinedb::extract {

namespace {

std::string Shape(const std::string& token) {
  std::string shape;
  for (char c : token) {
    if (c >= '0' && c <= '9') {
      if (shape.empty() || shape.back() != 'd') shape += 'd';
    } else if (c == '-' || c == '\'') {
      shape += c;
    } else {
      if (shape.empty() || shape.back() != 'x') shape += 'x';
    }
  }
  return shape;
}

void TokenFeatures(const std::vector<std::string>& tokens, int i,
                   const sentiment::Lexicon& lexicon,
                   const std::string& prefix,
                   std::vector<std::string>* out) {
  if (i < 0 || i >= static_cast<int>(tokens.size())) {
    out->push_back(prefix + "w=<pad>");
    return;
  }
  const std::string& w = tokens[i];
  out->push_back(prefix + "w=" + w);
  const double v = lexicon.valence(w);
  if (v > 0.0) out->push_back(prefix + "lex=pos");
  if (v < 0.0) out->push_back(prefix + "lex=neg");
  if (sentiment::IntensityOf(w) != 1.0) out->push_back(prefix + "mod");
  if (sentiment::IsNegation(w)) out->push_back(prefix + "negation");
  if (text::IsStopword(w)) out->push_back(prefix + "stop");
}

}  // namespace

std::vector<std::vector<std::string>> TaggingFeatures(
    const std::vector<std::string>& tokens,
    const sentiment::Lexicon& lexicon) {
  std::vector<std::vector<std::string>> features(tokens.size());
  for (int i = 0; i < static_cast<int>(tokens.size()); ++i) {
    auto& f = features[i];
    f.reserve(16);
    TokenFeatures(tokens, i, lexicon, "", &f);
    TokenFeatures(tokens, i - 1, lexicon, "p1:", &f);
    TokenFeatures(tokens, i + 1, lexicon, "n1:", &f);
    TokenFeatures(tokens, i - 2, lexicon, "p2:", &f);
    TokenFeatures(tokens, i + 2, lexicon, "n2:", &f);
    const std::string& w = tokens[i];
    f.push_back("shape=" + Shape(w));
    if (w.size() >= 3) {
      f.push_back("suf3=" + w.substr(w.size() - 3));
      f.push_back("pre3=" + w.substr(0, 3));
    }
    f.push_back("bias");
  }
  return features;
}

OpinionTagger OpinionTagger::Train(const std::vector<LabeledSentence>& data,
                                   int epochs, uint64_t seed) {
  OpinionTagger tagger;
  std::vector<ml::TaggedSequence> sequences;
  sequences.reserve(data.size());
  for (const auto& sentence : data) {
    ml::TaggedSequence seq;
    seq.features = TaggingFeatures(sentence.tokens, tagger.lexicon_);
    seq.tags = sentence.tags;
    sequences.push_back(std::move(seq));
  }
  ml::PerceptronTagger::Options options;
  options.epochs = epochs;
  options.seed = seed;
  tagger.model_ = ml::PerceptronTagger::Train(sequences, kNumTags, options);
  return tagger;
}

std::vector<int> OpinionTagger::Tag(
    const std::vector<std::string>& tokens) const {
  return model_.Predict(TaggingFeatures(tokens, lexicon_));
}

RuleBasedTagger::RuleBasedTagger(std::unordered_set<std::string> aspect_nouns)
    : aspect_nouns_(std::move(aspect_nouns)) {}

std::vector<int> RuleBasedTagger::Tag(
    const std::vector<std::string>& tokens) const {
  std::vector<int> tags(tokens.size(), kO);
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (lexicon_.valence(tokens[i]) != 0.0) {
      tags[i] = kOP;
    } else if (aspect_nouns_.count(tokens[i]) > 0) {
      tags[i] = kAS;
    }
  }
  // Modifiers and negations attach to a following opinion word.
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tags[i] == kO && tags[i + 1] == kOP &&
        (sentiment::IntensityOf(tokens[i]) != 1.0 ||
         sentiment::IsNegation(tokens[i]))) {
      tags[i] = kOP;
    }
  }
  return tags;
}

}  // namespace opinedb::extract
