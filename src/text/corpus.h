#ifndef OPINEDB_TEXT_CORPUS_H_
#define OPINEDB_TEXT_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace opinedb::text {

/// Id of an entity (hotel, restaurant, ...) in a corpus.
using EntityId = int32_t;
/// Id of a review in a corpus.
using ReviewId = int32_t;
/// Id of a reviewer (used by reviewer-qualification query filters).
using ReviewerId = int32_t;

/// A single user review of one entity.
struct Review {
  ReviewId id = 0;
  EntityId entity = 0;
  ReviewerId reviewer = 0;
  /// Days since an arbitrary epoch; supports "reviews after <date>" filters.
  int32_t date = 0;
  std::string body;
};

/// All reviews for a domain, grouped by entity.
///
/// The corpus is append-only: marker summaries are computed from it and can
/// be refreshed incrementally as reviews arrive.
class ReviewCorpus {
 public:
  /// Registers an entity and returns its id. Entity names need not be
  /// unique; callers that want uniqueness enforce it themselves.
  EntityId AddEntity(std::string name);

  /// Appends a review and returns its id.
  ReviewId AddReview(EntityId entity, ReviewerId reviewer, int32_t date,
                     std::string body);

  size_t num_entities() const { return entity_names_.size(); }
  size_t num_reviews() const { return reviews_.size(); }

  const std::string& entity_name(EntityId e) const {
    return entity_names_[e];
  }
  const Review& review(ReviewId r) const { return reviews_[r]; }
  const std::vector<Review>& reviews() const { return reviews_; }

  /// Review ids belonging to entity `e`.
  const std::vector<ReviewId>& entity_reviews(EntityId e) const {
    return entity_reviews_[e];
  }

  /// Number of reviews authored by `reviewer` (0 if unseen).
  int32_t reviewer_review_count(ReviewerId reviewer) const;

 private:
  std::vector<std::string> entity_names_;
  std::vector<Review> reviews_;
  std::vector<std::vector<ReviewId>> entity_reviews_;
  std::vector<int32_t> reviewer_counts_;
};

}  // namespace opinedb::text

#endif  // OPINEDB_TEXT_CORPUS_H_
