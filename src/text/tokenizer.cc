#include "text/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace opinedb::text {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

bool IsIntraword(char c) { return c == '\'' || c == '-'; }

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view s) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.empty()) return;
    // Strip trailing intra-word characters ("don't-" -> "don't").
    while (!current.empty() && IsIntraword(current.back())) {
      current.pop_back();
    }
    if (!current.empty()) tokens.push_back(current);
    current.clear();
  };
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (IsWordChar(c)) {
      current.push_back(
          options_.lowercase
              ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
              : c);
    } else if (options_.keep_intraword && IsIntraword(c) && !current.empty() &&
               i + 1 < s.size() && IsWordChar(s[i + 1])) {
      current.push_back(c);
    } else {
      flush();
      if (!options_.drop_punctuation &&
          std::ispunct(static_cast<unsigned char>(c))) {
        tokens.emplace_back(1, c);
      }
    }
  }
  flush();
  return tokens;
}

std::vector<std::string> Tokenizer::SplitSentences(std::string_view s) {
  std::vector<std::string> sentences;
  std::string current;
  for (char c : s) {
    if (c == '.' || c == '!' || c == '?' || c == '\n') {
      // End of sentence; keep non-empty content only.
      bool has_content = false;
      for (char d : current) {
        if (!std::isspace(static_cast<unsigned char>(d))) {
          has_content = true;
          break;
        }
      }
      if (has_content) sentences.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  bool has_content = false;
  for (char d : current) {
    if (!std::isspace(static_cast<unsigned char>(d))) {
      has_content = true;
      break;
    }
  }
  if (has_content) sentences.push_back(current);
  return sentences;
}

const std::vector<std::string>& Stopwords() {
  static const auto& kStopwords = *new std::vector<std::string>{
      "a",    "an",   "and",  "are",  "as",   "at",   "be",   "but",
      "by",   "for",  "from", "had",  "has",  "have", "i",    "in",
      "is",   "it",   "its",  "of",   "on",   "or",   "our",  "so",
      "that", "the",  "their", "there", "they", "this", "to",  "was",
      "we",   "were", "with", "you",  "your", "my",   "me",   "he",
      "she",  "his",  "her",  "them", "then", "than", "been", "am",
  };
  return kStopwords;
}

bool IsStopword(std::string_view token) {
  static const auto& kSet = *new std::unordered_set<std::string>(
      Stopwords().begin(), Stopwords().end());
  return kSet.count(std::string(token)) > 0;
}

std::vector<std::string> NGrams(const std::vector<std::string>& tokens,
                                size_t n) {
  std::vector<std::string> grams;
  if (n == 0 || tokens.size() < n) return grams;
  for (size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string gram = tokens[i];
    for (size_t j = 1; j < n; ++j) {
      gram += '_';
      gram += tokens[i + j];
    }
    grams.push_back(std::move(gram));
  }
  return grams;
}

}  // namespace opinedb::text
