#include "text/vocab.h"

namespace opinedb::text {

WordId Vocab::Add(std::string_view word) { return AddCount(word, 1); }

WordId Vocab::AddCount(std::string_view word, int64_t count) {
  auto it = index_.find(std::string(word));
  WordId id;
  if (it == index_.end()) {
    id = static_cast<WordId>(words_.size());
    words_.emplace_back(word);
    counts_.push_back(0);
    index_.emplace(words_.back(), id);
  } else {
    id = it->second;
  }
  counts_[id] += count;
  total_count_ += count;
  return id;
}

WordId Vocab::Lookup(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? kInvalidWordId : it->second;
}

Vocab Vocab::Pruned(int64_t min_count) const {
  Vocab pruned;
  for (size_t i = 0; i < words_.size(); ++i) {
    if (counts_[i] >= min_count) {
      pruned.AddCount(words_[i], counts_[i]);
    }
  }
  return pruned;
}

}  // namespace opinedb::text
