#include "text/corpus.h"

namespace opinedb::text {

EntityId ReviewCorpus::AddEntity(std::string name) {
  EntityId id = static_cast<EntityId>(entity_names_.size());
  entity_names_.push_back(std::move(name));
  entity_reviews_.emplace_back();
  return id;
}

ReviewId ReviewCorpus::AddReview(EntityId entity, ReviewerId reviewer,
                                 int32_t date, std::string body) {
  ReviewId id = static_cast<ReviewId>(reviews_.size());
  Review review;
  review.id = id;
  review.entity = entity;
  review.reviewer = reviewer;
  review.date = date;
  review.body = std::move(body);
  reviews_.push_back(std::move(review));
  entity_reviews_[entity].push_back(id);
  if (reviewer >= 0) {
    if (static_cast<size_t>(reviewer) >= reviewer_counts_.size()) {
      reviewer_counts_.resize(reviewer + 1, 0);
    }
    ++reviewer_counts_[reviewer];
  }
  return id;
}

int32_t ReviewCorpus::reviewer_review_count(ReviewerId reviewer) const {
  if (reviewer < 0 ||
      static_cast<size_t>(reviewer) >= reviewer_counts_.size()) {
    return 0;
  }
  return reviewer_counts_[reviewer];
}

}  // namespace opinedb::text
