#ifndef OPINEDB_TEXT_TOKENIZER_H_
#define OPINEDB_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace opinedb::text {

/// Options controlling tokenization.
struct TokenizerOptions {
  /// Lower-case tokens (recommended; the whole pipeline is case-folded).
  bool lowercase = true;
  /// Drop tokens made purely of punctuation ("!!!" etc). Sentence-ending
  /// punctuation is still used by SplitSentences regardless.
  bool drop_punctuation = true;
  /// Keep intra-word apostrophes and hyphens ("don't", "well-decorated").
  bool keep_intraword = true;
};

/// A simple, deterministic word tokenizer for review text.
///
/// This is the foundation of the extraction and indexing substrates; it is
/// intentionally rule-based and fast (no locale machinery) because every
/// other module agrees on its output.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = TokenizerOptions())
      : options_(options) {}

  /// Splits `s` into word tokens.
  std::vector<std::string> Tokenize(std::string_view s) const;

  /// Splits `s` into sentences on '.', '!', '?' and newlines.
  static std::vector<std::string> SplitSentences(std::string_view s);

 private:
  TokenizerOptions options_;
};

/// Returns the standard English stopword set used across the library.
const std::vector<std::string>& Stopwords();

/// True if `token` (already lower-case) is a stopword.
bool IsStopword(std::string_view token);

/// Builds contiguous n-grams of size `n` joined by '_'.
/// E.g. {"very","clean","room"}, n=2 -> {"very_clean", "clean_room"}.
std::vector<std::string> NGrams(const std::vector<std::string>& tokens,
                                size_t n);

}  // namespace opinedb::text

#endif  // OPINEDB_TEXT_TOKENIZER_H_
