#ifndef OPINEDB_TEXT_VOCAB_H_
#define OPINEDB_TEXT_VOCAB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace opinedb::text {

/// Integer id assigned to a vocabulary word. kInvalidWordId means
/// "not in vocabulary".
using WordId = int32_t;
inline constexpr WordId kInvalidWordId = -1;

/// A bidirectional word <-> id mapping with corpus frequency counts.
///
/// Shared by the embedding trainer, the inverted index and the extractor
/// so that every module agrees on word identities.
class Vocab {
 public:
  /// Adds one observation of `word`, creating an id on first sight.
  WordId Add(std::string_view word);

  /// Adds `count` observations of `word`.
  WordId AddCount(std::string_view word, int64_t count);

  /// Returns the id of `word`, or kInvalidWordId.
  WordId Lookup(std::string_view word) const;

  /// Returns the word for `id`. `id` must be valid.
  const std::string& word(WordId id) const { return words_[id]; }

  /// Corpus frequency of `id`.
  int64_t count(WordId id) const { return counts_[id]; }

  /// Number of distinct words.
  size_t size() const { return words_.size(); }

  /// Sum of all counts (corpus token total).
  int64_t total_count() const { return total_count_; }

  /// Returns a copy with all words of count < min_count removed and ids
  /// re-assigned densely.
  Vocab Pruned(int64_t min_count) const;

 private:
  std::unordered_map<std::string, WordId> index_;
  std::vector<std::string> words_;
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
};

}  // namespace opinedb::text

#endif  // OPINEDB_TEXT_VOCAB_H_
