#include "core/serialize.h"

#include <limits>
#include <string>
#include <unordered_set>

namespace opinedb::core {

namespace {

constexpr char kSchemaMagic[] = "opinedb-schema";
constexpr char kSummariesMagic[] = "opinedb-summaries";
constexpr int kSchemaVersion = 1;
/// v2: every summary row is prefixed with its entity id, so duplicate
/// or missing rows are detectable instead of silently shifting every
/// later entity's summaries by one slot.
constexpr int kSummariesVersion = 2;

/// Plausibility bounds on deserialized sizes. A corrupt or truncated
/// stream must produce a ParseError, not a multi-gigabyte allocation:
/// every count below is read from untrusted bytes and used to size a
/// container, so each gets a ceiling far above anything a real file
/// contains (markers and phrases are short; embedding dims are small).
constexpr size_t kMaxStringLength = 1u << 20;     // 1 MiB per string.
constexpr size_t kMaxCentroidDim = 1u << 16;      // 65536 dims.
constexpr size_t kMaxProvenance = 1u << 26;       // 67M review ids.
constexpr size_t kMaxEntities = 1u << 26;         // 67M entities.

/// Netstring-style string encoding: "<length>:<bytes>" — robust to
/// spaces inside markers and phrases.
void WriteString(const std::string& s, std::ostream* out) {
  *out << s.size() << ':' << s;
}

Result<std::string> ReadString(std::istream* in) {
  size_t length = 0;
  char colon = 0;
  if (!(*in >> length) || !in->get(colon) || colon != ':') {
    return Status::ParseError("bad string header");
  }
  if (length > kMaxStringLength) {
    return Status::ParseError("implausible string length " +
                              std::to_string(length));
  }
  std::string s(length, '\0');
  if (!in->read(s.data(), static_cast<std::streamsize>(length))) {
    return Status::ParseError("truncated string");
  }
  return s;
}

}  // namespace

Status SaveSchema(const SubjectiveSchema& schema, std::ostream* out) {
  *out << kSchemaMagic << ' ' << kSchemaVersion << '\n';
  WriteString(schema.objective_table, out);
  *out << ' ';
  WriteString(schema.key_column, out);
  *out << '\n' << schema.attributes.size() << '\n';
  for (const auto& attribute : schema.attributes) {
    WriteString(attribute.name, out);
    *out << ' '
         << (attribute.summary_type.kind == SummaryKind::kLinearlyOrdered
                 ? 'L'
                 : 'C')
         << ' ' << attribute.summary_type.markers.size() << ' '
         << attribute.linguistic_domain.size() << ' '
         << attribute.seeds.aspect_terms.size() << ' '
         << attribute.seeds.opinion_terms.size() << '\n';
    for (const auto& marker : attribute.summary_type.markers) {
      WriteString(marker, out);
      *out << '\n';
    }
    for (const auto& phrase : attribute.linguistic_domain) {
      WriteString(phrase, out);
      *out << '\n';
    }
    for (const auto& seed : attribute.seeds.aspect_terms) {
      WriteString(seed, out);
      *out << '\n';
    }
    for (const auto& seed : attribute.seeds.opinion_terms) {
      WriteString(seed, out);
      *out << '\n';
    }
  }
  if (!out->good()) return Status::Internal("write failed");
  return Status::OK();
}

Result<SubjectiveSchema> LoadSchema(std::istream* in) {
  std::string magic;
  int version = 0;
  if (!(*in >> magic >> version) || magic != kSchemaMagic) {
    return Status::ParseError("not an opinedb schema file");
  }
  if (version != kSchemaVersion) {
    return Status::NotSupported("schema version " +
                                std::to_string(version));
  }
  SubjectiveSchema schema;
  auto table = ReadString(in);
  if (!table.ok()) return table.status();
  schema.objective_table = *table;
  in->get();  // Separator.
  auto key = ReadString(in);
  if (!key.ok()) return key.status();
  schema.key_column = *key;
  size_t num_attributes = 0;
  if (!(*in >> num_attributes)) {
    return Status::ParseError("bad attribute count");
  }
  std::unordered_set<std::string> seen_names;
  for (size_t a = 0; a < num_attributes; ++a) {
    SubjectiveAttribute attribute;
    auto name = ReadString(in);
    if (!name.ok()) return name.status();
    // Attribute names are the schema's keys (AttributeIndex resolves by
    // name); a duplicate would make every later lookup silently bind to
    // the first occurrence and shadow the second.
    if (!seen_names.insert(*name).second) {
      return Status::InvalidArgument("duplicate attribute \"" + *name +
                                     "\" in schema");
    }
    attribute.name = *name;
    attribute.summary_type.name = *name;
    char kind = 0;
    size_t markers = 0, domain = 0, aspects = 0, opinions = 0;
    if (!(*in >> kind >> markers >> domain >> aspects >> opinions)) {
      return Status::ParseError("bad attribute header: " + attribute.name);
    }
    attribute.summary_type.kind = kind == 'L'
                                      ? SummaryKind::kLinearlyOrdered
                                      : SummaryKind::kCategorical;
    auto read_many = [in](size_t n,
                          std::vector<std::string>* out) -> Status {
      for (size_t i = 0; i < n; ++i) {
        auto s = ReadString(in);
        if (!s.ok()) return s.status();
        out->push_back(*s);
      }
      return Status::OK();
    };
    Status status = read_many(markers, &attribute.summary_type.markers);
    if (!status.ok()) return status;
    status = read_many(domain, &attribute.linguistic_domain);
    if (!status.ok()) return status;
    status = read_many(aspects, &attribute.seeds.aspect_terms);
    if (!status.ok()) return status;
    status = read_many(opinions, &attribute.seeds.opinion_terms);
    if (!status.ok()) return status;
    schema.attributes.push_back(std::move(attribute));
  }
  return schema;
}

Status SaveSummaries(const SubjectiveTables& tables, std::ostream* out) {
  // Full double precision so reload is bit-exact.
  out->precision(std::numeric_limits<double>::max_digits10);
  *out << kSummariesMagic << ' ' << kSummariesVersion << '\n';
  *out << tables.summaries.size() << ' '
       << (tables.summaries.empty() ? 0 : tables.summaries[0].size())
       << '\n';
  for (const auto& per_entity : tables.summaries) {
    for (size_t entity = 0; entity < per_entity.size(); ++entity) {
      const auto& summary = per_entity[entity];
      // Each row names its entity (v2): the loader can then reject
      // duplicated or out-of-range rows instead of letting one slip
      // shift every later summary onto the wrong entity.
      *out << entity << ' ' << summary.num_markers() << ' '
           << summary.unmatched_count();
      const size_t dim =
          summary.num_markers() > 0 ? summary.cell(0).centroid.size() : 0;
      *out << ' ' << dim << '\n';
      for (size_t m = 0; m < summary.num_markers(); ++m) {
        const MarkerCell& cell = summary.cell(m);
        *out << cell.count << ' ' << cell.mean_sentiment;
        for (float x : cell.centroid) *out << ' ' << x;
        *out << ' ' << cell.provenance.size();
        for (auto review : cell.provenance) *out << ' ' << review;
        *out << '\n';
      }
    }
  }
  // End-of-stream sentinel: the numeric tail of a truncated text stream
  // would otherwise still parse (e.g. "123" cut to "12"); losing the
  // sentinel makes any truncation detectable.
  *out << "end\n";
  if (!out->good()) return Status::Internal("write failed");
  return Status::OK();
}

Result<SubjectiveTables> LoadSummaries(const SubjectiveSchema& schema,
                                       std::istream* in) {
  std::string magic;
  int version = 0;
  if (!(*in >> magic >> version) || magic != kSummariesMagic) {
    return Status::ParseError("not an opinedb summaries file");
  }
  if (version != kSummariesVersion) {
    return Status::NotSupported("summaries version " +
                                std::to_string(version));
  }
  size_t num_attributes = 0;
  size_t num_entities = 0;
  if (!(*in >> num_attributes >> num_entities)) {
    return Status::ParseError("bad summaries header");
  }
  if (num_attributes != schema.num_attributes()) {
    return Status::InvalidArgument(
        "schema has " + std::to_string(schema.num_attributes()) +
        " attributes, file has " + std::to_string(num_attributes));
  }
  // The loader preallocates per-entity slots; cap the count before a
  // corrupt header turns into a multi-gigabyte allocation.
  if (num_entities > kMaxEntities) {
    return Status::ParseError("implausible entity count " +
                              std::to_string(num_entities));
  }
  SubjectiveTables tables;
  tables.summaries.resize(num_attributes);
  for (size_t a = 0; a < num_attributes; ++a) {
    // Rows carry explicit entity ids; track which slots have been
    // filled so a duplicated row is an error, not a last-wins
    // overwrite (and, by pigeonhole over num_entities rows, a
    // duplicate is also the only way a slot could stay empty).
    std::vector<MarkerSummary> loaded(num_entities);
    std::vector<char> seen(num_entities, 0);
    for (size_t e = 0; e < num_entities; ++e) {
      size_t entity = 0;
      size_t markers = 0;
      double unmatched = 0.0;
      size_t dim = 0;
      if (!(*in >> entity >> markers >> unmatched >> dim)) {
        return Status::ParseError("bad summary header");
      }
      if (entity >= num_entities) {
        return Status::ParseError(
            "entity row " + std::to_string(entity) + " out of range in " +
            schema.attributes[a].name);
      }
      if (seen[entity]) {
        return Status::InvalidArgument(
            "duplicate entity row " + std::to_string(entity) + " in " +
            schema.attributes[a].name);
      }
      seen[entity] = 1;
      if (dim > kMaxCentroidDim) {
        return Status::ParseError("implausible centroid dimension " +
                                  std::to_string(dim));
      }
      if (markers != schema.attributes[a].summary_type.num_markers()) {
        return Status::InvalidArgument("marker count mismatch in " +
                                       schema.attributes[a].name);
      }
      MarkerSummary summary(&schema.attributes[a].summary_type, dim);
      for (size_t m = 0; m < markers; ++m) {
        MarkerCell cell;
        if (!(*in >> cell.count >> cell.mean_sentiment)) {
          return Status::ParseError("bad marker cell");
        }
        cell.centroid.resize(dim);
        for (size_t d = 0; d < dim; ++d) {
          if (!(*in >> cell.centroid[d])) {
            return Status::ParseError("bad centroid");
          }
        }
        size_t provenance = 0;
        if (!(*in >> provenance)) {
          return Status::ParseError("bad provenance count");
        }
        if (provenance > kMaxProvenance) {
          return Status::ParseError("implausible provenance count " +
                                    std::to_string(provenance));
        }
        cell.provenance.resize(provenance);
        for (size_t r = 0; r < provenance; ++r) {
          if (!(*in >> cell.provenance[r])) {
            return Status::ParseError("bad provenance entry");
          }
        }
        summary.RestoreCell(m, std::move(cell));
      }
      summary.SetUnmatchedCount(unmatched);
      loaded[entity] = std::move(summary);
    }
    tables.summaries[a] = std::move(loaded);
  }
  std::string sentinel;
  if (!(*in >> sentinel) || sentinel != "end") {
    return Status::ParseError("truncated summaries stream (missing sentinel)");
  }
  return tables;
}

}  // namespace opinedb::core
