#ifndef OPINEDB_CORE_QUERY_H_
#define OPINEDB_CORE_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fuzzy/logic.h"
#include "storage/table.h"

namespace opinedb::core {

/// One atomic condition of a subjective query: either an objective
/// column predicate or a natural-language subjective predicate.
struct Condition {
  enum class Kind { kObjective, kSubjective };
  Kind kind = Kind::kObjective;
  /// Set when kind == kObjective.
  storage::ColumnPredicate objective;
  /// Set when kind == kSubjective: the raw NL predicate, e.g.
  /// "has really clean rooms".
  std::string subjective;
};

/// A parsed subjective SQL query (single select-from-where block).
struct SubjectiveQuery {
  std::string table;
  /// Atomic conditions referenced by the expression's leaf indices.
  std::vector<Condition> conditions;
  /// Boolean structure over the conditions; null means "no where clause".
  fuzzy::Expr::Ptr where;
  /// LIMIT k (defaults to 10, the paper's top-10 evaluation cut-off).
  size_t limit = 10;
  /// True when the statement was prefixed with EXPLAIN: the engine plans
  /// the query and renders the plan instead of executing it.
  bool explain = false;
};

/// Parses the OpineDB dialect of SQL:
///
///   select * from Hotels
///   where price_pn < 150 and "has really clean rooms"
///     and ("is romantic" or style = 'modern') limit 10
///
/// Double-quoted strings in the WHERE clause are subjective predicates;
/// single-quoted strings are ordinary string literals. AND/OR/NOT and
/// parentheses are supported; keywords are case-insensitive. A statement
/// may be prefixed with EXPLAIN to request the query plan instead of
/// results (sets SubjectiveQuery::explain).
Result<SubjectiveQuery> ParseSubjectiveSql(const std::string& sql);

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_QUERY_H_
