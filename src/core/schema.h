#ifndef OPINEDB_CORE_SCHEMA_H_
#define OPINEDB_CORE_SCHEMA_H_

#include <string>
#include <vector>

#include "core/marker_summary.h"

namespace opinedb::core {

/// Seed phrases the schema designer provides for one subjective attribute
/// (Section 4.2): aspect terms E and opinion terms P.
struct AttributeSeeds {
  std::vector<std::string> aspect_terms;
  std::vector<std::string> opinion_terms;
};

/// A subjective attribute: its marker-summary type, its linguistic domain
/// (phrases gathered from extractions), and the designer-provided seeds.
struct SubjectiveAttribute {
  std::string name;
  MarkerSummaryType summary_type;
  /// The linguistic domain: phrases observed for this attribute. Grown by
  /// the aggregation pipeline; not enumerated in advance (Section 2).
  std::vector<std::string> linguistic_domain;
  AttributeSeeds seeds;
};

/// The user-visible schema of a subjective database (Section 2): a main
/// objective relation plus one subjective attribute per auxiliary
/// relation, all keyed by the entity.
struct SubjectiveSchema {
  /// Name of the main objective table in the storage catalog.
  std::string objective_table;
  /// Key column of the objective table (entity name).
  std::string key_column;
  std::vector<SubjectiveAttribute> attributes;

  int AttributeIndex(const std::string& name) const;
  size_t num_attributes() const { return attributes.size(); }
};

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_SCHEMA_H_
