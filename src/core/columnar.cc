#include "core/columnar.h"

#include <algorithm>
#include <cmath>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace opinedb::core {

namespace {

/// Cosine against a flattened float centroid with both norms supplied.
/// Reproduces embedding::Cosine exactly: same zero-vector guard, same
/// double-accumulated in-order dot product, same final division — the
/// norms were themselves computed by embedding::Norm, so every double
/// matches the row path's Cosine(query_rep, cell.centroid) bit for bit.
double CosineWithNorms(const float* a, double norm_a, const float* b,
                       double norm_b, size_t dim) {
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    sum += double(a[i]) * double(b[i]);
  }
  return sum / (norm_a * norm_b);
}

}  // namespace

size_t AttributeColumns::bytes() const {
  return count.allocated_bytes() + mean_sentiment.allocated_bytes() +
         centroid_norm.allocated_bytes() + centroid.allocated_bytes() +
         provenance_count.allocated_bytes() + total.allocated_bytes() +
         unmatched.allocated_bytes();
}

size_t AttributeColumns::scan_bytes_per_entity() const {
  // One atom reads, per entity: K counts, K sentiments, K norms, K
  // centroids and the two per-entity scalars. The provenance column is
  // not touched by scoring.
  return num_markers * (2 * sizeof(double) + sizeof(double) +
                        dim * sizeof(float)) +
         2 * sizeof(double);
}

ColumnarSummaryStore::ColumnarSummaryStore(const SubjectiveTables& tables,
                                           size_t num_entities,
                                           ThreadPool* pool)
    : num_entities_(num_entities) {
  obs::TraceSpan span("columnar.build");
  columns_.resize(tables.summaries.size());
  for (size_t a = 0; a < tables.summaries.size(); ++a) {
    const auto& summaries = tables.summaries[a];
    AttributeColumns& cols = columns_[a];
    cols.num_entities = summaries.size();
    if (summaries.empty()) continue;
    cols.num_markers = summaries[0].num_markers();
    const size_t k = cols.num_markers;
    if (k == 0) continue;
    cols.dim = summaries[0].cell(0).centroid.size();
    cols.count.Reset(cols.num_entities * k);
    cols.mean_sentiment.Reset(cols.num_entities * k);
    cols.centroid_norm.Reset(cols.num_entities * k);
    cols.centroid.Reset(cols.num_entities * k * cols.dim);
    cols.provenance_count.Reset(cols.num_entities * k);
    cols.total.Reset(cols.num_entities);
    cols.unmatched.Reset(cols.num_entities);
    auto fill_range = [&](size_t begin, size_t end) {
      for (size_t e = begin; e < end; ++e) {
        const MarkerSummary& summary = summaries[e];
        const size_t base = e * k;
        // total_count() is the same in-order sum the row path performs
        // per featurization; freezing it here keeps the columnar f[0]
        // and the count/total fractions bit-identical.
        cols.total[e] = summary.total_count();
        cols.unmatched[e] = summary.unmatched_count();
        for (size_t m = 0; m < k && m < summary.num_markers(); ++m) {
          const MarkerCell& cell = summary.cell(m);
          cols.count[base + m] = cell.count;
          cols.mean_sentiment[base + m] = cell.mean_sentiment;
          cols.centroid_norm[base + m] = embedding::Norm(cell.centroid);
          cols.provenance_count[base + m] =
              static_cast<uint32_t>(cell.provenance.size());
          const size_t copy =
              std::min(cols.dim, cell.centroid.size());
          std::copy_n(cell.centroid.data(), copy,
                      cols.centroid.data() + (base + m) * cols.dim);
        }
      }
    };
    // Each entity writes only its own slots, so the parallel fill is
    // equivalent to serial.
    if (pool != nullptr) {
      pool->ParallelFor(0, cols.num_entities, fill_range, /*min_grain=*/64);
    } else {
      fill_range(0, cols.num_entities);
    }
  }
  span.AddAttribute("attributes", static_cast<uint64_t>(columns_.size()));
  span.AddAttribute("entities", static_cast<uint64_t>(num_entities_));
  span.AddAttribute("bytes", static_cast<uint64_t>(bytes()));
  OPINEDB_METRIC_GAUGE_SET("columnar.bytes", static_cast<double>(bytes()));
}

void ColumnarSummaryStore::UpdateEntities(
    const SubjectiveTables& tables,
    const std::vector<text::EntityId>& touched) {
  obs::TraceSpan span("columnar.delta_update");
  for (size_t a = 0; a < columns_.size() && a < tables.summaries.size();
       ++a) {
    const auto& summaries = tables.summaries[a];
    AttributeColumns& cols = columns_[a];
    const size_t k = cols.num_markers;
    if (k == 0) continue;
    for (const text::EntityId id : touched) {
      if (id < 0) continue;
      const size_t e = static_cast<size_t>(id);
      if (e >= cols.num_entities || e >= summaries.size()) continue;
      const MarkerSummary& summary = summaries[e];
      const size_t base = e * k;
      // The constructor's fill, verbatim, for one entity — the patched
      // row is what a full rebuild would have produced.
      cols.total[e] = summary.total_count();
      cols.unmatched[e] = summary.unmatched_count();
      for (size_t m = 0; m < k && m < summary.num_markers(); ++m) {
        const MarkerCell& cell = summary.cell(m);
        cols.count[base + m] = cell.count;
        cols.mean_sentiment[base + m] = cell.mean_sentiment;
        cols.centroid_norm[base + m] = embedding::Norm(cell.centroid);
        cols.provenance_count[base + m] =
            static_cast<uint32_t>(cell.provenance.size());
        const size_t copy = std::min(cols.dim, cell.centroid.size());
        std::copy_n(cell.centroid.data(), copy,
                    cols.centroid.data() + (base + m) * cols.dim);
      }
    }
  }
  span.AddAttribute("entities", static_cast<uint64_t>(touched.size()));
  OPINEDB_METRIC_COUNT("columnar.delta_updates", 1);
}

size_t ColumnarSummaryStore::bytes() const {
  size_t total = 0;
  for (const auto& cols : columns_) total += cols.bytes();
  return total;
}

ConditionScorer::ConditionScorer(const ColumnarSummaryStore& store,
                                 const PredicateInterpretation& interpretation,
                                 const embedding::Vec& query_rep,
                                 double query_sentiment,
                                 fuzzy::Variant variant,
                                 const MembershipModel* model)
    : query_rep_(&query_rep),
      query_sentiment_(query_sentiment),
      variant_(variant),
      model_(model),
      conjunctive_(interpretation.conjunctive) {
  if (interpretation.atoms.empty()) return;
  atoms_.reserve(interpretation.atoms.size());
  for (const auto& atom : interpretation.atoms) {
    if (atom.attribute < 0 ||
        static_cast<size_t>(atom.attribute) >= store.num_attributes()) {
      return;  // Unbindable atom: ok_ stays false, caller uses rows.
    }
    const AttributeColumns& cols =
        store.attribute(static_cast<size_t>(atom.attribute));
    // MembershipFeatures clamps the marker at zero; mirror that here so
    // a -1 marker binds to cell 0 exactly like the row path.
    const size_t marker = static_cast<size_t>(std::max(0, atom.marker));
    if (cols.num_markers == 0 || marker >= cols.num_markers ||
        cols.num_entities != store.num_entities() ||
        cols.dim != query_rep.size()) {
      return;
    }
    atoms_.push_back(BoundAtom{&cols, marker});
  }
  // Same value Cosine recomputes per row-path call: Norm(query_rep).
  query_norm_ = embedding::Norm(query_rep);
  ok_ = true;
}

double ConditionScorer::AtomDegree(size_t atom_index, size_t entity) const {
  // Site order matches the row path: the engine fires score.features
  // before featurizing, and MembershipFeatures counts itself first.
  OPINEDB_FAULT("score.features");
  OPINEDB_METRIC_COUNT("membership.marker_featurizations", 1);
  const BoundAtom& atom = atoms_[atom_index];
  const AttributeColumns& cols = *atom.columns;
  double f[kMembershipFeatureDim] = {0.0};
  const double total = cols.total[entity];
  f[0] = std::log1p(total);
  if (total <= 0.0) {
    f[9] = 1.0;  // Empty-summary indicator.
  } else {
    const size_t k = cols.num_markers;
    const size_t base = entity * k;
    const size_t m = atom.marker;
    f[1] = cols.count[base + m] / total;
    const float* centroids = cols.centroid.data() + base * cols.dim;
    double weighted_sentiment = 0.0;
    double weighted_similarity = 0.0;
    double mass_at_or_above = 0.0;
    double target_cosine = 0.0;
    for (size_t j = 0; j < k; ++j) {
      const double frac = cols.count[base + j] / total;
      weighted_sentiment += frac * cols.mean_sentiment[base + j];
      const double cosine = CosineWithNorms(
          query_rep_->data(), query_norm_, centroids + j * cols.dim,
          cols.centroid_norm[base + j], cols.dim);
      weighted_similarity += frac * cosine;
      if (j <= m) mass_at_or_above += frac;
      // The row path recomputes Cosine(query, target) for f[5]; the
      // deterministic recomputation equals the j == m loop value, so
      // reusing it here changes no bits.
      if (j == m) target_cosine = cosine;
    }
    f[2] = mass_at_or_above;
    f[3] = weighted_sentiment;
    f[4] = cols.mean_sentiment[base + m];
    f[5] = target_cosine;
    f[6] = weighted_similarity;
    f[7] = cols.unmatched[entity] / (total + cols.unmatched[entity]);
    f[8] = 1.0 - std::abs(query_sentiment_ - weighted_sentiment) / 2.0;
    f[9] = 0.0;
  }
  const double d =
      model_ != nullptr
          ? model_->DegreeOfTruth(f, kMembershipFeatureDim)
          : HeuristicMembershipDegree(f, kMembershipFeatureDim);
  if (!std::isfinite(d)) return 0.0;
  return std::clamp(d, 0.0, 1.0);
}

double ConditionScorer::Score(size_t entity) const {
  double acc = 0.0;
  bool first = true;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    const double d = AtomDegree(i, entity);
    if (first) {
      acc = d;
      first = false;
    } else if (conjunctive_) {
      acc = fuzzy::And(variant_, acc, d);
    } else {
      acc = fuzzy::Or(variant_, acc, d);
    }
  }
  return acc;
}

size_t ConditionScorer::scan_bytes_per_entity() const {
  size_t bytes = 0;
  for (const auto& atom : atoms_) {
    bytes += atom.columns->scan_bytes_per_entity();
  }
  return bytes;
}

ColumnarTable::ColumnarTable(const storage::Table& table)
    : name_(table.name()), num_rows_(table.num_rows()) {
  columns_.resize(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    Column& col = columns_[c];
    col.type = table.columns()[c].type;
    col.is_null.Reset(num_rows_);
    switch (col.type) {
      case storage::ValueType::kInt:
      case storage::ValueType::kDouble: {
        col.num.Reset(num_rows_);
        for (size_t r = 0; r < num_rows_; ++r) {
          const storage::Value& cell = table.at(r, c);
          if (cell.is_null()) {
            col.is_null[r] = 1;
          } else {
            // Same widening Value::Compare applies via AsNumber.
            col.num[r] = cell.AsNumber();
          }
        }
        break;
      }
      case storage::ValueType::kString: {
        col.code.Reset(num_rows_);
        for (size_t r = 0; r < num_rows_; ++r) {
          const storage::Value& cell = table.at(r, c);
          if (cell.is_null()) {
            col.is_null[r] = 1;
          } else {
            col.dict.push_back(cell.AsString());
          }
        }
        std::sort(col.dict.begin(), col.dict.end());
        col.dict.erase(std::unique(col.dict.begin(), col.dict.end()),
                       col.dict.end());
        for (size_t r = 0; r < num_rows_; ++r) {
          const storage::Value& cell = table.at(r, c);
          if (cell.is_null()) continue;
          col.code[r] = static_cast<int32_t>(
              std::lower_bound(col.dict.begin(), col.dict.end(),
                               cell.AsString()) -
              col.dict.begin());
        }
        break;
      }
      case storage::ValueType::kNull:
        // A kNull-typed column only ever holds nulls; the null bitmap
        // alone decides every predicate (to false).
        for (size_t r = 0; r < num_rows_; ++r) col.is_null[r] = 1;
        break;
    }
  }
}

size_t ColumnarTable::bytes() const {
  size_t total = 0;
  for (const auto& col : columns_) {
    total += col.is_null.allocated_bytes() + col.num.allocated_bytes() +
             col.code.allocated_bytes();
    for (const auto& s : col.dict) total += s.size();
  }
  return total;
}

std::optional<ColumnarTable::CompiledPredicate> ColumnarTable::Compile(
    const storage::BoundColumnPredicate& predicate) const {
  if (predicate.column() >= columns_.size()) return std::nullopt;
  const Column& col = columns_[predicate.column()];
  const storage::Value& literal = predicate.literal();
  CompiledPredicate compiled;
  compiled.is_null = col.is_null.data();
  // Operator → accepted signs of cell.Compare(literal), exactly as
  // BoundColumnPredicate::Matches maps them.
  switch (predicate.op()) {
    case storage::CompareOp::kEq:
      compiled.accept[1] = true;
      break;
    case storage::CompareOp::kNe:
      compiled.accept[0] = compiled.accept[2] = true;
      break;
    case storage::CompareOp::kLt:
      compiled.accept[0] = true;
      break;
    case storage::CompareOp::kLe:
      compiled.accept[0] = compiled.accept[1] = true;
      break;
    case storage::CompareOp::kGt:
      compiled.accept[2] = true;
      break;
    case storage::CompareOp::kGe:
      compiled.accept[1] = compiled.accept[2] = true;
      break;
  }
  const storage::ValueType lit_type = literal.type();
  const bool lit_numeric = lit_type == storage::ValueType::kInt ||
                           lit_type == storage::ValueType::kDouble;
  switch (col.type) {
    case storage::ValueType::kInt:
    case storage::ValueType::kDouble:
      if (lit_numeric) {
        compiled.cmp_kind = CompiledPredicate::CmpKind::kNumeric;
        compiled.num = col.num.data();
        compiled.num_literal = literal.AsNumber();
      } else if (lit_type == storage::ValueType::kString) {
        // Value::Compare orders numbers before strings: constant -1.
        compiled.cmp_kind = CompiledPredicate::CmpKind::kConstant;
        compiled.constant_cmp = -1;
      } else {
        // Non-null cell vs null literal: constant 1.
        compiled.cmp_kind = CompiledPredicate::CmpKind::kConstant;
        compiled.constant_cmp = 1;
      }
      break;
    case storage::ValueType::kString:
      if (lit_type == storage::ValueType::kString) {
        compiled.cmp_kind = CompiledPredicate::CmpKind::kStringRank;
        compiled.code = col.code.data();
        const auto it = std::lower_bound(col.dict.begin(), col.dict.end(),
                                         literal.AsString());
        compiled.rank =
            static_cast<int32_t>(it - col.dict.begin());
        compiled.rank_exact =
            it != col.dict.end() && *it == literal.AsString();
      } else if (lit_numeric) {
        // String cell vs number literal: constant 1 (numbers first).
        compiled.cmp_kind = CompiledPredicate::CmpKind::kConstant;
        compiled.constant_cmp = 1;
      } else {
        compiled.cmp_kind = CompiledPredicate::CmpKind::kConstant;
        compiled.constant_cmp = 1;
      }
      break;
    case storage::ValueType::kNull:
      // All cells null — the null bitmap already rejects every row.
      compiled.cmp_kind = CompiledPredicate::CmpKind::kConstant;
      compiled.constant_cmp = 0;
      break;
  }
  return compiled;
}

void ColumnarTable::FilterInto(const CompiledPredicate& predicate,
                               std::vector<uint8_t>* match) const {
  uint8_t* out = match->data();
  const size_t n = std::min(match->size(), num_rows_);
  // Branch on the comparison kind once, then run a tight sweep.
  switch (predicate.cmp_kind) {
    case CompiledPredicate::CmpKind::kNumeric: {
      const double lit = predicate.num_literal;
      const double* num = predicate.num;
      const uint8_t* is_null = predicate.is_null;
      for (size_t r = 0; r < n; ++r) {
        const double x = num[r];
        const int cmp = x < lit ? -1 : (x > lit ? 1 : 0);
        out[r] = static_cast<uint8_t>(
            out[r] & static_cast<uint8_t>(is_null[r] == 0) &
            static_cast<uint8_t>(predicate.accept[cmp + 1]));
      }
      break;
    }
    case CompiledPredicate::CmpKind::kStringRank: {
      const int32_t rank = predicate.rank;
      const bool exact = predicate.rank_exact;
      const int32_t* code = predicate.code;
      const uint8_t* is_null = predicate.is_null;
      for (size_t r = 0; r < n; ++r) {
        const int32_t c = code[r];
        const int cmp =
            exact ? (c < rank ? -1 : (c > rank ? 1 : 0))
                  : (c < rank ? -1 : 1);
        out[r] = static_cast<uint8_t>(
            out[r] & static_cast<uint8_t>(is_null[r] == 0) &
            static_cast<uint8_t>(predicate.accept[cmp + 1]));
      }
      break;
    }
    case CompiledPredicate::CmpKind::kConstant: {
      const uint8_t pass =
          static_cast<uint8_t>(predicate.accept[predicate.constant_cmp + 1]);
      const uint8_t* is_null = predicate.is_null;
      for (size_t r = 0; r < n; ++r) {
        out[r] = static_cast<uint8_t>(
            out[r] & static_cast<uint8_t>(is_null[r] == 0) & pass);
      }
      break;
    }
  }
}

}  // namespace opinedb::core
