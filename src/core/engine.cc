#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <mutex>
#include <sstream>

#include "cache/interpretation_cache.h"
#include "cache/result_cache.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/columnar.h"
#include "core/degree_cache.h"
#include "core/exec_ops.h"
#include "core/marker_induction.h"
#include "core/serialize.h"
#include "obs/metrics.h"
#include "storage/snapshot_store.h"
#include "text/tokenizer.h"

namespace opinedb::core {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Section names inside a database snapshot container.
constexpr char kSchemaSection[] = "schema";
constexpr char kSummariesSection[] = "summaries";
constexpr char kInterpCacheSection[] = "interp_cache";

// ------------------------------------------------ WAL batch payloads.
// The engine's encoding of one AppendReviews batch into one opaque WAL
// record: u32 review count, then per review u32 entity | u32 reviewer |
// u32 date | u64 body length | body bytes. Little-endian, byte-encoded
// (same no-punning doctrine as storage/wal.cc). Review ids are NOT
// encoded — replay re-assigns them by append order, which reproduces
// the live assignment exactly.

void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool ReadU32(const std::string& in, size_t* pos, uint32_t* out) {
  if (in.size() - *pos < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[*pos + i]))
         << (8 * i);
  }
  *pos += 4;
  *out = v;
  return true;
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* out) {
  if (in.size() - *pos < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  *out = v;
  return true;
}

std::string EncodeReviewBatch(const std::vector<text::Review>& reviews) {
  std::string out;
  AppendU32(static_cast<uint32_t>(reviews.size()), &out);
  for (const auto& review : reviews) {
    AppendU32(static_cast<uint32_t>(review.entity), &out);
    AppendU32(static_cast<uint32_t>(review.reviewer), &out);
    AppendU32(static_cast<uint32_t>(review.date), &out);
    AppendU64(review.body.size(), &out);
    out.append(review.body);
  }
  return out;
}

Result<std::vector<text::Review>> DecodeReviewBatch(
    const std::string& payload) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadU32(payload, &pos, &count)) {
    return Status::ParseError("WAL batch: truncated count");
  }
  // The record passed its CRC, so a decode failure here means an
  // encoder/decoder skew, not disk corruption — still an error, never
  // a partial apply.
  std::vector<text::Review> reviews;
  reviews.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t entity = 0, reviewer = 0, date = 0;
    uint64_t body_len = 0;
    if (!ReadU32(payload, &pos, &entity) ||
        !ReadU32(payload, &pos, &reviewer) ||
        !ReadU32(payload, &pos, &date) ||
        !ReadU64(payload, &pos, &body_len) ||
        payload.size() - pos < body_len) {
      return Status::ParseError("WAL batch: truncated review " +
                                std::to_string(i));
    }
    text::Review review;
    review.entity = static_cast<text::EntityId>(entity);
    review.reviewer = static_cast<text::ReviewerId>(reviewer);
    review.date = static_cast<int32_t>(date);
    review.body = payload.substr(pos, body_len);
    pos += body_len;
    reviews.push_back(std::move(review));
  }
  if (pos != payload.size()) {
    return Status::ParseError("WAL batch: trailing bytes");
  }
  return reviews;
}

/// The uniform rejection every mutating entry point returns while the
/// engine is in follower mode (SetReadOnly(true)).
Status ReadOnlyError(const char* op) {
  return Status::FailedPrecondition(
      std::string(op) +
      " rejected: engine is read-only (replication follower); state "
      "changes arrive only through the replication client — Promote() "
      "to accept writes");
}

}  // namespace

OpineDb::~OpineDb() = default;

std::unique_ptr<OpineDb> OpineDb::Build(
    text::ReviewCorpus corpus, SubjectiveSchema schema,
    const extract::ExtractionPipeline& pipeline, EngineOptions options) {
  std::unique_ptr<OpineDb> owned(new OpineDb());
  OpineDb& db = *owned;
  db.corpus_ = std::move(corpus);
  db.schema_ = std::move(schema);
  db.options_ = options;
  if (options.trace_level >= obs::TraceLevel::kStats) {
    // Only ever *enable* here: another engine in the process may have
    // turned metrics on already. SetTraceLevel sets both directions.
    obs::SetMetricsEnabled(true);
  }
  if (ThreadPool::ResolveThreads(options.num_threads) > 1) {
    db.pool_ = std::make_unique<ThreadPool>(options.num_threads);
  }
  if (options.cache.enable_interpretation) {
    db.interp_cache_ = std::make_unique<cache::InterpretationCache>(
        options.cache.interp_cache_shards);
  }
  if (options.cache.enable_results) {
    db.result_cache_ = std::make_unique<cache::ResultCache>(
        options.cache.result_cache_bytes, options.cache.result_cache_shards);
  }

  // 1. Tokenize reviews; build the review index (one document per
  //    review), the entity index (all reviews of an entity concatenated,
  //    as in the GZ12 text-retrieval method) and the sentiment scores.
  text::Tokenizer tokenizer;
  std::vector<std::vector<std::string>> sentences;
  std::vector<std::vector<std::string>> entity_docs(
      db.corpus_.num_entities());
  db.review_sentiment_.reserve(db.corpus_.num_reviews());
  for (const auto& review : db.corpus_.reviews()) {
    for (const auto& sentence :
         text::Tokenizer::SplitSentences(review.body)) {
      sentences.push_back(tokenizer.Tokenize(sentence));
    }
    auto tokens = tokenizer.Tokenize(review.body);
    auto& doc = entity_docs[review.entity];
    doc.insert(doc.end(), tokens.begin(), tokens.end());
    db.review_index_.AddDocument(tokens);
    // Shift sentiment into (0, 1]-ish so BM25*senti keeps mild negatives
    // ranked below mild positives without zeroing everything.
    db.review_sentiment_.push_back(
        std::max(0.0, db.analyzer_.ScoreDocument(review.body)) + 0.05);
  }
  for (auto& doc : entity_docs) {
    db.entity_index_.AddDocument(doc);
  }

  // 2. Train corpus embeddings and the phrase embedder.
  db.embeddings_ = embedding::WordEmbeddings::TrainSgns(sentences,
                                                        options.w2v);
  const index::InvertedIndex* review_index = &db.review_index_;
  db.embedder_ = std::make_unique<embedding::PhraseEmbedder>(
      &db.embeddings_,
      [review_index](std::string_view token) {
        return review_index->Idf(token) + 0.1;
      });

  // 3. Attribute classifier from schema seeds (with w2v expansion).
  db.classifier_ = AttributeClassifier::Train(db.schema_, db.embeddings_,
                                              options.seed_expansions);

  // 4. Extraction (reviews fan out across the pool).
  auto extractions = pipeline.ExtractFromCorpus(db.corpus_, db.pool_.get());

  // 5. Populate linguistic domains and induce markers where the designer
  //    left them unspecified.
  {
    std::vector<std::vector<std::string>> domains(
        db.schema_.num_attributes());
    for (const auto& opinion : extractions) {
      const int a = db.classifier_.Classify(opinion.aspect, opinion.opinion);
      if (a >= 0 && static_cast<size_t>(a) < domains.size()) {
        domains[a].push_back(opinion.phrase);
      }
    }
    for (size_t a = 0; a < db.schema_.num_attributes(); ++a) {
      auto& attribute = db.schema_.attributes[a];
      // Deduplicate the linguistic domain.
      std::sort(domains[a].begin(), domains[a].end());
      domains[a].erase(std::unique(domains[a].begin(), domains[a].end()),
                       domains[a].end());
      attribute.linguistic_domain = domains[a];
      if (attribute.summary_type.markers.empty()) {
        if (attribute.summary_type.kind == SummaryKind::kLinearlyOrdered) {
          attribute.summary_type = InduceLinearMarkers(
              attribute.name, attribute.linguistic_domain,
              options.induced_markers, db.analyzer_);
        } else {
          attribute.summary_type = InduceCategoricalMarkers(
              attribute.name, attribute.linguistic_domain,
              options.induced_markers, *db.embedder_);
        }
      }
    }
  }

  // 6. Aggregate extractions onto marker summaries.
  db.aggregator_ = std::make_unique<Aggregator>(
      &db.schema_, &db.classifier_, db.embedder_.get(), &db.analyzer_);
  db.tables_ = db.aggregator_->Build(db.corpus_, std::move(extractions),
                                     options.aggregation, db.pool_.get());
  // Retain the trained pipeline so AppendReviews can extract from new
  // reviews identically, and record that the relation just built IS the
  // source of the summaries (the Reaggregate precondition).
  db.pipeline_ = pipeline;
  db.extractions_authoritative_ = true;

  db.RebuildDerivedState();
  return owned;
}

void OpineDb::RebuildDerivedState() {
  // Per-(attribute, entity) extraction lists (the no-marker scan path).
  extraction_lists_.assign(
      schema_.num_attributes(),
      std::vector<std::vector<const extract::ExtractedOpinion*>>(
          corpus_.num_entities()));
  for (size_t i = 0; i < tables_.extractions.size(); ++i) {
    const int a = tables_.extraction_attribute[i];
    if (a < 0) continue;
    const auto& opinion = tables_.extractions[i];
    extraction_lists_[a][opinion.entity].push_back(&opinion);
  }
  interpreter_ = std::make_unique<Interpreter>(
      &schema_, &tables_, embedder_.get(), &review_index_,
      &review_sentiment_, options_.interpreter);
  // The columnar mirror shadows tables_.summaries; every caller of this
  // function holds the exclusive reconfiguration lock (or is Build,
  // before the engine is shared), so mirror and rows swap atomically
  // with respect to queries.
  if (options_.columnar) {
    columnar_ = std::make_unique<ColumnarSummaryStore>(
        tables_, corpus_.num_entities(), pool_.get());
  } else {
    columnar_.reset();
  }
}

Status OpineDb::SetObjectiveTable(storage::Table table) {
  if (table.num_rows() != corpus_.num_entities()) {
    return Status::InvalidArgument(
        "objective table must have one row per entity (" +
        std::to_string(corpus_.num_entities()) + " expected, got " +
        std::to_string(table.num_rows()) + ")");
  }
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  objective_table_ = table.name();
  Status status = catalog_.AddTable(std::move(table));
  if (!status.ok()) return status;
  // Mirror the objective rows into columns once; predicates sweep the
  // mirror from then on. Kept even while the columnar plane is toggled
  // off — the objective_columns() accessor gates on options_.columnar.
  auto stored = catalog_.GetTable(objective_table_);
  if (stored.ok()) {
    objective_columns_ = std::make_unique<ColumnarTable>(**stored);
  }
  return Status::OK();
}

const ColumnarTable* OpineDb::objective_columns(
    const storage::Table& table) const {
  if (!options_.columnar || objective_columns_ == nullptr) return nullptr;
  if (objective_columns_->table_name() != table.name() ||
      objective_columns_->num_rows() != table.num_rows()) {
    return nullptr;  // Stale mirror (table mutated behind the catalog).
  }
  return objective_columns_.get();
}

Status OpineDb::InstallSummaries(
    std::vector<std::vector<MarkerSummary>> summaries) {
  if (summaries.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "InstallSummaries: got " + std::to_string(summaries.size()) +
        " attributes, engine has " +
        std::to_string(schema_.num_attributes()));
  }
  for (size_t a = 0; a < summaries.size(); ++a) {
    if (summaries[a].size() != corpus_.num_entities()) {
      return Status::InvalidArgument(
          "InstallSummaries: attribute " + std::to_string(a) + " covers " +
          std::to_string(summaries[a].size()) + " entities, corpus has " +
          std::to_string(corpus_.num_entities()));
    }
  }
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  if (read_only_) return ReadOnlyError("InstallSummaries");
  tables_.summaries = std::move(summaries);
  // The extraction relation described the replaced summaries' sources;
  // same post-state as OpenDatabase (summaries only, re-derivable rest).
  tables_.extractions.clear();
  tables_.extraction_attribute.clear();
  tables_.extraction_marker.clear();
  tables_.extraction_margin.clear();
  extractions_authoritative_ = false;
  RebuildDerivedState();
  InvalidateCachesLocked();
  return Status::OK();
}

void OpineDb::SetColumnar(bool enabled) {
  if (!enabled) {
    std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
    options_.columnar = false;
    columnar_.reset();
    return;
  }
  // Enabling builds a full SoA mirror — seconds at the 1M-entity scale.
  // Doing that under the exclusive lock would stall every query behind
  // the build (and, with writers preferred, behind the lock request
  // itself). Instead: build against a stable shared-lock view, then
  // swap under the exclusive lock iff no data mutation landed in
  // between (every mutation bumps the cache epoch under the exclusive
  // lock, so an equal epoch proves the mirror still describes tables_).
  for (;;) {
    std::unique_ptr<ColumnarSummaryStore> store;
    uint64_t built_at_epoch = 0;
    {
      std::shared_lock<std::shared_mutex> lock(reconfig_mu_);
      if (options_.columnar && columnar_ != nullptr) return;
      built_at_epoch = cache_epoch_.load(std::memory_order_relaxed);
      store = std::make_unique<ColumnarSummaryStore>(
          tables_, corpus_.num_entities(), pool_.get());
    }
    std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
    if (options_.columnar && columnar_ != nullptr) return;
    if (cache_epoch_.load(std::memory_order_relaxed) != built_at_epoch) {
      continue;  // Data moved under the build; the mirror is stale.
    }
    options_.columnar = true;
    columnar_ = std::move(store);
    return;
  }
  // No InvalidateCachesLocked(): both planes emit bit-identical degrees,
  // so every cached artifact stays valid — execution config, not data.
}

Status OpineDb::TrainMembership(
    const std::vector<MembershipModel::LabeledTuple>& tuples,
    uint64_t seed) {
  for (size_t i = 0; i < tuples.size(); ++i) {
    Status valid = ValidateFeatureVector(tuples[i].features);
    if (!valid.ok()) {
      return Status::InvalidArgument("labeled tuple " + std::to_string(i) +
                                     ": " + valid.message());
    }
  }
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  if (read_only_) return ReadOnlyError("TrainMembership");
  membership_ = MembershipModel::Train(tuples, seed);
  // A new membership model changes every degree of truth the engine
  // emits: cached results, interpretations-with-degrees and degree
  // lists all describe the old model. (The degree-cache clear here is a
  // bugfix — TrainMembership previously left stale lists resident.)
  InvalidateCachesLocked();
  return Status::OK();
}

void OpineDb::InvalidateCachesLocked() {
  const uint64_t epoch =
      cache_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (result_cache_ != nullptr) result_cache_->Clear();
  if (interp_cache_ != nullptr) interp_cache_->Clear();
  if (degree_cache_ != nullptr) {
    // The exclusive reconfiguration lock provides the external
    // synchronization Clear() demands (no concurrent readers, no
    // outstanding references).
    degree_cache_->Clear();
    OPINEDB_METRIC_GAUGE_SET("engine.cache_epoch",
                             static_cast<double>(degree_cache_->epoch()));
  }
  // Wholesale mutation: every entity's served data changed.
  entity_data_epoch_.assign(corpus_.num_entities(), epoch);
  OPINEDB_METRIC_GAUGE_SET("engine.cache.epoch", static_cast<double>(epoch));
}

uint64_t OpineDb::entity_data_epoch(text::EntityId entity) const {
  std::shared_lock<std::shared_mutex> lock(reconfig_mu_);
  if (entity < 0 ||
      static_cast<size_t>(entity) >= entity_data_epoch_.size()) {
    return 0;
  }
  return entity_data_epoch_[static_cast<size_t>(entity)];
}

void OpineDb::ConfigureCaches(const cache::CacheConfig& config) {
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  options_.cache = config;
  if (config.enable_interpretation) {
    // Keep a live layer (and its warm entries) unless the striping
    // width changed — that is a constructor parameter, so honoring it
    // means rebuilding the layer empty.
    if (interp_cache_ == nullptr ||
        interp_cache_->num_shards() !=
            std::max<size_t>(1, config.interp_cache_shards)) {
      interp_cache_ = std::make_unique<cache::InterpretationCache>(
          config.interp_cache_shards);
    }
  } else {
    interp_cache_.reset();
  }
  if (config.enable_results) {
    // Always rebuilt: the byte budget is a constructor parameter, and a
    // fresh empty cache is cheap next to any real serving mix.
    result_cache_ = std::make_unique<cache::ResultCache>(
        config.result_cache_bytes, config.result_cache_shards);
  } else {
    result_cache_.reset();
  }
}

Status OpineDb::Reaggregate(const AggregationOptions& aggregation) {
  // Exclusive: in-flight queries hold reconfig_mu_ shared for their
  // whole run, so nothing reads tables_/interpreter_ mid-rebuild.
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  if (read_only_) return ReadOnlyError("Reaggregate");
  if (!extractions_authoritative_) {
    // After InstallSummaries/OpenDatabase the extraction relation is
    // empty (or describes older data): rebuilding summaries from it
    // would silently replace the installed data with nothing.
    return Status::FailedPrecondition(
        "Reaggregate rebuilds summaries from the extraction relation, "
        "but this engine's relation is not the source of its served "
        "summaries (InstallSummaries/OpenDatabase replaced them) — "
        "re-extract via Build instead");
  }
  options_.aggregation = aggregation;
  auto extractions = std::move(tables_.extractions);
  tables_ = aggregator_->Build(corpus_, std::move(extractions), aggregation,
                               pool_.get());
  RebuildDerivedState();
  // Every cached artifact (results, interpretations, degree lists) was
  // computed against the old summaries; serving any of them now would
  // silently ignore the re-aggregation.
  InvalidateCachesLocked();
  return Status::OK();
}

void OpineDb::SetNumThreads(size_t num_threads) {
  // Exclusive: ExecuteQuery snapshots pool_.get() for the duration of a
  // query; swapping the pool under it would be a use-after-free. The
  // lock waits for running queries to drain first.
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  options_.num_threads = num_threads;
  if (ThreadPool::ResolveThreads(num_threads) > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads);
  } else {
    pool_.reset();
  }
}

void OpineDb::SetTraceLevel(obs::TraceLevel level) {
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  options_.trace_level = level;
  obs::SetMetricsEnabled(level >= obs::TraceLevel::kStats);
}

void OpineDb::AttachDegreeCache(DegreeCache* cache) {
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  degree_cache_ = cache;
}

Status OpineDb::SaveDatabase(const std::string& dir) const {
  // Exclusive: the schema/summaries pair written below is a consistent
  // cut — Reaggregate cannot swap tables_ between the two serializations
  // and no query reads state mid-save.
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  if (read_only_) return ReadOnlyError("SaveDatabase");
  if (wal_.has_value()) {
    // An out-of-band save advances snapshot_generation_ away from the
    // active segment's base: later appends would journal into a segment
    // recovery no longer replays. Checkpoint() rotates the segment in
    // the same critical section as the save.
    return Status::FailedPrecondition(
        "SaveDatabase while a WAL is enabled would orphan the active "
        "segment; use Checkpoint()");
  }
  return SaveDatabaseLocked(dir);
}

Status OpineDb::SaveDatabaseLocked(const std::string& dir) const {
  Timer timer;
  std::ostringstream schema_bytes;
  Status status = SaveSchema(schema_, &schema_bytes);
  if (!status.ok()) return status;
  std::ostringstream summaries_bytes;
  status = SaveSummaries(tables_, &summaries_bytes);
  if (!status.ok()) return status;

  std::vector<storage::SnapshotSection> sections(2);
  sections[0].name = kSchemaSection;
  sections[0].payload = std::move(schema_bytes).str();
  sections[1].name = kSummariesSection;
  sections[1].payload = std::move(summaries_bytes).str();
  // A warm interpretation cache rides along so a reopened database
  // serves warm (docs/CACHING.md). Derived data: older snapshots
  // without the section (and engines without the layer) stay valid,
  // and OpenDatabase treats a corrupt section as a cold open.
  if (interp_cache_ != nullptr && interp_cache_->size() > 0) {
    std::ostringstream interp_bytes;
    status = cache::SaveInterpretationCache(*interp_cache_, &interp_bytes);
    if (!status.ok()) return status;
    storage::SnapshotSection interp_section;
    interp_section.name = kInterpCacheSection;
    interp_section.payload = std::move(interp_bytes).str();
    sections.push_back(std::move(interp_section));
  }
  storage::SnapshotStore store(dir);
  auto generation = store.Commit(sections);
  if (!generation.ok()) {
    OPINEDB_METRIC_COUNT("storage.snapshot.save_failures", 1);
    return generation.status();
  }
  snapshot_generation_.store(*generation, std::memory_order_relaxed);
  OPINEDB_METRIC_COUNT("storage.snapshot.saves", 1);
  OPINEDB_METRIC_GAUGE_SET("storage.snapshot.generation",
                           static_cast<double>(*generation));
  OPINEDB_METRIC_LATENCY_MS("storage.snapshot.save_ms",
                            timer.ElapsedMillis());
  return Status::OK();
}

Status OpineDb::OpenDatabase(const std::string& dir) {
  Timer timer;
  storage::SnapshotStore store(dir);
  auto snapshot = store.Recover();
  if (!snapshot.ok()) {
    OPINEDB_METRIC_COUNT("storage.snapshot.load_failures", 1);
    return snapshot.status();
  }
  const std::string* schema_payload = snapshot->Find(kSchemaSection);
  const std::string* summaries_payload = snapshot->Find(kSummariesSection);
  if (schema_payload == nullptr || summaries_payload == nullptr) {
    OPINEDB_METRIC_COUNT("storage.snapshot.load_failures", 1);
    return Status::DataLoss(
        "snapshot generation " + std::to_string(snapshot->generation) +
        " verified but lacks a schema/summaries section");
  }

  // Parse and vet the whole snapshot before touching any engine state:
  // a payload that fails to decode leaves the engine exactly as it was.
  std::istringstream schema_stream(*schema_payload);
  auto schema = LoadSchema(&schema_stream);
  if (!schema.ok()) {
    OPINEDB_METRIC_COUNT("storage.snapshot.load_failures", 1);
    return schema.status();
  }
  std::istringstream summaries_stream(*summaries_payload);
  // Summaries bind marker-cell pointers into schema->attributes' heap
  // buffer; the vector moves below transfer that buffer wholesale, so
  // the bindings survive into schema_.
  auto tables = LoadSummaries(*schema, &summaries_stream);
  if (!tables.ok()) {
    OPINEDB_METRIC_COUNT("storage.snapshot.load_failures", 1);
    return tables.status();
  }
  const size_t snapshot_entities =
      tables->summaries.empty() ? 0 : tables->summaries[0].size();
  if (snapshot_entities != corpus_.num_entities()) {
    OPINEDB_METRIC_COUNT("storage.snapshot.load_failures", 1);
    return Status::InvalidArgument(
        "snapshot covers " + std::to_string(snapshot_entities) +
        " entities but this engine's corpus has " +
        std::to_string(corpus_.num_entities()));
  }

  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  schema_ = std::move(*schema);
  tables_.summaries = std::move(tables->summaries);
  // Summaries are the queryable state; the extraction relation was not
  // persisted and anything left from the pre-open build describes the
  // old schema/tables.
  tables_.extractions.clear();
  tables_.extraction_attribute.clear();
  tables_.extraction_marker.clear();
  tables_.extraction_margin.clear();
  extractions_authoritative_ = false;
  // The journal (if any) belonged to the replaced state; EnableWal
  // again to pair with the opened generation and replay its tail.
  wal_.reset();
  wal_dir_.clear();
  RebuildDerivedState();
  // Every cache layer described the replaced summaries; the epoch bump
  // invalidates them wholesale.
  InvalidateCachesLocked();
  // Warm-start the interpretation cache from the snapshot's optional
  // section, tagged with the fresh epoch. Strictly an optimization:
  // an old-format snapshot (no section) or a corrupt payload opens
  // cold, never fails the open — unlike schema/summaries, this data is
  // re-derivable by simply executing queries.
  if (interp_cache_ != nullptr) {
    const std::string* interp_payload = snapshot->Find(kInterpCacheSection);
    if (interp_payload != nullptr) {
      std::istringstream interp_stream(*interp_payload);
      const Status warm = cache::LoadInterpretationCache(
          &interp_stream, cache_epoch_.load(std::memory_order_relaxed),
          interp_cache_.get());
      if (warm.ok()) {
        OPINEDB_METRIC_COUNT("engine.cache.warm_entries",
                             interp_cache_->size());
      } else {
        OPINEDB_METRIC_COUNT("engine.cache.warm_load_failures", 1);
      }
    }
  }
  snapshot_generation_.store(snapshot->generation,
                             std::memory_order_relaxed);
  OPINEDB_METRIC_COUNT("storage.snapshot.loads", 1);
  OPINEDB_METRIC_GAUGE_SET("storage.snapshot.generation",
                           static_cast<double>(snapshot->generation));
  OPINEDB_METRIC_LATENCY_MS("storage.snapshot.load_ms",
                            timer.ElapsedMillis());
  return Status::OK();
}

Status OpineDb::AppendReviews(const std::vector<text::Review>& reviews) {
  // Exclusive for the whole batch: queries observe either none or all
  // of it, and the derived-state patches below need the same exclusion
  // as a rebuild.
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  if (read_only_) return ReadOnlyError("AppendReviews");
  return ApplyReviewsLocked(reviews, /*journal=*/true);
}

Status OpineDb::ApplyReviewsLocked(const std::vector<text::Review>& reviews,
                                   bool journal) {
  if (reviews.empty()) return Status::OK();
  if (!pipeline_.has_value()) {
    return Status::FailedPrecondition(
        "AppendReviews requires the extraction pipeline retained by "
        "Build");
  }
  if (options_.aggregation.min_reviewer_reviews.has_value()) {
    // Retroactive filter: a reviewer's pre-existing reviews can cross
    // the threshold mid-append, which would require re-weighing
    // opinions already folded into the summaries — an additive fold
    // cannot express that. Reaggregate (full rebuild) can.
    return Status::FailedPrecondition(
        "AppendReviews cannot maintain min_reviewer_reviews "
        "incrementally (the filter is retroactive); use Reaggregate");
  }
  for (size_t i = 0; i < reviews.size(); ++i) {
    const text::EntityId entity = reviews[i].entity;
    if (entity < 0 ||
        static_cast<size_t>(entity) >= corpus_.num_entities()) {
      return Status::InvalidArgument(
          "AppendReviews: review " + std::to_string(i) +
          " names entity " + std::to_string(entity) + ", corpus has " +
          std::to_string(corpus_.num_entities()));
    }
  }

  obs::TraceSpan span("ingest.append");
  Timer timer;

  // Journal first: once Append returns OK the batch is fsync-durable,
  // and only then does any in-memory state change. An error here means
  // nothing was applied — the caller can retry the whole batch.
  if (journal && wal_.has_value()) {
    Timer wal_timer;
    Status appended = wal_->Append(EncodeReviewBatch(reviews));
    if (!appended.ok()) return appended;
    OPINEDB_METRIC_LATENCY_MS("storage.wal.append_ms",
                              wal_timer.ElapsedMillis());
  }

  // Fold the delta. AddOpinion replays Build's per-extraction loop body
  // against the live summaries, so appending in order is bit-identical
  // to a full rebuild over the extended corpus (the models it consults
  // — classifier, embedder, analyzer, review-index idf — are frozen).
  const extract::ExtractedOpinion* old_data = tables_.extractions.data();
  const size_t old_size = tables_.extractions.size();
  std::vector<text::EntityId> touched;
  touched.reserve(reviews.size());
  size_t num_opinions = 0;
  for (const auto& review : reviews) {
    const text::ReviewId id = corpus_.AddReview(
        review.entity, review.reviewer, review.date, review.body);
    const text::Review& stored =
        corpus_.reviews()[static_cast<size_t>(id)];
    // Same shift as Build step 1 — the scoring paths index this vector
    // by review id.
    review_sentiment_.push_back(
        std::max(0.0, analyzer_.ScoreDocument(stored.body)) + 0.05);
    for (const auto& opinion : pipeline_->ExtractFromReview(stored)) {
      aggregator_->AddOpinion(opinion, corpus_, options_.aggregation,
                              &tables_);
      ++num_opinions;
    }
    touched.push_back(review.entity);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()),
                touched.end());

  // Patch the derived state in place (a full RebuildDerivedState here
  // would defeat the point of the delta path).
  if (tables_.extractions.data() == old_data) {
    // The vector did not reallocate: every stored pointer is intact,
    // only the new rows need list entries.
    for (size_t i = old_size; i < tables_.extractions.size(); ++i) {
      const int a = tables_.extraction_attribute[i];
      if (a < 0) continue;
      const auto& opinion = tables_.extractions[i];
      extraction_lists_[a][opinion.entity].push_back(&opinion);
    }
  } else {
    // Reallocation moved the rows; every pointer in every list dangles.
    extraction_lists_.assign(
        schema_.num_attributes(),
        std::vector<std::vector<const extract::ExtractedOpinion*>>(
            corpus_.num_entities()));
    for (size_t i = 0; i < tables_.extractions.size(); ++i) {
      const int a = tables_.extraction_attribute[i];
      if (a < 0) continue;
      const auto& opinion = tables_.extractions[i];
      extraction_lists_[a][opinion.entity].push_back(&opinion);
    }
  }
  interpreter_->AppendNewExtractions();
  if (columnar_ != nullptr) {
    columnar_->UpdateEntities(tables_, touched);
  }

  // Surgical cache maintenance — the whole reason ingest is not a
  // Reaggregate. One epoch bump expires result-cache entries lazily (a
  // ranking may depend on every entity, so per-entity invalidation is
  // unsound there); everything else keeps its warm set.
  const uint64_t epoch =
      cache_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (entity_data_epoch_.size() < corpus_.num_entities()) {
    entity_data_epoch_.resize(corpus_.num_entities(), 0);
  }
  for (const text::EntityId entity : touched) {
    entity_data_epoch_[static_cast<size_t>(entity)] = epoch;
  }
  if (interp_cache_ != nullptr) {
    // Interpretations can change under ingest (the variation table and
    // per-attribute idf grow), so entries are re-derived from the
    // post-ingest interpreter and re-tagged at the new epoch — a
    // re-derivation that fails or degrades leaves the old entry behind
    // as an inert stale-epoch miss.
    for (const auto& key : interp_cache_->Keys()) {
      try {
        auto interpretation = interpreter_->Interpret(key);
        if (interpretation.degraded) continue;
        cache::InterpretationCache::Entry entry;
        entry.interpretation = std::move(interpretation);
        entry.rep = embedder_->Represent(key);
        entry.sentiment = analyzer_.ScorePhrase(key);
        entry.epoch = epoch;
        interp_cache_->Insert(key, std::move(entry));
      } catch (const std::exception&) {
        OPINEDB_METRIC_COUNT("engine.fallback.interp_cache", 1);
      }
    }
  }
  if (degree_cache_ != nullptr) {
    // In-place refresh: untouched entities' slots (the warm working
    // set) survive; only touched slots are rescored.
    degree_cache_->RefreshAfterIngest(touched);
  }

  span.AddAttribute("reviews", static_cast<uint64_t>(reviews.size()));
  span.AddAttribute("opinions", static_cast<uint64_t>(num_opinions));
  span.AddAttribute("entities_touched",
                    static_cast<uint64_t>(touched.size()));
  span.AddAttribute("replay", !journal);
  OPINEDB_METRIC_COUNT("engine.ingest.batches", 1);
  OPINEDB_METRIC_COUNT("engine.ingest.reviews", reviews.size());
  OPINEDB_METRIC_COUNT("engine.ingest.opinions", num_opinions);
  OPINEDB_METRIC_COUNT("engine.ingest.entities_touched", touched.size());
  OPINEDB_METRIC_LATENCY_MS("engine.ingest.apply_ms",
                            timer.ElapsedMillis());
  OPINEDB_METRIC_GAUGE_SET("engine.cache.epoch",
                           static_cast<double>(epoch));
  return Status::OK();
}

bool OpineDb::wal_enabled() const {
  std::shared_lock<std::shared_mutex> lock(reconfig_mu_);
  return wal_.has_value() && wal_->is_open();
}

bool OpineDb::wal_broken() const {
  std::shared_lock<std::shared_mutex> lock(reconfig_mu_);
  return wal_.has_value() && !wal_->is_open();
}

uint64_t OpineDb::wal_acknowledged_bytes() const {
  std::shared_lock<std::shared_mutex> lock(reconfig_mu_);
  return wal_.has_value() ? wal_->size() : 0;
}

std::string OpineDb::wal_dir() const {
  std::shared_lock<std::shared_mutex> lock(reconfig_mu_);
  return wal_dir_;
}

void OpineDb::SetReadOnly(bool read_only) {
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  read_only_ = read_only;
  OPINEDB_METRIC_GAUGE_SET("repl.read_only", read_only ? 1.0 : 0.0);
}

bool OpineDb::read_only() const {
  std::shared_lock<std::shared_mutex> lock(reconfig_mu_);
  return read_only_;
}

Status OpineDb::Promote() {
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  if (!read_only_) {
    return Status::FailedPrecondition(
        "Promote: engine already accepts writes (not a follower)");
  }
  if (!wal_.has_value() || !wal_->is_open()) {
    // A primary that cannot journal would accept writes it may lose;
    // refuse and leave the follower consistent.
    return Status::FailedPrecondition(
        "Promote requires a healthy WAL (EnableWal, not broken)");
  }
  if (OPINEDB_FAULT_HIT("repl.promote")) {
    return Status::Internal("injected fault at repl.promote");
  }
  // Nothing to replay: ApplyReplicatedRecord applies each record in the
  // same critical section that journals it, and EnableWal replayed the
  // durable tail at startup — the in-memory state already equals the
  // verified WAL. Flipping the flag is the whole promotion.
  read_only_ = false;
  OPINEDB_METRIC_COUNT("repl.promotions", 1);
  OPINEDB_METRIC_GAUGE_SET("repl.read_only", 0.0);
  return Status::OK();
}

Result<size_t> OpineDb::ApplyReplicatedRecord(const std::string& payload) {
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  if (!read_only_) {
    return Status::FailedPrecondition(
        "ApplyReplicatedRecord: engine is not in follower mode "
        "(SetReadOnly first — a primary applying shipped records would "
        "fork the log)");
  }
  if (!wal_.has_value() || !wal_->is_open()) {
    return Status::FailedPrecondition(
        "ApplyReplicatedRecord requires a healthy follower WAL "
        "(EnableWal first; a broken WAL cannot acknowledge offsets)");
  }
  auto batch = DecodeReviewBatch(payload);
  if (!batch.ok()) return batch.status();
  // journal=true: the follower re-journals the decoded batch.
  // EncodeReviewBatch(DecodeReviewBatch(p)) == p, so the bytes appended
  // here equal the shipped payload and the follower's segment stays
  // byte-identical to the primary's at every acknowledged offset.
  Status applied = ApplyReviewsLocked(*batch, /*journal=*/true);
  if (!applied.ok()) return applied;
  OPINEDB_METRIC_COUNT("repl.records_applied", 1);
  return batch->size();
}

Status OpineDb::EnableWal(const std::string& dir) {
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("EnableWal: create_directories(" + dir +
                            "): " + ec.message());
  }
  const uint64_t base =
      snapshot_generation_.load(std::memory_order_relaxed);
  const std::string path = dir + "/" + storage::WalFileName(base);

  // Recovery half: replay the tail a crash may have left behind. The
  // segment paired with the served generation is read, everything past
  // the first corrupt record is physically truncated away, and each
  // surviving batch re-enters through the exact live-ingest path
  // (minus journaling — these records are already durable).
  size_t replayed = 0;
  auto tail = storage::ReadWal(path);
  if (tail.ok()) {
    if (tail->base_generation != base) {
      // A header naming another generation cannot be trusted to apply
      // on top of the served snapshot: restart the segment empty.
      Status truncated = storage::TruncateWal(path, 0);
      if (!truncated.ok()) return truncated;
      tail->records.clear();
    } else if (tail->truncated) {
      Status truncated = storage::TruncateWal(path, tail->valid_bytes);
      if (!truncated.ok()) return truncated;
    }
    for (const auto& record : tail->records) {
      auto batch = DecodeReviewBatch(record);
      if (!batch.ok()) return batch.status();
      Status applied = ApplyReviewsLocked(*batch, /*journal=*/false);
      if (!applied.ok()) return applied;
      ++replayed;
    }
  } else if (tail.status().code() != StatusCode::kNotFound) {
    return tail.status();
  }

  auto writer = storage::WalWriter::Open(path, base);
  if (!writer.ok()) return writer.status();
  wal_ = std::move(*writer);
  wal_dir_ = dir;
  if (replayed > 0) {
    OPINEDB_METRIC_COUNT("storage.wal.replayed_records", replayed);
  }
  OPINEDB_METRIC_GAUGE_SET("storage.wal.base_generation",
                           static_cast<double>(base));
  return Status::OK();
}

Status OpineDb::Checkpoint() {
  // One exclusive critical section across save + rotation: no append
  // can slip between the snapshot commit and the segment swap, so the
  // new segment is empty exactly when the new generation is complete.
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  if (read_only_) {
    // A follower rotating its segment out of step with the primary
    // would break generation lockstep; the replication client calls
    // ReplicaCheckpoint when the primary signals segment-complete.
    return ReadOnlyError("Checkpoint");
  }
  if (!wal_.has_value()) {
    return Status::FailedPrecondition("Checkpoint requires EnableWal");
  }
  return CheckpointLocked();
}

Status OpineDb::ReplicaCheckpoint() {
  std::unique_lock<std::shared_mutex> lock(reconfig_mu_);
  if (!read_only_) {
    return Status::FailedPrecondition(
        "ReplicaCheckpoint is the follower-side rotation; primaries "
        "use Checkpoint()");
  }
  if (!wal_.has_value()) {
    return Status::FailedPrecondition(
        "ReplicaCheckpoint requires EnableWal");
  }
  return CheckpointLocked();
}

Status OpineDb::CheckpointLocked() {
  Timer timer;
  Status saved = SaveDatabaseLocked(wal_dir_);
  if (!saved.ok()) return saved;
  // The committed generation contains every journaled batch (they were
  // applied to the live state before acknowledgement), so the old
  // segment is redundant from here on.
  if (OPINEDB_FAULT_HIT("storage.wal_fold")) {
    // Simulated crash between snapshot commit and segment retirement:
    // the stale segment stays on disk — recovery ignores it (its base
    // is older than the newest generation) — and journaling stops,
    // exactly as if the process had died here.
    wal_.reset();
    return Status::Internal("injected crash at storage.wal_fold");
  }
  wal_->Close();
  const uint64_t generation =
      snapshot_generation_.load(std::memory_order_relaxed);
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(wal_dir_, ec)) {
    uint64_t segment_base = 0;
    if (!storage::ParseWalFileName(entry.path().filename().string(),
                                   &segment_base)) {
      continue;
    }
    if (segment_base != generation && !pins_.IsPinned(segment_base)) {
      // A pinned segment is one a lagging follower is actively pulling;
      // retiring it mid-pull would force a needless snapshot catch-up.
      // The pin expires with the follower's session and the next
      // checkpoint retires the segment then.
      std::error_code remove_ec;
      std::filesystem::remove(entry.path(), remove_ec);
    }
  }
  auto writer = storage::WalWriter::Open(
      wal_dir_ + "/" + storage::WalFileName(generation), generation);
  if (!writer.ok()) {
    wal_.reset();
    return writer.status();
  }
  wal_ = std::move(*writer);
  OPINEDB_METRIC_COUNT("storage.wal.checkpoints", 1);
  OPINEDB_METRIC_LATENCY_MS("storage.wal.checkpoint_ms",
                            timer.ElapsedMillis());
  return Status::OK();
}

double OpineDb::HeuristicDegree(const std::vector<double>& features) const {
  // Single shared implementation with the columnar sweep (see
  // core/membership.h) so both paths produce the same doubles.
  return HeuristicMembershipDegree(features.data(), features.size());
}

double OpineDb::AtomDegreeOfTruth(const AtomInterpretation& atom,
                                  text::EntityId entity,
                                  const embedding::Vec& query_rep,
                                  double query_sentiment) const {
  OPINEDB_FAULT("score.features");
  std::vector<double> features;
  if (options_.use_markers) {
    features = MembershipFeatures(
        tables_.summaries[atom.attribute][entity], atom.marker, query_rep,
        query_sentiment);
  } else {
    features = MembershipFeaturesNoMarkers(
        extraction_lists_[atom.attribute][entity], *embedder_, query_rep,
        query_sentiment);
  }
  const double d = membership_.has_value()
                       ? membership_->DegreeOfTruth(features)
                       : HeuristicDegree(features);
  // Degrees of truth are [0, 1] by contract; one rogue NaN would
  // propagate through every ⊗/⊕ combine and corrupt the ranking
  // comparator's total order.
  if (!std::isfinite(d)) return 0.0;
  return std::clamp(d, 0.0, 1.0);
}

double OpineDb::TextFallbackDegree(const std::string& predicate,
                                   text::EntityId entity) const {
  OPINEDB_FAULT("score.text_fallback");
  text::Tokenizer tokenizer;
  const double bm25 =
      entity_index_.Score(entity, tokenizer.Tokenize(predicate));
  return Sigmoid(bm25 - options_.text_fallback_c);
}

double OpineDb::PredicateDegreeOfTruth(const std::string& predicate,
                                       text::EntityId entity) const {
  // Top-level entry point (like ExecuteQuery): hold the reconfiguration
  // lock shared so tables_/interpreter_ cannot be rebuilt mid-call.
  std::shared_lock<std::shared_mutex> reconfig_lock(reconfig_mu_);
  const uint64_t cache_epoch = cache_epoch_.load(std::memory_order_relaxed);
  std::string cache_key;
  PredicateInterpretation interpretation;
  embedding::Vec rep;
  double senti = 0.0;
  bool cached = false;
  if (interp_cache_ != nullptr) {
    cache_key = NormalizePredicate(predicate);
    try {
      OPINEDB_FAULT("cache.interp_lookup");
      cache::InterpretationCache::Entry entry;
      if (interp_cache_->Lookup(cache_key, cache_epoch, &entry)) {
        interpretation = std::move(entry.interpretation);
        rep = std::move(entry.rep);
        senti = entry.sentiment;
        cached = true;
      }
    } catch (const std::exception&) {
      OPINEDB_METRIC_COUNT("engine.fallback.interp_cache", 1);
    }
  }
  if (!cached) interpretation = interpreter_->Interpret(predicate);
  if (interpretation.method == InterpretMethod::kTextFallback ||
      interpretation.atoms.empty()) {
    return TextFallbackDegree(predicate, entity);
  }
  if (!cached) {
    rep = embedder_->Represent(predicate);
    senti = analyzer_.ScorePhrase(predicate);
    if (interp_cache_ != nullptr && !interpretation.degraded) {
      try {
        OPINEDB_FAULT("cache.interp_insert");
        cache::InterpretationCache::Entry entry;
        entry.interpretation = interpretation;
        entry.rep = rep;
        entry.sentiment = senti;
        entry.epoch = cache_epoch;
        interp_cache_->Insert(cache_key, std::move(entry));
      } catch (const std::exception&) {
        OPINEDB_METRIC_COUNT("engine.fallback.interp_cache", 1);
      }
    }
  }
  double acc = 0.0;
  bool first = true;
  for (const auto& atom : interpretation.atoms) {
    const double d = AtomDegreeOfTruth(atom, entity, rep, senti);
    if (first) {
      acc = d;
      first = false;
    } else if (interpretation.conjunctive) {
      acc = fuzzy::And(options_.variant, acc, d);
    } else {
      acc = fuzzy::Or(options_.variant, acc, d);
    }
  }
  return acc;
}

Result<QueryResult> OpineDb::Execute(const std::string& sql) const {
  return Execute(sql, QueryControl());
}

Result<QueryResult> OpineDb::Execute(const std::string& sql,
                                     const QueryControl& control) const {
  auto query = ParseSubjectiveSql(sql);
  if (!query.ok()) return query.status();
  return ExecuteQuery(*query, control);
}

Result<QueryResult> OpineDb::ExecuteQuery(const SubjectiveQuery& query) const {
  return ExecuteQuery(query, QueryControl());
}

Result<QueryResult> OpineDb::ExecuteQuery(const SubjectiveQuery& query,
                                          const QueryControl& control) const {
  // Shared for the whole query: reconfigurators (Reaggregate,
  // SetNumThreads, AttachDegreeCache, ...) take this exclusively, so
  // the pool/tables/cache snapshotted below stay alive and coherent
  // until we return.
  std::shared_lock<std::shared_mutex> reconfig_lock(reconfig_mu_);
  // Thread the deadline only when there is something to poll, so the
  // unbounded path never pays for (or branches on) expiry checks.
  const QueryDeadline* deadline =
      control.deadline.active() ? &control.deadline : nullptr;
  Timer total;
  Timer phase;
  QueryResult output;
  // Full tracing installs a per-query ring buffer as the calling
  // thread's ambient trace context; every TraceSpan below (and inside
  // the interpreter / degree cache / TA on this thread) records into it.
  // Worker threads never see the context, so spans cannot perturb the
  // parallel-vs-serial bit-identity contract.
  std::optional<obs::TraceScope> trace_scope;
  if (options_.trace_level == obs::TraceLevel::kFull) {
    output.trace =
        std::make_shared<obs::TraceBuffer>(options_.trace_capacity);
    trace_scope.emplace(output.trace.get());
  }
  obs::TraceSpan query_span("execute_query");
  query_span.AddAttribute("table", query.table);
  query_span.AddAttribute("conditions",
                          static_cast<uint64_t>(query.conditions.size()));
  output.stats.threads_used = pool_ != nullptr ? pool_->num_threads() : 1;
  query_span.AddAttribute("threads",
                          static_cast<uint64_t>(output.stats.threads_used));
  // "Which data am I serving": the snapshot generation behind the
  // summaries (0 = built in-process, never saved/loaded) and the degree
  // cache's invalidation epoch, so traces correlate with Reaggregate /
  // OpenDatabase events. Recorded only when a store/cache is in play so
  // pre-persistence trace goldens stay unchanged.
  const uint64_t snapshot_generation =
      snapshot_generation_.load(std::memory_order_relaxed);
  if (snapshot_generation > 0) {
    query_span.AddAttribute("snapshot_generation", snapshot_generation);
  }
  if (degree_cache_ != nullptr) {
    query_span.AddAttribute("cache_epoch", degree_cache_->epoch());
  }
  auto table_result = catalog_.GetTable(query.table);
  if (!table_result.ok()) return table_result.status();
  const storage::Table* table = *table_result;

  // ----------------------------------------------------- result cache.
  // Consulted before planning: a hit skips the whole pipeline. EXPLAIN
  // and forced-plan queries bypass the cache entirely (EXPLAIN wants
  // this execution's plan text; a forced shape wants this execution's
  // work — serving either from cache would answer a different
  // question). The epoch is read once up front; mutators bump it under
  // the exclusive reconfiguration lock, so it cannot move mid-query.
  const uint64_t cache_epoch = cache_epoch_.load(std::memory_order_relaxed);
  const bool result_cacheable = result_cache_ != nullptr && !query.explain &&
                                options_.force_plan == PlanForce::kAuto;
  bool result_cache_fault = false;
  std::string cache_key;
  if (result_cacheable) {
    cache_key = CanonicalQueryKey(query);
    query_span.AddAttribute("query_fingerprint",
                            cache::ResultCache::Fingerprint(cache_key));
    try {
      OPINEDB_FAULT("cache.result_lookup");
      cache::CachedResult hit;
      if (result_cache_->Lookup(cache_key, cache_epoch, &hit)) {
        // Bit-identical to execution by the differential cache-
        // equivalence contract (docs/CACHING.md): results and
        // interpretations are the fill-time values, `plan` reports the
        // shape that produced them, and stats/trace are this call's
        // own (nothing executed, so the phase timings stay zero).
        output.results = std::move(hit.results);
        output.interpretations = std::move(hit.interpretations);
        output.plan = hit.plan;
        output.stats.result_cache_hit = true;
        query_span.AddAttribute("result_cache", "hit");
        query_span.AddAttribute("plan", PlanKindName(output.plan));
        output.stats.total_ms = total.ElapsedMillis();
        if (options_.trace_level >= obs::TraceLevel::kStats) {
          OPINEDB_METRIC_COUNT("engine.queries", 1);
          OPINEDB_METRIC_COUNT("engine.cache.hit", 1);
          OPINEDB_METRIC_LATENCY_MS("engine.total_ms",
                                    output.stats.total_ms);
          OPINEDB_METRIC_GAUGE_SET(
              "engine.cache.bytes",
              static_cast<double>(result_cache_->bytes()));
          OPINEDB_METRIC_GAUGE_SET("engine.cache.epoch",
                                   static_cast<double>(cache_epoch));
        }
        return output;
      }
      query_span.AddAttribute("result_cache", "miss");
      if (options_.trace_level >= obs::TraceLevel::kStats) {
        OPINEDB_METRIC_COUNT("engine.cache.miss", 1);
      }
    } catch (const std::exception&) {
      // Cache machinery unusable: answer by full execution (complete
      // and bit-identical, but off the preferred path → degraded), and
      // keep this query out of the cache.
      result_cache_fault = true;
      OPINEDB_METRIC_COUNT("engine.fallback.result_cache", 1);
    }
  }

  // ------------------------------------------------------------- plan.
  // Lower the parsed AST into its logical view, then pick the physical
  // operator chain. Every plan shape is bit-identical to the dense scan
  // (see docs/QUERY_PLANNER.md); the planner only trades work.
  const LogicalPlan logical = AnalyzeQuery(query);
  PlannerContext planner_context;
  planner_context.num_entities = corpus_.num_entities();
  planner_context.cache = degree_cache_;
  planner_context.force = options_.force_plan;
  planner_context.variant = options_.variant;
  const PhysicalPlan physical = SelectPlan(query, logical, planner_context);
  output.plan = physical.kind;
  query_span.AddAttribute("plan", PlanKindName(physical.kind));
  if (query.explain) {
    // EXPLAIN plans but does not execute.
    output.plan_text = ExplainPlan(query, logical, physical, planner_context);
    output.stats.total_ms = total.ElapsedMillis();
    return output;
  }

  // Interpret every subjective condition once, up front (serial: a
  // handful of conditions against thousands of entities).
  const size_t num_conditions = query.conditions.size();
  output.interpretations.resize(num_conditions);
  std::vector<embedding::Vec> reps(num_conditions);
  std::vector<double> sentis(num_conditions, 0.0);
  bool degraded = false;
  {
    OPINEDB_SPAN("interpret");
    for (size_t c = 0; c < num_conditions; ++c) {
      const Condition& condition = query.conditions[c];
      if (condition.kind != Condition::Kind::kSubjective) continue;
      // Interpretation-cache consult: the cascade output is a pure
      // function of (normalized predicate, epoch), so a hit skips the
      // w2v / co-occurrence lookups and the embedding prologue whole.
      std::string interp_key;
      bool interp_cached = false;
      if (interp_cache_ != nullptr) {
        interp_key = NormalizePredicate(condition.subjective);
        try {
          OPINEDB_FAULT("cache.interp_lookup");
          cache::InterpretationCache::Entry entry;
          if (interp_cache_->Lookup(interp_key, cache_epoch, &entry)) {
            output.interpretations[c] = std::move(entry.interpretation);
            reps[c] = std::move(entry.rep);
            sentis[c] = entry.sentiment;
            interp_cached = true;
            OPINEDB_METRIC_COUNT("engine.cache.interp_hit", 1);
          } else {
            OPINEDB_METRIC_COUNT("engine.cache.interp_miss", 1);
          }
        } catch (const std::exception&) {
          OPINEDB_METRIC_COUNT("engine.fallback.interp_cache", 1);
        }
      }
      if (interp_cached) continue;
      try {
        OPINEDB_FAULT("interpret.embed");
        output.interpretations[c] =
            interpreter_->Interpret(condition.subjective, deadline);
        reps[c] = embedder_->Represent(condition.subjective);
        sentis[c] = analyzer_.ScorePhrase(condition.subjective);
      } catch (const std::exception&) {
        // Interpretation machinery unusable for this condition: degrade
        // to the text-retrieval stage (which needs neither the
        // embedding nor the sentiment prologue).
        output.interpretations[c] = PredicateInterpretation();
        output.interpretations[c].degraded = true;
        OPINEDB_METRIC_COUNT("engine.fallback.interpret", 1);
      }
      if (output.interpretations[c].degraded) {
        degraded = true;
      } else if (interp_cache_ != nullptr && deadline == nullptr) {
        // Fill only full-fidelity entries: a degraded interpretation
        // would be served forever while the underlying fault is long
        // gone, and a deadline-shaped one may have skipped stages.
        try {
          OPINEDB_FAULT("cache.interp_insert");
          cache::InterpretationCache::Entry entry;
          entry.interpretation = output.interpretations[c];
          entry.rep = reps[c];
          entry.sentiment = sentis[c];
          entry.epoch = cache_epoch;
          interp_cache_->Insert(interp_key, std::move(entry));
        } catch (const std::exception&) {
          OPINEDB_METRIC_COUNT("engine.fallback.interp_cache", 1);
        }
      }
    }
  }
  output.stats.interpret_ms = phase.ElapsedMillis();

  // -------------------------------------------------------------- run.
  ExecContext ctx;
  ctx.db = this;
  ctx.query = &query;
  ctx.logical = &logical;
  ctx.table = table;
  ctx.cache = degree_cache_;
  ctx.output = &output;
  ctx.reps = &reps;
  ctx.sentis = &sentis;
  ctx.num_entities = corpus_.num_entities();
  ctx.deadline = deadline;
  phase.Reset();
  try {
    if (physical.kind == PlanKind::kTaTopK) {
      // One fused operator: cached lists in, ranked top-k out.
      output.stats.scoring_ms = phase.ElapsedMillis();
      phase.Reset();
      Status status;
      try {
        status = TaTopKOp().Run(&ctx);
      } catch (const std::exception&) {
        // TA path unusable (fault in the cache or the index): fall back
        // to the dense pipeline, which recomputes what it needs and
        // degrades internally instead of throwing.
        ctx.degraded.store(true, std::memory_order_relaxed);
        OPINEDB_METRIC_COUNT("engine.fallback.ta", 1);
        query_span.AddAttribute("fallback", "dense_scan");
        status = SubjectiveScoreOp().Run(&ctx);
        if (status.ok()) status = RankOp().Run(&ctx);
      }
      if (!status.ok()) return status;
      output.stats.rank_ms = phase.ElapsedMillis();
    } else {
      if (physical.kind == PlanKind::kFilteredScan) {
        Status status = ObjectiveFilterOp().Run(&ctx);
        if (!status.ok()) return status;
      }
      Status status = SubjectiveScoreOp().Run(&ctx);
      if (!status.ok()) return status;
      output.stats.scoring_ms = phase.ElapsedMillis();
      phase.Reset();
      status = RankOp().Run(&ctx);
      if (!status.ok()) return status;
      output.stats.rank_ms = phase.ElapsedMillis();
    }
  } catch (const std::exception& e) {
    // Backstop: no exception escapes ExecuteQuery. Anything the
    // per-stage fallbacks could not absorb becomes a Status.
    return Status::Internal(std::string("query execution failed: ") +
                            e.what());
  }
  output.partial = ctx.partial;
  output.degraded = degraded || result_cache_fault ||
                    ctx.degraded.load(std::memory_order_relaxed);
  if (output.partial) {
    query_span.AddAttribute("partial", true);
    OPINEDB_METRIC_COUNT("engine.deadline_exceeded", 1);
  }
  if (output.degraded) query_span.AddAttribute("degraded", true);
  output.stats.total_ms = total.ElapsedMillis();
  // Publish the per-query façade numbers to the process registry (the
  // registry-backed equivalents of ExecutionStats).
  if (options_.trace_level >= obs::TraceLevel::kStats) {
    OPINEDB_METRIC_COUNT("engine.queries", 1);
    OPINEDB_METRIC_COUNT("engine.entities_scored",
                         output.stats.entities_scored);
    OPINEDB_METRIC_COUNT("engine.cache_hits", output.stats.cache_hits);
    OPINEDB_METRIC_COUNT("engine.cache_misses", output.stats.cache_misses);
    OPINEDB_METRIC_LATENCY_MS("engine.interpret_ms",
                              output.stats.interpret_ms);
    OPINEDB_METRIC_LATENCY_MS("engine.scoring_ms", output.stats.scoring_ms);
    OPINEDB_METRIC_LATENCY_MS("engine.rank_ms", output.stats.rank_ms);
    OPINEDB_METRIC_LATENCY_MS("engine.total_ms", output.stats.total_ms);
    // Served-state gauges (see the span attributes above): operators
    // scrape these to tell which snapshot generation and which cache
    // epoch answered recent queries.
    OPINEDB_METRIC_GAUGE_SET("storage.snapshot.generation",
                             static_cast<double>(snapshot_generation));
    if (degree_cache_ != nullptr) {
      OPINEDB_METRIC_GAUGE_SET(
          "engine.cache_epoch",
          static_cast<double>(degree_cache_->epoch()));
    }
    if (result_cache_ != nullptr || interp_cache_ != nullptr) {
      OPINEDB_METRIC_GAUGE_SET("engine.cache.epoch",
                               static_cast<double>(cache_epoch));
    }
    // The metric macros cache their instrument in a function-local
    // static, so each plan kind gets its own literal call site.
    switch (physical.kind) {
      case PlanKind::kDenseScan:
        OPINEDB_METRIC_COUNT("engine.plan.dense_scan", 1);
        break;
      case PlanKind::kFilteredScan:
        OPINEDB_METRIC_COUNT("engine.plan.filtered_scan", 1);
        break;
      case PlanKind::kTaTopK:
        OPINEDB_METRIC_COUNT("engine.plan.ta_topk", 1);
        break;
    }
  }
  // --------------------------------------------------------- cache fill.
  // Only full-fidelity answers are cacheable: a partial result reflects
  // this call's deadline, a degraded one reflects a transient failure —
  // both would be served verbatim (and wrongly marked clean) on a hit.
  // The fault site sits before any cache mutation, so a fired fill
  // fault leaves the cache exactly as it was.
  if (result_cacheable && !result_cache_fault && !output.partial &&
      !output.degraded) {
    try {
      OPINEDB_FAULT("cache.result_insert");
      cache::CachedResult value;
      value.results = output.results;
      value.interpretations = output.interpretations;
      value.plan = output.plan;
      const size_t evicted =
          result_cache_->Insert(cache_key, cache_epoch, std::move(value));
      if (options_.trace_level >= obs::TraceLevel::kStats) {
        if (evicted > 0) {
          OPINEDB_METRIC_COUNT("engine.cache.evict", evicted);
        }
        OPINEDB_METRIC_GAUGE_SET(
            "engine.cache.bytes",
            static_cast<double>(result_cache_->bytes()));
      }
    } catch (const std::exception&) {
      OPINEDB_METRIC_COUNT("engine.fallback.result_cache", 1);
    }
  }
  return output;
}

}  // namespace opinedb::core
