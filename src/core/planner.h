#ifndef OPINEDB_CORE_PLANNER_H_
#define OPINEDB_CORE_PLANNER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/query.h"
#include "fuzzy/logic.h"

namespace opinedb::core {

class DegreeCache;

/// Physical plan shapes for ExecuteQuery. Every shape is bit-identical
/// to kDenseScan — the planner only ever trades work, never results
/// (see docs/QUERY_PLANNER.md for the equivalence arguments).
enum class PlanKind {
  /// The baseline: dense degree lists for every condition over every
  /// entity, full WHERE combine, sort, truncate.
  kDenseScan,
  /// Hard objective predicates evaluated first into a candidate set;
  /// subjective scoring and the WHERE combine restricted to survivors.
  kFilteredScan,
  /// Fully-conjunctive all-subjective queries answered by Fagin's
  /// Threshold Algorithm over cached degree lists.
  kTaTopK,
};

/// Operator-level override for plan selection (EngineOptions::force_plan).
/// Forcing a shape the query is not eligible for falls back to the
/// automatic choice — eligibility is a semantics question, not a cost
/// knob, so it cannot be overridden.
enum class PlanForce {
  kAuto,
  kDenseScan,
  kFilteredScan,
  kTaTopK,
};

/// The normalized logical view of a parsed query: conditions classified,
/// the WHERE tree analyzed for the structures the physical plans need.
struct LogicalPlan {
  /// Condition indices by kind, ascending.
  std::vector<size_t> objective_leaves;
  std::vector<size_t> subjective_leaves;
  /// Objective leaves reachable from the root through AND nodes only.
  /// If any of these fails for an entity, the whole WHERE collapses to
  /// exactly 0.0 under both fuzzy variants (0 is absorbing for ⊗), so
  /// they may be evaluated first as hard filters.
  std::vector<size_t> hard_objective;
  /// True when the WHERE tree is a single AND over plain leaves (or one
  /// leaf): the shape whose combine folds exactly like the Threshold
  /// Algorithm's aggregate.
  bool conjunctive_leaves_only = false;
  /// The conjunct leaf indices in fold order (valid when
  /// conjunctive_leaves_only).
  std::vector<size_t> conjuncts;
};

/// What SelectPlan needs to know about the execution environment.
struct PlannerContext {
  size_t num_entities = 0;
  /// The attached degree cache, or nullptr (TA requires one).
  const DegreeCache* cache = nullptr;
  PlanForce force = PlanForce::kAuto;
  fuzzy::Variant variant = fuzzy::Variant::kProduct;
};

/// The chosen physical plan plus the eligibility facts behind the
/// choice (recorded for EXPLAIN and tests).
struct PhysicalPlan {
  PlanKind kind = PlanKind::kDenseScan;
  bool filtered_eligible = false;
  bool ta_eligible = false;
  /// Conjuncts whose degree lists are already resident in the cache
  /// (== conjuncts.size() is the auto-TA condition).
  size_t cached_conjuncts = 0;
  /// True when a forced shape was ineligible and the automatic choice
  /// was used instead.
  bool forced_fallback = false;
};

/// Lowers the parsed query into its normalized logical view.
LogicalPlan AnalyzeQuery(const SubjectiveQuery& query);

/// Chooses the physical plan. Eligibility:
///  - kFilteredScan: at least one hard objective predicate.
///  - kTaTopK: conjunctive-leaves-only WHERE, every leaf subjective,
///    a degree cache attached, limit > 0.
/// Automatic choice: TA when eligible, >= 2 conjuncts, every conjunct
/// already cached and limit < num_entities (otherwise TA degrades to a
/// full scan); else filtered when eligible; else dense.
PhysicalPlan SelectPlan(const SubjectiveQuery& query,
                        const LogicalPlan& logical,
                        const PlannerContext& context);

/// Stable lowercase name of a plan shape ("dense_scan", ...).
const char* PlanKindName(PlanKind kind);

/// Renders the canonical cache key of a parsed query: table, limit and
/// the WHERE tree with every condition in canonical form — subjective
/// predicates normalized (NormalizePredicate), numeric literals rendered
/// through their numeric value (so `150` and `150.0` merge, exactly the
/// equivalence storage::Value::Compare already implements), strings
/// length-prefixed so no crafted literal can collide with the grammar.
/// Two queries with the same key are indistinguishable to execution at a
/// fixed epoch; the key deliberately preserves the WHERE tree's exact
/// structure and child order because the fuzzy fold order is
/// floating-point-significant (a ⊗ b ⊗ c reassociated changes bits).
/// EXPLAIN, trace level and force_plan are not part of the key — the
/// engine bypasses the result cache for EXPLAIN and forced plans, and
/// rebuilds observability fresh on every hit.
std::string CanonicalQueryKey(const SubjectiveQuery& query);

/// Renders the chosen plan as the multi-line EXPLAIN text (stable
/// format, pinned by trace_golden_test).
std::string ExplainPlan(const SubjectiveQuery& query,
                        const LogicalPlan& logical,
                        const PhysicalPlan& physical,
                        const PlannerContext& context);

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_PLANNER_H_
