#ifndef OPINEDB_CORE_SERIALIZE_H_
#define OPINEDB_CORE_SERIALIZE_H_

#include <istream>
#include <ostream>

#include "common/result.h"
#include "core/aggregator.h"
#include "core/schema.h"

namespace opinedb::core {

/// Persists a subjective schema (attributes, marker-summary types,
/// linguistic domains, seeds) in a line-oriented text format.
Status SaveSchema(const SubjectiveSchema& schema, std::ostream* out);

/// Reads a schema written by SaveSchema.
Result<SubjectiveSchema> LoadSchema(std::istream* in);

/// Persists the marker summaries of `tables` (histogram counts, mean
/// sentiments, centroids and provenance). The extraction relation itself
/// is not persisted — summaries are the queryable state; extractions can
/// be re-derived from the corpus.
Status SaveSummaries(const SubjectiveTables& tables, std::ostream* out);

/// Reads summaries written by SaveSummaries. `schema` must be the loaded
/// engine's schema (summary types are bound by attribute index) and must
/// outlive the returned tables.
Result<SubjectiveTables> LoadSummaries(const SubjectiveSchema& schema,
                                       std::istream* in);

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_SERIALIZE_H_
