#ifndef OPINEDB_CORE_DEGREE_CACHE_H_
#define OPINEDB_CORE_DEGREE_CACHE_H_

#include <array>
#include <atomic>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "fuzzy/threshold_algorithm.h"

namespace opinedb::core {

/// Degree-of-truth cache (Section 3.3): "the degrees of truth for
/// variations in the linguistic domain of each subjective attribute can
/// be pre-computed so that they can simply be looked up at query time.
/// [Degrees for other phrases], once computed, can also be indexed."
///
/// A DegreeCache materializes, per predicate, the dense list of degrees
/// of truth over all entities. Cached lists also unlock Fagin's
/// Threshold Algorithm for conjunctive top-k without scoring every
/// entity.
///
/// Thread safety: every method except Clear() may be called from any
/// number of threads concurrently. The cache is sharded by predicate
/// hash; lookups take a shard's shared lock, insertions its exclusive
/// lock, and degrees are computed outside all locks (losing an insert
/// race is harmless — the computation is deterministic, so both values
/// are bit-identical). References returned by Degrees() stay valid until
/// Clear(): the shard maps are node-based and entries are never erased.
/// Clear() requires external synchronization (no concurrent readers and
/// no outstanding references).
class DegreeCache {
 public:
  /// Cumulative cache traffic, for observability.
  struct CacheStats {
    size_t hits = 0;
    size_t misses = 0;
  };

  explicit DegreeCache(const OpineDb* db) : db_(db) {}

  /// Per-entity degrees for `predicate`; computed once (in parallel over
  /// entities when the engine has a pool), then served from the cache.
  const std::vector<double>& Degrees(const std::string& predicate);

  /// Resident list for `predicate`, or nullptr if not cached yet. Never
  /// computes and does not touch the hit/miss counters; planners use it
  /// to test TA eligibility without perturbing cache stats.
  const std::vector<double>* Peek(const std::string& predicate) const;

  /// Pre-computes the degrees for every marker phrase of every
  /// subjective attribute (the "variations in the linguistic domain"
  /// precomputation); returns the number of lists materialized. Markers
  /// fan out across the engine's worker pool.
  size_t PrecomputeMarkers();

  /// Conjunctive fuzzy top-k over cached degree lists using the
  /// Threshold Algorithm. `stats` (optional) receives access counts.
  std::vector<fuzzy::RankedEntity> TopKConjunction(
      const std::vector<std::string>& predicates, size_t k,
      fuzzy::TaStats* stats = nullptr);

  /// Same query answered by a full scan, for verification/ablation.
  std::vector<fuzzy::RankedEntity> TopKConjunctionFullScan(
      const std::vector<std::string>& predicates, size_t k);

  bool Contains(const std::string& predicate) const;
  size_t size() const;
  /// Drops every cached list. NOT safe concurrently with other methods;
  /// invalidates all references previously returned by Degrees().
  void Clear();
  /// Hit/miss counters (monotone; Clear() does not reset them).
  CacheStats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

 private:
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, std::vector<double>> map;
  };

  const Shard& ShardFor(const std::string& predicate) const;
  Shard& ShardFor(const std::string& predicate) {
    return const_cast<Shard&>(
        static_cast<const DegreeCache*>(this)->ShardFor(predicate));
  }

  /// Computes the dense degree list for one predicate (no locks held).
  std::vector<double> ComputeDegrees(const std::string& predicate) const;

  const OpineDb* db_;
  std::array<Shard, kNumShards> shards_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
};

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_DEGREE_CACHE_H_
