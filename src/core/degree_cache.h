#ifndef OPINEDB_CORE_DEGREE_CACHE_H_
#define OPINEDB_CORE_DEGREE_CACHE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "fuzzy/threshold_algorithm.h"

namespace opinedb::core {

/// Degree-of-truth cache (Section 3.3): "the degrees of truth for
/// variations in the linguistic domain of each subjective attribute can
/// be pre-computed so that they can simply be looked up at query time.
/// [Degrees for other phrases], once computed, can also be indexed."
///
/// A DegreeCache materializes, per predicate, the dense list of degrees
/// of truth over all entities. Cached lists also unlock Fagin's
/// Threshold Algorithm for conjunctive top-k without scoring every
/// entity.
class DegreeCache {
 public:
  explicit DegreeCache(const OpineDb* db) : db_(db) {}

  /// Per-entity degrees for `predicate`; computed once, then served from
  /// the cache.
  const std::vector<double>& Degrees(const std::string& predicate);

  /// Pre-computes the degrees for every marker phrase of every
  /// subjective attribute (the "variations in the linguistic domain"
  /// precomputation); returns the number of lists materialized.
  size_t PrecomputeMarkers();

  /// Conjunctive fuzzy top-k over cached degree lists using the
  /// Threshold Algorithm. `stats` (optional) receives access counts.
  std::vector<fuzzy::RankedEntity> TopKConjunction(
      const std::vector<std::string>& predicates, size_t k,
      fuzzy::TaStats* stats = nullptr);

  /// Same query answered by a full scan, for verification/ablation.
  std::vector<fuzzy::RankedEntity> TopKConjunctionFullScan(
      const std::vector<std::string>& predicates, size_t k);

  bool Contains(const std::string& predicate) const {
    return cache_.count(predicate) > 0;
  }
  size_t size() const { return cache_.size(); }
  void Clear() { cache_.clear(); }

 private:
  const OpineDb* db_;
  std::unordered_map<std::string, std::vector<double>> cache_;
};

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_DEGREE_CACHE_H_
