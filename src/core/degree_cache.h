#ifndef OPINEDB_CORE_DEGREE_CACHE_H_
#define OPINEDB_CORE_DEGREE_CACHE_H_

#include <atomic>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "core/engine.h"
#include "fuzzy/threshold_algorithm.h"

namespace opinedb::core {

/// Degree-of-truth cache (Section 3.3): "the degrees of truth for
/// variations in the linguistic domain of each subjective attribute can
/// be pre-computed so that they can simply be looked up at query time.
/// [Degrees for other phrases], once computed, can also be indexed."
///
/// A DegreeCache materializes, per predicate, the dense list of degrees
/// of truth over all entities. Cached lists also unlock Fagin's
/// Threshold Algorithm for conjunctive top-k without scoring every
/// entity.
///
/// Thread safety: every method except Clear() may be called from any
/// number of threads concurrently. The cache is sharded by predicate
/// hash; lookups take a shard's shared lock, insertions its exclusive
/// lock, and degrees are computed outside all locks (losing an insert
/// race is harmless — the computation is deterministic, so both values
/// are bit-identical). References returned by Degrees() stay valid until
/// Clear() or RefreshAfterIngest(): the shard maps are node-based and
/// entries are never erased by the read path. Clear() and
/// RefreshAfterIngest() require external synchronization (no concurrent
/// readers and no outstanding references) — the engine provides it with
/// its exclusive reconfiguration lock.
class DegreeCache {
 public:
  /// Cumulative cache traffic, for observability.
  struct CacheStats {
    size_t hits = 0;
    size_t misses = 0;
  };

  /// `num_shards` = 0 (default) adopts the engine's
  /// EngineOptions::degree_cache_shards; any positive value overrides
  /// it. The count is fixed for the cache's lifetime.
  explicit DegreeCache(const OpineDb* db, size_t num_shards = 0);

  /// Lock-striping width this cache was built with.
  size_t num_shards() const { return shards_.size(); }

  /// Per-entity degrees for `predicate`; computed once (in parallel over
  /// entities when the engine has a pool), then served from the cache.
  const std::vector<double>& Degrees(const std::string& predicate);

  /// Deadline-aware variant: returns the resident list, or computes it
  /// if the deadline has not expired. Returns nullptr when the deadline
  /// expired before or during the computation — a partially computed
  /// list is discarded, never cached, so the cache only ever holds
  /// complete bit-exact lists.
  const std::vector<double>* TryDegrees(const std::string& predicate,
                                        const QueryDeadline* deadline);

  /// Resident list for `predicate`, or nullptr if not cached yet. Never
  /// computes and does not touch the hit/miss counters; planners use it
  /// to test TA eligibility without perturbing cache stats.
  const std::vector<double>* Peek(const std::string& predicate) const;

  /// Pre-computes the degrees for every marker phrase of every
  /// subjective attribute (the "variations in the linguistic domain"
  /// precomputation); returns the number of lists materialized. Markers
  /// fan out across the engine's worker pool.
  size_t PrecomputeMarkers();

  /// Conjunctive fuzzy top-k over cached degree lists using the
  /// Threshold Algorithm. `stats` (optional) receives access counts.
  /// `deadline` (optional) is polled per TA round and while
  /// materializing non-resident lists; on expiry the best top-k among
  /// the entities aggregated so far is returned (exact scores, possibly
  /// missing better entities — the caller flags the result partial).
  std::vector<fuzzy::RankedEntity> TopKConjunction(
      const std::vector<std::string>& predicates, size_t k,
      fuzzy::TaStats* stats = nullptr,
      const QueryDeadline* deadline = nullptr);

  /// Same query answered by a full scan, for verification/ablation.
  std::vector<fuzzy::RankedEntity> TopKConjunctionFullScan(
      const std::vector<std::string>& predicates, size_t k);

  /// Ingest-path maintenance (instead of Clear()): brings every
  /// resident list up to date with the engine's post-ingest tables
  /// while keeping untouched entities' slots — and therefore the warm
  /// working set — intact. Per entry: the predicate is re-interpreted;
  /// if the interpretation is unchanged only `touched` entities are
  /// rescored (ingest is additive, so untouched slots are already
  /// bit-exact); if it changed (the variation table or idf grew) the
  /// whole list is recomputed; if it degraded the entry is dropped.
  /// Bumps the epoch. Requires the same external exclusion as Clear().
  /// Returns the number of entries refreshed in place.
  size_t RefreshAfterIngest(const std::vector<text::EntityId>& touched);

  bool Contains(const std::string& predicate) const;
  size_t size() const;
  /// Drops every cached list and bumps the epoch. NOT safe concurrently
  /// with other methods; invalidates all references previously returned
  /// by Degrees(). OpineDb::Reaggregate calls this under the engine's
  /// reconfiguration lock, which provides exactly that exclusion.
  void Clear();
  /// Invalidation generation: incremented by every Clear(). Lets
  /// long-lived borrowers detect that references they took have been
  /// invalidated by a rebuild.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  /// Hit/miss counters (monotone; Clear() does not reset them).
  CacheStats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

 private:
  /// A resident degree list plus the interpretation it was computed
  /// from — RefreshAfterIngest compares against a fresh interpretation
  /// to decide between touched-slot patching and full recomputation.
  struct CachedList {
    std::vector<double> degrees;
    PredicateInterpretation interpretation;
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, CachedList> map;
  };

  const Shard& ShardFor(const std::string& predicate) const;
  Shard& ShardFor(const std::string& predicate) {
    return const_cast<Shard&>(
        static_cast<const DegreeCache*>(this)->ShardFor(predicate));
  }

  /// Computes the dense degree list for one predicate (no locks held).
  /// Returns nullopt when `deadline` expired before every entity was
  /// scored (the incomplete list must not be cached).
  std::optional<CachedList> ComputeDegrees(
      const std::string& predicate, const QueryDeadline* deadline) const;

  const OpineDb* db_;
  /// Sized once at construction; never resized (references into shard
  /// maps must stay valid until Clear()).
  std::vector<Shard> shards_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_DEGREE_CACHE_H_
