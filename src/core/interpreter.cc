#include "core/interpreter.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace opinedb::core {

Interpreter::Interpreter(const SubjectiveSchema* schema,
                         const SubjectiveTables* tables,
                         const embedding::PhraseEmbedder* embedder,
                         const index::InvertedIndex* review_index,
                         const std::vector<double>* review_sentiment,
                         InterpreterOptions options)
    : schema_(schema),
      tables_(tables),
      embedder_(embedder),
      review_index_(review_index),
      review_sentiment_(review_sentiment),
      options_(options) {
  BuildVariationTable();
}

void Interpreter::BuildVariationTable() {
  // Each extraction whose phrase landed on a marker is a linguistic
  // variation of that attribute; markers themselves are variations too.
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const auto& markers = schema_->attributes[a].summary_type.markers;
    for (size_t m = 0; m < markers.size(); ++m) {
      Variation v;
      v.attribute = static_cast<int>(a);
      v.marker = static_cast<int>(m);
      v.rep = embedder_->Represent(markers[m]);
      variations_.push_back(std::move(v));
      seen_variations_.emplace(static_cast<int>(a), markers[m]);
    }
  }
  // The extraction-driven half is shared with the ingest path: a fresh
  // build is just an append starting from extraction 0, so incremental
  // growth stays bit-identical to reconstruction by definition.
  AppendNewExtractions();
}

void Interpreter::AppendNewExtractions() {
  for (size_t i = indexed_extractions_; i < tables_->extractions.size();
       ++i) {
    const int a = tables_->extraction_attribute[i];
    const int m = tables_->extraction_marker[i];
    if (a < 0 || m < 0) continue;
    if (tables_->extraction_margin[i] < options_.variation_margin) continue;
    const std::string& phrase = tables_->extractions[i].phrase;
    if (!seen_variations_.emplace(a, phrase).second) continue;
    Variation v;
    v.attribute = a;
    v.marker = m;
    v.rep = embedder_->Represent(phrase);
    variations_.push_back(std::move(v));
  }
  indexed_extractions_ = tables_->extractions.size();
  RebuildReviewStatistics();
}

void Interpreter::RebuildReviewStatistics() {
  // Per-review extraction lists + attribute idf. Integer-only work over
  // the full relation — cheap enough to redo from scratch on every
  // ingest batch, which keeps it trivially identical to a fresh build.
  size_t num_reviews = 0;
  for (const auto& opinion : tables_->extractions) {
    num_reviews = std::max(num_reviews,
                           static_cast<size_t>(opinion.review) + 1);
  }
  num_reviews = std::max(num_reviews, review_index_->num_documents());
  review_extractions_.assign(num_reviews, {});
  std::vector<std::set<int>> review_attrs(num_reviews);
  for (size_t i = 0; i < tables_->extractions.size(); ++i) {
    const auto review = tables_->extractions[i].review;
    review_extractions_[review].push_back(i);
    if (tables_->extraction_attribute[i] >= 0) {
      review_attrs[review].insert(tables_->extraction_attribute[i]);
    }
  }
  std::vector<int> attr_review_count(schema_->num_attributes(), 0);
  for (const auto& attrs : review_attrs) {
    for (int a : attrs) ++attr_review_count[a];
  }
  attribute_idf_.resize(schema_->num_attributes());
  const double n = static_cast<double>(std::max<size_t>(1, num_reviews));
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    attribute_idf_[a] = std::log(n / (1.0 + attr_review_count[a]));
    // Attributes mentioned everywhere still deserve some weight.
    attribute_idf_[a] = std::max(attribute_idf_[a], 0.1);
  }
}

PredicateInterpretation Interpreter::InterpretWord2VecOnly(
    const std::string& predicate) const {
  OPINEDB_FAULT("interpret.w2v");
  obs::TraceSpan span("interpret.word2vec");
  span.AddAttribute("variations", static_cast<uint64_t>(variations_.size()));
  OPINEDB_METRIC_COUNT("interpreter.w2v_scans", 1);
  PredicateInterpretation result;
  result.method = InterpretMethod::kWord2Vec;
  const embedding::Vec rep = embedder_->Represent(predicate);
  double best = -1.0;
  const Variation* best_v = nullptr;
  for (const auto& v : variations_) {
    const double s = embedding::Cosine(rep, v.rep);
    if (s > best) {
      best = s;
      best_v = &v;
    }
  }
  if (best_v != nullptr) {
    AtomInterpretation atom;
    atom.attribute = best_v->attribute;
    atom.marker = best_v->marker;
    atom.score = best;
    result.atoms.push_back(atom);
    // Confidence is the similarity scaled by in-vocabulary coverage of
    // the content words: a predicate dominated by words the corpus has
    // never seen ("good for motorcyclists") cannot be interpreted
    // confidently no matter how well its known words match.
    size_t content = 0;
    size_t known = 0;
    for (const auto& token : tokenizer_.Tokenize(predicate)) {
      if (text::IsStopword(token)) continue;
      ++content;
      if (embedder_->embeddings().Get(token) != nullptr) ++known;
    }
    const double coverage =
        content == 0 ? 0.0
                     : static_cast<double>(known) /
                           static_cast<double>(content);
    result.confidence = best * coverage;
    span.AddAttribute("best_similarity", best);
    span.AddAttribute("coverage", coverage);
  }
  span.AddAttribute("confidence", result.confidence);
  return result;
}

PredicateInterpretation Interpreter::InterpretCooccurrenceOnly(
    const std::string& predicate) const {
  OPINEDB_FAULT("interpret.cooccur");
  obs::TraceSpan span("interpret.cooccurrence");
  OPINEDB_METRIC_COUNT("interpreter.cooccur_scans", 1);
  PredicateInterpretation result;
  result.method = InterpretMethod::kCooccurrence;
  const auto query_tokens = tokenizer_.Tokenize(predicate);
  // Top-k positive reviews by BM25(d, q) * senti(d) (paper Eq. 3).
  const auto top = review_index_->TopKWeighted(
      query_tokens, options_.cooccur_top_k, *review_sentiment_);
  span.AddAttribute("bm25_candidates", static_cast<uint64_t>(top.size()));
  OPINEDB_METRIC_COUNT("interpreter.bm25_candidates", top.size());
  if (top.empty()) return result;

  // Support gate: the predicate must actually occur in the mined
  // reviews. We require its most distinctive (highest-idf) content word
  // to appear in a reasonable share of the supporting reviews; otherwise
  // BM25 is merely matching generic words and the correlation is noise.
  std::string distinctive;
  double best_idf = -1.0;
  for (const auto& token : query_tokens) {
    if (text::IsStopword(token)) continue;
    const double idf = review_index_->Idf(token);
    if (idf > best_idf) {
      best_idf = idf;
      distinctive = token;
    }
  }
  if (!distinctive.empty()) {
    size_t containing = 0;
    for (const auto& scored : top) {
      if (review_index_->TermFrequency(scored.doc, distinctive) > 0) {
        ++containing;
      }
    }
    if (containing < (top.size() + 1) / 2) {
      span.AddAttribute("supported", false);
      return result;  // Unsupported.
    }
  }

  // Tally attribute frequencies and per-attribute marker frequencies over
  // extractions in the supporting reviews.
  std::map<int, double> attr_freq;
  std::map<std::pair<int, int>, double> marker_freq;
  std::vector<std::set<int>> attrs_per_review;
  for (const auto& scored : top) {
    if (static_cast<size_t>(scored.doc) >= review_extractions_.size()) {
      continue;
    }
    std::set<int> attrs_here;
    for (size_t i : review_extractions_[scored.doc]) {
      const int a = tables_->extraction_attribute[i];
      const int m = tables_->extraction_marker[i];
      if (a < 0) continue;
      attr_freq[a] += 1.0;
      attrs_here.insert(a);
      if (m >= 0) marker_freq[{a, m}] += 1.0;
    }
    attrs_per_review.push_back(std::move(attrs_here));
  }
  // Rank attributes by freq_k(A) * idf(A).
  std::vector<std::pair<double, int>> ranked;
  for (const auto& [a, freq] : attr_freq) {
    ranked.emplace_back(freq * attribute_idf_[a], a);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& x, const auto& y) {
              if (x.first != y.first) return x.first > y.first;
              return x.second < y.second;
            });
  for (size_t r = 0; r < ranked.size() && r < options_.cooccur_top_n; ++r) {
    const int a = ranked[r].second;
    // Best marker of this attribute among the supporting reviews.
    int best_m = -1;
    double best_f = 0.0;
    for (const auto& [am, f] : marker_freq) {
      if (am.first == a && f > best_f) {
        best_f = f;
        best_m = am.second;
      }
    }
    if (best_m < 0) continue;
    AtomInterpretation atom;
    atom.attribute = a;
    atom.marker = best_m;
    atom.score = ranked[r].first;
    result.atoms.push_back(atom);
  }
  if (!result.atoms.empty()) {
    result.confidence = attr_freq[result.atoms[0].attribute];
  }
  // Conjunction when the correlated attributes usually appear together.
  if (result.atoms.size() >= 2 && !attrs_per_review.empty()) {
    size_t both = 0;
    for (const auto& attrs : attrs_per_review) {
      if (attrs.count(result.atoms[0].attribute) > 0 &&
          attrs.count(result.atoms[1].attribute) > 0) {
        ++both;
      }
    }
    result.conjunctive =
        static_cast<double>(both) / attrs_per_review.size() >=
        options_.conjunction_fraction;
  }
  span.AddAttribute("confidence", result.confidence);
  span.AddAttribute("atoms", static_cast<uint64_t>(result.atoms.size()));
  span.AddAttribute("conjunctive", result.conjunctive);
  return result;
}

PredicateInterpretation Interpreter::Interpret(
    const std::string& predicate, const QueryDeadline* deadline) const {
  // One span per cascade run, annotated with every Fig. 5 threshold
  // decision; the per-stage children record their own internals.
  obs::TraceSpan span("interpret.predicate");
  span.AddAttribute("predicate", predicate);
  OPINEDB_METRIC_COUNT("interpreter.calls", 1);
  PredicateInterpretation result;
  // Expired before any stage ran: the scoring checkpoints downstream
  // will stop the query anyway, so skip straight to the cheap stage.
  if (deadline != nullptr && deadline->Expired()) {
    span.AddAttribute("stage", "text_fallback");
    span.AddAttribute("deadline_expired", true);
    return result;
  }

  // Each stage degrades instead of aborting: a stage that throws is
  // treated as "no interpretation at this stage" and the cascade falls
  // through (marker match → co-occurrence → plain BM25 retrieval),
  // with the result marked degraded.
  bool degraded = false;

  // Stage 1: word2vec direct match. High confidence wins outright.
  PredicateInterpretation w2v;
  try {
    w2v = InterpretWord2VecOnly(predicate);
  } catch (const std::exception&) {
    degraded = true;
    OPINEDB_METRIC_COUNT("engine.fallback.interpret_w2v", 1);
  }
  const bool w2v_ok =
      !w2v.atoms.empty() && w2v.confidence >= options_.w2v_threshold;
  span.AddAttribute("w2v_confidence", w2v.confidence);
  span.AddAttribute("w2v_threshold", options_.w2v_threshold);
  span.AddAttribute("w2v_high_confidence", options_.w2v_high_confidence);
  if (w2v_ok && w2v.confidence >= options_.w2v_high_confidence) {
    result = std::move(w2v);
  } else if (deadline != nullptr && deadline->Expired()) {
    // No budget left for the expensive mining stage; keep the lexical
    // match if it cleared θ1, else leave it to text retrieval.
    span.AddAttribute("deadline_expired", true);
    if (w2v_ok) result = std::move(w2v);
  } else {
    // Stage 2: co-occurrence mining. In the mid-confidence band a
    // strongly supported correlation overrides the lexical match ("ideal
    // for business travelers" matches service words lexically but
    // co-occurs with location praise).
    PredicateInterpretation cooc;
    bool cooc_failed = false;
    try {
      cooc = InterpretCooccurrenceOnly(predicate);
    } catch (const std::exception&) {
      degraded = true;
      cooc_failed = true;
      OPINEDB_METRIC_COUNT("engine.fallback.interpret_cooccur", 1);
    }
    const bool cooc_ok =
        !cooc_failed && !cooc.atoms.empty() &&
        cooc.confidence >= options_.cooccur_threshold;
    span.AddAttribute("cooccur_confidence", cooc.confidence);
    span.AddAttribute("cooccur_threshold", options_.cooccur_threshold);
    if (w2v_ok) {
      const bool strong_cooccur =
          cooc_ok && cooc.confidence >= 8.0 * options_.cooccur_threshold;
      span.AddAttribute("cooccur_override", strong_cooccur);
      result = strong_cooccur ? std::move(cooc) : std::move(w2v);
    } else if (cooc_ok) {
      result = std::move(cooc);
    } else {
      // Stage 3: leave it to text retrieval.
      result = PredicateInterpretation();
      result.method = InterpretMethod::kTextFallback;
    }
  }
  result.degraded = degraded;
  if (degraded) span.AddAttribute("degraded", true);

  const char* stage = "text_fallback";
  if (result.method == InterpretMethod::kWord2Vec) {
    stage = "word2vec";
    OPINEDB_METRIC_COUNT("interpreter.stage_word2vec", 1);
  } else if (result.method == InterpretMethod::kCooccurrence) {
    stage = "cooccurrence";
    OPINEDB_METRIC_COUNT("interpreter.stage_cooccurrence", 1);
  } else {
    OPINEDB_METRIC_COUNT("interpreter.stage_text_fallback", 1);
  }
  span.AddAttribute("stage", stage);
  span.AddAttribute("atoms", static_cast<uint64_t>(result.atoms.size()));
  span.AddAttribute("conjunctive", result.conjunctive);
  return result;
}

}  // namespace opinedb::core
