#include "core/personalize.h"

#include <algorithm>
#include <cmath>

namespace opinedb::core {

namespace {

/// Fraction of a summary's mass lying on positive-sentiment markers,
/// discounted by evidence volume (one phrase is weak evidence).
double PositiveMass(const OpineDb& db, const MarkerSummary& summary) {
  const double total = summary.total_count();
  if (total <= 0.0) return 0.0;
  double positive = 0.0;
  for (size_t m = 0; m < summary.num_markers(); ++m) {
    if (db.analyzer().ScorePhrase(summary.type().markers[m]) > 0.0) {
      positive += summary.count(m);
    }
  }
  const double fraction = positive / total;
  const double support = -std::expm1(-0.4 * total);
  return fraction * support;
}

}  // namespace

UserProfile UserProfile::FromWeights(
    const OpineDb& db,
    const std::vector<std::pair<std::string, double>>& weights) {
  UserProfile profile;
  profile.attribute_weights.assign(db.schema().num_attributes(), 0.0);
  for (const auto& [name, weight] : weights) {
    const int attribute = db.schema().AttributeIndex(name);
    if (attribute >= 0) {
      profile.attribute_weights[attribute] =
          std::clamp(weight, 0.0, 1.0);
    }
  }
  return profile;
}

double ProfileAffinity(const OpineDb& db, const UserProfile& profile,
                       text::EntityId entity) {
  double weighted = 0.0;
  double weight_sum = 0.0;
  const size_t n = std::min(profile.attribute_weights.size(),
                            db.schema().num_attributes());
  for (size_t a = 0; a < n; ++a) {
    const double w = profile.attribute_weights[a];
    if (w <= 0.0) continue;
    weighted += w * PositiveMass(db, db.summary(a, entity));
    weight_sum += w;
  }
  return weight_sum > 0.0 ? weighted / weight_sum : 0.0;
}

std::vector<RankedResult> PersonalizeResults(
    const OpineDb& db, const UserProfile& profile,
    const std::vector<RankedResult>& results, double blend) {
  std::vector<RankedResult> personalized = results;
  for (auto& result : personalized) {
    const double affinity = ProfileAffinity(db, profile, result.entity);
    result.score = (1.0 - blend) * result.score + blend * affinity;
  }
  std::sort(personalized.begin(), personalized.end(),
            [](const RankedResult& a, const RankedResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.entity < b.entity;
            });
  return personalized;
}

Result<std::vector<UnexpectedFinding>> FindUnexpected(
    const OpineDb& db, const storage::Table& objective,
    const std::string& column, size_t k) {
  const int col = objective.ColumnIndex(column);
  if (col < 0) return Status::NotFound("column " + column);
  const size_t n = objective.num_rows();
  if (n != db.corpus().num_entities()) {
    return Status::InvalidArgument(
        "objective table rows must match entities");
  }
  // Percentile of the numeric column per entity.
  std::vector<double> values(n);
  for (size_t e = 0; e < n; ++e) {
    const auto& cell = objective.at(e, col);
    if (cell.is_null() || cell.type() == storage::ValueType::kString) {
      return Status::InvalidArgument("column " + column +
                                     " must be numeric");
    }
    values[e] = cell.AsNumber();
  }
  std::vector<double> percentile(n);
  for (size_t e = 0; e < n; ++e) {
    size_t below = 0;
    for (size_t other = 0; other < n; ++other) {
      if (values[other] < values[e]) ++below;
    }
    percentile[e] = n > 1 ? static_cast<double>(below) /
                                static_cast<double>(n - 1)
                          : 0.5;
  }

  std::vector<UnexpectedFinding> findings;
  for (size_t e = 0; e < n; ++e) {
    for (size_t a = 0; a < db.schema().num_attributes(); ++a) {
      const auto& summary = db.summary(a, static_cast<text::EntityId>(e));
      if (summary.total_count() < 3.0) continue;  // Too little evidence.
      UnexpectedFinding finding;
      finding.entity = static_cast<text::EntityId>(e);
      finding.attribute = static_cast<int>(a);
      finding.objective_percentile = percentile[e];
      finding.subjective_score = PositiveMass(db, summary);
      finding.surprise =
          finding.objective_percentile - finding.subjective_score;
      const auto& name = db.corpus().entity_name(finding.entity);
      const auto& attribute = db.schema().attributes[a].name;
      if (finding.surprise > 0.0) {
        finding.description = name + " is at the " +
                              std::to_string(static_cast<int>(
                                  100 * finding.objective_percentile)) +
                              "th " + column + " percentile but reviews " +
                              "rate its " + attribute + " poorly";
      } else {
        finding.description = name + " is at the " +
                              std::to_string(static_cast<int>(
                                  100 * finding.objective_percentile)) +
                              "th " + column + " percentile yet reviews " +
                              "praise its " + attribute;
      }
      findings.push_back(std::move(finding));
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const UnexpectedFinding& a, const UnexpectedFinding& b) {
              return std::abs(a.surprise) > std::abs(b.surprise);
            });
  if (findings.size() > k) findings.resize(k);
  return findings;
}

}  // namespace opinedb::core
