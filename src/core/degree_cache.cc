#include "core/degree_cache.h"

namespace opinedb::core {

const std::vector<double>& DegreeCache::Degrees(
    const std::string& predicate) {
  auto it = cache_.find(predicate);
  if (it != cache_.end()) return it->second;
  const size_t n = db_->corpus().num_entities();
  std::vector<double> degrees(n);
  // One interpretation for the predicate, shared across entities (the
  // same work ExecuteQuery does per query, amortized here forever).
  const auto interpretation = db_->interpreter().Interpret(predicate);
  const embedding::Vec rep = db_->phrase_embedder().Represent(predicate);
  const double senti = db_->analyzer().ScorePhrase(predicate);
  for (size_t e = 0; e < n; ++e) {
    const auto entity = static_cast<text::EntityId>(e);
    if (interpretation.method == InterpretMethod::kTextFallback ||
        interpretation.atoms.empty()) {
      degrees[e] = db_->TextFallbackDegree(predicate, entity);
      continue;
    }
    double acc = 0.0;
    bool first = true;
    for (const auto& atom : interpretation.atoms) {
      const double d = db_->AtomDegreeOfTruth(atom, entity, rep, senti);
      if (first) {
        acc = d;
        first = false;
      } else if (interpretation.conjunctive) {
        acc = fuzzy::And(db_->options().variant, acc, d);
      } else {
        acc = fuzzy::Or(db_->options().variant, acc, d);
      }
    }
    degrees[e] = acc;
  }
  return cache_.emplace(predicate, std::move(degrees)).first->second;
}

size_t DegreeCache::PrecomputeMarkers() {
  size_t materialized = 0;
  for (const auto& attribute : db_->schema().attributes) {
    for (const auto& marker : attribute.summary_type.markers) {
      if (!Contains(marker)) {
        Degrees(marker);
        ++materialized;
      }
    }
  }
  return materialized;
}

std::vector<fuzzy::RankedEntity> DegreeCache::TopKConjunction(
    const std::vector<std::string>& predicates, size_t k,
    fuzzy::TaStats* stats) {
  std::vector<std::vector<double>> lists;
  lists.reserve(predicates.size());
  for (const auto& predicate : predicates) {
    lists.push_back(Degrees(predicate));
  }
  return fuzzy::ThresholdAlgorithmTopK(lists, k, db_->options().variant,
                                       stats);
}

std::vector<fuzzy::RankedEntity> DegreeCache::TopKConjunctionFullScan(
    const std::vector<std::string>& predicates, size_t k) {
  std::vector<std::vector<double>> lists;
  lists.reserve(predicates.size());
  for (const auto& predicate : predicates) {
    lists.push_back(Degrees(predicate));
  }
  return fuzzy::FullScanTopK(lists, k, db_->options().variant);
}

}  // namespace opinedb::core
