#include "core/degree_cache.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

#include "common/fault.h"
#include "core/columnar.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace opinedb::core {

namespace {

/// The columnar binding shared by ComputeDegrees and RefreshAfterIngest:
/// one ConditionScorer per (interpretation, rep) when the store can
/// evaluate it, otherwise nullopt (row path). The returned scorer holds
/// a pointer to `rep`, which must outlive it.
std::optional<ConditionScorer> BindScorer(
    const OpineDb& db, const PredicateInterpretation& interpretation,
    const embedding::Vec& rep, double senti) {
  std::optional<ConditionScorer> scorer;
  if (const ColumnarSummaryStore* store = db.columnar_store();
      store != nullptr && db.options().use_markers &&
      interpretation.method != InterpretMethod::kTextFallback &&
      !interpretation.atoms.empty()) {
    scorer.emplace(*store, interpretation, rep, senti, db.options().variant,
                   db.has_membership_model() ? &db.membership_model()
                                             : nullptr);
    if (!scorer->ok()) scorer.reset();
  }
  return scorer;
}

/// One entity's degree under one bound interpretation — the single
/// scoring step shared by ComputeDegrees' dense sweep and
/// RefreshAfterIngest's slot patching, factored out so the two paths
/// cannot drift apart (the refresh must write exactly the double a
/// fresh materialization would).
double ScoreEntityOnce(const OpineDb& db, const std::string& predicate,
                       const PredicateInterpretation& interpretation,
                       const std::optional<ConditionScorer>& scorer,
                       const embedding::Vec& rep, double senti, size_t e) {
  const auto entity = static_cast<text::EntityId>(e);
  if (interpretation.method == InterpretMethod::kTextFallback ||
      interpretation.atoms.empty()) {
    return db.TextFallbackDegree(predicate, entity);
  }
  if (scorer.has_value()) return scorer->Score(e);
  double acc = 0.0;
  bool first = true;
  for (const auto& atom : interpretation.atoms) {
    const double d = db.AtomDegreeOfTruth(atom, entity, rep, senti);
    if (first) {
      acc = d;
      first = false;
    } else if (interpretation.conjunctive) {
      acc = fuzzy::And(db.options().variant, acc, d);
    } else {
      acc = fuzzy::Or(db.options().variant, acc, d);
    }
  }
  return acc;
}

}  // namespace

DegreeCache::DegreeCache(const OpineDb* db, size_t num_shards)
    : db_(db),
      shards_(num_shards > 0
                  ? num_shards
                  : std::max<size_t>(1, db->options().degree_cache_shards)) {}

const DegreeCache::Shard& DegreeCache::ShardFor(
    const std::string& predicate) const {
  return shards_[std::hash<std::string>{}(predicate) % shards_.size()];
}

std::optional<DegreeCache::CachedList> DegreeCache::ComputeDegrees(
    const std::string& predicate, const QueryDeadline* deadline) const {
  OPINEDB_FAULT("cache.compute");
  const size_t n = db_->corpus().num_entities();
  obs::TraceSpan span("degree_cache.compute");
  span.AddAttribute("predicate", predicate);
  span.AddAttribute("entities", static_cast<uint64_t>(n));
  std::vector<double> degrees(n);
  // One interpretation for the predicate, shared across entities (the
  // same work ExecuteQuery does per query, amortized here forever).
  auto interpretation = db_->interpreter().Interpret(predicate, deadline);
  if (interpretation.degraded) {
    // An interpreter stage failed underneath us. A list computed from a
    // degraded interpretation must never become resident — it would
    // outlive the failure and keep serving degraded degrees forever.
    // Throwing routes the caller to its local-compute fallback path.
    throw std::runtime_error("degree_cache: degraded interpretation for '" +
                             predicate + "' is not cacheable");
  }
  const embedding::Vec rep = db_->phrase_embedder().Represent(predicate);
  const double senti = db_->analyzer().ScorePhrase(predicate);
  // Completion is counted only on the deadline path, so the fault-free
  // loop below is exactly the pre-deadline hot path.
  const bool deadline_active = deadline != nullptr && deadline->active();
  std::atomic<size_t> scored{0};
  // Columnar plane: one binding per list materialization, then the
  // per-entity loop below becomes a contiguous SoA sweep emitting the
  // same doubles as the row walk (same fault/metric sites too).
  const std::optional<ConditionScorer> scorer =
      BindScorer(*db_, interpretation, rep, senti);
  auto score_range = [&](size_t begin, size_t end) {
    size_t e = begin;
    for (; e < end; ++e) {
      if (deadline_active && (e & 31) == 0 && e != begin &&
          deadline->Expired()) {
        break;
      }
      degrees[e] = ScoreEntityOnce(*db_, predicate, interpretation, scorer,
                                   rep, senti, e);
    }
    if (deadline_active) {
      scored.fetch_add(e - begin, std::memory_order_relaxed);
    }
  };
  // Each entity writes only its own slot, so the parallel loop is
  // bit-identical to serial.
  std::function<bool()> stop = [deadline] { return deadline->Expired(); };
  const std::function<bool()>* should_stop =
      deadline_active ? &stop : nullptr;
  if (ThreadPool* pool = db_->pool()) {
    pool->ParallelFor(0, n, score_range, /*min_grain=*/8, should_stop);
  } else if (should_stop == nullptr || !(*should_stop)()) {
    score_range(0, n);
  }
  if (deadline_active && scored.load(std::memory_order_relaxed) != n) {
    span.AddAttribute("aborted", true);
    return std::nullopt;  // Incomplete: must not be cached.
  }
  return CachedList{std::move(degrees), std::move(interpretation)};
}

const std::vector<double>& DegreeCache::Degrees(
    const std::string& predicate) {
  // Without a deadline the computation always completes (or throws), so
  // the pointer is never null.
  return *TryDegrees(predicate, nullptr);
}

const std::vector<double>* DegreeCache::TryDegrees(
    const std::string& predicate, const QueryDeadline* deadline) {
  OPINEDB_FAULT("cache.lookup");
  Shard& shard = ShardFor(predicate);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(predicate);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      OPINEDB_METRIC_COUNT("degree_cache.hits", 1);
      return &it->second.degrees;
    }
  }
  if (deadline != nullptr && deadline->Expired()) return nullptr;
  // Expensive; no locks held.
  auto computed = ComputeDegrees(predicate, deadline);
  if (!computed.has_value()) return nullptr;  // Deadline hit mid-compute.
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.emplace(predicate, std::move(*computed));
  if (inserted) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    OPINEDB_METRIC_COUNT("degree_cache.misses", 1);
  } else {
    // Lost an insert race; the resident value is bit-identical.
    hits_.fetch_add(1, std::memory_order_relaxed);
    OPINEDB_METRIC_COUNT("degree_cache.hits", 1);
  }
  return &it->second.degrees;
}

size_t DegreeCache::PrecomputeMarkers() {
  obs::TraceSpan span("degree_cache.precompute_markers");
  // Collect the unique markers not yet cached, in schema order, then fan
  // the (expensive) per-marker computations out across the pool. Degrees
  // is thread-safe, and a nested per-entity ParallelFor inside a worker
  // degrades to inline execution, so this parallelizes across markers.
  std::vector<const std::string*> pending;
  std::unordered_set<std::string_view> seen;
  for (const auto& attribute : db_->schema().attributes) {
    for (const auto& marker : attribute.summary_type.markers) {
      if (Contains(marker) || !seen.insert(marker).second) continue;
      pending.push_back(&marker);
    }
  }
  auto materialize = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) Degrees(*pending[i]);
  };
  if (ThreadPool* pool = db_->pool()) {
    pool->ParallelFor(0, pending.size(), materialize);
  } else {
    materialize(0, pending.size());
  }
  span.AddAttribute("markers", static_cast<uint64_t>(pending.size()));
  OPINEDB_METRIC_COUNT("degree_cache.markers_precomputed", pending.size());
  return pending.size();
}

std::vector<fuzzy::RankedEntity> DegreeCache::TopKConjunction(
    const std::vector<std::string>& predicates, size_t k,
    fuzzy::TaStats* stats, const QueryDeadline* deadline) {
  // Borrow the resident lists — references stay valid until Clear(), so
  // the Threshold Algorithm reads them in place without copying.
  std::vector<const std::vector<double>*> lists;
  lists.reserve(predicates.size());
  for (const auto& predicate : predicates) {
    const std::vector<double>* list = TryDegrees(predicate, deadline);
    // A list the deadline prevented from materializing leaves no sound
    // aggregate to rank on; return empty (the caller flags partial).
    if (list == nullptr) return {};
    lists.push_back(list);
  }
  return fuzzy::ThresholdAlgorithmTopK(lists, k, db_->options().variant,
                                       stats, deadline);
}

std::vector<fuzzy::RankedEntity> DegreeCache::TopKConjunctionFullScan(
    const std::vector<std::string>& predicates, size_t k) {
  std::vector<const std::vector<double>*> lists;
  lists.reserve(predicates.size());
  for (const auto& predicate : predicates) {
    lists.push_back(&Degrees(predicate));
  }
  return fuzzy::FullScanTopK(lists, k, db_->options().variant);
}

const std::vector<double>* DegreeCache::Peek(
    const std::string& predicate) const {
  const Shard& shard = ShardFor(predicate);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(predicate);
  return it == shard.map.end() ? nullptr : &it->second.degrees;
}

bool DegreeCache::Contains(const std::string& predicate) const {
  const Shard& shard = ShardFor(predicate);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.map.count(predicate) > 0;
}

size_t DegreeCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

void DegreeCache::Clear() {
  for (auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map.clear();
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

size_t DegreeCache::RefreshAfterIngest(
    const std::vector<text::EntityId>& touched) {
  obs::TraceSpan span("degree_cache.refresh_after_ingest");
  size_t refreshed = 0, recomputed = 0, dropped = 0;
  for (auto& shard : shards_) {
    // Callers hold the engine's exclusive lock, so no reader can be
    // inside a shard; the lock is still taken to keep the invariant
    // local (it is uncontended and cheap here).
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      const std::string& predicate = it->first;
      CachedList& entry = it->second;
      PredicateInterpretation interpretation;
      bool drop = false;
      try {
        interpretation = db_->interpreter().Interpret(predicate);
        drop = interpretation.degraded;
      } catch (...) {
        drop = true;
      }
      if (drop) {
        // Same rule as ComputeDegrees: a degraded interpretation must
        // not back a resident list.
        it = shard.map.erase(it);
        ++dropped;
        continue;
      }
      const embedding::Vec rep = db_->phrase_embedder().Represent(predicate);
      const double senti = db_->analyzer().ScorePhrase(predicate);
      const std::optional<ConditionScorer> scorer =
          BindScorer(*db_, interpretation, rep, senti);
      if (interpretation == entry.interpretation) {
        // Additive ingest with an unchanged interpretation leaves every
        // untouched entity's degree bit-exact — patch only the touched
        // slots.
        for (const text::EntityId id : touched) {
          if (id < 0) continue;
          const size_t e = static_cast<size_t>(id);
          if (e >= entry.degrees.size()) continue;
          entry.degrees[e] = ScoreEntityOnce(*db_, predicate, interpretation,
                                             scorer, rep, senti, e);
        }
      } else {
        // The ingest grew the variation table or shifted the idf enough
        // to change this predicate's interpretation: every slot is
        // suspect, recompute the full list under the new one.
        for (size_t e = 0; e < entry.degrees.size(); ++e) {
          entry.degrees[e] = ScoreEntityOnce(*db_, predicate, interpretation,
                                             scorer, rep, senti, e);
        }
        entry.interpretation = std::move(interpretation);
        ++recomputed;
      }
      ++refreshed;
      ++it;
    }
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  span.AddAttribute("refreshed", static_cast<uint64_t>(refreshed));
  span.AddAttribute("recomputed", static_cast<uint64_t>(recomputed));
  span.AddAttribute("dropped", static_cast<uint64_t>(dropped));
  OPINEDB_METRIC_COUNT("degree_cache.ingest_refreshes", refreshed);
  OPINEDB_METRIC_COUNT("degree_cache.ingest_recomputes", recomputed);
  OPINEDB_METRIC_COUNT("degree_cache.ingest_drops", dropped);
  return refreshed;
}

}  // namespace opinedb::core
