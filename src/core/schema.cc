#include "core/schema.h"

namespace opinedb::core {

int SubjectiveSchema::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace opinedb::core
