#ifndef OPINEDB_CORE_AGGREGATOR_H_
#define OPINEDB_CORE_AGGREGATOR_H_

#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "core/attribute_classifier.h"
#include "core/marker_summary.h"
#include "core/schema.h"
#include "embedding/phrase_rep.h"
#include "extract/pipeline.h"
#include "sentiment/analyzer.h"
#include "text/corpus.h"

namespace opinedb::core {

/// Options controlling how phrases aggregate onto markers
/// (Section 4.2.2).
struct AggregationOptions {
  /// When true, a phrase contributes fractionally to its two closest
  /// markers of a linearly-ordered summary; when false (the paper's
  /// implementation) it contributes wholly to the single best marker.
  bool fractional = false;
  /// Minimum cosine similarity between a phrase and its best marker; the
  /// phrase counts as unmatched below this.
  double match_threshold = 0.15;
  /// Reviews older than this date are ignored (supports "reviews after
  /// 2010"-style query filters). Unset = no filter.
  std::optional<int32_t> min_date;
  /// Only reviews by reviewers with at least this many reviews count
  /// (supports "reviewers who reviewed >= 10 hotels"). Unset = no filter.
  std::optional<int32_t> min_reviewer_reviews;
};

/// Marker summaries for every (attribute, entity) pair, plus the
/// extraction provenance that produced them.
struct SubjectiveTables {
  /// summaries[a][e] is the summary of attribute a for entity e.
  std::vector<std::vector<MarkerSummary>> summaries;
  /// The extraction relation, with each opinion's assigned attribute
  /// (-1 when the classifier had nothing to say).
  std::vector<extract::ExtractedOpinion> extractions;
  std::vector<int> extraction_attribute;
  /// The marker each extraction's phrase mapped to (-1 = unmatched or
  /// filtered out).
  std::vector<int> extraction_marker;
  /// Attribute-classification confidence margin per extraction; phrases
  /// with tiny margins are excluded from the linguistic-variation table.
  std::vector<double> extraction_margin;
};

/// Aggregates extracted opinions onto marker summaries (the
/// "Extractor+Aggregator" box of Fig. 4).
class Aggregator {
 public:
  Aggregator(const SubjectiveSchema* schema,
             const AttributeClassifier* classifier,
             const embedding::PhraseEmbedder* embedder,
             const sentiment::Analyzer* analyzer);

  /// Builds summaries for all entities of `corpus` from `extractions`.
  /// With a pool, the per-extraction classification, marker matching and
  /// phrase embedding fan out across workers; the summary fold stays
  /// serial in extraction order, so the result is bit-identical to the
  /// serial build.
  SubjectiveTables Build(const text::ReviewCorpus& corpus,
                         std::vector<extract::ExtractedOpinion> extractions,
                         const AggregationOptions& options,
                         ThreadPool* pool = nullptr) const;

  /// Incrementally folds one opinion into existing summaries
  /// (Section 4.2.2: "the marker summaries can be incrementally
  /// computed").
  void AddOpinion(const extract::ExtractedOpinion& opinion,
                  const text::ReviewCorpus& corpus,
                  const AggregationOptions& options,
                  SubjectiveTables* tables) const;

  /// Marker weight vector for a phrase against attribute `a`'s markers:
  /// one-hot (or fractional) by embedding similarity; empty if below the
  /// match threshold.
  std::vector<double> MarkerWeights(size_t attribute,
                                    const std::string& phrase,
                                    const AggregationOptions& options) const;

 private:
  const SubjectiveSchema* schema_;
  const AttributeClassifier* classifier_;
  const embedding::PhraseEmbedder* embedder_;
  const sentiment::Analyzer* analyzer_;
  /// Precomputed marker phrase embeddings per attribute.
  std::vector<std::vector<embedding::Vec>> marker_vecs_;
  /// Precomputed marker sentiment per attribute (linear scales).
  std::vector<std::vector<double>> marker_senti_;
};

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_AGGREGATOR_H_
