#include "core/result_json.h"

#include <cstdio>

#include "common/string_util.h"
#include "core/planner.h"

namespace opinedb::core {

namespace {

/// %.17g round-trips every finite double bit-exactly, which is what
/// makes the rendered document part of the bit-identity contract.
std::string JsonDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendInterpretation(const PredicateInterpretation& interp,
                          std::string* out) {
  *out += "{\"method\": ";
  JsonEscapeAppend(InterpretMethodName(interp.method), out);
  *out += ", \"confidence\": " + JsonDouble(interp.confidence);
  *out += ", \"conjunctive\": ";
  *out += interp.conjunctive ? "true" : "false";
  *out += ", \"degraded\": ";
  *out += interp.degraded ? "true" : "false";
  *out += ", \"atoms\": [";
  for (size_t i = 0; i < interp.atoms.size(); ++i) {
    const AtomInterpretation& atom = interp.atoms[i];
    if (i > 0) *out += ", ";
    *out += "{\"attribute\": " + std::to_string(atom.attribute);
    *out += ", \"marker\": " + std::to_string(atom.marker);
    *out += ", \"score\": " + JsonDouble(atom.score) + "}";
  }
  *out += "]}";
}

void AppendStats(const ExecutionStats& stats, std::string* out) {
  *out += "{\"threads_used\": " + std::to_string(stats.threads_used);
  *out += ", \"entities_scored\": " + std::to_string(stats.entities_scored);
  *out += ", \"cache_hits\": " + std::to_string(stats.cache_hits);
  *out += ", \"cache_misses\": " + std::to_string(stats.cache_misses);
  *out += ", \"result_cache_hit\": ";
  *out += stats.result_cache_hit ? "true" : "false";
  *out += ", \"interpret_ms\": " + JsonDouble(stats.interpret_ms);
  *out += ", \"scoring_ms\": " + JsonDouble(stats.scoring_ms);
  *out += ", \"rank_ms\": " + JsonDouble(stats.rank_ms);
  *out += ", \"total_ms\": " + JsonDouble(stats.total_ms) + "}";
}

}  // namespace

const char* InterpretMethodName(InterpretMethod method) {
  switch (method) {
    case InterpretMethod::kWord2Vec:
      return "word2vec";
    case InterpretMethod::kCooccurrence:
      return "cooccurrence";
    case InterpretMethod::kTextFallback:
      return "text_fallback";
  }
  return "unknown";
}

std::string ResultToJson(const QueryResult& result,
                         const ResultJsonOptions& options) {
  std::string out = "{\n  \"results\": [";
  for (size_t i = 0; i < result.results.size(); ++i) {
    const RankedResult& ranked = result.results[i];
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"entity\": " + std::to_string(ranked.entity);
    out += ", \"name\": ";
    JsonEscapeAppend(ranked.entity_name, &out);
    out += ", \"score\": " + JsonDouble(ranked.score) + "}";
  }
  out += result.results.empty() ? "]" : "\n  ]";
  out += ",\n  \"partial\": ";
  out += result.partial ? "true" : "false";
  out += ",\n  \"degraded\": ";
  out += result.degraded ? "true" : "false";
  out += ",\n  \"watermark\": " + std::to_string(result.stats.entities_scored);
  out += ",\n  \"plan\": ";
  JsonEscapeAppend(PlanKindName(result.plan), &out);
  if (!result.plan_text.empty()) {
    out += ",\n  \"plan_text\": ";
    JsonEscapeAppend(result.plan_text, &out);
  }
  if (options.include_interpretations) {
    out += ",\n  \"interpretations\": [";
    for (size_t i = 0; i < result.interpretations.size(); ++i) {
      out += i > 0 ? ",\n    " : "\n    ";
      AppendInterpretation(result.interpretations[i], &out);
    }
    out += result.interpretations.empty() ? "]" : "\n  ]";
  }
  if (options.include_stats) {
    out += ",\n  \"stats\": ";
    AppendStats(result.stats, &out);
  }
  if (options.include_trace && result.trace != nullptr) {
    out += ",\n  \"trace\": ";
    out += result.trace->ToJson();
  }
  out += "\n}\n";
  return out;
}

}  // namespace opinedb::core
