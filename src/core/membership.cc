#include "core/membership.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace opinedb::core {

std::vector<double> MembershipFeatures(const MarkerSummary& summary,
                                       int marker,
                                       const embedding::Vec& query_rep,
                                       double query_sentiment) {
  // Per-entity hot path (runs inside ParallelFor): counters only, no
  // spans — a span per entity would flood the per-query ring buffer.
  OPINEDB_METRIC_COUNT("membership.marker_featurizations", 1);
  std::vector<double> f(kMembershipFeatureDim, 0.0);
  const double total = summary.total_count();
  f[0] = std::log1p(total);
  if (total <= 0.0) {
    f[9] = 1.0;  // Empty-summary indicator.
    return f;
  }
  const size_t m = static_cast<size_t>(std::max(0, marker));
  const MarkerCell& target = summary.cell(m);
  f[1] = target.count / total;  // Mass at the interpreted marker.

  // Weighted aggregates over all markers.
  double weighted_sentiment = 0.0;
  double weighted_similarity = 0.0;
  double mass_at_or_above = 0.0;  // Markers no further down the scale.
  for (size_t k = 0; k < summary.num_markers(); ++k) {
    const MarkerCell& cell = summary.cell(k);
    const double frac = cell.count / total;
    weighted_sentiment += frac * cell.mean_sentiment;
    weighted_similarity +=
        frac * embedding::Cosine(query_rep, cell.centroid);
    if (k <= m) mass_at_or_above += frac;
  }
  f[2] = mass_at_or_above;
  f[3] = weighted_sentiment;
  f[4] = target.mean_sentiment;
  f[5] = embedding::Cosine(query_rep, target.centroid);
  f[6] = weighted_similarity;
  f[7] = summary.unmatched_count() /
         (total + summary.unmatched_count());
  f[8] = 1.0 - std::abs(query_sentiment - weighted_sentiment) / 2.0;
  f[9] = 0.0;
  return f;
}

std::vector<double> MembershipFeaturesNoMarkers(
    const std::vector<const extract::ExtractedOpinion*>& phrases,
    const embedding::PhraseEmbedder& embedder,
    const embedding::Vec& query_rep, double query_sentiment) {
  OPINEDB_METRIC_COUNT("membership.scan_featurizations", 1);
  OPINEDB_METRIC_COUNT("membership.phrases_embedded", phrases.size());
  std::vector<double> f(kMembershipFeatureDim, 0.0);
  const double total = static_cast<double>(phrases.size());
  f[0] = std::log1p(total);
  if (phrases.empty()) {
    f[9] = 1.0;
    return f;
  }
  double mean_sentiment = 0.0;
  double mean_similarity = 0.0;
  double max_similarity = -1.0;
  double similar_count = 0.0;
  double positive_count = 0.0;
  for (const auto* phrase : phrases) {
    // The expensive part the markers avoid: re-embedding every extracted
    // phrase at query time.
    const embedding::Vec rep = embedder.Represent(phrase->phrase);
    const double sim = embedding::Cosine(query_rep, rep);
    mean_similarity += sim;
    max_similarity = std::max(max_similarity, sim);
    if (sim > 0.5) similar_count += 1.0;
    mean_sentiment += phrase->sentiment;
    if (phrase->sentiment > 0.0) positive_count += 1.0;
  }
  mean_sentiment /= total;
  mean_similarity /= total;
  f[1] = similar_count / total;
  f[2] = positive_count / total;
  f[3] = mean_sentiment;
  f[4] = max_similarity;
  f[5] = mean_similarity;
  f[6] = similar_count > 0.0 ? 1.0 : 0.0;
  f[7] = 0.0;
  f[8] = 1.0 - std::abs(query_sentiment - mean_sentiment) / 2.0;
  f[9] = 0.0;
  return f;
}

Status ValidateFeatureVector(const std::vector<double>& features) {
  if (features.size() != kMembershipFeatureDim) {
    return Status::InvalidArgument(
        "feature vector has dimension " + std::to_string(features.size()) +
        ", expected " + std::to_string(kMembershipFeatureDim));
  }
  for (size_t i = 0; i < features.size(); ++i) {
    if (!std::isfinite(features[i])) {
      return Status::InvalidArgument("feature " + std::to_string(i) +
                                     " is not finite");
    }
  }
  return Status::OK();
}

MembershipModel MembershipModel::Train(
    const std::vector<LabeledTuple>& tuples, uint64_t seed) {
  MembershipModel model;
  std::vector<ml::Example> examples;
  examples.reserve(tuples.size());
  for (const auto& tuple : tuples) {
    ml::Example ex;
    ex.features = tuple.features;
    ex.label = tuple.label;
    examples.push_back(std::move(ex));
  }
  ml::LogRegOptions options;
  options.seed = seed;
  model.model_ = ml::LogisticRegression::Train(examples, options);
  return model;
}

double HeuristicMembershipDegree(const double* features, size_t n) {
  (void)n;
  // Matches the engine's historical closed-form fallback bit for bit:
  // the sigmoid here is intentionally unclamped (unlike ml::Sigmoid) so
  // existing goldens and the columnar/row differential stay exact.
  const double total = std::expm1(features[0]);
  // Mass at or above the interpreted marker: on a linear scale, rooms
  // "better than asked" satisfy the predicate too.
  const double mass = std::max(features[1], features[2]);
  const double similarity = features[6];
  const double agreement = features[8];
  const double base =
      1.0 / (1.0 + std::exp(-(4.0 * (0.6 * mass + 0.3 * similarity +
                                     0.5 * agreement - 0.45))));
  const double support = -std::expm1(-0.7 * total * mass);
  return base * support;
}

double MembershipModel::DegreeOfTruth(
    const std::vector<double>& features) const {
  return DegreeOfTruth(features.data(), features.size());
}

double MembershipModel::DegreeOfTruth(const double* features,
                                      size_t n) const {
  const double p = model_.Predict(features, n);
  // Degrees of truth live in [0, 1] by contract; a corrupt feature
  // vector (NaN sneaking past training-time validation) must not leak a
  // non-finite value into the fuzzy combines and ranking comparators.
  if (!std::isfinite(p)) return 0.0;
  return std::clamp(p, 0.0, 1.0);
}

double MembershipModel::Accuracy(
    const std::vector<LabeledTuple>& tuples) const {
  if (tuples.empty()) return 0.0;
  int correct = 0;
  for (const auto& tuple : tuples) {
    if ((DegreeOfTruth(tuple.features) >= 0.5 ? 1 : 0) == tuple.label) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(tuples.size());
}

}  // namespace opinedb::core
