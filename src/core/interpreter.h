#ifndef OPINEDB_CORE_INTERPRETER_H_
#define OPINEDB_CORE_INTERPRETER_H_

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "core/aggregator.h"
#include "core/schema.h"
#include "embedding/phrase_rep.h"
#include "index/inverted_index.h"
#include "text/corpus.h"
#include "text/tokenizer.h"

namespace opinedb::core {

/// One A.m expression: an interpreted (attribute, marker) pair.
struct AtomInterpretation {
  int attribute = -1;
  int marker = -1;
  /// The interpreter's similarity/correlation score for this atom.
  double score = 0.0;

  friend bool operator==(const AtomInterpretation& a,
                         const AtomInterpretation& b) {
    return a.attribute == b.attribute && a.marker == b.marker &&
           a.score == b.score;
  }
  friend bool operator!=(const AtomInterpretation& a,
                         const AtomInterpretation& b) {
    return !(a == b);
  }
};

/// Which stage of the Fig. 5 cascade produced the interpretation.
enum class InterpretMethod {
  kWord2Vec,
  kCooccurrence,
  kTextFallback,
};

/// The interpreter's output for one query predicate: either a (dis/con)-
/// junction of A.m atoms, or a directive to fall back to text retrieval.
struct PredicateInterpretation {
  InterpretMethod method = InterpretMethod::kTextFallback;
  std::vector<AtomInterpretation> atoms;
  /// True when the atoms combine with AND instead of OR (the
  /// co-occurrence method emits a conjunction when the correlated
  /// attributes are typically mentioned together).
  bool conjunctive = false;
  double confidence = 0.0;
  /// True when a cascade stage failed (threw) and the interpretation
  /// fell through to a later stage: the result is usable but was not
  /// produced on the preferred path. The engine surfaces this as the
  /// `degraded` span/result attribute and engine.fallback.* counters.
  bool degraded = false;

  /// Exact (bit-level) equality — the degree cache uses it after ingest
  /// to decide whether a cached list's interpretation is still the one
  /// this predicate maps to (equal → only touched entities need
  /// rescoring; different → the whole list is stale).
  friend bool operator==(const PredicateInterpretation& a,
                         const PredicateInterpretation& b) {
    return a.method == b.method && a.atoms == b.atoms &&
           a.conjunctive == b.conjunctive && a.confidence == b.confidence &&
           a.degraded == b.degraded;
  }
  friend bool operator!=(const PredicateInterpretation& a,
                         const PredicateInterpretation& b) {
    return !(a == b);
  }
};

/// Thresholds of the three-stage cascade (Fig. 5).
struct InterpreterOptions {
  /// θ1: minimum w2v similarity for a direct interpretation.
  double w2v_threshold = 0.5;
  /// Above this w2v confidence the direct interpretation is trusted
  /// outright; between w2v_threshold and this bound, a strongly-supported
  /// co-occurrence interpretation may override it.
  double w2v_high_confidence = 0.8;
  /// θ2: minimum per-review support (matched extractions among the top-k
  /// reviews) for a co-occurrence interpretation.
  double cooccur_threshold = 3.0;
  /// k: number of top reviews mined by the co-occurrence method.
  size_t cooccur_top_k = 50;
  /// n: maximum number of attributes in a co-occurrence interpretation.
  size_t cooccur_top_n = 2;
  /// Fraction of supporting reviews that must mention both top attributes
  /// for the interpretation to become a conjunction.
  double conjunction_fraction = 0.6;
  /// Minimum attribute-classification margin for an extracted phrase to
  /// join the linguistic-variation table; filters unclassifiable phrases
  /// whose attribute assignment is essentially the prior.
  double variation_margin = 1.0;
};

/// The subjective query interpreter (Section 3.2): word2vec matching
/// against the linguistic domains, then co-occurrence mining over the
/// review corpus, then text-retrieval fallback.
class Interpreter {
 public:
  /// `review_index` indexes individual reviews (DocId == ReviewId) and
  /// `review_sentiment` holds senti(d) per review. `tables` supplies the
  /// linguistic variations and per-review extractions.
  Interpreter(const SubjectiveSchema* schema, const SubjectiveTables* tables,
              const embedding::PhraseEmbedder* embedder,
              const index::InvertedIndex* review_index,
              const std::vector<double>* review_sentiment,
              InterpreterOptions options = InterpreterOptions());

  /// Interprets one NL query predicate. The cascade degrades instead of
  /// failing: a stage that throws (injected fault, broken model state)
  /// falls through to the next stage — word2vec → co-occurrence → text
  /// retrieval — with PredicateInterpretation::degraded set. `deadline`
  /// (optional) is polled between stages; on expiry the remaining
  /// (expensive) stages are skipped. An expired deadline here always
  /// coincides with an expired deadline at the scoring checkpoints, so
  /// the query is flagged partial downstream.
  PredicateInterpretation Interpret(const std::string& predicate,
                                    const QueryDeadline* deadline =
                                        nullptr) const;

  /// Stage 1 only (for the Table 8 ablation).
  PredicateInterpretation InterpretWord2VecOnly(
      const std::string& predicate) const;

  /// Stage 2 only (for the Table 8 ablation).
  PredicateInterpretation InterpretCooccurrenceOnly(
      const std::string& predicate) const;

  const InterpreterOptions& options() const { return options_; }

  /// Incremental maintenance for the ingest path: indexes extractions
  /// appended to `tables_` since construction (or the previous call) —
  /// new qualifying phrases join the variation table in append order
  /// with the same dedup/margin gates the constructor applies, and the
  /// per-review extraction lists + attribute idf are recomputed over
  /// the full (cheap, integer-only) relation. The resulting state is
  /// bit-identical to constructing a fresh Interpreter over the grown
  /// tables. Callers must hold the engine's exclusive lock.
  void AppendNewExtractions();

  /// Number of tables_->extractions entries indexed so far (== size()
  /// right after construction or AppendNewExtractions).
  size_t indexed_extractions() const { return indexed_extractions_; }

 private:
  struct Variation {
    int attribute;
    int marker;
    embedding::Vec rep;
  };

  void BuildVariationTable();
  /// The integer-only half of the table build: per-review extraction
  /// lists and attribute idf, recomputed from scratch.
  void RebuildReviewStatistics();

  const SubjectiveSchema* schema_;
  const SubjectiveTables* tables_;
  const embedding::PhraseEmbedder* embedder_;
  const index::InvertedIndex* review_index_;
  const std::vector<double>* review_sentiment_;
  InterpreterOptions options_;
  text::Tokenizer tokenizer_;

  std::vector<Variation> variations_;
  /// (attribute, phrase) pairs already in the variation table; persists
  /// so AppendNewExtractions dedups exactly like a fresh build.
  std::set<std::pair<int, std::string>> seen_variations_;
  /// How many tables_->extractions entries have been considered for the
  /// variation table (the incremental high-water mark).
  size_t indexed_extractions_ = 0;
  /// Per-review extraction indices (into tables_->extractions).
  std::vector<std::vector<size_t>> review_extractions_;
  /// idf(A): log(N / (1 + #reviews with an extraction of attribute A)).
  std::vector<double> attribute_idf_;
};

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_INTERPRETER_H_
