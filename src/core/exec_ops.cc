#include "core/exec_ops.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <utility>

#include "common/fault.h"
#include "core/columnar.h"
#include "core/degree_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

/// Largest prefix of [0, n) covered by the completed (begin, reached)
/// ranges a deadline-interrupted loop logged. Chunks the pool skipped
/// after expiry log nothing, so the prefix stops at the first gap.
size_t CoveredPrefix(std::vector<std::pair<size_t, size_t>>* ranges) {
  std::sort(ranges->begin(), ranges->end());
  size_t prefix = 0;
  for (const auto& [begin, reached] : *ranges) {
    if (begin > prefix) break;
    prefix = std::max(prefix, reached);
  }
  return prefix;
}

}  // namespace

namespace opinedb::core {

Status ObjectiveFilterOp::Run(ExecContext* ctx) const {
  obs::TraceSpan span("objective_filter");
  const SubjectiveQuery& query = *ctx->query;
  // Resolve each column once per predicate, not once per entity.
  std::vector<storage::BoundColumnPredicate> bound;
  bound.reserve(ctx->logical->hard_objective.size());
  for (const size_t c : ctx->logical->hard_objective) {
    auto b = query.conditions[c].objective.Bind(*ctx->table);
    if (!b.ok()) return b.status();
    bound.push_back(*b);
  }
  span.AddAttribute("predicates", static_cast<uint64_t>(bound.size()));
  // Columnar plane: lower every predicate onto the table mirror and run
  // dense AND sweeps over contiguous columns, then gather survivors —
  // same membership as the row loop (Eval is bit-identical to Matches),
  // same ascending candidate order.
  const ColumnarTable* columns = ctx->db->objective_columns(*ctx->table);
  std::vector<ColumnarTable::CompiledPredicate> compiled;
  bool all_compiled = columns != nullptr;
  if (all_compiled) {
    compiled.reserve(bound.size());
    for (const auto& predicate : bound) {
      auto lowered = columns->Compile(predicate);
      if (!lowered.has_value()) {
        all_compiled = false;
        break;
      }
      compiled.push_back(*lowered);
    }
  }
  ctx->candidates.clear();
  if (all_compiled) {
    std::vector<uint8_t> match(ctx->num_entities, 1);
    for (const auto& predicate : compiled) {
      columns->FilterInto(predicate, &match);
    }
    for (size_t e = 0; e < ctx->num_entities; ++e) {
      if (match[e] != 0) ctx->candidates.push_back(e);
    }
    span.AddAttribute("columnar", true);
  } else {
    for (size_t e = 0; e < ctx->num_entities; ++e) {
      bool pass = true;
      for (const auto& predicate : bound) {
        if (!predicate.Matches(*ctx->table, e)) {
          pass = false;
          break;
        }
      }
      if (pass) ctx->candidates.push_back(e);
    }
  }
  ctx->candidates_are_all = false;
  span.AddAttribute("entities", static_cast<uint64_t>(ctx->num_entities));
  span.AddAttribute("survivors",
                    static_cast<uint64_t>(ctx->candidates.size()));
  return Status::OK();
}

Status SubjectiveScoreOp::Run(ExecContext* ctx) const {
  const OpineDb& db = *ctx->db;
  const SubjectiveQuery& query = *ctx->query;
  const size_t num_conditions = query.conditions.size();
  const size_t num_entities = ctx->num_entities;
  const QueryDeadline* deadline = ctx->deadline;
  const bool deadline_active = deadline != nullptr && deadline->active();
  std::function<bool()> stop = [deadline] { return deadline->Expired(); };
  const std::function<bool()>* should_stop =
      deadline_active ? &stop : nullptr;
  // Candidate positions [0, watermark) end up with exact degrees in
  // every condition list; only an expiring deadline lowers it.
  size_t watermark = ctx->num_candidates();
  ctx->computed.resize(num_conditions);
  ctx->degrees.assign(num_conditions, nullptr);
  obs::TraceSpan score_span("score");
  for (size_t c = 0; c < num_conditions; ++c) {
    const Condition& condition = query.conditions[c];
    obs::TraceSpan condition_span("score.condition");
    condition_span.AddAttribute("index", static_cast<uint64_t>(c));
    if (condition.kind == Condition::Kind::kObjective) {
      condition_span.AddAttribute("source", "objective");
      // Objective predicates are table lookups: the column is resolved
      // once, then each candidate is a direct cell comparison.
      auto bound = condition.objective.Bind(*ctx->table);
      if (!bound.ok()) return bound.status();
      auto& list = ctx->computed[c];
      list.assign(num_entities, 0.0);
      const ColumnarTable* columns =
          ctx->db->objective_columns(*ctx->table);
      std::optional<ColumnarTable::CompiledPredicate> compiled;
      if (columns != nullptr) compiled = columns->Compile(*bound);
      if (compiled.has_value()) {
        // Dense 0/1 materialization over the column mirror (Eval is
        // bit-identical to Matches).
        if (ctx->candidates_are_all) {
          for (size_t e = 0; e < num_entities; ++e) {
            list[e] = ColumnarTable::Eval(*compiled, e) ? 1.0 : 0.0;
          }
        } else {
          for (const size_t e : ctx->candidates) {
            list[e] = ColumnarTable::Eval(*compiled, e) ? 1.0 : 0.0;
          }
        }
      } else if (ctx->candidates_are_all) {
        for (size_t e = 0; e < num_entities; ++e) {
          list[e] = bound->Matches(*ctx->table, e) ? 1.0 : 0.0;
        }
      } else {
        for (const size_t e : ctx->candidates) {
          list[e] = bound->Matches(*ctx->table, e) ? 1.0 : 0.0;
        }
      }
      ctx->degrees[c] = &list;
      continue;
    }
    condition_span.AddAttribute("predicate", condition.subjective);
    if (deadline_active && deadline->Expired()) {
      // Budget exhausted before this condition started: no exact degree
      // exists for any candidate, so the consistent prefix collapses.
      auto& list = ctx->computed[c];
      list.assign(num_entities, 0.0);
      ctx->degrees[c] = &list;
      watermark = 0;
      condition_span.AddAttribute("source", "deadline_skipped");
      continue;
    }
    bool use_cache = ctx->cache != nullptr;
    if (use_cache) {
      // The cache computes misses through the same per-entity code path,
      // so cached and freshly-computed lists are bit-identical.
      try {
        if (ctx->cache->Contains(condition.subjective)) {
          ++ctx->output->stats.cache_hits;
          condition_span.AddAttribute("source", "cache_hit");
        } else {
          ++ctx->output->stats.cache_misses;
          condition_span.AddAttribute("source", "cache_miss");
        }
        const std::vector<double>* cached =
            ctx->cache->TryDegrees(condition.subjective, deadline);
        if (cached == nullptr) {
          // Deadline fired before the miss finished computing; the
          // incomplete list was discarded, so nothing here is exact.
          auto& list = ctx->computed[c];
          list.assign(num_entities, 0.0);
          ctx->degrees[c] = &list;
          watermark = 0;
          condition_span.AddAttribute("deadline_abandoned", true);
          continue;
        }
        ctx->degrees[c] = cached;
        continue;
      } catch (const std::exception&) {
        // Cache path unusable (injected fault, broken compute): fall
        // back to computing this condition's list locally — the query
        // keeps serving, just without the shared cache.
        use_cache = false;
        ctx->degraded.store(true, std::memory_order_relaxed);
        OPINEDB_METRIC_COUNT("engine.fallback.cache", 1);
        condition_span.AddAttribute("source", "cache_fallback");
      }
    } else {
      ++ctx->output->stats.cache_misses;
      condition_span.AddAttribute("source", "computed");
    }
    auto& list = ctx->computed[c];
    try {
      OPINEDB_FAULT("score.alloc");
      list.assign(num_entities, 0.0);
    } catch (const std::exception&) {
      // Could not even materialize the list: serve zeros (absorbing for
      // the fuzzy conjunction) rather than abandon the query.
      list.assign(num_entities, 0.0);
      ctx->degrees[c] = &list;
      ctx->degraded.store(true, std::memory_order_relaxed);
      OPINEDB_METRIC_COUNT("engine.fallback.alloc", 1);
      condition_span.AddAttribute("source", "alloc_fallback");
      continue;
    }
    const auto& interpretation = ctx->output->interpretations[c];
    // Columnar plane: bind the interpretation's atoms to the SoA store
    // once per condition; Score(e) then replaces the per-entity object
    // walk below with a contiguous sweep producing the same doubles.
    // Unbindable shapes (no-marker ablation, text fallback, out-of-range
    // atoms) keep the row path.
    std::optional<ConditionScorer> scorer;
    if (const ColumnarSummaryStore* store = db.columnar_store();
        store != nullptr && db.options().use_markers &&
        interpretation.method != InterpretMethod::kTextFallback &&
        !interpretation.atoms.empty()) {
      scorer.emplace(*store, interpretation, (*ctx->reps)[c],
                     (*ctx->sentis)[c], db.options().variant,
                     db.has_membership_model() ? &db.membership_model()
                                               : nullptr);
      if (!scorer->ok()) scorer.reset();
    }
    auto score_entity = [&](size_t e) {
      const auto entity = static_cast<text::EntityId>(e);
      try {
        if (interpretation.method == InterpretMethod::kTextFallback ||
            interpretation.atoms.empty()) {
          list[e] = db.TextFallbackDegree(condition.subjective, entity);
          return;
        }
        if (scorer.has_value()) {
          list[e] = scorer->Score(e);
          return;
        }
        double acc = 0.0;
        bool first = true;
        for (const auto& atom : interpretation.atoms) {
          const double d = db.AtomDegreeOfTruth(atom, entity,
                                                (*ctx->reps)[c],
                                                (*ctx->sentis)[c]);
          if (first) {
            acc = d;
            first = false;
          } else if (interpretation.conjunctive) {
            acc = fuzzy::And(db.options().variant, acc, d);
          } else {
            acc = fuzzy::Or(db.options().variant, acc, d);
          }
        }
        list[e] = acc;
      } catch (const std::exception&) {
        // Per-entity failure: degrade this entity one cascade stage, to
        // the text-retrieval score, rather than losing the whole list.
        ctx->degraded.store(true, std::memory_order_relaxed);
        OPINEDB_METRIC_COUNT("engine.fallback.entity", 1);
        try {
          list[e] = db.TextFallbackDegree(condition.subjective, entity);
        } catch (const std::exception&) {
          list[e] = 0.0;
        }
      }
    };
    // Entities fan out across the pool; each entity writes only its own
    // slot, so the result is bit-identical to serial — and to the dense
    // scan, because per-entity degrees are independent of the candidate
    // set. All deadline bookkeeping is gated on deadline_active, so the
    // unbounded path runs the exact pre-deadline loop.
    std::mutex ranges_mu;
    std::vector<std::pair<size_t, size_t>> done_ranges;
    auto entity_at = [&](size_t i) {
      return ctx->candidates_are_all ? i : ctx->candidates[i];
    };
    auto score_range = [&](size_t begin, size_t end) {
      size_t i = begin;
      for (; i < end; ++i) {
        if (deadline_active && (i & 31) == 0 && i != begin &&
            deadline->Expired()) {
          break;
        }
        score_entity(entity_at(i));
      }
      if (deadline_active) {
        std::lock_guard<std::mutex> guard(ranges_mu);
        done_ranges.emplace_back(begin, i);
      }
    };
    const size_t positions = ctx->num_candidates();
    if (ThreadPool* pool = db.pool()) {
      pool->ParallelFor(0, positions, score_range, /*min_grain=*/8,
                        should_stop);
    } else if (should_stop == nullptr || !(*should_stop)()) {
      score_range(0, positions);
    }
    if (deadline_active) {
      watermark = std::min(watermark, CoveredPrefix(&done_ranges));
    }
    ctx->degrees[c] = &list;
  }
  if (deadline_active && deadline->Expired()) {
    ctx->partial = true;
    ctx->watermark = watermark;
    score_span.AddAttribute("partial", true);
    score_span.AddAttribute("watermark", static_cast<uint64_t>(watermark));
  }
  score_span.End();
  ctx->output->stats.entities_scored =
      ctx->partial ? ctx->watermark : ctx->num_candidates();
  return Status::OK();
}

Status RankOp::Run(ExecContext* ctx) const {
  const OpineDb& db = *ctx->db;
  const SubjectiveQuery& query = *ctx->query;
  const size_t num_entities = ctx->num_entities;
  obs::TraceSpan rank_span("combine_rank");
  // Combine the WHERE tree per candidate (parallel, slot-per-entity).
  // Non-candidates keep score 0.0 — exactly the value the dense combine
  // would give them, since they failed a hard conjunct and 0 is
  // absorbing for ⊗.
  ctx->scores.assign(num_entities, ctx->candidates_are_all ? 1.0 : 0.0);
  auto& scores = ctx->scores;
  // When the deadline cut scoring short, only the watermark prefix of
  // candidate positions has exact degrees in every list; combining or
  // ranking beyond it would emit fabricated scores.
  const size_t positions =
      ctx->partial ? std::min(ctx->watermark, ctx->num_candidates())
                   : ctx->num_candidates();
  auto entity_at = [&](size_t i) {
    return ctx->candidates_are_all ? i : ctx->candidates[i];
  };
  if (query.where != nullptr) {
    auto combine_entity = [&](size_t e) {
      scores[e] = query.where->Evaluate(
          db.options().variant,
          [&](size_t c) { return (*ctx->degrees[c])[e]; });
    };
    auto combine_range = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) combine_entity(entity_at(i));
    };
    if (ThreadPool* pool = db.pool()) {
      pool->ParallelFor(0, positions, combine_range, /*min_grain=*/64);
    } else {
      combine_range(0, positions);
    }
  }
  // Filter, rank and truncate serially. Candidates are ascending, so
  // the pre-sort order matches the dense scan's entity-order walk.
  std::vector<RankedResult> ranked;
  ranked.reserve(positions);
  auto push_entity = [&](size_t e) {
    if (scores[e] <= 0.0) return;  // Failed hard objective predicates.
    const auto entity = static_cast<text::EntityId>(e);
    RankedResult result;
    result.entity = entity;
    result.entity_name = db.corpus().entity_name(entity);
    result.score = scores[e];
    ranked.push_back(std::move(result));
  };
  for (size_t i = 0; i < positions; ++i) push_entity(entity_at(i));
  // The comparator is a total order (ties broken by entity id), so the
  // partial_sort prefix is bit-identical to a full sort + truncate.
  const size_t k = std::min(query.limit, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                    [](const RankedResult& a, const RankedResult& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.entity < b.entity;
                    });
  ranked.resize(k);
  rank_span.AddAttribute("results", static_cast<uint64_t>(ranked.size()));
  if (ctx->partial) {
    rank_span.AddAttribute("partial", true);
    rank_span.AddAttribute("watermark",
                           static_cast<uint64_t>(ctx->watermark));
  }
  rank_span.End();
  ctx->output->results = std::move(ranked);
  return Status::OK();
}

Status TaTopKOp::Run(ExecContext* ctx) const {
  const OpineDb& db = *ctx->db;
  const SubjectiveQuery& query = *ctx->query;
  obs::TraceSpan span("ta_topk");
  std::vector<std::string> predicates;
  predicates.reserve(ctx->logical->conjuncts.size());
  for (const size_t c : ctx->logical->conjuncts) {
    const std::string& predicate = query.conditions[c].subjective;
    // Same per-condition cache accounting as the dense scan.
    if (ctx->cache->Contains(predicate)) {
      ++ctx->output->stats.cache_hits;
    } else {
      ++ctx->output->stats.cache_misses;
    }
    predicates.push_back(predicate);
  }
  span.AddAttribute("lists", static_cast<uint64_t>(predicates.size()));
  span.AddAttribute("k", static_cast<uint64_t>(query.limit));
  fuzzy::TaStats ta_stats;
  const auto top = ctx->cache->TopKConjunction(predicates, query.limit,
                                               &ta_stats, ctx->deadline);
  // TA aggregates every list, so entities it never materialized scored
  // below the threshold; this is the work actually done.
  ctx->output->stats.entities_scored = ta_stats.entities_seen;
  if (ta_stats.deadline_expired ||
      (ctx->deadline != nullptr && ctx->deadline->Expired())) {
    // Every returned score is exact (TA materializes full aggregates),
    // but the scan frontier never reached the proof of completeness.
    ctx->partial = true;
    span.AddAttribute("partial", true);
  }
  span.AddAttribute("entities_seen",
                    static_cast<uint64_t>(ta_stats.entities_seen));
  std::vector<RankedResult> ranked;
  ranked.reserve(top.size());
  for (const auto& entry : top) {
    // Positives sort strictly before zeros, so dropping zeros from the
    // TA top-k leaves exactly the dense scan's positive prefix.
    if (entry.score <= 0.0) continue;
    RankedResult result;
    result.entity = static_cast<text::EntityId>(entry.entity);
    result.entity_name = db.corpus().entity_name(result.entity);
    result.score = entry.score;
    ranked.push_back(std::move(result));
  }
  span.AddAttribute("results", static_cast<uint64_t>(ranked.size()));
  ctx->output->results = std::move(ranked);
  return Status::OK();
}

}  // namespace opinedb::core
