#ifndef OPINEDB_CORE_MEMBERSHIP_H_
#define OPINEDB_CORE_MEMBERSHIP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/aggregator.h"
#include "core/marker_summary.h"
#include "embedding/phrase_rep.h"
#include "ml/logistic_regression.h"
#include "sentiment/analyzer.h"

namespace opinedb::core {

/// Number of features the marker-based membership model consumes.
inline constexpr size_t kMembershipFeatureDim = 10;

/// Computes the membership-function feature vector of Section 3.3 for a
/// marker summary w.r.t. an interpreted marker and the original query
/// predicate: marker sizes, average sentiment scores, and phrase-centroid
/// similarities — all precomputed in the summary, so no scan of the
/// extraction table is needed.
std::vector<double> MembershipFeatures(const MarkerSummary& summary,
                                       int marker,
                                       const embedding::Vec& query_rep,
                                       double query_sentiment);

/// The "no markers" ablation of Table 7: equivalent engineered features
/// computed directly from the extracted phrases of (attribute, entity) —
/// requires scanning the extraction table at query time.
std::vector<double> MembershipFeaturesNoMarkers(
    const std::vector<const extract::ExtractedOpinion*>& phrases,
    const embedding::PhraseEmbedder& embedder,
    const embedding::Vec& query_rep, double query_sentiment);

/// Rejects feature vectors of the wrong dimension or containing NaN /
/// infinity. A single non-finite feature silently poisons every degree
/// of truth downstream (NaN propagates through ⊗/⊕ and breaks ranking
/// comparators), so training validates its inputs up front.
Status ValidateFeatureVector(const std::vector<double>& features);

/// Closed-form membership degree used when no model has been trained:
/// similarity-weighted mass plus sentiment agreement, squashed, and
/// discounted by the amount of supporting evidence. `features` is a
/// MembershipFeatures vector of length kMembershipFeatureDim. Shared by
/// the engine's row path and the columnar sweep so both produce the same
/// doubles from the same features.
double HeuristicMembershipDegree(const double* features, size_t n);

/// A learned membership function: logistic regression over
/// MembershipFeatures whose probability output is the degree of truth.
class MembershipModel {
 public:
  /// Labeled tuple (S_i, p_i, y_i): precomputed features + binary label.
  struct LabeledTuple {
    std::vector<double> features;
    int label = 0;
  };

  static MembershipModel Train(const std::vector<LabeledTuple>& tuples,
                               uint64_t seed = 42);

  /// Degree of truth in [0, 1] for a feature vector.
  double DegreeOfTruth(const std::vector<double>& features) const;

  /// Allocation-free variant for the columnar scoring sweep;
  /// bit-identical to the vector overload.
  double DegreeOfTruth(const double* features, size_t n) const;

  /// Test accuracy on held-out tuples (the LR-accuracy of Table 7).
  double Accuracy(const std::vector<LabeledTuple>& tuples) const;

 private:
  ml::LogisticRegression model_;
};

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_MEMBERSHIP_H_
