#ifndef OPINEDB_CORE_MARKER_INDUCTION_H_
#define OPINEDB_CORE_MARKER_INDUCTION_H_

#include <string>
#include <vector>

#include "core/marker_summary.h"
#include "embedding/phrase_rep.h"
#include "sentiment/analyzer.h"

namespace opinedb::core {

/// Automatic marker suggestion (Section 4.2.1).
///
/// Linearly-ordered domains: phrases are sorted by sentiment score and the
/// domain is divided into k equal buckets; the phrase at the center of
/// each bucket becomes a marker.
MarkerSummaryType InduceLinearMarkers(const std::string& attribute_name,
                                      const std::vector<std::string>& domain,
                                      size_t k,
                                      const sentiment::Analyzer& analyzer);

/// Categorical domains: k-means over phrase embeddings; the medoid phrase
/// of each cluster becomes a marker.
MarkerSummaryType InduceCategoricalMarkers(
    const std::string& attribute_name, const std::vector<std::string>& domain,
    size_t k, const embedding::PhraseEmbedder& embedder, uint64_t seed = 42);

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_MARKER_INDUCTION_H_
