#ifndef OPINEDB_CORE_MARKER_SUMMARY_H_
#define OPINEDB_CORE_MARKER_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "embedding/vector_ops.h"
#include "text/corpus.h"

namespace opinedb::core {

/// Whether a marker summary's markers form a linear scale or a set of
/// categories (Section 2).
enum class SummaryKind {
  kLinearlyOrdered,
  kCategorical,
};

/// The record *type* of a marker summary: a name plus its ordered marker
/// phrases, e.g. room_cleanliness : [very_clean, average, dirty,
/// very_dirty].
struct MarkerSummaryType {
  std::string name;
  std::vector<std::string> markers;
  SummaryKind kind = SummaryKind::kLinearlyOrdered;

  size_t num_markers() const { return markers.size(); }
  int MarkerIndex(const std::string& marker) const;
};

/// One marker's aggregate within a summary instance.
struct MarkerCell {
  /// Total (possibly fractional) phrase mass assigned to this marker.
  double count = 0.0;
  /// Mean sentiment of contributing phrases.
  double mean_sentiment = 0.0;
  /// Centroid of contributing phrase embeddings.
  embedding::Vec centroid;
  /// Provenance: reviews that contributed phrases to this marker.
  std::vector<text::ReviewId> provenance;
};

/// The record *instance* of a marker summary for one entity: a histogram
/// over the markers plus the precomputed features (sentiment averages and
/// phrase-embedding centroids) used by the membership functions.
class MarkerSummary {
 public:
  MarkerSummary() = default;
  MarkerSummary(const MarkerSummaryType* type, size_t embedding_dim);

  const MarkerSummaryType& type() const { return *type_; }
  size_t num_markers() const { return cells_.size(); }

  const MarkerCell& cell(size_t marker) const { return cells_[marker]; }
  double count(size_t marker) const { return cells_[marker].count; }

  /// Total phrase mass across markers.
  double total_count() const;

  /// Count of extracted phrases that matched no marker confidently.
  double unmatched_count() const { return unmatched_; }

  /// Adds a phrase contribution: `weights[m]` is the phrase's mass on
  /// marker m (one-hot in the default configuration, fractional when
  /// enabled). `sentiment` and `vec` describe the phrase; `review` is the
  /// provenance.
  void AddPhrase(const std::vector<double>& weights, double sentiment,
                 const embedding::Vec& vec, text::ReviewId review);

  /// Records a phrase that matched no marker.
  void AddUnmatched() { unmatched_ += 1.0; }

  /// Replaces one marker's aggregate wholesale (deserialization path).
  void RestoreCell(size_t marker, MarkerCell cell) {
    cells_[marker] = std::move(cell);
  }

  /// Restores the unmatched counter (deserialization path).
  void SetUnmatchedCount(double count) { unmatched_ = count; }

  /// Index of the marker with the largest mass (-1 if empty).
  int DominantMarker() const;

  /// Renders e.g. "[very_clean: 20, average: 70, ...]".
  std::string ToString() const;

 private:
  const MarkerSummaryType* type_ = nullptr;
  std::vector<MarkerCell> cells_;
  double unmatched_ = 0.0;
  size_t embedding_dim_ = 0;
};

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_MARKER_SUMMARY_H_
