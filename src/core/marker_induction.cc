#include "core/marker_induction.h"

#include <algorithm>
#include <set>

#include "ml/kmeans.h"

namespace opinedb::core {

MarkerSummaryType InduceLinearMarkers(const std::string& attribute_name,
                                      const std::vector<std::string>& domain,
                                      size_t k,
                                      const sentiment::Analyzer& analyzer) {
  MarkerSummaryType type;
  type.name = attribute_name;
  type.kind = SummaryKind::kLinearlyOrdered;
  if (domain.empty() || k == 0) return type;

  std::vector<std::pair<double, std::string>> scored;
  scored.reserve(domain.size());
  for (const auto& phrase : domain) {
    scored.emplace_back(analyzer.ScorePhrase(phrase), phrase);
  }
  // High sentiment first so the scale reads best -> worst, mirroring
  // [very_clean, average, dirty, very_dirty].
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  k = std::min(k, scored.size());
  std::set<std::string> used;
  for (size_t b = 0; b < k; ++b) {
    const size_t lo = b * scored.size() / k;
    const size_t hi = (b + 1) * scored.size() / k;
    size_t center = lo + (hi - lo) / 2;
    // Avoid duplicate marker phrases by probing within the bucket.
    size_t probe = center;
    while (probe < hi && used.count(scored[probe].second) > 0) ++probe;
    if (probe == hi) {
      probe = lo;
      while (probe < center && used.count(scored[probe].second) > 0) ++probe;
    }
    if (used.count(scored[probe].second) > 0) continue;
    used.insert(scored[probe].second);
    type.markers.push_back(scored[probe].second);
  }
  return type;
}

MarkerSummaryType InduceCategoricalMarkers(
    const std::string& attribute_name, const std::vector<std::string>& domain,
    size_t k, const embedding::PhraseEmbedder& embedder, uint64_t seed) {
  MarkerSummaryType type;
  type.name = attribute_name;
  type.kind = SummaryKind::kCategorical;
  if (domain.empty() || k == 0) return type;

  std::vector<embedding::Vec> points;
  points.reserve(domain.size());
  for (const auto& phrase : domain) {
    points.push_back(embedder.Represent(phrase));
  }
  ml::KMeansOptions options;
  options.seed = seed;
  const auto result = ml::KMeans(points, k, options);
  std::set<std::string> used;
  for (int32_t medoid : result.medoids) {
    if (medoid < 0) continue;
    const std::string& phrase = domain[medoid];
    if (used.insert(phrase).second) type.markers.push_back(phrase);
  }
  return type;
}

}  // namespace opinedb::core
