#include "core/aggregator.h"

#include <algorithm>
#include <cmath>

namespace opinedb::core {

Aggregator::Aggregator(const SubjectiveSchema* schema,
                       const AttributeClassifier* classifier,
                       const embedding::PhraseEmbedder* embedder,
                       const sentiment::Analyzer* analyzer)
    : schema_(schema),
      classifier_(classifier),
      embedder_(embedder),
      analyzer_(analyzer) {
  marker_vecs_.resize(schema_->num_attributes());
  marker_senti_.resize(schema_->num_attributes());
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const auto& markers = schema_->attributes[a].summary_type.markers;
    for (const auto& marker : markers) {
      marker_vecs_[a].push_back(embedder_->Represent(marker));
      marker_senti_[a].push_back(analyzer_->ScorePhrase(marker));
    }
  }
}

std::vector<double> Aggregator::MarkerWeights(
    size_t attribute, const std::string& phrase,
    const AggregationOptions& options) const {
  const auto& vecs = marker_vecs_[attribute];
  std::vector<double> weights(vecs.size(), 0.0);
  if (vecs.empty()) return weights;
  const embedding::Vec rep = embedder_->Represent(phrase);
  const double phrase_senti = analyzer_->ScorePhrase(phrase);
  const bool linear = schema_->attributes[attribute].summary_type.kind ==
                      SummaryKind::kLinearlyOrdered;

  std::vector<double> sims(vecs.size(), 0.0);
  for (size_t m = 0; m < vecs.size(); ++m) {
    double s = embedding::Cosine(rep, vecs[m]);
    if (linear) {
      // On a linear scale, sentiment agreement disambiguates markers that
      // are lexically close ("clean" vs "very clean" vs "dirty").
      const double senti_gap =
          std::abs(phrase_senti - marker_senti_[attribute][m]);
      s = 0.5 * s + 0.5 * (1.0 - senti_gap / 2.0);
    }
    sims[m] = s;
  }
  size_t best = 0;
  for (size_t m = 1; m < sims.size(); ++m) {
    if (sims[m] > sims[best]) best = m;
  }
  if (sims[best] < options.match_threshold) return weights;  // Unmatched.

  if (options.fractional && linear && sims.size() >= 2) {
    // Split mass between the best and runner-up markers proportionally.
    size_t second = best == 0 ? 1 : 0;
    for (size_t m = 0; m < sims.size(); ++m) {
      if (m != best && sims[m] > sims[second]) second = m;
    }
    const double s1 = std::max(0.0, sims[best]);
    const double s2 = std::max(0.0, sims[second]);
    const double total = s1 + s2;
    if (total > 0.0) {
      weights[best] = s1 / total;
      weights[second] = s2 / total;
      return weights;
    }
  }
  weights[best] = 1.0;
  return weights;
}

namespace {

bool PassesFilter(const text::Review& review,
                  const text::ReviewCorpus& corpus,
                  const AggregationOptions& options) {
  if (options.min_date.has_value() && review.date < *options.min_date) {
    return false;
  }
  if (options.min_reviewer_reviews.has_value() &&
      corpus.reviewer_review_count(review.reviewer) <
          *options.min_reviewer_reviews) {
    return false;
  }
  return true;
}

}  // namespace

SubjectiveTables Aggregator::Build(
    const text::ReviewCorpus& corpus,
    std::vector<extract::ExtractedOpinion> extractions,
    const AggregationOptions& options, ThreadPool* pool) const {
  SubjectiveTables tables;
  const size_t num_attrs = schema_->num_attributes();
  const size_t num_entities = corpus.num_entities();
  tables.summaries.resize(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    tables.summaries[a].reserve(num_entities);
    for (size_t e = 0; e < num_entities; ++e) {
      tables.summaries[a].emplace_back(
          &schema_->attributes[a].summary_type, embedder_->dim());
    }
  }
  tables.extractions = std::move(extractions);
  const size_t num_extractions = tables.extractions.size();
  tables.extraction_attribute.assign(num_extractions, -1);
  tables.extraction_marker.assign(num_extractions, -1);
  tables.extraction_margin.assign(num_extractions, 0.0);

  // Phase 1 (parallel): everything per-extraction and read-only — the
  // review filter, attribute classification, marker matching and the
  // phrase embedding. Each iteration writes only its own slots.
  struct Prepared {
    bool matched = false;
    bool unmatched_in_domain = false;  // Classified but below threshold.
    int best_marker = -1;
    std::vector<double> weights;
    embedding::Vec phrase_vec;
  };
  std::vector<Prepared> prepared(num_extractions);
  auto prepare_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const auto& opinion = tables.extractions[i];
      const auto& review = corpus.review(opinion.review);
      if (!PassesFilter(review, corpus, options)) continue;
      const auto [a, margin] =
          classifier_->ClassifyWithMargin(opinion.aspect, opinion.opinion);
      tables.extraction_attribute[i] = a;
      tables.extraction_margin[i] = margin;
      if (a < 0 || static_cast<size_t>(a) >= num_attrs) continue;
      Prepared& prep = prepared[i];
      prep.weights = MarkerWeights(a, opinion.phrase, options);
      int best_marker = -1;
      double best_weight = 0.0;
      for (size_t m = 0; m < prep.weights.size(); ++m) {
        if (prep.weights[m] > best_weight) {
          best_weight = prep.weights[m];
          best_marker = static_cast<int>(m);
        }
      }
      if (best_marker < 0) {
        prep.unmatched_in_domain = true;
        continue;
      }
      prep.matched = true;
      prep.best_marker = best_marker;
      prep.phrase_vec = embedder_->Represent(opinion.phrase);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, num_extractions, prepare_range, /*min_grain=*/16);
  } else {
    prepare_range(0, num_extractions);
  }

  // Phase 2 (serial): fold onto the summaries in extraction order — the
  // same mutation sequence as the serial build, hence bit-identical.
  for (size_t i = 0; i < num_extractions; ++i) {
    const Prepared& prep = prepared[i];
    const auto& opinion = tables.extractions[i];
    const int a = tables.extraction_attribute[i];
    if (prep.unmatched_in_domain) {
      tables.summaries[a][opinion.entity].AddUnmatched();
      continue;
    }
    if (!prep.matched) continue;
    tables.extraction_marker[i] = prep.best_marker;
    tables.summaries[a][opinion.entity].AddPhrase(
        prep.weights, opinion.sentiment, prep.phrase_vec, opinion.review);
  }
  return tables;
}

void Aggregator::AddOpinion(const extract::ExtractedOpinion& opinion,
                            const text::ReviewCorpus& corpus,
                            const AggregationOptions& options,
                            SubjectiveTables* tables) const {
  const auto& review = corpus.review(opinion.review);
  tables->extractions.push_back(opinion);
  if (!PassesFilter(review, corpus, options)) {
    tables->extraction_attribute.push_back(-1);
    tables->extraction_marker.push_back(-1);
    tables->extraction_margin.push_back(0.0);
    return;
  }
  const auto [a, margin] =
      classifier_->ClassifyWithMargin(opinion.aspect, opinion.opinion);
  tables->extraction_attribute.push_back(a);
  tables->extraction_margin.push_back(margin);
  if (a < 0 || static_cast<size_t>(a) >= schema_->num_attributes()) {
    tables->extraction_marker.push_back(-1);
    return;
  }
  // Entities appended to the corpus after Build() get summaries lazily.
  auto& per_entity = tables->summaries[a];
  while (per_entity.size() < corpus.num_entities()) {
    per_entity.emplace_back(&schema_->attributes[a].summary_type,
                            embedder_->dim());
  }
  const auto weights = MarkerWeights(a, opinion.phrase, options);
  MarkerSummary& summary = per_entity[opinion.entity];
  int best_marker = -1;
  double best_weight = 0.0;
  for (size_t m = 0; m < weights.size(); ++m) {
    if (weights[m] > best_weight) {
      best_weight = weights[m];
      best_marker = static_cast<int>(m);
    }
  }
  if (best_marker < 0) {
    summary.AddUnmatched();
    tables->extraction_marker.push_back(-1);
    return;
  }
  tables->extraction_marker.push_back(best_marker);
  summary.AddPhrase(weights, opinion.sentiment,
                    embedder_->Represent(opinion.phrase), opinion.review);
}

}  // namespace opinedb::core
