#ifndef OPINEDB_CORE_EXEC_OPS_H_
#define OPINEDB_CORE_EXEC_OPS_H_

#include <atomic>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/planner.h"

namespace opinedb::core {

class DegreeCache;

/// Shared state threaded through the physical operator chain. The
/// engine fills the borrowed pointers (query, plan, interpretation
/// prologue), then each operator reads its inputs and writes its
/// outputs here:
///
///   ObjectiveFilterOp : entities            -> candidates
///   SubjectiveScoreOp : candidates          -> degrees (per condition)
///   RankOp            : degrees, candidates -> output->results
///   TaTopKOp          : cached lists        -> output->results
struct ExecContext {
  const OpineDb* db = nullptr;
  const SubjectiveQuery* query = nullptr;
  const LogicalPlan* logical = nullptr;
  const storage::Table* table = nullptr;
  /// Attached degree cache; nullptr when none.
  DegreeCache* cache = nullptr;
  /// Destination: interpretations (already filled), stats, results.
  QueryResult* output = nullptr;
  /// Per-condition query representations from the interpret prologue
  /// (indexed by condition; objective slots are defaulted).
  const std::vector<embedding::Vec>* reps = nullptr;
  const std::vector<double>* sentis = nullptr;

  size_t num_entities = 0;
  /// Selection vector of surviving entity ids, ascending. While
  /// candidates_are_all is true the implicit set is every entity and
  /// the vector stays empty (the dense fast path keeps the exact loop
  /// shapes of the pre-planner engine, preserving bit-identity).
  std::vector<size_t> candidates;
  bool candidates_are_all = true;

  size_t num_candidates() const {
    return candidates_are_all ? num_entities : candidates.size();
  }

  /// Degree lists: computed[c] owns lists built this query; degrees[c]
  /// points either there or into the cache.
  std::vector<std::vector<double>> computed;
  std::vector<const std::vector<double>*> degrees;
  /// Combined WHERE score per entity (RankOp scratch).
  std::vector<double> scores;

  /// Deadline / cancellation for this query; nullptr (or an inactive
  /// deadline) means unbounded. Operators poll it at chunk boundaries.
  const QueryDeadline* deadline = nullptr;
  /// Set by operators when the deadline stopped work early; the output
  /// then holds a prefix-consistent partial ranking (see watermark).
  bool partial = false;
  /// Candidate positions [0, watermark) have exact degrees in every
  /// condition list; RankOp only ranks that prefix when partial. Only
  /// meaningful while partial is true.
  size_t watermark = 0;
  /// Set (possibly from pool workers, hence atomic) when any stage fell
  /// back to a cheaper path after a failure — the answer is complete
  /// but was not produced on the preferred path.
  std::atomic<bool> degraded{false};
};

/// A physical operator: reads/writes the shared ExecContext. Operators
/// only use OpineDb's public API, so they stay testable in isolation.
class ExecOp {
 public:
  virtual ~ExecOp() = default;
  virtual const char* name() const = 0;
  virtual Status Run(ExecContext* ctx) const = 0;
};

/// Evaluates the hard objective predicates (AND-reachable from the
/// root) first, with each column resolved once per predicate, shrinking
/// the candidate set before any subjective scoring. A failing hard
/// predicate forces the WHERE to exactly 0.0 (0 is absorbing for ⊗ in
/// both variants), so dropped entities can never appear in the output.
class ObjectiveFilterOp : public ExecOp {
 public:
  const char* name() const override { return "objective_filter"; }
  Status Run(ExecContext* ctx) const override;
};

/// Materializes the per-condition degree lists restricted to the
/// candidate set: objective conditions as 0/1 vectors (column bound
/// once), subjective conditions through the degree cache when attached
/// or a parallel slot-per-entity computation otherwise.
class SubjectiveScoreOp : public ExecOp {
 public:
  const char* name() const override { return "score"; }
  Status Run(ExecContext* ctx) const override;
};

/// Combines the WHERE tree per candidate (parallel, slot-per-entity),
/// filters zero scores, and ranks with a partial_sort top-k (the
/// comparator's score-desc/entity-asc total order makes the prefix
/// bit-identical to a full sort).
class RankOp : public ExecOp {
 public:
  const char* name() const override { return "combine_rank"; }
  Status Run(ExecContext* ctx) const override;
};

/// Routes fully-conjunctive all-subjective queries through Fagin's
/// Threshold Algorithm over the cached degree lists, skipping the dense
/// combine entirely. The TA aggregate folds lists in conjunct order,
/// matching fuzzy::Expr::Evaluate over an AND of leaves, and zero
/// scores are filtered from its output — bit-identical to the dense
/// path.
class TaTopKOp : public ExecOp {
 public:
  const char* name() const override { return "ta_topk"; }
  Status Run(ExecContext* ctx) const override;
};

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_EXEC_OPS_H_
