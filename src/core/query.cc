#include "core/query.h"

#include <cctype>
#include <charconv>
#include <system_error>

#include "common/string_util.h"

namespace opinedb::core {

namespace {

/// Numeric literal parsing via std::from_chars: unlike std::stod /
/// std::stoll these never throw — out-of-range and trailing-junk inputs
/// (the lexer happily tokenizes "1.2.3" or a 40-digit run) become clean
/// ParseErrors instead of std::out_of_range escaping the parser.
Result<double> ParseDoubleLiteral(const std::string& text) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc::result_out_of_range) {
    return Status::ParseError("numeric literal out of range: " + text);
  }
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::ParseError("malformed numeric literal: " + text);
  }
  return value;
}

Result<int64_t> ParseIntLiteral(const std::string& text) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc::result_out_of_range) {
    return Status::ParseError("integer literal out of range: " + text);
  }
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::ParseError("malformed integer literal: " + text);
  }
  return value;
}

/// Token kinds for the SQL lexer.
enum class TokKind {
  kWord,     // Identifier or keyword.
  kNumber,   // Numeric literal.
  kString,   // Single-quoted string literal.
  kPhrase,   // Double-quoted subjective predicate.
  kOp,       // Comparison operator.
  kLParen,
  kRParen,
  kStar,
  kComma,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Lex() {
    std::vector<Token> tokens;
    size_t i = 0;
    const std::string& s = input_;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '(') {
        tokens.push_back({TokKind::kLParen, "("});
        ++i;
      } else if (c == ')') {
        tokens.push_back({TokKind::kRParen, ")"});
        ++i;
      } else if (c == '*') {
        tokens.push_back({TokKind::kStar, "*"});
        ++i;
      } else if (c == ',') {
        tokens.push_back({TokKind::kComma, ","});
        ++i;
      } else if (c == ';') {
        ++i;  // Trailing semicolons are ignored.
      } else if (c == '"') {
        size_t end = s.find('"', i + 1);
        if (end == std::string::npos) {
          return Status::ParseError("unterminated double quote");
        }
        tokens.push_back({TokKind::kPhrase, s.substr(i + 1, end - i - 1)});
        i = end + 1;
      } else if (c == '\'') {
        size_t end = s.find('\'', i + 1);
        if (end == std::string::npos) {
          return Status::ParseError("unterminated single quote");
        }
        tokens.push_back({TokKind::kString, s.substr(i + 1, end - i - 1)});
        i = end + 1;
      } else if (c == '<' || c == '>' || c == '=' || c == '!') {
        std::string op(1, c);
        if (i + 1 < s.size() && (s[i + 1] == '=' || s[i + 1] == '>')) {
          op += s[i + 1];
          i += 2;
        } else {
          ++i;
        }
        tokens.push_back({TokKind::kOp, op});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && i + 1 < s.size() &&
                  std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
        size_t j = i + 1;
        while (j < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[j])) ||
                s[j] == '.')) {
          ++j;
        }
        tokens.push_back({TokKind::kNumber, s.substr(i, j - i)});
        i = j;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i + 1;
        while (j < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[j])) ||
                s[j] == '_' || s[j] == '.')) {
          ++j;
        }
        tokens.push_back({TokKind::kWord, s.substr(i, j - i)});
        i = j;
      } else {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "'");
      }
    }
    tokens.push_back({TokKind::kEnd, ""});
    return tokens;
  }

 private:
  const std::string& input_;
};

/// Recursive-descent parser over the token stream. Grammar:
///   query  := SELECT '*' FROM word (WHERE orExpr)? (LIMIT number)?
///   orExpr := andExpr (OR andExpr)*
///   andExpr:= unary (AND unary)*
///   unary  := NOT unary | '(' orExpr ')' | atom
///   atom   := phrase | word op literal
class Parser {
 public:
  Parser(std::vector<Token> tokens, SubjectiveQuery* query)
      : tokens_(std::move(tokens)), query_(query) {}

  Status Parse() {
    if (ConsumeKeyword("explain")) {
      query_->explain = true;
    }
    if (!ConsumeKeyword("select")) {
      return Status::ParseError("expected SELECT");
    }
    if (!Consume(TokKind::kStar)) {
      return Status::ParseError("only SELECT * is supported");
    }
    if (!ConsumeKeyword("from")) {
      return Status::ParseError("expected FROM");
    }
    if (Peek().kind != TokKind::kWord) {
      return Status::ParseError("expected table name");
    }
    query_->table = Next().text;
    if (ConsumeKeyword("where")) {
      auto expr = ParseOr();
      if (!expr.ok()) return expr.status();
      query_->where = *expr;
    }
    if (ConsumeKeyword("limit")) {
      if (Peek().kind != TokKind::kNumber) {
        return Status::ParseError("expected number after LIMIT");
      }
      auto limit = ParseIntLiteral(Next().text);
      if (!limit.ok()) return limit.status();
      if (*limit < 0) {
        return Status::ParseError("LIMIT must be non-negative");
      }
      query_->limit = static_cast<size_t>(*limit);
    }
    if (Peek().kind != TokKind::kEnd) {
      return Status::ParseError("unexpected trailing token: " + Peek().text);
    }
    return Status::OK();
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool Consume(TokKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeKeyword(const std::string& keyword) {
    if (Peek().kind == TokKind::kWord && ToLower(Peek().text) == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<fuzzy::Expr::Ptr> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left.status();
    std::vector<fuzzy::Expr::Ptr> terms = {*left};
    while (ConsumeKeyword("or")) {
      auto right = ParseAnd();
      if (!right.ok()) return right.status();
      terms.push_back(*right);
    }
    return fuzzy::Expr::MakeOr(std::move(terms));
  }

  Result<fuzzy::Expr::Ptr> ParseAnd() {
    auto left = ParseUnary();
    if (!left.ok()) return left.status();
    std::vector<fuzzy::Expr::Ptr> terms = {*left};
    while (ConsumeKeyword("and")) {
      auto right = ParseUnary();
      if (!right.ok()) return right.status();
      terms.push_back(*right);
    }
    return fuzzy::Expr::MakeAnd(std::move(terms));
  }

  Result<fuzzy::Expr::Ptr> ParseUnary() {
    if (ConsumeKeyword("not")) {
      auto child = ParseUnary();
      if (!child.ok()) return child.status();
      return fuzzy::Expr::MakeNot(*child);
    }
    if (Consume(TokKind::kLParen)) {
      auto inner = ParseOr();
      if (!inner.ok()) return inner.status();
      if (!Consume(TokKind::kRParen)) {
        return Status::ParseError("expected ')'");
      }
      return inner;
    }
    return ParseAtom();
  }

  Result<fuzzy::Expr::Ptr> ParseAtom() {
    if (Peek().kind == TokKind::kPhrase) {
      Condition condition;
      condition.kind = Condition::Kind::kSubjective;
      condition.subjective = Next().text;
      query_->conditions.push_back(std::move(condition));
      return fuzzy::Expr::Leaf(query_->conditions.size() - 1);
    }
    if (Peek().kind == TokKind::kWord) {
      const std::string column = Next().text;
      if (Peek().kind != TokKind::kOp) {
        return Status::ParseError("expected comparison after column " +
                                  column);
      }
      auto op = storage::ParseCompareOp(Next().text);
      if (!op.ok()) return op.status();
      storage::Value literal;
      if (Peek().kind == TokKind::kNumber) {
        const std::string num = Next().text;
        if (num.find('.') != std::string::npos) {
          auto value = ParseDoubleLiteral(num);
          if (!value.ok()) return value.status();
          literal = storage::Value(*value);
        } else {
          auto value = ParseIntLiteral(num);
          if (!value.ok()) return value.status();
          literal = storage::Value(*value);
        }
      } else if (Peek().kind == TokKind::kString) {
        literal = storage::Value(Next().text);
      } else {
        return Status::ParseError("expected literal after operator");
      }
      Condition condition;
      condition.kind = Condition::Kind::kObjective;
      condition.objective.column = column;
      condition.objective.op = *op;
      condition.objective.literal = std::move(literal);
      query_->conditions.push_back(std::move(condition));
      return fuzzy::Expr::Leaf(query_->conditions.size() - 1);
    }
    return Status::ParseError("expected condition, got: " + Peek().text);
  }

  std::vector<Token> tokens_;
  SubjectiveQuery* query_;
  size_t pos_ = 0;
};

}  // namespace

Result<SubjectiveQuery> ParseSubjectiveSql(const std::string& sql) {
  Lexer lexer(sql);
  auto tokens = lexer.Lex();
  if (!tokens.ok()) return tokens.status();
  SubjectiveQuery query;
  Parser parser(std::move(*tokens), &query);
  Status status = parser.Parse();
  if (!status.ok()) return status;
  return query;
}

}  // namespace opinedb::core
