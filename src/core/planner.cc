#include "core/planner.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "core/degree_cache.h"

namespace opinedb::core {

namespace {

/// Collects objective leaves reachable from `node` through AND nodes
/// only. OR and NOT stop the walk: below them a failing objective leaf
/// no longer forces the root to zero.
void CollectHardObjective(const fuzzy::Expr* node,
                          const std::vector<Condition>& conditions,
                          std::vector<size_t>* hard) {
  switch (node->kind()) {
    case fuzzy::Expr::Kind::kLeaf: {
      const size_t c = node->leaf_index();
      if (c < conditions.size() &&
          conditions[c].kind == Condition::Kind::kObjective) {
        hard->push_back(c);
      }
      return;
    }
    case fuzzy::Expr::Kind::kAnd:
      for (const auto& child : node->children()) {
        CollectHardObjective(child.get(), conditions, hard);
      }
      return;
    case fuzzy::Expr::Kind::kOr:
    case fuzzy::Expr::Kind::kNot:
      return;
  }
}

const char* VariantName(fuzzy::Variant variant) {
  return variant == fuzzy::Variant::kProduct ? "product" : "godel";
}

std::string RenderObjective(const storage::ColumnPredicate& predicate) {
  std::string text = predicate.column;
  text += ' ';
  text += storage::CompareOpSymbol(predicate.op);
  text += ' ';
  if (predicate.literal.type() == storage::ValueType::kString) {
    text += '\'';
    text += predicate.literal.ToString();
    text += '\'';
  } else {
    text += predicate.literal.ToString();
  }
  return text;
}

}  // namespace

LogicalPlan AnalyzeQuery(const SubjectiveQuery& query) {
  LogicalPlan plan;
  for (size_t c = 0; c < query.conditions.size(); ++c) {
    if (query.conditions[c].kind == Condition::Kind::kObjective) {
      plan.objective_leaves.push_back(c);
    } else {
      plan.subjective_leaves.push_back(c);
    }
  }
  if (query.where == nullptr) return plan;
  CollectHardObjective(query.where.get(), query.conditions,
                       &plan.hard_objective);
  // MakeAnd collapses a single child to the child itself, so the
  // conjunctive shapes are exactly: one leaf, or one AND whose children
  // are all leaves. Nested ANDs are excluded on purpose — flattening
  // them would change the floating-point fold order.
  const fuzzy::Expr* root = query.where.get();
  if (root->kind() == fuzzy::Expr::Kind::kLeaf) {
    plan.conjunctive_leaves_only = true;
    plan.conjuncts.push_back(root->leaf_index());
  } else if (root->kind() == fuzzy::Expr::Kind::kAnd) {
    plan.conjunctive_leaves_only = true;
    for (const auto& child : root->children()) {
      if (child->kind() != fuzzy::Expr::Kind::kLeaf) {
        plan.conjunctive_leaves_only = false;
        plan.conjuncts.clear();
        break;
      }
      plan.conjuncts.push_back(child->leaf_index());
    }
  }
  return plan;
}

PhysicalPlan SelectPlan(const SubjectiveQuery& query,
                        const LogicalPlan& logical,
                        const PlannerContext& context) {
  PhysicalPlan plan;
  plan.filtered_eligible = !logical.hard_objective.empty();
  plan.ta_eligible = logical.conjunctive_leaves_only &&
                     !logical.conjuncts.empty() &&
                     logical.objective_leaves.empty() &&
                     context.cache != nullptr && query.limit > 0;
  if (context.cache != nullptr) {
    for (const size_t c : logical.conjuncts) {
      if (context.cache->Peek(query.conditions[c].subjective) != nullptr) {
        ++plan.cached_conjuncts;
      }
    }
  }
  const bool auto_ta = plan.ta_eligible && logical.conjuncts.size() >= 2 &&
                       plan.cached_conjuncts == logical.conjuncts.size() &&
                       query.limit < context.num_entities;
  const PlanKind auto_kind = auto_ta ? PlanKind::kTaTopK
                             : plan.filtered_eligible
                                 ? PlanKind::kFilteredScan
                                 : PlanKind::kDenseScan;
  switch (context.force) {
    case PlanForce::kAuto:
      plan.kind = auto_kind;
      break;
    case PlanForce::kDenseScan:
      plan.kind = PlanKind::kDenseScan;  // Always eligible.
      break;
    case PlanForce::kFilteredScan:
      if (plan.filtered_eligible) {
        plan.kind = PlanKind::kFilteredScan;
      } else {
        plan.kind = auto_kind;
        plan.forced_fallback = true;
      }
      break;
    case PlanForce::kTaTopK:
      if (plan.ta_eligible) {
        plan.kind = PlanKind::kTaTopK;
      } else {
        plan.kind = auto_kind;
        plan.forced_fallback = true;
      }
      break;
  }
  return plan;
}

namespace {

/// Length-prefixed text: "<length>:<bytes>". Keeps the key grammar
/// unambiguous no matter what bytes a column name, string literal or
/// predicate contains.
void AppendSized(std::string_view s, std::string* out) {
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

void AppendCanonicalCondition(const Condition& condition, std::string* out) {
  if (condition.kind == Condition::Kind::kObjective) {
    const storage::ColumnPredicate& predicate = condition.objective;
    out->append("o(");
    AppendSized(predicate.column, out);
    out->append(storage::CompareOpSymbol(predicate.op));
    switch (predicate.literal.type()) {
      case storage::ValueType::kNull:
        out->append("null");
        break;
      case storage::ValueType::kInt:
      case storage::ValueType::kDouble: {
        // Through the numeric view, with round-trip precision: `150`
        // and `150.0` compare equal in the executor (Value::Compare is
        // numeric across int/double), so they must share a key.
        char buffer[40];
        std::snprintf(buffer, sizeof(buffer), "n%.17g",
                      predicate.literal.AsNumber());
        out->append(buffer);
        break;
      }
      case storage::ValueType::kString:
        out->push_back('v');
        AppendSized(predicate.literal.AsString(), out);
        break;
    }
    out->push_back(')');
  } else {
    out->append("s(");
    AppendSized(NormalizePredicate(condition.subjective), out);
    out->push_back(')');
  }
}

/// Renders the WHERE tree preserving structure and child order exactly
/// (see the fold-order note on CanonicalQueryKey), with each leaf
/// expanded to its canonical condition.
void AppendCanonicalExpr(const fuzzy::Expr* node,
                         const std::vector<Condition>& conditions,
                         std::string* out) {
  switch (node->kind()) {
    case fuzzy::Expr::Kind::kLeaf: {
      const size_t c = node->leaf_index();
      out->push_back('[');
      if (c < conditions.size()) {
        AppendCanonicalCondition(conditions[c], out);
      }
      out->push_back(']');
      return;
    }
    case fuzzy::Expr::Kind::kAnd:
    case fuzzy::Expr::Kind::kOr:
      out->push_back('(');
      out->push_back(node->kind() == fuzzy::Expr::Kind::kAnd ? '&' : '|');
      for (const auto& child : node->children()) {
        AppendCanonicalExpr(child.get(), conditions, out);
      }
      out->push_back(')');
      return;
    case fuzzy::Expr::Kind::kNot:
      out->append("(!");
      for (const auto& child : node->children()) {
        AppendCanonicalExpr(child.get(), conditions, out);
      }
      out->push_back(')');
      return;
  }
}

}  // namespace

std::string CanonicalQueryKey(const SubjectiveQuery& query) {
  std::string key = "q1;t=";
  AppendSized(query.table, &key);
  key.append(";l=");
  key.append(std::to_string(query.limit));
  key.append(";w=");
  if (query.where == nullptr) {
    key.push_back('-');
  } else {
    AppendCanonicalExpr(query.where.get(), query.conditions, &key);
  }
  return key;
}

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kDenseScan:
      return "dense_scan";
    case PlanKind::kFilteredScan:
      return "filtered_scan";
    case PlanKind::kTaTopK:
      return "ta_topk";
  }
  return "unknown";
}

std::string ExplainPlan(const SubjectiveQuery& query,
                        const LogicalPlan& logical,
                        const PhysicalPlan& physical,
                        const PlannerContext& context) {
  std::string out = "plan: ";
  out += PlanKindName(physical.kind);
  if (physical.forced_fallback) out += " (forced plan ineligible, fell back)";
  out += '\n';
  out += "table: " + query.table +
         "  limit: " + std::to_string(query.limit) + "  variant: " +
         VariantName(context.variant) + '\n';
  out += "where: ";
  out += query.where != nullptr ? query.where->ToString() : "(none)";
  out += '\n';
  if (query.conditions.empty()) {
    out += "conditions: (none)\n";
  } else {
    out += "conditions:\n";
    for (size_t c = 0; c < query.conditions.size(); ++c) {
      const Condition& condition = query.conditions[c];
      out += "  [" + std::to_string(c) + "] ";
      if (condition.kind == Condition::Kind::kObjective) {
        out += "objective  " + RenderObjective(condition.objective);
        if (std::find(logical.hard_objective.begin(),
                      logical.hard_objective.end(),
                      c) != logical.hard_objective.end()) {
          out += " [hard]";
        }
      } else {
        out += "subjective \"" + condition.subjective + "\"";
        if (context.cache != nullptr) {
          out += context.cache->Peek(condition.subjective) != nullptr
                     ? " [cached]"
                     : " [uncached]";
        }
      }
      out += '\n';
    }
  }
  out += "operators:\n";
  switch (physical.kind) {
    case PlanKind::kDenseScan:
      out += "  SubjectiveScore(" +
             std::to_string(query.conditions.size()) +
             " condition lists over all entities)\n";
      out += "  Rank(top " + std::to_string(query.limit) +
             ", partial_sort)\n";
      break;
    case PlanKind::kFilteredScan:
      out += "  ObjectiveFilter(" +
             std::to_string(logical.hard_objective.size()) +
             " hard predicates)\n";
      out += "  SubjectiveScore(" +
             std::to_string(query.conditions.size()) +
             " condition lists over survivors)\n";
      out += "  Rank(top " + std::to_string(query.limit) +
             ", partial_sort)\n";
      break;
    case PlanKind::kTaTopK:
      out += "  TaTopK(" + std::to_string(logical.conjuncts.size()) +
             " degree lists, k=" + std::to_string(query.limit) + ")\n";
      break;
  }
  return out;
}

}  // namespace opinedb::core
