#ifndef OPINEDB_CORE_COLUMNAR_H_
#define OPINEDB_CORE_COLUMNAR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/thread_pool.h"
#include "core/aggregator.h"
#include "core/interpreter.h"
#include "core/membership.h"
#include "embedding/vector_ops.h"
#include "fuzzy/logic.h"
#include "storage/table.h"

namespace opinedb::core {

/// One attribute's marker summaries in structure-of-arrays layout.
///
/// The row-oriented engine reaches a marker cell through
/// tables_.summaries[a][e].cell(k) — a MarkerSummary object per entity
/// whose cells each own a heap-allocated centroid vector. A dense scan
/// therefore chases two pointers per cell and strides across unrelated
/// allocations, which defeats both the cache and the auto-vectorizer.
/// Here every quantity the membership features read lives in its own
/// contiguous 64-byte-aligned array, entity-major so one entity's cells
/// are adjacent:
///
///   count[e*K + k], mean_sentiment[e*K + k], centroid_norm[e*K + k]
///   centroid[(e*K + k) * dim .. +dim)          (float, flattened)
///   provenance_count[e*K + k]
///   total[e], unmatched[e]                     (per entity)
///
/// centroid_norm is embedding::Norm of the cell centroid, precomputed at
/// build time — Norm is deterministic, so the cached double is
/// bit-identical to what the row path computes inside every Cosine call.
struct AttributeColumns {
  size_t num_entities = 0;
  size_t num_markers = 0;
  size_t dim = 0;
  common::AlignedArray<double> count;
  common::AlignedArray<double> mean_sentiment;
  common::AlignedArray<double> centroid_norm;
  common::AlignedArray<float> centroid;
  common::AlignedArray<uint32_t> provenance_count;
  common::AlignedArray<double> total;
  common::AlignedArray<double> unmatched;

  /// Total allocation footprint of this attribute's columns.
  size_t bytes() const;
  /// Bytes one atom evaluation streams per entity (all cell columns for
  /// K markers plus the two per-entity scalars) — the numerator of the
  /// bench's achieved-GB/s figure.
  size_t scan_bytes_per_entity() const;
};

/// Columnar mirror of the engine's marker summaries: one AttributeColumns
/// per subjective attribute, rebuilt from the row tables whenever they
/// change wholesale (Build / Reaggregate / OpenDatabase /
/// InstallSummaries) and patched in place per touched entity by the
/// incremental ingest path (UpdateEntities) — always under the exclusive
/// reconfiguration lock; see docs/SCALING.md for the sync rules. Between
/// mutations it is read-only, so queries holding the shared lock may
/// scan it from any number of threads.
class ColumnarSummaryStore {
 public:
  /// Copies `tables` into columnar layout; entities fan out across
  /// `pool` when provided (each entity writes only its own slots).
  ColumnarSummaryStore(const SubjectiveTables& tables, size_t num_entities,
                       ThreadPool* pool);

  /// In-place delta update for ingest: refills the column slots of
  /// `touched` entities from the row tables, running exactly the
  /// per-entity fill the constructor runs — so the patched store is
  /// bit-identical to a full rebuild over the same tables. Requires the
  /// exclusive reconfiguration lock (this writes the arrays queries
  /// read). Ingest never adds entities, so out-of-range ids are
  /// ignored.
  void UpdateEntities(const SubjectiveTables& tables,
                      const std::vector<text::EntityId>& touched);

  size_t num_attributes() const { return columns_.size(); }
  size_t num_entities() const { return num_entities_; }
  const AttributeColumns& attribute(size_t a) const { return columns_[a]; }

  /// Total allocation footprint across all attributes.
  size_t bytes() const;

 private:
  std::vector<AttributeColumns> columns_;
  size_t num_entities_ = 0;
};

/// One interpreted subjective condition bound to the columnar store for
/// dense evaluation: every atom resolved to its attribute's columns and
/// marker index, the query embedding's norm precomputed once. Score(e)
/// computes the condition's degree of truth for one entity as a
/// contiguous sweep over that entity's cells, replicating the row path's
/// arithmetic operation for operation (same feature formulas, same fold
/// order, same fault site and metric counter) so results are
/// bit-identical — the row path stays on as the differential oracle
/// behind EngineOptions::columnar.
class ConditionScorer {
 public:
  /// `model` may be null (heuristic fallback). `query_rep` must outlive
  /// the scorer. When any atom cannot be bound (attribute/marker out of
  /// range, dimension mismatch) ok() is false and the caller must use
  /// the row path.
  ConditionScorer(const ColumnarSummaryStore& store,
                  const PredicateInterpretation& interpretation,
                  const embedding::Vec& query_rep, double query_sentiment,
                  fuzzy::Variant variant, const MembershipModel* model);

  bool ok() const { return ok_; }

  /// Degree of truth of the whole condition for one entity: per-atom
  /// membership degrees folded in atom order with the interpretation's
  /// connective — the row path's exact fold.
  double Score(size_t entity) const;

  /// Membership degree of one atom for one entity (the columnar
  /// equivalent of OpineDb::AtomDegreeOfTruth over markers).
  double AtomDegree(size_t atom_index, size_t entity) const;

  /// Bytes the per-entity sweep streams across all atoms — feeds the
  /// bench's achieved-GB/s figure.
  size_t scan_bytes_per_entity() const;

 private:
  struct BoundAtom {
    const AttributeColumns* columns = nullptr;
    size_t marker = 0;
  };

  std::vector<BoundAtom> atoms_;
  const embedding::Vec* query_rep_ = nullptr;
  double query_norm_ = 0.0;
  double query_sentiment_ = 0.0;
  fuzzy::Variant variant_ = fuzzy::Variant::kProduct;
  const MembershipModel* model_ = nullptr;
  bool conjunctive_ = true;
  bool ok_ = false;
};

/// Columnar mirror of an objective table: numeric columns as contiguous
/// double arrays with a null bitmap, string columns dictionary-encoded
/// against a sorted distinct list (rank order == storage::Value string
/// order, so comparing ranks is comparing strings). Built once in
/// SetObjectiveTable; ObjectiveFilterOp and the 0/1 objective lists in
/// SubjectiveScoreOp evaluate bound predicates against it as dense
/// sweeps with Value::Compare's exact semantics (NULL never matches,
/// numbers before strings, NaN compares equal).
class ColumnarTable {
 public:
  explicit ColumnarTable(const storage::Table& table);

  const std::string& table_name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t bytes() const;

  /// A bound predicate lowered onto the column arrays. `cmp_kind`
  /// selects how the three-way comparison against the literal is
  /// produced per row; `accept` maps cmp (-1/0/1) through the operator.
  struct CompiledPredicate {
    enum class CmpKind { kNumeric, kStringRank, kConstant };
    CmpKind cmp_kind = CmpKind::kConstant;
    const uint8_t* is_null = nullptr;
    const double* num = nullptr;
    const int32_t* code = nullptr;
    double num_literal = 0.0;
    int32_t rank = 0;          // String literal's dict rank / insert point.
    bool rank_exact = false;   // Literal present in the dictionary.
    int constant_cmp = 0;      // Type-mismatch comparisons are constant.
    bool accept[3] = {false, false, false};  // accept[cmp + 1].
  };

  /// Lowers a bound predicate; nullopt when the column cannot be
  /// evaluated columnar (caller falls back to the row path).
  std::optional<CompiledPredicate> Compile(
      const storage::BoundColumnPredicate& predicate) const;

  /// Row-level evaluation, bit-identical to
  /// BoundColumnPredicate::Matches on the mirrored table.
  static bool Eval(const CompiledPredicate& predicate, size_t row) {
    if (predicate.is_null[row] != 0) return false;
    int cmp;
    switch (predicate.cmp_kind) {
      case CompiledPredicate::CmpKind::kNumeric: {
        // Same three-way comparison Value::Compare performs, including
        // its NaN behaviour (neither < nor > → "equal").
        const double x = predicate.num[row];
        cmp = x < predicate.num_literal ? -1
                                        : (x > predicate.num_literal ? 1 : 0);
        break;
      }
      case CompiledPredicate::CmpKind::kStringRank: {
        const int32_t c = predicate.code[row];
        cmp = predicate.rank_exact
                  ? (c < predicate.rank ? -1 : (c > predicate.rank ? 1 : 0))
                  : (c < predicate.rank ? -1 : 1);
        break;
      }
      case CompiledPredicate::CmpKind::kConstant:
      default:
        cmp = predicate.constant_cmp;
        break;
    }
    return predicate.accept[cmp + 1];
  }

  /// match[row] &= Eval(predicate, row) over every row — the dense AND
  /// sweep ObjectiveFilterOp runs per hard predicate.
  void FilterInto(const CompiledPredicate& predicate,
                  std::vector<uint8_t>* match) const;

 private:
  struct Column {
    storage::ValueType type = storage::ValueType::kNull;
    common::AlignedArray<uint8_t> is_null;
    common::AlignedArray<double> num;     // kInt / kDouble columns.
    common::AlignedArray<int32_t> code;   // kString columns.
    std::vector<std::string> dict;        // Sorted distinct strings.
  };

  std::string name_;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_COLUMNAR_H_
