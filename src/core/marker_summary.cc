#include "core/marker_summary.h"

#include <cassert>

namespace opinedb::core {

int MarkerSummaryType::MarkerIndex(const std::string& marker) const {
  for (size_t i = 0; i < markers.size(); ++i) {
    if (markers[i] == marker) return static_cast<int>(i);
  }
  return -1;
}

MarkerSummary::MarkerSummary(const MarkerSummaryType* type,
                             size_t embedding_dim)
    : type_(type), embedding_dim_(embedding_dim) {
  cells_.resize(type->num_markers());
  for (auto& cell : cells_) {
    cell.centroid = embedding::Zeros(embedding_dim);
  }
}

double MarkerSummary::total_count() const {
  double total = 0.0;
  for (const auto& cell : cells_) total += cell.count;
  return total;
}

void MarkerSummary::AddPhrase(const std::vector<double>& weights,
                              double sentiment, const embedding::Vec& vec,
                              text::ReviewId review) {
  assert(weights.size() == cells_.size());
  for (size_t m = 0; m < cells_.size(); ++m) {
    const double w = weights[m];
    if (w <= 0.0) continue;
    MarkerCell& cell = cells_[m];
    const double new_count = cell.count + w;
    // Running weighted means for sentiment and the centroid.
    cell.mean_sentiment =
        (cell.mean_sentiment * cell.count + sentiment * w) / new_count;
    for (size_t d = 0; d < cell.centroid.size() && d < vec.size(); ++d) {
      cell.centroid[d] = static_cast<float>(
          (double(cell.centroid[d]) * cell.count + double(vec[d]) * w) /
          new_count);
    }
    cell.count = new_count;
    cell.provenance.push_back(review);
  }
}

int MarkerSummary::DominantMarker() const {
  int best = -1;
  double best_count = 0.0;
  for (size_t m = 0; m < cells_.size(); ++m) {
    if (cells_[m].count > best_count) {
      best_count = cells_[m].count;
      best = static_cast<int>(m);
    }
  }
  return best;
}

std::string MarkerSummary::ToString() const {
  std::string out = "[";
  for (size_t m = 0; m < cells_.size(); ++m) {
    if (m > 0) out += ", ";
    out += type_->markers[m];
    out += ": ";
    char buf[32];
    snprintf(buf, sizeof(buf), "%.1f", cells_[m].count);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace opinedb::core
