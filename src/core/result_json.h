#ifndef OPINEDB_CORE_RESULT_JSON_H_
#define OPINEDB_CORE_RESULT_JSON_H_

#include <string>

#include "core/engine.h"

namespace opinedb::core {

/// Controls which sections ResultToJson renders. The default keeps the
/// document fully deterministic: a query executed twice (or embedded vs
/// over HTTP) renders byte-identical JSON, which is the serving layer's
/// bit-identity contract (tests/server_test.cc). Stats (wall times) and
/// traces (span timings) vary run to run, so both are opt-in.
struct ResultJsonOptions {
  /// Per-condition interpretations (method, confidence, A.m atoms).
  bool include_interpretations = true;
  /// ExecutionStats: threads, work counters and per-phase wall times.
  /// Nondeterministic — excluded from the bit-identity surface.
  bool include_stats = false;
  /// The per-query span tree (requires trace_level == kFull; silently
  /// omitted when QueryResult::trace is null). Nondeterministic.
  bool include_trace = false;
};

/// Name of an InterpretMethod ("word2vec", "cooccurrence",
/// "text_fallback") — matches the trace cascade stage names.
const char* InterpretMethodName(InterpretMethod method);

/// Renders a QueryResult as one JSON object:
///
///   {
///     "results": [{"entity": 3, "name": "...", "score": 0.625}, ...],
///     "partial": false,
///     "degraded": false,
///     "watermark": 120,
///     "plan": "dense_scan",
///     "plan_text": "...",          // EXPLAIN statements only
///     "interpretations": [...],    // optional
///     "stats": {...},              // optional, nondeterministic
///     "trace": [...]               // optional, nondeterministic
///   }
///
/// `watermark` is the number of entities actually scored — for a
/// partial result it is the exact prefix the ranking is consistent
/// over. Scores and confidences render with %.17g, so parsing the
/// document recovers every double bit-exactly.
std::string ResultToJson(const QueryResult& result,
                         const ResultJsonOptions& options =
                             ResultJsonOptions());

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_RESULT_JSON_H_
