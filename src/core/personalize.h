#ifndef OPINEDB_CORE_PERSONALIZE_H_
#define OPINEDB_CORE_PERSONALIZE_H_

#include <string>
#include <vector>

#include "core/engine.h"

namespace opinedb::core {

/// A user profile (Section 7 future work: "a subjective database system
/// should be able to take into consideration a user profile"): how much
/// the user cares about each subjective attribute, in [0, 1].
struct UserProfile {
  /// One weight per schema attribute (missing entries default to 0).
  std::vector<double> attribute_weights;

  /// Builds a profile over `db`'s schema from (attribute name, weight)
  /// pairs; unknown names are ignored.
  static UserProfile FromWeights(
      const OpineDb& db,
      const std::vector<std::pair<std::string, double>>& weights);
};

/// The profile-weighted subjective affinity of one entity: the mean of
/// the positive-sentiment mass fractions of the attributes the user
/// cares about, weighted by the profile and discounted by evidence
/// volume.
double ProfileAffinity(const OpineDb& db, const UserProfile& profile,
                       text::EntityId entity);

/// Re-ranks a query result by blending each entity's query score with
/// its profile affinity: score' = (1 - blend) * score + blend * affinity.
std::vector<RankedResult> PersonalizeResults(
    const OpineDb& db, const UserProfile& profile,
    const std::vector<RankedResult>& results, double blend = 0.3);

/// An unexpected experiential aspect of an entity (Section 7: "if there
/// are reviews claiming that an expensive hotel has dirty rooms, that
/// would be important to point out").
struct UnexpectedFinding {
  text::EntityId entity = 0;
  int attribute = -1;
  /// Percentile of the entity's objective key (e.g. price) among all
  /// entities: high percentile = expensive.
  double objective_percentile = 0.0;
  /// The entity's positive-mass score for the attribute in [0, 1].
  double subjective_score = 0.0;
  /// Signed surprise: objective percentile minus subjective score; large
  /// positive = expensive-but-bad, large negative = cheap-but-great.
  double surprise = 0.0;
  std::string description;
};

/// Mines the subjective database for expectation violations: entities
/// whose percentile on the numeric objective column `column` disagrees
/// most with their subjective quality per attribute. Returns the top-k
/// findings by |surprise| (requires the objective table to be set).
Result<std::vector<UnexpectedFinding>> FindUnexpected(
    const OpineDb& db, const storage::Table& objective,
    const std::string& column, size_t k);

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_PERSONALIZE_H_
