#include "core/attribute_classifier.h"

#include <set>
#include <tuple>

#include "text/tokenizer.h"

namespace opinedb::core {

std::vector<std::string> ExpandSeeds(
    const std::vector<std::string>& seeds,
    const embedding::WordEmbeddings& embeddings, size_t expansions_per_seed,
    double min_similarity) {
  std::set<std::string> expanded(seeds.begin(), seeds.end());
  if (expansions_per_seed > 0) {
    text::Tokenizer tokenizer;
    for (const auto& seed : seeds) {
      // Multi-word seeds are expanded word-by-word on their head word
      // (the last token, e.g. "stained carpet" -> "carpet").
      auto tokens = tokenizer.Tokenize(seed);
      if (tokens.empty()) continue;
      for (const auto& [neighbour, similarity] :
           embeddings.MostSimilar(tokens.back(), expansions_per_seed)) {
        if (similarity >= min_similarity) expanded.insert(neighbour);
      }
    }
  }
  return std::vector<std::string>(expanded.begin(), expanded.end());
}

std::vector<std::string> AttributeClassifier::PairTokens(
    const std::string& aspect, const std::string& opinion) {
  text::Tokenizer tokenizer;
  std::vector<std::string> tokens = tokenizer.Tokenize(aspect);
  // Aspect tokens are marked so "room" as aspect and "room" inside an
  // opinion phrase are distinct evidence.
  for (auto& token : tokens) token = "a:" + token;
  for (auto& token : tokenizer.Tokenize(opinion)) {
    tokens.push_back("o:" + token);
  }
  return tokens;
}

AttributeClassifier AttributeClassifier::Train(
    const SubjectiveSchema& schema,
    const embedding::WordEmbeddings& embeddings,
    size_t expansions_per_seed) {
  AttributeClassifier classifier;
  std::vector<ml::TextExample> training;
  for (size_t a = 0; a < schema.attributes.size(); ++a) {
    const auto& seeds = schema.attributes[a].seeds;
    const auto aspects =
        ExpandSeeds(seeds.aspect_terms, embeddings, expansions_per_seed);
    const auto opinions =
        ExpandSeeds(seeds.opinion_terms, embeddings, expansions_per_seed);
    // Cross product (E x P) -> labeled tuples, as in Section 4.2. The
    // designer's original seeds are repeated so that noisy expansions
    // cannot outvote them.
    auto is_original = [](const std::vector<std::string>& originals,
                          const std::string& term) {
      for (const auto& o : originals) {
        if (o == term) return true;
      }
      return false;
    };
    for (const auto& aspect : aspects) {
      const int aspect_weight =
          is_original(seeds.aspect_terms, aspect) ? 2 : 1;
      for (const auto& opinion : opinions) {
        const int weight =
            aspect_weight +
            (is_original(seeds.opinion_terms, opinion) ? 1 : 0);
        for (int w = 0; w < weight; ++w) {
          ml::TextExample ex;
          ex.tokens = PairTokens(aspect, opinion);
          ex.label = static_cast<int>(a);
          training.push_back(std::move(ex));
        }
      }
      // Aspect-only examples keep classification working for stand-alone
      // aspect mentions.
      for (int w = 0; w < aspect_weight; ++w) {
        ml::TextExample aspect_only;
        aspect_only.tokens = PairTokens(aspect, "");
        aspect_only.label = static_cast<int>(a);
        training.push_back(std::move(aspect_only));
      }
    }
  }
  classifier.training_set_size_ = training.size();
  classifier.model_ = ml::NaiveBayesClassifier::Train(
      training, static_cast<int>(schema.attributes.size()));
  return classifier;
}

int AttributeClassifier::Classify(const std::string& aspect,
                                  const std::string& opinion) const {
  return model_.Classify(PairTokens(aspect, opinion));
}

std::pair<int, double> AttributeClassifier::ClassifyWithMargin(
    const std::string& aspect, const std::string& opinion) const {
  return model_.ClassifyWithMargin(PairTokens(aspect, opinion));
}

double AttributeClassifier::Accuracy(
    const std::vector<std::tuple<std::string, std::string, int>>& labeled)
    const {
  if (labeled.empty()) return 0.0;
  int correct = 0;
  for (const auto& [aspect, opinion, label] : labeled) {
    if (Classify(aspect, opinion) == label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labeled.size());
}

}  // namespace opinedb::core
