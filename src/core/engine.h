#ifndef OPINEDB_CORE_ENGINE_H_
#define OPINEDB_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cache/cache_config.h"
#include "common/deadline.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/aggregator.h"
#include "core/attribute_classifier.h"
#include "core/interpreter.h"
#include "core/membership.h"
#include "core/planner.h"
#include "core/query.h"
#include "core/schema.h"
#include "embedding/phrase_rep.h"
#include "embedding/word2vec.h"
#include "extract/pipeline.h"
#include "fuzzy/logic.h"
#include "index/inverted_index.h"
#include "obs/trace.h"
#include "sentiment/analyzer.h"
#include "storage/pins.h"
#include "storage/table.h"
#include "storage/wal.h"
#include "text/corpus.h"

namespace opinedb::cache {
class InterpretationCache;
class ResultCache;
}  // namespace opinedb::cache

namespace opinedb::core {

/// Engine-wide options.
struct EngineOptions {
  /// Fuzzy-logic variant for combining degrees of truth.
  fuzzy::Variant variant = fuzzy::Variant::kProduct;
  /// When false, membership functions use the no-marker feature path
  /// (scanning the extraction table) — the Table 7 ablation.
  bool use_markers = true;
  /// Constant c of the text-retrieval fallback: degree of truth =
  /// sigmoid(BM25(D, q) - c).
  double text_fallback_c = 4.0;
  /// word2vec training options for the corpus embeddings.
  embedding::Word2VecOptions w2v;
  /// Interpreter thresholds.
  InterpreterOptions interpreter;
  /// Aggregation behaviour.
  AggregationOptions aggregation;
  /// Markers per attribute when markers must be induced automatically.
  size_t induced_markers = 4;
  /// Seed-expansion width for the attribute classifier.
  size_t seed_expansions = 3;
  /// Worker threads for the parallel execution layer: 0 = hardware
  /// concurrency, 1 = the serial path (no pool). Parallel results are
  /// bit-identical to serial — see DESIGN.md "Concurrency model".
  size_t num_threads = 0;
  /// Observability level (see DESIGN.md "Observability"): kOff costs one
  /// branch per instrumentation site, kStats records into the process
  /// MetricsRegistry, kFull additionally captures per-query trace spans
  /// into QueryResult::trace. Tracing never perturbs results: parallel
  /// executions stay bit-identical to serial at every level.
  obs::TraceLevel trace_level = obs::TraceLevel::kOff;
  /// Ring-buffer capacity (spans per query) at trace_level == kFull;
  /// overflow keeps the newest spans.
  size_t trace_capacity = 256;
  /// Physical-plan override for ExecuteQuery (kAuto = cost-based
  /// choice). Forcing a shape the query is not eligible for falls back
  /// to the automatic choice; every shape is bit-identical, so this
  /// only trades work — used by plan-equivalence tests and ablations.
  PlanForce force_plan = PlanForce::kAuto;
  /// Result / interpretation caching (both layers default OFF; see
  /// docs/CACHING.md). Reconfigurable at runtime via ConfigureCaches.
  cache::CacheConfig cache;
  /// Columnar data plane (docs/SCALING.md): mirror the marker summaries
  /// and the objective table into structure-of-arrays columns and score
  /// subjective conditions as dense contiguous sweeps. Results are
  /// bit-identical to the row path, which stays on as the differential
  /// oracle when this is false. Toggle at runtime with SetColumnar.
  bool columnar = true;
  /// Shard count of an attached DegreeCache built with the default
  /// constructor argument (lock striping for concurrent serving).
  size_t degree_cache_shards = 16;
};

/// Per-query observability façade (threads, work, cache traffic and
/// per-phase wall time), threaded through QueryResult so parallel
/// speedups are measurable from the outside. These fields are the
/// query-local view of the same quantities the engine publishes to the
/// process-wide obs::MetricsRegistry (counters `engine.*`, histograms
/// `engine.*_ms`) when EngineOptions::trace_level >= kStats; the struct
/// is kept for source compatibility with pre-observability callers.
struct ExecutionStats {
  /// Concurrent strands used (1 = serial path).
  size_t threads_used = 1;
  /// Entities scored (the size of the parallel fan-out).
  size_t entities_scored = 0;
  /// Subjective degree lists served by the attached DegreeCache.
  size_t cache_hits = 0;
  /// Subjective degree lists computed from scratch this query.
  size_t cache_misses = 0;
  /// Predicate interpretation + query embedding (serial prologue).
  double interpret_ms = 0.0;
  /// Per-entity degree-of-truth computation (the parallel phase).
  double scoring_ms = 0.0;
  /// WHERE-tree combination, filtering and ranking (serial epilogue).
  double rank_ms = 0.0;
  /// End-to-end wall time of ExecuteQuery.
  double total_ms = 0.0;
  /// True when the whole result was served from the result cache (the
  /// per-phase timings above are then all zero: nothing executed).
  bool result_cache_hit = false;
};

/// Per-call serving controls. Default-constructed = no limits, which is
/// also the behaviour of the control-less Execute overloads.
struct QueryControl {
  /// Wall-clock budget and/or cancellation token polled at operator
  /// checkpoints (per condition, per chunk, per TA round). When it
  /// expires mid-query, ExecuteQuery stops starting new work and
  /// returns a QueryResult with partial = true whose ranking is
  /// prefix-consistent: every emitted score is the exact full score.
  /// Configure with QueryDeadline::AfterMillis and/or set_token.
  QueryDeadline deadline;
};

/// One ranked answer.
struct RankedResult {
  text::EntityId entity = 0;
  std::string entity_name;
  /// Final degree of truth of the whole WHERE clause.
  double score = 0.0;
};

/// Execution output: the ranking plus per-predicate interpretations (for
/// explanation / provenance).
struct QueryResult {
  std::vector<RankedResult> results;
  /// For each condition index, the interpretation used (objective
  /// conditions get a default-constructed entry).
  std::vector<PredicateInterpretation> interpretations;
  /// How the query ran (threads, cache traffic, per-phase wall time).
  ExecutionStats stats;
  /// The physical plan shape the planner chose (see PlanKindName).
  PlanKind plan = PlanKind::kDenseScan;
  /// Rendered plan text; filled only for EXPLAIN statements (which
  /// plan but do not execute, leaving `results` empty).
  std::string plan_text;
  /// Per-query span ring buffer (null unless trace_level == kFull).
  /// Render with trace->RenderTree() or trace->ToJson().
  std::shared_ptr<obs::TraceBuffer> trace;
  /// True when the QueryControl deadline (or cancellation token) stopped
  /// execution early. The ranking is then prefix-consistent: it equals
  /// the full query's ranking restricted to the candidates scored before
  /// expiry, and every emitted score is the exact full score.
  bool partial = false;
  /// True when any stage fell back to a cheaper path after a failure
  /// (interpreter stage, cache access, per-entity scoring, TA): the
  /// answer is complete but was not produced on the preferred path. See
  /// the engine.fallback.* counters and docs/ROBUSTNESS.md.
  bool degraded = false;
};

class ColumnarSummaryStore;
class ColumnarTable;
class DegreeCache;

/// OpineDB: the subjective database engine (Fig. 4).
///
/// Owns the corpus, the extraction results, the derived marker summaries
/// and all models; executes subjective SQL end to end:
///
///   OpineDb db = OpineDb::Build(corpus, schema, pipeline, options);
///   db.SetObjectiveTable(hotels);   // rows in entity-id order
///   auto result = db.Execute("select * from Hotels where ...");
class OpineDb {
 public:
  /// Builds the full subjective database: trains embeddings on the
  /// corpus, trains the attribute classifier from the schema seeds, runs
  /// the extraction pipeline, induces markers where the schema leaves
  /// them empty, and aggregates marker summaries.
  static std::unique_ptr<OpineDb> Build(
      text::ReviewCorpus corpus, SubjectiveSchema schema,
      const extract::ExtractionPipeline& pipeline,
      EngineOptions options = EngineOptions());

  /// Registers the objective table. Row i must describe entity i.
  Status SetObjectiveTable(storage::Table table);

  /// Trains the membership model from labeled (features, y) tuples.
  /// Rejects tuples containing non-finite features (a NaN weight would
  /// silently poison every later degree of truth).
  Status TrainMembership(
      const std::vector<MembershipModel::LabeledTuple>& tuples,
      uint64_t seed = 42);

  /// Parses and executes a subjective SQL string.
  Result<QueryResult> Execute(const std::string& sql) const;

  /// Executes a parsed query.
  Result<QueryResult> ExecuteQuery(const SubjectiveQuery& query) const;

  /// Deadline/cancellation-aware variants: `control` carries a wall-
  /// clock budget and/or a cancellation token that the engine polls at
  /// operator checkpoints. An over-budget query returns early with
  /// QueryResult::partial = true and whatever prefix-consistent top-k
  /// survived, never an error. `control` must outlive the call.
  Result<QueryResult> Execute(const std::string& sql,
                              const QueryControl& control) const;
  Result<QueryResult> ExecuteQuery(const SubjectiveQuery& query,
                                   const QueryControl& control) const;

  /// Degree of truth of one interpreted atom for one entity.
  double AtomDegreeOfTruth(const AtomInterpretation& atom,
                           text::EntityId entity,
                           const embedding::Vec& query_rep,
                           double query_sentiment) const;

  /// Degree of truth of a subjective predicate for one entity (runs the
  /// interpreter; used by experiments that bypass SQL).
  double PredicateDegreeOfTruth(const std::string& predicate,
                                text::EntityId entity) const;

  /// Text-retrieval degree of truth: sigmoid(BM25(D_entity, q) - c).
  double TextFallbackDegree(const std::string& predicate,
                            text::EntityId entity) const;

  /// Re-aggregates marker summaries under different review filters (e.g.
  /// "only reviewers with >= 10 reviews"); replaces the current tables
  /// and invalidates any attached degree cache (its lists were computed
  /// against the old summaries). Serialized against in-flight queries by
  /// the reconfiguration lock.
  ///
  /// Requires the extraction relation to be the authoritative source of
  /// the served summaries (true after Build and kept true by
  /// AppendReviews). After InstallSummaries or OpenDatabase the relation
  /// is empty or unrelated, and a rebuild from it would silently wipe
  /// the installed summaries — that call returns FailedPrecondition and
  /// leaves the engine untouched.
  Status Reaggregate(const AggregationOptions& aggregation);

  /// Incremental ingest (Section 4.2.2: "the marker summaries can be
  /// incrementally computed"): appends `reviews` to the corpus, runs the
  /// extraction pipeline on just the new reviews, and folds each new
  /// opinion into the existing marker summaries with
  /// Aggregator::AddOpinion — bit-identical to rebuilding from the full
  /// extended extraction relation, because the per-opinion fold is
  /// exactly Build's loop body and the models it consults (classifier,
  /// embedder, analyzer, the idf from the frozen review index) are not
  /// retrained by ingest. Review `id` fields are ignored; ids are
  /// assigned by the corpus in append order.
  ///
  /// Cache maintenance is surgical rather than wholesale: the cache
  /// epoch is bumped once (result-cache entries lazily expire — a
  /// ranking may depend on every entity, so per-entity invalidation is
  /// unsound there), interpretation-cache entries are re-derived and
  /// re-tagged at the new epoch, and an attached degree cache is patched
  /// in place for just the touched entities (DegreeCache::
  /// RefreshAfterIngest). Per-entity data epochs (entity_data_epoch)
  /// advance only for entities with new reviews.
  ///
  /// When a WAL is enabled (EnableWal) the batch is journaled —
  /// append + fsync — before any state changes; an error from the
  /// journal means nothing was applied. Fails with FailedPrecondition
  /// when AggregationOptions::min_reviewer_reviews is set (that filter
  /// is retroactive: a reviewer's old reviews may cross the threshold
  /// mid-append, which an additive fold cannot express) and with
  /// InvalidArgument for out-of-range entity ids. Serialized against
  /// in-flight queries by the reconfiguration lock.
  Status AppendReviews(const std::vector<text::Review>& reviews);

  /// Enables write-ahead journaling of AppendReviews batches into `dir`
  /// (created if needed), pairing with the snapshot store in the same
  /// directory. First replays any tail left by a crash: the segment
  /// named after the current snapshot generation is read, records past
  /// the first corrupt one are truncated away, and each surviving batch
  /// is re-applied through the exact live-ingest path (minus
  /// journaling). Recovery is therefore OpenDatabase(dir) — newest
  /// verified generation — followed by EnableWal(dir) — tail replay.
  /// While a WAL is active, SaveDatabase is rejected in favour of
  /// Checkpoint(), which keeps segment and generation in lockstep.
  Status EnableWal(const std::string& dir);

  /// Folds the WAL into a new snapshot generation: saves the current
  /// state (which already contains every journaled batch) to the WAL
  /// directory, retires the folded segments, and starts a fresh empty
  /// segment named after the new generation. Holds one exclusive lock
  /// across the whole fold, so no append can slip between the save and
  /// the rotation. Requires EnableWal. See docs/PERSISTENCE.md.
  Status Checkpoint();

  /// True when EnableWal succeeded and the journal is accepting appends.
  bool wal_enabled() const;

  /// True when a WAL was enabled but an append failure broke it: the
  /// durable suffix is unknown, every later write is rejected, and
  /// /healthz reports "wal": "broken". Per-engine truth behind the
  /// process-wide storage.wal.broken gauge (which is ambiguous with two
  /// engines per process).
  bool wal_broken() const;

  /// Durable, acknowledged length of the active WAL segment (header
  /// included); 0 when no WAL is enabled. The replication source clamps
  /// what it ships to this bound so a record whose fsync failed — bytes
  /// possibly visible in the page cache but never acknowledged — is
  /// never replicated.
  uint64_t wal_acknowledged_bytes() const;

  /// Directory passed to EnableWal ("" when no WAL is enabled).
  std::string wal_dir() const;

  // ------------------------------------------------- replication role.

  /// Flips follower (read-only) mode. While read-only, every mutating
  /// entry point — AppendReviews, Reaggregate, TrainMembership,
  /// InstallSummaries, SaveDatabase, Checkpoint — returns
  /// FailedPrecondition; state changes arrive only through
  /// ApplyReplicatedRecord / ReplicaCheckpoint (the replication client)
  /// and queries serve as usual. See docs/REPLICATION.md.
  void SetReadOnly(bool read_only);
  bool read_only() const;

  /// Failover: turns a read-only follower into a write-accepting
  /// primary. Requires a healthy WAL (the new primary must be able to
  /// journal). No replay is needed here by construction — a follower
  /// applies every record in the same critical section that journals
  /// it, so at promote time the in-memory state already contains the
  /// entire verified WAL (EnableWal replayed the durable tail at
  /// startup). Fault site repl.promote fires before the flag flips: a
  /// failed promote leaves a consistent follower.
  Status Promote();

  /// Follower apply path: decodes one shipped WAL record (an
  /// EncodeReviewBatch payload), journals it to the follower's own WAL
  /// and folds it through the exact live-ingest path, in one exclusive
  /// critical section. Because batch encoding is deterministic
  /// (Encode(Decode(p)) == p), the follower's segment ends up
  /// byte-identical to the primary's at every acknowledged offset.
  /// Allowed only in read-only mode with a healthy WAL. Returns the
  /// number of reviews applied. An error means nothing was applied
  /// (decode failures) or the WAL broke (journal failures) — never a
  /// half-applied record.
  Result<size_t> ApplyReplicatedRecord(const std::string& payload);

  /// Follower-side checkpoint, run when the primary signals its segment
  /// is complete (it checkpointed). Both sides compute the next
  /// generation as max-existing + 1 from directories with identical
  /// histories, so generations stay in lockstep. Requires read-only
  /// mode — operators must not rotate a follower's segment out of step;
  /// the primary-side equivalent is Checkpoint().
  Status ReplicaCheckpoint();

  /// Pin registry consulted by Checkpoint (pinned WAL segments are not
  /// retired) and meant for SnapshotStore::GarbageCollect. The
  /// replication source pins the base generation of every segment a
  /// follower is actively pulling.
  storage::GenerationPins* generation_pins() { return &pins_; }

  /// Replaces every marker summary wholesale (scale-harness path: the
  /// datagen scale generator synthesizes summaries directly instead of
  /// aggregating millions of reviews). `summaries[a][e]` must cover
  /// exactly this engine's attributes × entities and be built against
  /// this engine's schema attribute types. Clears the (now unrelated)
  /// extraction relation, rebuilds derived state — including the
  /// columnar mirror — and bumps the cache epoch: this is a data
  /// mutation exactly like Reaggregate/OpenDatabase.
  Status InstallSummaries(
      std::vector<std::vector<MarkerSummary>> summaries);

  /// Toggles the columnar data plane at runtime (differential tests and
  /// benches flip it between runs). Enabling builds the summary mirror
  /// off-lock against a stable shared-lock view of the tables — queries
  /// keep flowing during the build — then swaps it in under the
  /// exclusive lock, retrying the build if a data mutation landed in
  /// between (detected by a cache-epoch change). No cache-epoch bump:
  /// both planes produce bit-identical results, so cached artifacts
  /// remain valid — this reconfigures execution, not data.
  void SetColumnar(bool enabled);

  /// Resizes the worker pool (0 = hardware concurrency, 1 = serial).
  /// Results are bit-identical at any thread count. Serialized against
  /// in-flight queries by the reconfiguration lock: the swap waits for
  /// running queries to drain, so a query can never observe its pool
  /// being destroyed under it.
  void SetNumThreads(size_t num_threads);

  /// Changes the observability level. Also flips the process-wide
  /// metrics switch (obs::SetMetricsEnabled) so library-internal
  /// instrumentation (index, fuzzy TA, thread pool, membership) follows
  /// this engine's level — with several engines per process the most
  /// recent call wins.
  void SetTraceLevel(obs::TraceLevel level);

  /// Attaches a degree-of-truth cache consulted (and warmed) by
  /// ExecuteQuery for subjective conditions; pass nullptr to detach. The
  /// cache must outlive the attachment and be built over this engine.
  /// Serialized against in-flight queries by the reconfiguration lock.
  void AttachDegreeCache(DegreeCache* cache);

  /// Reconfigures the result / interpretation cache layers (creating,
  /// resizing or destroying them). Fresh layers start empty; the cache
  /// epoch is untouched — reconfiguring caches is not a data mutation.
  /// Serialized against in-flight queries by the reconfiguration lock.
  void ConfigureCaches(const cache::CacheConfig& config);

  /// Monotone invalidation epoch of the caching layers: bumped exactly
  /// once by every mutation of served data (Reaggregate, OpenDatabase,
  /// InstallSummaries, TrainMembership, AppendReviews) under the
  /// exclusive reconfiguration lock, and by nothing else (SetNumThreads
  /// / SetTraceLevel / AttachDegreeCache / ConfigureCaches reconfigure
  /// execution, not data). Cache entries are tagged with the epoch they
  /// were filled at; a mismatch is a miss.
  uint64_t cache_epoch() const {
    return cache_epoch_.load(std::memory_order_relaxed);
  }

  /// Data epoch of one entity: the cache_epoch() value of the last
  /// mutation that changed its served data. Wholesale mutations
  /// (Reaggregate, OpenDatabase, InstallSummaries, TrainMembership)
  /// advance every entity; AppendReviews advances only the entities the
  /// batch touched — the observable contract behind surgical cache
  /// maintenance, asserted by the ingest suite. Entities never mutated
  /// since construction report 0.
  uint64_t entity_data_epoch(text::EntityId entity) const;

  /// The cache layers, or nullptr when disabled (for tests / metrics
  /// scrapers; the engine consults them internally).
  cache::InterpretationCache* interpretation_cache() const {
    return interp_cache_.get();
  }
  cache::ResultCache* result_cache() const { return result_cache_.get(); }

  /// Persists the queryable state — schema + marker summaries, per §4:
  /// the extraction relation is re-derivable and is not saved — as a new
  /// checksummed snapshot generation in directory `dir` (created if
  /// needed) via storage::SnapshotStore's atomic commit protocol. Holds
  /// the reconfiguration lock exclusively, so the saved pair is a
  /// consistent cut that serializes against Reaggregate and in-flight
  /// queries. While a WAL is enabled this returns FailedPrecondition —
  /// an out-of-band save would advance the generation away from the
  /// active segment and orphan later appends; use Checkpoint(), which
  /// rotates the segment in the same critical section. See
  /// docs/PERSISTENCE.md.
  Status SaveDatabase(const std::string& dir) const;

  /// Replaces this engine's schema and summaries with the newest fully
  /// valid snapshot generation in `dir`, verifying every checksum on the
  /// way in (corrupt newer generations are skipped; if nothing valid
  /// remains this returns the store's typed NotFound/DataLoss error).
  /// The snapshot is parsed and vetted completely before any engine
  /// state changes — on any error the engine is untouched. The loaded
  /// summaries must cover exactly this engine's corpus entities
  /// (InvalidArgument otherwise). After a successful open the
  /// extraction relation is empty, so a later Reaggregate would rebuild
  /// summaries from nothing — it returns FailedPrecondition; re-extract
  /// from the corpus instead. An attached degree cache is cleared (its
  /// lists described the old summaries). Any active WAL is detached
  /// (the journal belonged to the replaced state); call EnableWal again
  /// to replay the tail for the newly opened generation.
  Status OpenDatabase(const std::string& dir);

  /// Generation committed by the last SaveDatabase or served by the
  /// last OpenDatabase (0 = this engine never touched a snapshot
  /// store). Exported as the storage.snapshot.generation gauge and as
  /// the root query span's snapshot_generation attribute.
  uint64_t snapshot_generation() const {
    return snapshot_generation_.load(std::memory_order_relaxed);
  }

  // ----------------------------------------------------------- access.
  const text::ReviewCorpus& corpus() const { return corpus_; }
  const SubjectiveSchema& schema() const { return schema_; }
  const SubjectiveTables& tables() const { return tables_; }
  const embedding::WordEmbeddings& embeddings() const { return embeddings_; }
  const embedding::PhraseEmbedder& phrase_embedder() const {
    return *embedder_;
  }
  const index::InvertedIndex& review_index() const { return review_index_; }
  const index::InvertedIndex& entity_index() const { return entity_index_; }
  const std::vector<double>& review_sentiment() const {
    return review_sentiment_;
  }
  const Interpreter& interpreter() const { return *interpreter_; }
  const AttributeClassifier& attribute_classifier() const {
    return classifier_;
  }
  const sentiment::Analyzer& analyzer() const { return analyzer_; }
  const EngineOptions& options() const { return options_; }
  const MarkerSummary& summary(size_t attribute,
                               text::EntityId entity) const {
    return tables_.summaries[attribute][entity];
  }
  bool has_membership_model() const { return membership_.has_value(); }
  /// The trained membership model (requires has_membership_model()).
  const MembershipModel& membership_model() const { return *membership_; }

  /// Extracted phrases of (attribute, entity) — the no-marker scan path.
  const std::vector<const extract::ExtractedOpinion*>& PhrasesOf(
      size_t attribute, text::EntityId entity) const {
    return extraction_lists_[attribute][entity];
  }

  /// Mutable options (for ablations like toggling use_markers).
  EngineOptions* mutable_options() { return &options_; }

  /// The worker pool (nullptr on the serial path). Shared with
  /// DegreeCache for parallel precomputation.
  ThreadPool* pool() const { return pool_.get(); }

  /// The columnar summary mirror, or nullptr when the columnar plane is
  /// off. Stable for the duration of a query (rebuilt only under the
  /// exclusive reconfiguration lock).
  const ColumnarSummaryStore* columnar_store() const {
    return columnar_.get();
  }

  /// The columnar mirror of `table` when the columnar plane is on and
  /// the mirror matches it (same name and row count); nullptr otherwise
  /// (callers fall back to row-at-a-time Matches).
  const ColumnarTable* objective_columns(
      const storage::Table& table) const;

  // OpineDb holds internal cross-references (the aggregator, interpreter
  // and phrase embedder point at sibling members), so it is pinned in
  // memory: neither copyable nor movable. Build() returns a unique_ptr.
  OpineDb(const OpineDb&) = delete;
  OpineDb& operator=(const OpineDb&) = delete;

  // Out-of-line: the cache layers are forward-declared here.
  ~OpineDb();

 private:
  OpineDb() = default;

  void RebuildDerivedState();
  double HeuristicDegree(const std::vector<double>& features) const;
  /// The single wholesale epoch-bump point: advances cache_epoch_ once,
  /// clears every cache layer (result, interpretation, attached degree
  /// cache) and advances every entity's data epoch. Requires reconfig_mu_
  /// held exclusively. AppendReviews deliberately does NOT route through
  /// here — it bumps the epoch but keeps caches warm (see its doc).
  void InvalidateCachesLocked();
  /// SaveDatabase body without the lock acquisition; Checkpoint calls it
  /// inside its own exclusive critical section.
  Status SaveDatabaseLocked(const std::string& dir) const;
  /// Checkpoint body without the lock acquisition or role check, shared
  /// by Checkpoint (primary) and ReplicaCheckpoint (follower). Requires
  /// reconfig_mu_ held exclusively and wal_ engaged.
  Status CheckpointLocked();
  /// The single apply path for new review batches, shared verbatim by
  /// live ingest (journal = the open WAL writer) and EnableWal replay
  /// (journal = nothing — the records are already durable). Requires
  /// reconfig_mu_ held exclusively. Validates, optionally journals, then
  /// extracts / folds / patches derived state and refreshes caches.
  Status ApplyReviewsLocked(const std::vector<text::Review>& reviews,
                            bool journal);

  text::ReviewCorpus corpus_;
  SubjectiveSchema schema_;
  EngineOptions options_;
  sentiment::Analyzer analyzer_;
  embedding::WordEmbeddings embeddings_;
  std::unique_ptr<embedding::PhraseEmbedder> embedder_;
  index::InvertedIndex review_index_;
  index::InvertedIndex entity_index_;
  std::vector<double> review_sentiment_;
  AttributeClassifier classifier_;
  std::unique_ptr<Aggregator> aggregator_;
  /// The extraction pipeline Build ran, retained so AppendReviews can
  /// extract from new reviews with the exact same trained tagger
  /// (value-semantic copy; the tagger is frozen after Build).
  std::optional<extract::ExtractionPipeline> pipeline_;
  SubjectiveTables tables_;
  std::unique_ptr<Interpreter> interpreter_;
  std::optional<MembershipModel> membership_;
  storage::Catalog catalog_;
  std::string objective_table_;
  /// Columnar mirrors of the hot data plane (docs/SCALING.md): rebuilt
  /// by RebuildDerivedState / SetObjectiveTable under the exclusive
  /// reconfiguration lock, read by queries under the shared lock.
  /// columnar_ is null when options_.columnar is false.
  std::unique_ptr<ColumnarSummaryStore> columnar_;
  std::unique_ptr<ColumnarTable> objective_columns_;
  /// Fixed worker pool for the parallel execution layer; nullptr when
  /// options_.num_threads resolves to 1 (the serial path).
  std::unique_ptr<ThreadPool> pool_;
  /// Optional degree cache consulted by ExecuteQuery (not owned).
  DegreeCache* degree_cache_ = nullptr;
  /// Optional caching layers (nullptr when disabled); both are
  /// internally thread-safe, and creation/destruction happens only
  /// under the exclusive reconfiguration lock.
  std::unique_ptr<cache::InterpretationCache> interp_cache_;
  std::unique_ptr<cache::ResultCache> result_cache_;
  /// See cache_epoch(). Atomic so queries (shared lock) read it without
  /// synchronizing with each other; mutators bump it under the
  /// exclusive lock, so a query never observes a torn epoch/state pair.
  std::atomic<uint64_t> cache_epoch_{0};
  /// Snapshot generation last saved/loaded; see snapshot_generation().
  /// Atomic so queries (shared lock) can read it while SaveDatabase
  /// (exclusive lock) is the writer; mutable because SaveDatabase is
  /// logically const.
  mutable std::atomic<uint64_t> snapshot_generation_{0};
  /// True while tables_.extractions (plus what AppendReviews added) is
  /// the authoritative derivation of tables_.summaries — the
  /// precondition Reaggregate and the ingest differential oracle rely
  /// on. Set by Build; cleared by InstallSummaries and OpenDatabase.
  bool extractions_authoritative_ = false;
  /// Per-entity data epochs; see entity_data_epoch(). Guarded by
  /// reconfig_mu_ (written under exclusive, read under shared).
  std::vector<uint64_t> entity_data_epoch_;
  /// Write-ahead journal state (EnableWal/Checkpoint); wal_ is engaged
  /// exactly while journaling is active. Guarded by reconfig_mu_.
  std::string wal_dir_;
  std::optional<storage::WalWriter> wal_;
  /// Follower (read-only) mode; see SetReadOnly. Guarded by
  /// reconfig_mu_.
  bool read_only_ = false;
  /// Snapshot generations pinned against retirement; see
  /// generation_pins(). Internally synchronized (request threads pin
  /// without the reconfiguration lock).
  storage::GenerationPins pins_;
  /// Reconfiguration lock: ExecuteQuery / PredicateDegreeOfTruth hold it
  /// shared for their whole run; Reaggregate, SetNumThreads,
  /// SetTraceLevel, AttachDegreeCache and TrainMembership hold it
  /// exclusively. This (a) keeps pool_ alive for the queries that
  /// snapshotted it, (b) provides the external synchronization
  /// DegreeCache::Clear() demands, and (c) prevents queries from
  /// reading tables_/interpreter_ mid-rebuild.
  mutable std::shared_mutex reconfig_mu_;
  /// extraction_lists_[a][e]: pointers into tables_.extractions.
  std::vector<std::vector<std::vector<const extract::ExtractedOpinion*>>>
      extraction_lists_;
};

}  // namespace opinedb::core

#endif  // OPINEDB_CORE_ENGINE_H_
