#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace opinedb {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      pieces.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) pieces.emplace_back(s.substr(start, i - start));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

void JsonEscapeAppend(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string NormalizePredicate(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool pending_space = false;
  for (char c : Trim(s)) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace opinedb
