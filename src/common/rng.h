#ifndef OPINEDB_COMMON_RNG_H_
#define OPINEDB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace opinedb {

/// Deterministic pseudo-random number generator (xoshiro256** core).
///
/// All stochastic components in the library take an explicit Rng (or a
/// seed) so that every experiment is reproducible bit-for-bit. We do not
/// use std::mt19937 directly because the distributions in <random> are not
/// guaranteed to produce identical streams across standard library
/// implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator via SplitMix64 expansion of `seed`.
  void Seed(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Below(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Below(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace opinedb

#endif  // OPINEDB_COMMON_RNG_H_
