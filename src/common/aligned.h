#ifndef OPINEDB_COMMON_ALIGNED_H_
#define OPINEDB_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace opinedb::common {

/// Cache-line / SIMD-lane alignment of every AlignedArray allocation.
/// 64 bytes covers one x86 cache line and the widest AVX-512 lane, so a
/// columnar sweep never splits a vector load across lines.
inline constexpr size_t kColumnAlignment = 64;

/// Buffers at least this large get a transparent-huge-page hint
/// (madvise(MADV_HUGEPAGE) on Linux); smaller ones are not worth a
/// syscall. Huge pages cut TLB pressure on multi-hundred-MB column
/// sweeps; the hint is advisory and its absence never changes results.
inline constexpr size_t kHugePageHintBytes = 2u << 20;  // 2 MiB.

/// Raw 64-byte-aligned allocation helpers. `AlignedAlloc` rounds the
/// request up to an alignment multiple (a requirement of
/// std::aligned_alloc), applies the huge-page hint for large buffers and
/// throws std::bad_alloc on failure; `AlignedFree` releases it.
void* AlignedAlloc(size_t bytes);
void AlignedFree(void* p) noexcept;

/// A fixed-size array of trivially-destructible elements in one 64-byte
/// aligned, zero-initialized allocation — the backing store of every
/// column in core::ColumnarSummaryStore. Deliberately minimal compared
/// to std::vector: no growth, no per-element construction bookkeeping,
/// guaranteed alignment, and a data() pointer the compiler can assume
/// aligned in the hot sweeps.
template <typename T>
class AlignedArray {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedArray holds POD column data only");

 public:
  AlignedArray() = default;
  explicit AlignedArray(size_t size) { Reset(size); }
  ~AlignedArray() { AlignedFree(data_); }

  AlignedArray(AlignedArray&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  AlignedArray& operator=(AlignedArray&& other) noexcept {
    if (this != &other) {
      AlignedFree(data_);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  AlignedArray(const AlignedArray&) = delete;
  AlignedArray& operator=(const AlignedArray&) = delete;

  /// Replaces the buffer with `size` zero-initialized elements.
  void Reset(size_t size) {
    AlignedFree(data_);
    data_ = nullptr;
    size_ = size;
    if (size > 0) {
      data_ = static_cast<T*>(AlignedAlloc(size * sizeof(T)));
    }
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Bytes actually reserved (size rounded up to the alignment).
  size_t allocated_bytes() const;

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

/// The allocation charge of `bytes` payload after alignment rounding —
/// shared with the store's footprint accounting so BENCH_scale.json's
/// GB/s figures describe bytes actually touched.
inline size_t AlignedBytes(size_t bytes) {
  return (bytes + kColumnAlignment - 1) / kColumnAlignment *
         kColumnAlignment;
}

template <typename T>
size_t AlignedArray<T>::allocated_bytes() const {
  return AlignedBytes(size_ * sizeof(T));
}

}  // namespace opinedb::common

#endif  // OPINEDB_COMMON_ALIGNED_H_
