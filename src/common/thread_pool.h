#ifndef OPINEDB_COMMON_THREAD_POOL_H_
#define OPINEDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace opinedb {

/// A fixed pool of worker threads driving ParallelFor loops.
///
/// Determinism contract: ParallelFor partitions [begin, end) into
/// contiguous chunks whose boundaries depend only on the range and the
/// pool size — never on scheduling. Bodies receive disjoint index ranges,
/// so loops whose iterations write only to their own indices produce
/// bit-identical results at any thread count. Reductions that need a
/// fixed order should accumulate per chunk and merge serially in chunk
/// order afterwards.
///
/// The calling thread participates in its own loop, so a pool built with
/// `num_threads` runs at most `num_threads` concurrent strands
/// (`num_threads - 1` workers plus the caller). ParallelFor may be
/// invoked concurrently from several threads; workers never block on
/// other tasks, so nested or concurrent loops cannot deadlock — a
/// ParallelFor issued from inside a worker runs inline (serially) on
/// that worker instead of re-entering the queue.
class ThreadPool {
 public:
  /// `num_threads` counts the caller: ThreadPool(4) spawns 3 workers.
  /// 0 is resolved through ResolveThreads (hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Concurrent strands available, caller included (>= 1).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Maps an options knob to a concrete thread count: 0 = hardware
  /// concurrency (at least 1), anything else is taken as-is.
  static size_t ResolveThreads(size_t requested);

  /// Runs `body(chunk_begin, chunk_end)` over a partition of
  /// [begin, end) and blocks until every chunk finished. Chunks of fewer
  /// than `min_grain` iterations are not split further. Exceptions thrown
  /// by `body` are rethrown on the calling thread (first one wins).
  ///
  /// `should_stop` (optional) is the loop's cancellation checkpoint: it
  /// is polled before each chunk is executed, and once it returns true
  /// no further chunk bodies run (chunks already executing finish; the
  /// call still joins everything before returning). Chunk boundaries do
  /// not depend on should_stop, so a loop whose should_stop never fires
  /// is bit-identical to one run without it. On the inline path (serial
  /// pool, tiny range, nested loop) the body receives the whole range in
  /// one call, so bodies that want finer-grained cancellation must also
  /// poll inside their own iteration loop.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t, size_t)>& body,
                   size_t min_grain = 1,
                   const std::function<bool()>* should_stop = nullptr);

 private:
  struct LoopState;

  void WorkerMain();
  static void RunChunks(const std::shared_ptr<LoopState>& state);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace opinedb

#endif  // OPINEDB_COMMON_THREAD_POOL_H_
