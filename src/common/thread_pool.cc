#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace opinedb {

namespace {

/// Set while a pool worker is executing a task; a ParallelFor issued
/// from such a context runs inline instead of waiting on the queue.
thread_local bool t_inside_pool_worker = false;

}  // namespace

struct ThreadPool::LoopState {
  size_t begin = 0;
  size_t end = 0;
  size_t chunk_size = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;
  /// Cancellation checkpoint (nullptr = never stop). Once observed true,
  /// `stopped` latches and remaining chunks are drained without running.
  const std::function<bool()>* should_stop = nullptr;
  std::atomic<bool> stopped{false};
  std::atomic<size_t> next_chunk{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t done_chunks = 0;  // Guarded by mu.
  std::exception_ptr error;  // Guarded by mu; first failure wins.
};

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t total = std::max<size_t>(1, ResolveThreads(num_threads));
  workers_.reserve(total - 1);
  for (size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerMain() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained.
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::RunChunks(const std::shared_ptr<LoopState>& state) {
  for (;;) {
    const size_t c = state->next_chunk.fetch_add(1);
    if (c >= state->num_chunks) return;
    const size_t b = state->begin + c * state->chunk_size;
    const size_t e = std::min(state->end, b + state->chunk_size);
    bool skip = false;
    if (state->should_stop != nullptr) {
      if (state->stopped.load(std::memory_order_relaxed)) {
        skip = true;
      } else if ((*state->should_stop)()) {
        state->stopped.store(true, std::memory_order_relaxed);
        skip = true;
      }
    }
    try {
      if (!skip) (*state->body)(b, e);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->error) state->error = std::current_exception();
    }
    bool all_done = false;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      all_done = ++state->done_chunks == state->num_chunks;
    }
    if (all_done) state->done_cv.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t, size_t)>& body,
                             size_t min_grain,
                             const std::function<bool()>* should_stop) {
  if (begin >= end) return;
  const size_t n = end - begin;
  min_grain = std::max<size_t>(1, min_grain);
  // Inline when there is nothing to fan out to, the range is below the
  // grain, or we are already on a worker (workers must never block on
  // other tasks — that is what makes nested loops deadlock-free). The
  // body owns intra-range cancellation here (see the header contract).
  if (workers_.empty() || n <= min_grain || t_inside_pool_worker) {
    if (should_stop != nullptr && (*should_stop)()) return;
    body(begin, end);
    return;
  }
  obs::TraceSpan span("pool.parallel_for");
  span.AddAttribute("range", static_cast<uint64_t>(n));
  const bool timed = obs::MetricsEnabled();
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();
  // Chunk boundaries are a pure function of (n, pool size, min_grain):
  // oversubscribe mildly for load balance, never below the grain.
  const size_t max_chunks = (n + min_grain - 1) / min_grain;
  const size_t target = std::min<size_t>(4 * num_threads(), max_chunks);
  auto state = std::make_shared<LoopState>();
  state->begin = begin;
  state->end = end;
  state->num_chunks = std::max<size_t>(1, target);
  state->chunk_size = (n + state->num_chunks - 1) / state->num_chunks;
  // Rounding can leave trailing empty chunks; recompute the exact count.
  state->num_chunks = (n + state->chunk_size - 1) / state->chunk_size;
  state->body = &body;
  state->should_stop = should_stop;

  const size_t helpers =
      std::min(workers_.size(), state->num_chunks - 1);
  span.AddAttribute("chunks", static_cast<uint64_t>(state->num_chunks));
  span.AddAttribute("helpers", static_cast<uint64_t>(helpers));
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < helpers; ++i) {
        tasks_.push([state] { RunChunks(state); });
      }
      OPINEDB_METRIC_COUNT("pool.tasks_enqueued", helpers);
      OPINEDB_METRIC_GAUGE_SET("pool.queue_depth",
                               static_cast<double>(tasks_.size()));
    }
    work_cv_.notify_all();
  }
  RunChunks(state);  // The caller works too.
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(
      lock, [&] { return state->done_chunks == state->num_chunks; });
  if (timed) {
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    OPINEDB_METRIC_LATENCY_MS("pool.parallel_for_ms", ms);
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace opinedb
