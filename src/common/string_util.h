#ifndef OPINEDB_COMMON_STRING_UTIL_H_
#define OPINEDB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace opinedb {

/// Lower-cases ASCII characters; leaves other bytes untouched.
std::string ToLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; empty pieces are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `needle` occurs in `haystack` (case-sensitive).
bool Contains(std::string_view haystack, std::string_view needle);

/// Appends `s` to `out` as a double-quoted JSON string literal,
/// escaping quotes, backslashes and control bytes. The one JSON string
/// encoder shared by the metrics scrape, trace export and the query
/// server's result rendering, so every JSON surface escapes
/// identically.
void JsonEscapeAppend(std::string_view s, std::string* out);

/// Canonical form of a subjective predicate for cache keying: ASCII
/// lower-cased, leading/trailing whitespace stripped, interior
/// whitespace runs collapsed to one space. Safe as a cache key because
/// every consumer of predicate text (phrase embedding, sentiment,
/// interpretation, BM25 fallback) tokenizes it with the lowercasing
/// Tokenizer first, which is invariant under exactly these rewrites.
/// Punctuation is kept: dropping it would also be tokenizer-invariant,
/// but intra-word characters ("don't") are not, so we stay conservative.
std::string NormalizePredicate(std::string_view s);

}  // namespace opinedb

#endif  // OPINEDB_COMMON_STRING_UTIL_H_
