#include "common/status.h"

namespace opinedb {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace opinedb
