#include "common/aligned.h"

#include <cstdlib>
#include <cstring>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace opinedb::common {

void* AlignedAlloc(size_t bytes) {
  const size_t rounded = AlignedBytes(bytes);
  if (rounded == 0) return nullptr;
  void* p = std::aligned_alloc(kColumnAlignment, rounded);
  if (p == nullptr) throw std::bad_alloc();
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (rounded >= kHugePageHintBytes) {
    // Advisory only: on kernels without THP (or with it disabled) the
    // call fails silently and the buffer is served by 4K pages.
    (void)madvise(p, rounded, MADV_HUGEPAGE);
  }
#endif
  std::memset(p, 0, rounded);
  return p;
}

void AlignedFree(void* p) noexcept { std::free(p); }

}  // namespace opinedb::common
