#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace opinedb {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  have_spare_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::Below(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::Int(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  have_spare_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k entries become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace opinedb
