#ifndef OPINEDB_COMMON_RESULT_H_
#define OPINEDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace opinedb {

/// Result<T> holds either a value of type T or a non-OK Status.
/// This is the Arrow-style companion of Status for functions that return
/// values but can fail.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); checked in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this Result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace opinedb

#endif  // OPINEDB_COMMON_RESULT_H_
