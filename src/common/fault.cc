#include "common/fault.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace opinedb::fault {

namespace {

struct SiteState {
  uint64_t hits = 0;
  uint64_t nth = 0;
  bool armed = false;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;  // Guarded by mu.
  /// Sites currently armed. The hot path loads this once and bails when
  /// zero, so an idle registry costs no locks and perturbs nothing.
  std::atomic<size_t> armed{0};
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // Leaked: process lifetime.
  return *registry;
}

}  // namespace

bool CompiledIn() {
#if defined(OPINEDB_ENABLE_FAULT_INJECTION)
  return true;
#else
  return false;
#endif
}

void Arm(std::string_view site, uint64_t nth) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  SiteState& state = registry.sites[std::string(site)];
  if (!state.armed) {
    registry.armed.fetch_add(1, std::memory_order_relaxed);
  }
  state.armed = true;
  state.nth = nth == 0 ? 1 : nth;
  state.hits = 0;
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.sites.clear();
  registry.armed.store(0, std::memory_order_relaxed);
}

uint64_t HitCount(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(std::string(site));
  return it == registry.sites.end() ? 0 : it->second.hits;
}

bool ShouldFail(const char* site) {
  Registry& registry = GetRegistry();
  if (registry.armed.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) return false;
  SiteState& state = it->second;
  ++state.hits;
  if (!state.armed || state.hits != state.nth) return false;
  // One-shot: the site stays registered (hits keep counting) but will
  // not fire again until re-armed, so retries after the fault succeed.
  state.armed = false;
  registry.armed.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

}  // namespace opinedb::fault
