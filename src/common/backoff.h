#ifndef OPINEDB_COMMON_BACKOFF_H_
#define OPINEDB_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "common/rng.h"

namespace opinedb {

/// Tuning of an ExponentialBackoff sequence. The defaults suit a
/// replication client polling a peer over loopback or a LAN: fast first
/// retry, capped well below human-noticeable outage handling.
struct BackoffOptions {
  /// Delay before the first retry.
  double initial_delay_ms = 10.0;
  /// Upper clamp on the un-jittered delay.
  double max_delay_ms = 2000.0;
  /// Growth factor per consecutive failure.
  double multiplier = 2.0;
  /// Fraction of the delay randomized away: the returned delay is
  /// uniform in [base * (1 - jitter), base]. Jitter decorrelates a herd
  /// of followers hammering a recovering primary in lockstep. 0 = none.
  double jitter = 0.5;
};

/// Deterministic exponential backoff with jitter.
///
/// Delays grow initial * multiplier^failures, clamped to max, then
/// shrunk by up to `jitter` using the library's seeded Rng — so a test
/// constructing two instances with the same seed observes bit-identical
/// delay sequences (the seeded-clock discipline every stochastic
/// component in this library follows; see common/rng.h). Not
/// thread-safe: each retry loop owns its instance.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(BackoffOptions options = BackoffOptions(),
                              uint64_t seed = 42)
      : options_(options), rng_(seed) {}

  /// Delay to sleep before the next retry; each call records one more
  /// consecutive failure.
  double NextDelayMs() {
    double base = options_.initial_delay_ms;
    for (uint64_t i = 0; i < failures_ && base < options_.max_delay_ms; ++i) {
      base *= options_.multiplier;
    }
    base = std::min(base, options_.max_delay_ms);
    ++failures_;
    if (options_.jitter <= 0.0) return base;
    return base * (1.0 - options_.jitter * rng_.Uniform());
  }

  /// Call after a success: the next failure restarts at initial_delay.
  /// The Rng stream is deliberately NOT rewound — determinism is a
  /// property of the whole call sequence, not of each burst.
  void Reset() { failures_ = 0; }

  /// Consecutive failures recorded since the last Reset().
  uint64_t failures() const { return failures_; }

 private:
  BackoffOptions options_;
  Rng rng_;
  uint64_t failures_ = 0;
};

}  // namespace opinedb

#endif  // OPINEDB_COMMON_BACKOFF_H_
