#ifndef OPINEDB_COMMON_FAULT_H_
#define OPINEDB_COMMON_FAULT_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace opinedb::fault {

/// The failure raised at an armed fault site. Serving-path code treats
/// it like any other std::exception (catch, degrade, count); tests
/// catch it specifically to assert a site actually fired.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// The catalog of named fault sites compiled into the library. Tests
/// sweep this list; keep it in sync with the OPINEDB_FAULT call sites
/// (fault_injection_test asserts every entry is reachable).
inline constexpr const char* kSites[] = {
    "cache.lookup",          // DegreeCache::Degrees / TryDegrees entry.
    "cache.compute",         // DegreeCache::ComputeDegrees entry.
    "interpret.w2v",         // Interpreter word2vec stage.
    "interpret.cooccur",     // Interpreter co-occurrence stage.
    "interpret.embed",       // Query-embedding prologue in ExecuteQuery.
    "index.scan",            // InvertedIndex::TopKWeighted entry.
    "score.features",        // OpineDb::AtomDegreeOfTruth entry.
    "score.text_fallback",   // OpineDb::TextFallbackDegree entry.
    "score.alloc",           // Degree-list allocation in SubjectiveScoreOp.
    "ta.round",              // ThresholdAlgorithmTopK round loop.
    "cache.interp_lookup",   // Interpretation-cache consult (ExecuteQuery
                             // prologue / PredicateDegreeOfTruth).
    "cache.interp_insert",   // Interpretation-cache fill.
    "cache.result_lookup",   // Result-cache consult in ExecuteQuery.
    "cache.result_insert",   // Result-cache fill after execution.
};

/// Storage fault sites (the snapshot commit protocol). These live in a
/// separate catalog because their semantics differ from kSites: instead
/// of throwing into a degradation cascade, a fired storage site makes
/// SnapshotStore::Commit *simulate a crash or media fault* — it stops
/// mid-protocol (or silently corrupts the written bytes for
/// storage.bitflip) and leaves the directory in exactly the state a real
/// power cut would. tests/crash_consistency_test.cc sweeps this list and
/// asserts every entry is reachable (the persistence-suite counterpart
/// of fault_injection_test's kSites liveness check).
inline constexpr const char* kStorageSites[] = {
    "storage.short_write",      // Torn write: tmp file cut mid-payload.
    "storage.fsync",            // fsync of the tmp data file fails.
    "storage.rename_data",      // Crash before gen-N.tmp -> gen-N.snap.
    "storage.rename_manifest",  // Crash between data and MANIFEST rename.
    "storage.bitflip",          // Post-write single-bit media corruption.
};

/// WAL fault sites (src/storage/wal.cc + the engine checkpoint fold).
/// Like kStorageSites these are OPINEDB_FAULT_HIT protocol-state sites,
/// not throwing ones: a fired WAL site makes the append protocol stop
/// exactly where a power cut would — wal_short_write leaves a torn
/// record on disk and fails the append, wal_fsync leaves the record in
/// the page cache but reports the durability failure, and wal_fold
/// crashes a checkpoint after the new snapshot generation committed but
/// before the folded WAL segment was retired. tests/wal_test.cc sweeps
/// this list and asserts every entry is reachable.
inline constexpr const char* kWalSites[] = {
    "storage.wal_short_write",  // Torn record: append cut mid-payload.
    "storage.wal_fsync",        // fsync of the WAL segment fails.
    "storage.wal_fold",         // Crash between checkpoint commit and
                                // WAL-segment retirement.
};

/// Serving-layer fault sites (src/server/httpd.cc). Like kStorageSites
/// these live outside kSites because their blast radius differs: a
/// fired server site must degrade exactly one connection or response —
/// accept drops the new connection, read abandons the in-flight
/// request, write substitutes a well-formed 500 WITHOUT poisoning the
/// keep-alive stream, and shed forces the admission-control 429 path.
/// tests/fault_injection_test.cc sweeps this list over a live loopback
/// server and asserts each entry is reachable.
inline constexpr const char* kServerSites[] = {
    "server.accept",  // Acceptor, just after ::accept.
    "server.read",    // Worker, before each ::recv.
    "server.write",   // Worker, before response serialization.
    "server.shed",    // Acceptor admission decision (forces a 429).
};

/// Replication fault sites (src/repl/ + engine promote). The first three
/// fire inside the ReplicationClient's pull loop and must degrade exactly
/// one sync cycle: fetch simulates a partitioned primary (the cycle fails
/// Unavailable and the backoff loop retries), apply simulates a crash
/// between journaling batches (already-applied records stay applied, the
/// rest are re-fetched — never a double apply, never a loss), and
/// checksum corrupts the follower's computed batch fingerprint so the
/// divergence path (typed DataLoss, nothing applied) is exercised.
/// repl.promote fires inside OpineDb::Promote before the read-only flag
/// flips — a failed promote leaves a consistent follower.
/// tests/repl_test.cc sweeps this list and asserts every entry is
/// reachable.
inline constexpr const char* kReplSites[] = {
    "repl.fetch",     // Client, before each WAL/snapshot HTTP fetch.
    "repl.apply",     // Client, before applying each shipped record.
    "repl.checksum",  // Client, corrupts the computed batch fingerprint.
    "repl.promote",   // Engine Promote, before accepting writes.
};

/// True when the library was compiled with fault injection
/// (OPINEDB_ENABLE_FAULT_INJECTION); release builds compile the macro
/// out entirely and this returns false.
bool CompiledIn();

/// Arms `site` to fail exactly once, on its `nth` hit (1-based) counted
/// from this call. Re-arming a site resets its hit counter. Thread-safe.
void Arm(std::string_view site, uint64_t nth);

/// Disarms every site and clears all hit counters.
void DisarmAll();

/// Hits observed at `site` since it was armed (0 for unarmed sites —
/// unarmed sites are never counted, so the zero-fault path stays free).
uint64_t HitCount(std::string_view site);

/// The hot-path check behind OPINEDB_FAULT: false unless some site is
/// armed; for armed sites, counts the hit and reports whether this is
/// the fatal one (then self-disarms, so later hits succeed — the shape
/// graceful-degradation tests need).
bool ShouldFail(const char* site);

}  // namespace opinedb::fault

/// Deterministic fault-injection point:
///
///   OPINEDB_FAULT("cache.lookup");
///
/// Compiled out (a no-op with zero code) unless the build defines
/// OPINEDB_ENABLE_FAULT_INJECTION (CMake option OPINEDB_FAULT_INJECTION,
/// default ON except in plain Release). When compiled in but unarmed,
/// the cost is one relaxed atomic load and a predictable branch.
#if defined(OPINEDB_ENABLE_FAULT_INJECTION)
#define OPINEDB_FAULT(site)                                         \
  do {                                                              \
    if (::opinedb::fault::ShouldFail(site)) {                       \
      throw ::opinedb::fault::FaultInjected(site);                  \
    }                                                               \
  } while (0)
#else
#define OPINEDB_FAULT(site) ((void)0)
#endif

/// Non-throwing fault check for code that models faults as protocol
/// state rather than exceptions (the snapshot store's crash
/// simulation): evaluates to true exactly when OPINEDB_FAULT(site)
/// would have thrown, and to constant false when fault injection is
/// compiled out.
#if defined(OPINEDB_ENABLE_FAULT_INJECTION)
#define OPINEDB_FAULT_HIT(site) (::opinedb::fault::ShouldFail(site))
#else
#define OPINEDB_FAULT_HIT(site) false
#endif

#endif  // OPINEDB_COMMON_FAULT_H_
