#ifndef OPINEDB_COMMON_STATUS_H_
#define OPINEDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace opinedb {

/// Error codes used across the library. Mirrors the RocksDB/Arrow idiom:
/// library code reports failures through Status / Result<T> rather than
/// exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kNotSupported,
  /// The operation is valid in general but not in the object's current
  /// state (e.g. Reaggregate on an engine whose extraction relation was
  /// replaced by InstallSummaries, or AppendReviews under a retroactive
  /// aggregation filter). Retrying without changing state will not help.
  kFailedPrecondition,
  kInternal,
  /// Persistent state is unrecoverable: every on-disk snapshot
  /// generation failed checksum verification. Unlike kParseError (one
  /// bad stream) this means the store as a whole has nothing servable.
  kDataLoss,
  /// A transient failure talking to a peer or the network: connect or
  /// read timed out, the connection dropped, the peer shed the request.
  /// Unlike kInternal the operation is retryable — the replication
  /// client's backoff loop keys on exactly this code.
  kUnavailable,
};

/// A Status encapsulates the result of an operation: success, or an error
/// code plus a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders the status as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace opinedb

#endif  // OPINEDB_COMMON_STATUS_H_
