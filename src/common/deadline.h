#ifndef OPINEDB_COMMON_DEADLINE_H_
#define OPINEDB_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>

namespace opinedb {

/// A cooperative cancellation flag. The owner keeps it alive for the
/// duration of the queries it controls; any thread may Cancel() while
/// query threads poll cancelled() at operator checkpoints.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token for reuse across queries.
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A wall-clock budget plus an optional external cancellation token,
/// polled at coarse checkpoints (per condition, per chunk, per TA round
/// — never per arithmetic op). A default-constructed deadline never
/// expires, so unconditioned code can thread a pointer through without
/// branching on "is there a deadline at all".
///
/// Checkpoints only ever *stop starting new work*; work already begun
/// for an entity always completes, which is what makes partial results
/// prefix-consistent (every emitted score is the exact full score).
class QueryDeadline {
 public:
  QueryDeadline() = default;

  // Copyable (the atomic latch is snapshotted) so factory returns and
  // struct members work; don't copy a deadline other threads are
  // actively polling — hand them a pointer to one instance instead.
  QueryDeadline(const QueryDeadline& other)
      : has_deadline_(other.has_deadline_),
        deadline_(other.deadline_),
        token_(other.token_),
        expired_(other.expired_.load(std::memory_order_relaxed)) {}
  QueryDeadline& operator=(const QueryDeadline& other) {
    has_deadline_ = other.has_deadline_;
    deadline_ = other.deadline_;
    token_ = other.token_;
    expired_.store(other.expired_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    return *this;
  }

  /// A deadline `budget_ms` from now. Non-positive budgets produce an
  /// already-expired deadline (useful for tests).
  static QueryDeadline AfterMillis(double budget_ms) {
    QueryDeadline d;
    d.has_deadline_ = true;
    d.deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          budget_ms > 0.0 ? budget_ms : 0.0));
    return d;
  }

  void set_token(const CancellationToken* token) { token_ = token; }

  /// True when there is anything to poll (a budget or a token).
  bool active() const { return has_deadline_ || token_ != nullptr; }

  /// The poll. Expiry latches: once a deadline has been observed
  /// expired, every later check reports expired too (a clock that is
  /// adjusted or a token that is Reset cannot un-cancel a query).
  bool Expired() const {
    if (expired_.load(std::memory_order_relaxed)) return true;
    bool now_expired = false;
    if (token_ != nullptr && token_->cancelled()) now_expired = true;
    if (!now_expired && has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      now_expired = true;
    }
    if (now_expired) expired_.store(true, std::memory_order_relaxed);
    return now_expired;
  }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const CancellationToken* token_ = nullptr;
  /// Latch so every checkpoint after the first expiry agrees; mutable
  /// because polling a const deadline from many threads is the point.
  mutable std::atomic<bool> expired_{false};
};

}  // namespace opinedb

#endif  // OPINEDB_COMMON_DEADLINE_H_
