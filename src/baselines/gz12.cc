#include "baselines/gz12.h"

#include <algorithm>
#include <unordered_map>

namespace opinedb::baselines {

Gz12Ranker::Gz12Ranker(const index::InvertedIndex* entity_index,
                       const embedding::WordEmbeddings* embeddings,
                       Gz12Options options)
    : entity_index_(entity_index),
      embeddings_(embeddings),
      options_(options) {}

std::vector<std::pair<std::string, double>> Gz12Ranker::ExpandQuery(
    const std::string& predicate) const {
  std::vector<std::pair<std::string, double>> terms;
  for (const auto& token : tokenizer_.Tokenize(predicate)) {
    if (text::IsStopword(token)) continue;
    terms.emplace_back(token, 1.0);
    if (embeddings_ != nullptr && options_.expansion_terms > 0) {
      for (const auto& [neighbour, similarity] :
           embeddings_->MostSimilar(token, options_.expansion_terms)) {
        if (similarity > 0.5) {
          terms.emplace_back(neighbour, options_.expansion_weight);
        }
      }
    }
  }
  return terms;
}

std::vector<index::ScoredDoc> Gz12Ranker::Rank(
    const std::vector<std::string>& predicates, size_t k) const {
  const size_t n = entity_index_->num_documents();
  std::vector<double> combined(
      n, options_.combine == Gz12Options::Combine::kSum ? 0.0 : 0.0);
  for (const auto& predicate : predicates) {
    const auto terms = ExpandQuery(predicate);
    // Score every entity for this predicate.
    for (size_t e = 0; e < n; ++e) {
      double score = 0.0;
      for (const auto& [term, weight] : terms) {
        score += weight * entity_index_->Score(static_cast<int32_t>(e),
                                               {term});
      }
      if (options_.combine == Gz12Options::Combine::kSum) {
        combined[e] += score;
      } else {
        combined[e] = std::max(combined[e], score);
      }
    }
  }
  std::vector<index::ScoredDoc> ranked;
  ranked.reserve(n);
  for (size_t e = 0; e < n; ++e) {
    ranked.push_back({static_cast<int32_t>(e), combined[e]});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const index::ScoredDoc& a, const index::ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace opinedb::baselines
