#include "baselines/attribute_baseline.h"

#include <algorithm>

namespace opinedb::baselines {

AttributeBaseline::AttributeBaseline(
    std::vector<std::vector<double>> site_scores, std::vector<double> price,
    std::vector<double> rating)
    : site_scores_(std::move(site_scores)),
      price_(std::move(price)),
      rating_(std::move(rating)) {}

Ranking AttributeBaseline::RankByKey(
    const std::vector<int32_t>& eligible, size_t k,
    const std::function<double(int32_t)>& key, bool descending) const {
  Ranking ranked = eligible;
  std::sort(ranked.begin(), ranked.end(), [&](int32_t a, int32_t b) {
    const double ka = key(a);
    const double kb = key(b);
    if (ka != kb) return descending ? ka > kb : ka < kb;
    return a < b;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

Ranking AttributeBaseline::ByPrice(const std::vector<int32_t>& eligible,
                                   size_t k) const {
  return RankByKey(eligible, k,
                   [this](int32_t e) { return price_[e]; }, false);
}

Ranking AttributeBaseline::ByRating(const std::vector<int32_t>& eligible,
                                    size_t k) const {
  return RankByKey(eligible, k,
                   [this](int32_t e) { return rating_[e]; }, true);
}

Ranking AttributeBaseline::BestOneAttribute(
    const std::vector<int32_t>& eligible, size_t k,
    const std::function<double(const Ranking&)>& evaluate) const {
  Ranking best;
  double best_score = -1.0;
  for (size_t a = 0; a < num_attributes(); ++a) {
    Ranking candidate = RankByKey(
        eligible, k, [this, a](int32_t e) { return site_scores_[e][a]; },
        true);
    const double score = evaluate(candidate);
    if (score > best_score) {
      best_score = score;
      best = std::move(candidate);
    }
  }
  return best;
}

Ranking AttributeBaseline::BestTwoAttributes(
    const std::vector<int32_t>& eligible, size_t k,
    const std::function<double(const Ranking&)>& evaluate) const {
  Ranking best;
  double best_score = -1.0;
  for (size_t a = 0; a < num_attributes(); ++a) {
    for (size_t b = a + 1; b < num_attributes(); ++b) {
      Ranking candidate = RankByKey(
          eligible, k,
          [this, a, b](int32_t e) {
            return site_scores_[e][a] + site_scores_[e][b];
          },
          true);
      const double score = evaluate(candidate);
      if (score > best_score) {
        best_score = score;
        best = std::move(candidate);
      }
    }
  }
  return best;
}

}  // namespace opinedb::baselines
