#ifndef OPINEDB_BASELINES_GZ12_H_
#define OPINEDB_BASELINES_GZ12_H_

#include <string>
#include <vector>

#include "embedding/word2vec.h"
#include "index/inverted_index.h"
#include "text/corpus.h"
#include "text/tokenizer.h"

namespace opinedb::baselines {

/// Options for the IR baseline.
struct Gz12Options {
  /// Expansion terms added per query token (word2vec neighbours), as in
  /// the strengthened baseline of Section 5.3.
  size_t expansion_terms = 2;
  double expansion_weight = 0.5;
  /// How per-predicate scores combine: sum or max.
  enum class Combine { kSum, kMax } combine = Combine::kSum;
};

/// The opinion-based entity ranking baseline (Ganesan & Zhai 2012): each
/// entity is one document (all its reviews concatenated); entities are
/// ranked by combined BM25 of the query predicates over that document,
/// with word2vec query expansion.
class Gz12Ranker {
 public:
  /// `entity_index` must contain one document per entity (DocId ==
  /// EntityId). `embeddings` may be null to disable expansion.
  Gz12Ranker(const index::InvertedIndex* entity_index,
             const embedding::WordEmbeddings* embeddings,
             Gz12Options options = Gz12Options());

  /// Ranks all entities for a conjunction of NL predicates; returns the
  /// top-k (score-descending).
  std::vector<index::ScoredDoc> Rank(
      const std::vector<std::string>& predicates, size_t k) const;

 private:
  /// Expands one predicate into weighted query terms.
  std::vector<std::pair<std::string, double>> ExpandQuery(
      const std::string& predicate) const;

  const index::InvertedIndex* entity_index_;
  const embedding::WordEmbeddings* embeddings_;
  Gz12Options options_;
  text::Tokenizer tokenizer_;
};

}  // namespace opinedb::baselines

#endif  // OPINEDB_BASELINES_GZ12_H_
