#ifndef OPINEDB_BASELINES_ATTRIBUTE_BASELINE_H_
#define OPINEDB_BASELINES_ATTRIBUTE_BASELINE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace opinedb::baselines {

/// A ranking of entity ids, best first.
using Ranking = std::vector<int32_t>;

/// The attribute-based (AB) baselines of Section 5.3: what a user gets
/// from a booking/review site by ranking on the queryable fields.
///
/// `site_scores[e][a]` are the site's per-category scores (e.g. the 8
/// booking.com category ratings); `price[e]` and `rating[e]` are the
/// sort keys of the simplest variants. Candidate filtering (e.g. "in
/// London") is applied by passing the eligible entity ids.
class AttributeBaseline {
 public:
  AttributeBaseline(std::vector<std::vector<double>> site_scores,
                    std::vector<double> price, std::vector<double> rating);

  /// Rank eligible entities by ascending price.
  Ranking ByPrice(const std::vector<int32_t>& eligible, size_t k) const;

  /// Rank eligible entities by descending aggregate rating.
  Ranking ByRating(const std::vector<int32_t>& eligible, size_t k) const;

  /// Best single site attribute: tries each attribute as the sort key and
  /// returns the ranking maximizing `evaluate` — the paper's oracle user
  /// who "freely tries combinations ... and picks the best".
  Ranking BestOneAttribute(
      const std::vector<int32_t>& eligible, size_t k,
      const std::function<double(const Ranking&)>& evaluate) const;

  /// Best pair of site attributes ranked by their sum.
  Ranking BestTwoAttributes(
      const std::vector<int32_t>& eligible, size_t k,
      const std::function<double(const Ranking&)>& evaluate) const;

  size_t num_attributes() const {
    return site_scores_.empty() ? 0 : site_scores_[0].size();
  }

 private:
  Ranking RankByKey(const std::vector<int32_t>& eligible, size_t k,
                    const std::function<double(int32_t)>& key,
                    bool descending) const;

  std::vector<std::vector<double>> site_scores_;
  std::vector<double> price_;
  std::vector<double> rating_;
};

}  // namespace opinedb::baselines

#endif  // OPINEDB_BASELINES_ATTRIBUTE_BASELINE_H_
