#ifndef OPINEDB_INDEX_INVERTED_INDEX_H_
#define OPINEDB_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace opinedb::index {

/// Document id within an InvertedIndex. Assigned densely by AddDocument.
using DocId = int32_t;

/// A scored document.
struct ScoredDoc {
  DocId doc = 0;
  double score = 0.0;
};

/// Okapi BM25 parameters (standard defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// An in-memory inverted index with Okapi BM25 ranking — our substitute
/// for the Elasticsearch substrate the paper relies on for the
/// co-occurrence interpretation method and the IR baseline.
class InvertedIndex {
 public:
  explicit InvertedIndex(Bm25Params params = Bm25Params())
      : params_(params) {}

  /// Adds a tokenized document; returns its dense DocId.
  DocId AddDocument(const std::vector<std::string>& tokens);

  size_t num_documents() const { return doc_lengths_.size(); }
  double average_doc_length() const;

  /// Document frequency of a term (number of documents containing it).
  int64_t DocumentFrequency(std::string_view term) const;

  /// BM25 idf component: ln(1 + (N - df + 0.5) / (df + 0.5)).
  double Bm25Idf(std::string_view term) const;

  /// Classic smoothed idf: ln(N / (1 + df)) clamped at >= 0. Used for the
  /// IDF-weighted phrase embeddings (paper Eq. 1).
  double Idf(std::string_view term) const;

  /// BM25 score of one document for a tokenized query.
  double Score(DocId doc, const std::vector<std::string>& query) const;

  /// Top-k documents by BM25 (ties broken by smaller DocId). Documents
  /// with zero score are omitted; fewer than k results may be returned.
  std::vector<ScoredDoc> TopK(const std::vector<std::string>& query,
                              size_t k) const;

  /// Like TopK but each document's BM25 score is multiplied by
  /// `weights[doc]` (e.g. a sentiment score); non-positive products are
  /// omitted. `weights` must have one entry per document.
  std::vector<ScoredDoc> TopKWeighted(const std::vector<std::string>& query,
                                      size_t k,
                                      const std::vector<double>& weights) const;

  /// Term frequency of `term` in `doc` (0 if absent).
  int32_t TermFrequency(DocId doc, std::string_view term) const;

 private:
  struct Posting {
    DocId doc;
    int32_t tf;
  };

  std::vector<ScoredDoc> RankAll(const std::vector<std::string>& query,
                                 size_t k,
                                 const std::vector<double>* weights) const;

  Bm25Params params_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::vector<int32_t> doc_lengths_;
  int64_t total_length_ = 0;
};

}  // namespace opinedb::index

#endif  // OPINEDB_INDEX_INVERTED_INDEX_H_
