#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace opinedb::index {

DocId InvertedIndex::AddDocument(const std::vector<std::string>& tokens) {
  DocId doc = static_cast<DocId>(doc_lengths_.size());
  std::unordered_map<std::string, int32_t> tf;
  for (const auto& token : tokens) ++tf[token];
  for (auto& [term, count] : tf) {
    postings_[term].push_back(Posting{doc, count});
  }
  doc_lengths_.push_back(static_cast<int32_t>(tokens.size()));
  total_length_ += static_cast<int64_t>(tokens.size());
  return doc;
}

double InvertedIndex::average_doc_length() const {
  if (doc_lengths_.empty()) return 0.0;
  return static_cast<double>(total_length_) /
         static_cast<double>(doc_lengths_.size());
}

int64_t InvertedIndex::DocumentFrequency(std::string_view term) const {
  auto it = postings_.find(std::string(term));
  return it == postings_.end() ? 0
                               : static_cast<int64_t>(it->second.size());
}

double InvertedIndex::Bm25Idf(std::string_view term) const {
  const double n = static_cast<double>(num_documents());
  const double df = static_cast<double>(DocumentFrequency(term));
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

double InvertedIndex::Idf(std::string_view term) const {
  const double n = static_cast<double>(num_documents());
  const double df = static_cast<double>(DocumentFrequency(term));
  if (n == 0.0) return 0.0;
  return std::max(0.0, std::log(n / (1.0 + df)));
}

int32_t InvertedIndex::TermFrequency(DocId doc, std::string_view term) const {
  auto it = postings_.find(std::string(term));
  if (it == postings_.end()) return 0;
  // Postings are appended in increasing doc order, so binary search works.
  const auto& list = it->second;
  auto pos = std::lower_bound(
      list.begin(), list.end(), doc,
      [](const Posting& p, DocId d) { return p.doc < d; });
  if (pos != list.end() && pos->doc == doc) return pos->tf;
  return 0;
}

double InvertedIndex::Score(DocId doc,
                            const std::vector<std::string>& query) const {
  const double avg_len = average_doc_length();
  const double len = static_cast<double>(doc_lengths_[doc]);
  double score = 0.0;
  for (const auto& term : query) {
    int32_t tf = TermFrequency(doc, term);
    if (tf == 0) continue;
    const double idf = Bm25Idf(term);
    const double num = tf * (params_.k1 + 1.0);
    const double den =
        tf + params_.k1 * (1.0 - params_.b + params_.b * len / avg_len);
    score += idf * num / den;
  }
  return score;
}

std::vector<ScoredDoc> InvertedIndex::RankAll(
    const std::vector<std::string>& query, size_t k,
    const std::vector<double>* weights) const {
  obs::TraceSpan span("index.rank_all");
  span.AddAttribute("terms", static_cast<uint64_t>(query.size()));
  span.AddAttribute("k", static_cast<uint64_t>(k));
  std::unordered_map<DocId, double> accum;
  const double avg_len = average_doc_length();
  uint64_t postings_scanned = 0;
  // Deduplicate query terms while preserving multiplicity semantics of
  // BM25 (repeated query terms contribute repeatedly, as in Okapi).
  for (const auto& term : query) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const double idf = Bm25Idf(term);
    postings_scanned += it->second.size();
    for (const Posting& posting : it->second) {
      const double len = static_cast<double>(doc_lengths_[posting.doc]);
      const double num = posting.tf * (params_.k1 + 1.0);
      const double den = posting.tf + params_.k1 * (1.0 - params_.b +
                                                    params_.b * len / avg_len);
      accum[posting.doc] += idf * num / den;
    }
  }
  std::vector<ScoredDoc> scored;
  scored.reserve(accum.size());
  for (const auto& [doc, score] : accum) {
    double s = score;
    if (weights != nullptr) s *= (*weights)[doc];
    if (s > 0.0) scored.push_back(ScoredDoc{doc, s});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (scored.size() > k) scored.resize(k);
  span.AddAttribute("postings_scanned", postings_scanned);
  span.AddAttribute("candidates", static_cast<uint64_t>(accum.size()));
  OPINEDB_METRIC_COUNT("index.rank_all_calls", 1);
  OPINEDB_METRIC_COUNT("index.postings_scanned", postings_scanned);
  return scored;
}

std::vector<ScoredDoc> InvertedIndex::TopK(
    const std::vector<std::string>& query, size_t k) const {
  return RankAll(query, k, nullptr);
}

std::vector<ScoredDoc> InvertedIndex::TopKWeighted(
    const std::vector<std::string>& query, size_t k,
    const std::vector<double>& weights) const {
  OPINEDB_FAULT("index.scan");
  return RankAll(query, k, &weights);
}

}  // namespace opinedb::index
