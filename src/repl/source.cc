#include "repl/source.h"

#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "repl/protocol.h"
#include "storage/snapshot_store.h"
#include "storage/wal.h"

namespace opinedb::repl {

namespace {

using server::HttpRequest;
using server::HttpResponse;

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > UINT64_MAX / 10 ||
        (value == UINT64_MAX / 10 && digit > UINT64_MAX % 10)) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  *out = std::move(buffer).str();
  return true;
}

void AddU64Header(HttpResponse* response, const char* name,
                  uint64_t value) {
  response->headers.emplace_back(name, std::to_string(value));
}

}  // namespace

ReplicationSource::ReplicationSource(core::OpineDb* db,
                                     ReplicationSourceOptions options)
    : db_(db), options_(options) {}

ReplicationSource::~ReplicationSource() {
  // Release every pin this source holds so a destroyed source never
  // leaks retention into the engine's registry.
  std::lock_guard<std::mutex> lock(pin_mu_);
  for (const auto& [generation, expiry] : pin_expiry_) {
    db_->generation_pins()->Unpin(generation);
  }
  pin_expiry_.clear();
}

void ReplicationSource::TouchPin(uint64_t generation) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(pin_mu_);
  ExpirePinsLocked(now);
  auto [it, inserted] = pin_expiry_.try_emplace(generation);
  if (inserted) db_->generation_pins()->Pin(generation);
  it->second = now + std::chrono::milliseconds(options_.pin_ttl_ms);
}

void ReplicationSource::ExpirePinsLocked(
    std::chrono::steady_clock::time_point now) {
  for (auto it = pin_expiry_.begin(); it != pin_expiry_.end();) {
    if (it->second <= now) {
      db_->generation_pins()->Unpin(it->first);
      it = pin_expiry_.erase(it);
    } else {
      ++it;
    }
  }
}

server::HttpResponse ReplicationSource::HandleWalFetch(
    const server::HttpRequest& request) {
  uint64_t base = 0;
  if (!ParseU64(request.QueryParam("base"), &base)) {
    return HttpResponse::Error(400, "missing or malformed ?base=");
  }
  uint64_t offset = 0;
  const std::string_view offset_param = request.QueryParam("offset");
  if (!offset_param.empty() && !ParseU64(offset_param, &offset)) {
    return HttpResponse::Error(400, "malformed ?offset=");
  }
  const std::string dir = db_->wal_dir();
  if (dir.empty()) {
    return HttpResponse::Error(
        503, "primary has no WAL (EnableWal before replicating)");
  }

  // Read (generation, acked size) as a consistent pair: a checkpoint
  // between the two reads would pair the old base with the new
  // segment's size. Under-serving on a detected race is safe — the
  // follower just retries.
  const uint64_t current = db_->snapshot_generation();
  const uint64_t acked = db_->wal_acknowledged_bytes();
  if (db_->snapshot_generation() != current) {
    return HttpResponse::Error(503, "checkpoint in progress; retry");
  }

  const bool live = base == current;
  const std::string path = dir + "/" + storage::WalFileName(base);
  std::string bytes;
  if (!ReadFileBytes(path, &bytes) ||
      bytes.size() < storage::kWalHeaderSize) {
    if (live) {
      return HttpResponse::Error(503,
                                 "active WAL segment unreadable; retry");
    }
    // The segment was retired (checkpointed away): the follower must
    // catch up from the current snapshot.
    HttpResponse conflict = HttpResponse::Error(
        409, "base generation " + std::to_string(base) +
                 " retired; catch up from snapshot");
    AddU64Header(&conflict, kHeaderPrimaryGeneration, current);
    return conflict;
  }
  TouchPin(base);

  // The servable region: for the live segment, clamp to the engine's
  // acknowledged durable size (unacknowledged page-cache bytes must
  // never ship); a retired segment is immutable and fully
  // acknowledged, so its whole verified prefix is servable.
  size_t region_end = bytes.size() - storage::kWalHeaderSize;
  if (live && acked >= storage::kWalHeaderSize) {
    region_end = std::min<size_t>(
        region_end, acked - storage::kWalHeaderSize);
  }
  std::vector<std::string> records;
  const size_t verified = storage::DecodeWalRecords(
      std::string_view(bytes).substr(storage::kWalHeaderSize, region_end),
      &records);

  // Walk to the requested offset, chaining the fingerprint over the
  // records before it (the follower's chain covers everything it has
  // applied, so the served chain must cover everything before AND
  // inside this batch).
  uint32_t fingerprint = SeedFingerprint(base);
  size_t pos = 0;
  size_t next_record = 0;
  while (next_record < records.size() && pos < offset) {
    fingerprint = ChainFingerprint(fingerprint, records[next_record]);
    pos += storage::kWalRecordHeaderSize + records[next_record].size();
    ++next_record;
  }
  if (pos != offset) {
    return HttpResponse::Error(
        416, "offset " + std::to_string(offset) +
                 " is beyond the acknowledged end or not on a record "
                 "boundary (acked end " +
                 std::to_string(verified) + ")");
  }

  HttpResponse response;
  response.status = 200;
  response.content_type = "application/octet-stream";
  size_t shipped_records = 0;
  while (next_record < records.size() &&
         response.body.size() < options_.max_batch_bytes) {
    storage::AppendWalRecordFrame(records[next_record], &response.body);
    fingerprint = ChainFingerprint(fingerprint, records[next_record]);
    ++next_record;
    ++shipped_records;
  }
  AddU64Header(&response, kHeaderBase, base);
  AddU64Header(&response, kHeaderPrimaryGeneration, current);
  AddU64Header(&response, kHeaderNextOffset, offset + response.body.size());
  AddU64Header(&response, kHeaderAckedEnd, verified);
  AddU64Header(&response, kHeaderFingerprint, fingerprint);
  response.headers.emplace_back(kHeaderSegmentComplete, live ? "0" : "1");
  OPINEDB_METRIC_COUNT("repl.source.fetches", 1);
  OPINEDB_METRIC_COUNT("repl.source.records_shipped", shipped_records);
  OPINEDB_METRIC_COUNT("repl.source.bytes_shipped", response.body.size());
  return response;
}

server::HttpResponse ReplicationSource::HandleSnapshotFetch(
    const server::HttpRequest& request) {
  const std::string_view prefix = kSnapshotRoutePrefix;
  if (request.path.size() <= prefix.size() ||
      request.path.compare(0, prefix.size(), prefix) != 0) {
    return HttpResponse::Error(400, "expected /repl/snapshot/<gen>");
  }
  uint64_t generation = 0;
  if (!ParseU64(request.path.substr(prefix.size()), &generation)) {
    return HttpResponse::Error(400, "malformed snapshot generation");
  }
  const std::string dir = db_->wal_dir();
  if (dir.empty()) {
    return HttpResponse::Error(503, "primary has no WAL directory");
  }
  const std::string path =
      dir + "/" + storage::SnapshotStore::GenerationFileName(generation);
  std::string bytes;
  if (!ReadFileBytes(path, &bytes)) {
    return HttpResponse::Error(
        404, "snapshot generation " + std::to_string(generation) +
                 " not on disk");
  }
  // Never ship a container that does not verify — the follower would
  // refuse it anyway; failing here names the true culprit.
  if (!storage::SnapshotStore::DecodeContainer(bytes).ok()) {
    return HttpResponse::Error(
        404, "snapshot generation " + std::to_string(generation) +
                 " failed verification on the primary");
  }
  TouchPin(generation);
  HttpResponse response;
  response.status = 200;
  response.content_type = "application/octet-stream";
  response.body = std::move(bytes);
  AddU64Header(&response, kHeaderPrimaryGeneration,
               db_->snapshot_generation());
  OPINEDB_METRIC_COUNT("repl.source.snapshot_fetches", 1);
  return response;
}

}  // namespace opinedb::repl
