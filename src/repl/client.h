#ifndef OPINEDB_REPL_CLIENT_H_
#define OPINEDB_REPL_CLIENT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/backoff.h"
#include "common/result.h"
#include "core/engine.h"
#include "server/http_client.h"

namespace opinedb::repl {

struct ReplicationClientOptions {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// TCP handshake budget per (re)connect.
  int connect_timeout_ms = 2000;
  /// Per-read budget against a stalled primary.
  int read_timeout_ms = 5000;
  /// Sleep between polls while caught up (the steady-state lag floor).
  double poll_interval_ms = 20.0;
  /// Retry schedule after a failed sync cycle. Deterministic under
  /// backoff_seed (common/backoff.h).
  BackoffOptions backoff;
  uint64_t backoff_seed = 42;
};

/// The follower side of WAL-shipped replication: pulls frames from a
/// primary's /repl/wal route, re-verifies every CRC, checks the chained
/// batch fingerprint BEFORE applying anything, and applies each record
/// through OpineDb::ApplyReplicatedRecord — which journals the record
/// to the follower's own WAL and folds it through the exact live-ingest
/// path in one critical section. The follower's state and WAL segment
/// are therefore bit-identical to the primary's at every acknowledged
/// offset.
///
/// Lifecycle: Initialize() (puts the engine in read-only mode, replays
/// the local durable tail, recomputes the stream position), then either
/// Start()/Stop() for the background pull loop or repeated SyncOnce()
/// calls for deterministic single-stepping (what the tests do).
///
/// Failure handling, one cycle at a time:
///   - transport errors / a partitioned primary: Unavailable, the loop
///     retries under exponential backoff with jitter;
///   - fingerprint mismatch: typed DataLoss, NOTHING from the batch is
///     applied, repl.divergence counts it, the loop keeps retrying (a
///     transient corruption source heals, a real divergence needs an
///     operator);
///   - a crash mid-batch (fault site repl.apply): applied records stay
///     applied and acknowledged, the rest are re-fetched from the
///     advanced offset — never a loss, never a double apply;
///   - retired base (409): snapshot catch-up — fetch /repl/snapshot,
///     AdoptSnapshot + OpenDatabase + EnableWal, resume at offset 0.
///
/// Thread safety: SyncOnce and Start/Stop must come from one thread;
/// lag_ms()/caught_up()/offset() are safe from any thread.
class ReplicationClient {
 public:
  /// `db` must outlive the client; `dir` is the follower's own WAL +
  /// snapshot directory (NOT the primary's).
  ReplicationClient(core::OpineDb* db, std::string dir,
                    ReplicationClientOptions options = {});
  ~ReplicationClient();

  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Enters follower mode: SetReadOnly, EnableWal (replays the durable
  /// local tail through the live-ingest path), then recomputes the
  /// stream position — offset and chained fingerprint — from the local
  /// segment, so a restarted follower resumes exactly where its
  /// acknowledged WAL ends.
  Status Initialize();

  /// One pull/verify/apply cycle. Returns true when the follower is
  /// caught up to every acknowledged primary write, false when there is
  /// (or may be) more to pull immediately.
  Result<bool> SyncOnce();

  /// Spawns the background pull loop (Initialize first).
  Status Start();
  /// Stops and joins the loop; idempotent.
  void Stop();

  /// Milliseconds since the follower last observed itself caught up —
  /// the bounded-staleness signal behind max_staleness_ms (a partition
  /// makes this grow without bound).
  double lag_ms() const;
  bool caught_up() const;
  /// Stream position: bytes past the segment header acknowledged so
  /// far, and the chained fingerprint over every applied payload.
  uint64_t offset() const;
  uint32_t fingerprint() const;
  /// Fingerprint mismatches observed (each one refused a whole batch).
  uint64_t divergence_count() const;
  /// Snapshot catch-ups performed.
  uint64_t catchup_count() const;

 private:
  void RunLoop();
  /// The body of one cycle; SyncOnce wraps it to drop caught_up_ on
  /// any failure.
  Result<bool> SyncCycle();
  /// Re-derives offset_/fingerprint_ from the local on-disk segment.
  Status ResetStreamPosition();
  Status CatchUpFromSnapshot(uint64_t target_generation);
  Status EnsureConnected();

  core::OpineDb* db_;
  std::string dir_;
  ReplicationClientOptions options_;
  ExponentialBackoff backoff_;
  server::HttpClient http_;
  bool initialized_ = false;

  mutable std::mutex mu_;
  uint64_t offset_ = 0;
  uint32_t fingerprint_ = 0;
  bool caught_up_ = false;
  std::chrono::steady_clock::time_point last_caught_up_;
  uint64_t divergences_ = 0;
  uint64_t catchups_ = 0;

  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
};

}  // namespace opinedb::repl

#endif  // OPINEDB_REPL_CLIENT_H_
