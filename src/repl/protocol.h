#ifndef OPINEDB_REPL_PROTOCOL_H_
#define OPINEDB_REPL_PROTOCOL_H_

#include <cstdint>
#include <string_view>

#include "storage/checksum.h"

namespace opinedb::repl {

/// Wire protocol of WAL-shipped replication (docs/REPLICATION.md).
///
/// The primary exposes two pull routes:
///
///   GET /repl/wal?base=<gen>&offset=<n>   ship WAL frames from byte
///                                         offset n past the segment
///                                         header of wal-<gen>.log
///   GET /repl/snapshot/<gen>              full snapshot container for
///                                         catch-up
///
/// Offsets count bytes past the 20-byte segment header
/// (storage::kWalHeaderSize) and always land on record-frame
/// boundaries — the follower advances its offset per applied record by
/// kWalRecordHeaderSize + payload size. The served byte range is
/// clamped to the primary's acknowledged durable size, so bytes whose
/// fsync never succeeded (possibly visible in the page cache) are
/// never shipped.
///
/// Response metadata travels in x-repl-* headers (values are decimal
/// ASCII); the body is the raw frame bytes. A follower whose base no
/// longer matches the primary's generation gets 409 plus the primary's
/// current generation and falls back to snapshot catch-up; an offset
/// beyond the acknowledged end (or off a record boundary) is 416.

inline constexpr char kWalRoute[] = "/repl/wal";
inline constexpr char kSnapshotRoutePrefix[] = "/repl/snapshot/";

/// Base generation the served frames apply on top of (echo of ?base=).
inline constexpr char kHeaderBase[] = "x-repl-base";
/// The primary's current snapshot generation — on 409 this is where
/// the follower must catch up to.
inline constexpr char kHeaderPrimaryGeneration[] =
    "x-repl-primary-generation";
/// Offset of the first byte after the shipped batch: the follower's
/// next ?offset= once the whole batch verifies and applies.
inline constexpr char kHeaderNextOffset[] = "x-repl-next-offset";
/// The primary's acknowledged durable end of the segment (bytes past
/// the header). next-offset == acked-end means the follower is caught
/// up to every acknowledged write.
inline constexpr char kHeaderAckedEnd[] = "x-repl-acked-end";
/// Chained CRC32C fingerprint (decimal u32) of every record payload
/// from the segment start through the end of this batch, seeded from
/// the base generation. The follower computes the same chain over what
/// it applied; a mismatch is divergence — typed DataLoss, nothing
/// applied.
inline constexpr char kHeaderFingerprint[] = "x-repl-fingerprint";
/// "1" when the primary has checkpointed past this segment: the
/// follower should finish the batch, then run ReplicaCheckpoint so
/// generations stay in lockstep.
inline constexpr char kHeaderSegmentComplete[] = "x-repl-segment-complete";

/// Fingerprint seed for a segment: CRC32C over the base generation's 8
/// little-endian bytes, so chains from different segments never
/// accidentally collide at offset 0.
inline uint32_t SeedFingerprint(uint64_t base_generation) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] =
        static_cast<unsigned char>((base_generation >> (8 * i)) & 0xff);
  }
  return storage::Crc32c(bytes, sizeof(bytes));
}

/// Extends a fingerprint over one record payload. Both sides chain in
/// record order; equal chains over equal prefixes is what makes the
/// per-batch checksum sound (apply is deterministic, so equal payload
/// sequences imply bit-identical state).
inline uint32_t ChainFingerprint(uint32_t fingerprint,
                                 std::string_view payload) {
  return storage::Crc32cExtend(fingerprint, payload.data(),
                               payload.size());
}

}  // namespace opinedb::repl

#endif  // OPINEDB_REPL_PROTOCOL_H_
