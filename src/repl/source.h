#ifndef OPINEDB_REPL_SOURCE_H_
#define OPINEDB_REPL_SOURCE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/engine.h"
#include "server/httpd.h"

namespace opinedb::repl {

/// Tuning of the primary-side shipping endpoints.
struct ReplicationSourceOptions {
  /// Upper bound on frame bytes shipped per /repl/wal response. A
  /// catch-up follower takes several round trips instead of one
  /// unbounded allocation.
  size_t max_batch_bytes = 1 << 20;
  /// How long a fetch keeps the fetched segment's base generation
  /// pinned (Checkpoint skips retiring pinned segments; GarbageCollect
  /// retains their snapshots). Refreshed by every fetch, swept lazily —
  /// a dead follower's pin costs one TTL, then the next checkpoint
  /// retires the segment normally.
  int pin_ttl_ms = 10000;
};

/// The primary side of WAL-shipped replication: serves the routes in
/// repl/protocol.h off the engine's live WAL directory. Stateless
/// between requests except for the pin table; safe to call from any
/// server worker thread concurrently with writes — fetches read the
/// engine's published generation/acked-size pair and the on-disk
/// segment, never engine internals.
///
/// What is shipped is re-framed from decoded, CRC-verified records with
/// the same deterministic framing the writer used, so the shipped bytes
/// are byte-identical to the durable prefix on disk. Bytes past the
/// acknowledged durable size (an append whose fsync failed may be
/// visible in the page cache) are never shipped.
class ReplicationSource {
 public:
  ReplicationSource(core::OpineDb* db,
                    ReplicationSourceOptions options = {});
  ~ReplicationSource();

  /// GET /repl/wal?base=<gen>&offset=<n> — see protocol.h for the
  /// response contract (200 with frames, 409 retired base, 416 bad
  /// offset, 503 no WAL / checkpoint in flight).
  server::HttpResponse HandleWalFetch(const server::HttpRequest& request);

  /// GET /repl/snapshot/<gen> — the verified snapshot container for
  /// catch-up, or 404 when that generation is not on disk / corrupt.
  server::HttpResponse HandleSnapshotFetch(
      const server::HttpRequest& request);

 private:
  /// Refreshes the pin on `generation` and expires stale pins.
  void TouchPin(uint64_t generation);
  void ExpirePinsLocked(std::chrono::steady_clock::time_point now);

  core::OpineDb* db_;
  ReplicationSourceOptions options_;
  std::mutex pin_mu_;
  /// generation -> pin expiry. Each entry holds exactly one reference
  /// in the engine's GenerationPins registry.
  std::map<uint64_t, std::chrono::steady_clock::time_point> pin_expiry_;
};

}  // namespace opinedb::repl

#endif  // OPINEDB_REPL_SOURCE_H_
