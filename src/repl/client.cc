#include "repl/client.h"

#include <string_view>
#include <vector>

#include "common/fault.h"
#include "obs/metrics.h"
#include "repl/protocol.h"
#include "storage/snapshot_store.h"
#include "storage/wal.h"

namespace opinedb::repl {

namespace {

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > UINT64_MAX / 10 ||
        (value == UINT64_MAX / 10 && digit > UINT64_MAX % 10)) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

double MillisSince(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

ReplicationClient::ReplicationClient(core::OpineDb* db, std::string dir,
                                     ReplicationClientOptions options)
    : db_(db),
      dir_(std::move(dir)),
      options_(options),
      backoff_(options.backoff, options.backoff_seed) {}

ReplicationClient::~ReplicationClient() { Stop(); }

Status ReplicationClient::Initialize() {
  db_->SetReadOnly(true);
  // Crash recovery is the standard pair: the engine already holds the
  // newest verified snapshot (the caller ran OpenDatabase if one
  // exists); EnableWal replays the durable tail through the exact
  // live-ingest path and truncates torn bytes away.
  Status wal = db_->EnableWal(dir_);
  if (!wal.ok()) return wal;
  Status position = ResetStreamPosition();
  if (!position.ok()) return position;
  {
    std::lock_guard<std::mutex> lock(mu_);
    caught_up_ = false;
    last_caught_up_ = std::chrono::steady_clock::now();
  }
  initialized_ = true;
  return Status::OK();
}

Status ReplicationClient::ResetStreamPosition() {
  const uint64_t base = db_->snapshot_generation();
  uint64_t offset = 0;
  uint32_t fingerprint = SeedFingerprint(base);
  auto contents =
      storage::ReadWal(dir_ + "/" + storage::WalFileName(base));
  if (contents.ok()) {
    // EnableWal already truncated to the verified prefix, so
    // valid_bytes here is exactly the acknowledged stream position.
    offset = contents->valid_bytes > storage::kWalHeaderSize
                 ? contents->valid_bytes - storage::kWalHeaderSize
                 : 0;
    for (const auto& record : contents->records) {
      fingerprint = ChainFingerprint(fingerprint, record);
    }
  } else if (contents.status().code() != StatusCode::kNotFound) {
    return contents.status();
  }
  std::lock_guard<std::mutex> lock(mu_);
  offset_ = offset;
  fingerprint_ = fingerprint;
  return Status::OK();
}

Status ReplicationClient::EnsureConnected() {
  if (http_.connected()) return Status::OK();
  return http_.Connect(options_.primary_host, options_.primary_port,
                       options_.connect_timeout_ms,
                       options_.read_timeout_ms);
}

Result<bool> ReplicationClient::SyncOnce() {
  auto result = SyncCycle();
  if (!result.ok()) {
    // A follower that cannot complete a cycle cannot claim freshness:
    // a partition must drop caught_up() so bounded-staleness reads
    // degrade instead of lying (lag_ms keeps growing from the last
    // observed caught-up instant).
    std::lock_guard<std::mutex> lock(mu_);
    caught_up_ = false;
  }
  return result;
}

Result<bool> ReplicationClient::SyncCycle() {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "ReplicationClient::Initialize first");
  }
  // Partition site: the whole cycle degrades to a retryable failure
  // before any network traffic.
  if (OPINEDB_FAULT_HIT("repl.fetch")) {
    return Status::Unavailable("injected fault at repl.fetch");
  }
  Status connected = EnsureConnected();
  if (!connected.ok()) return connected;

  const uint64_t base = db_->snapshot_generation();
  uint64_t offset = 0;
  uint32_t fingerprint = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    offset = offset_;
    fingerprint = fingerprint_;
  }
  auto response = http_.Get(std::string(kWalRoute) +
                            "?base=" + std::to_string(base) +
                            "&offset=" + std::to_string(offset));
  if (!response.ok()) return response.status();
  if (response->status == 409) {
    uint64_t target = 0;
    if (!ParseU64(response->Header(kHeaderPrimaryGeneration), &target)) {
      return Status::Internal(
          "409 without a parsable x-repl-primary-generation");
    }
    Status caught = CatchUpFromSnapshot(target);
    if (!caught.ok()) return caught;
    return false;  // Rebased; pull the new segment immediately.
  }
  if (response->status == 503) {
    return Status::Unavailable("primary not ready: " + response->body);
  }
  if (response->status != 200) {
    return Status::Internal("unexpected /repl/wal status " +
                            std::to_string(response->status) + ": " +
                            response->body);
  }

  uint64_t served_next = 0, acked_end = 0, served_fp = 0;
  if (!ParseU64(response->Header(kHeaderNextOffset), &served_next) ||
      !ParseU64(response->Header(kHeaderAckedEnd), &acked_end) ||
      !ParseU64(response->Header(kHeaderFingerprint), &served_fp)) {
    return Status::Internal("/repl/wal response missing x-repl headers");
  }
  const bool segment_complete =
      response->Header(kHeaderSegmentComplete) == "1";

  // Re-verify every shipped frame's CRC; a partially-verifiable body is
  // corruption in transit and nothing from it is trusted.
  std::vector<std::string> records;
  const size_t consumed =
      storage::DecodeWalRecords(response->body, &records);
  if (consumed != response->body.size()) {
    OPINEDB_METRIC_COUNT("repl.client.torn_batches", 1);
    return Status::DataLoss(
        "shipped batch failed CRC re-verification (" +
        std::to_string(response->body.size() - consumed) +
        " unverifiable tail bytes)");
  }

  // Divergence gate, checked for the WHOLE batch before any apply: the
  // chained fingerprint over everything this follower has applied plus
  // this batch must equal the primary's chain through the same prefix.
  // Apply is deterministic, so equal chains imply bit-identical state.
  uint32_t chained = fingerprint;
  for (const auto& record : records) {
    chained = ChainFingerprint(chained, record);
  }
  if (OPINEDB_FAULT_HIT("repl.checksum")) {
    chained ^= 0x5a5a5a5au;  // Simulated follower-side corruption.
  }
  if (chained != static_cast<uint32_t>(served_fp)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++divergences_;
    OPINEDB_METRIC_COUNT("repl.divergence", 1);
    return Status::DataLoss(
        "replication divergence at base " + std::to_string(base) +
        " offset " + std::to_string(offset) +
        ": batch fingerprint mismatch; refusing to apply");
  }

  for (const auto& record : records) {
    // Crash site between record applies: what was applied stays
    // acknowledged (offset_ advanced below), the rest is re-fetched.
    if (OPINEDB_FAULT_HIT("repl.apply")) {
      return Status::Internal("injected fault at repl.apply");
    }
    auto applied = db_->ApplyReplicatedRecord(record);
    if (!applied.ok()) return applied.status();
    std::lock_guard<std::mutex> lock(mu_);
    offset_ += storage::kWalRecordHeaderSize + record.size();
    fingerprint_ = ChainFingerprint(fingerprint_, record);
  }

  const bool at_served_end = served_next == acked_end;
  if (segment_complete && at_served_end) {
    // The primary checkpointed past this segment; rotate in lockstep
    // (both sides compute the next generation as max-existing + 1 over
    // identical snapshot histories) and restart the chain.
    Status rotated = db_->ReplicaCheckpoint();
    if (!rotated.ok()) return rotated;
    const uint64_t generation = db_->snapshot_generation();
    std::lock_guard<std::mutex> lock(mu_);
    offset_ = 0;
    fingerprint_ = SeedFingerprint(generation);
    return false;  // Pull the fresh segment immediately.
  }

  const bool caught_up = at_served_end && !segment_complete;
  {
    std::lock_guard<std::mutex> lock(mu_);
    caught_up_ = caught_up;
    if (caught_up) {
      last_caught_up_ = std::chrono::steady_clock::now();
    }
  }
  OPINEDB_METRIC_GAUGE_SET("repl.replication_lag_ms", lag_ms());
  return caught_up;
}

Status ReplicationClient::CatchUpFromSnapshot(uint64_t target_generation) {
  if (OPINEDB_FAULT_HIT("repl.fetch")) {
    return Status::Unavailable("injected fault at repl.fetch");
  }
  Status connected = EnsureConnected();
  if (!connected.ok()) return connected;
  auto response = http_.Get(std::string(kSnapshotRoutePrefix) +
                            std::to_string(target_generation));
  if (!response.ok()) return response.status();
  if (response->status != 200) {
    return Status::Unavailable(
        "snapshot fetch for generation " +
        std::to_string(target_generation) + " answered " +
        std::to_string(response->status) + ": " + response->body);
  }
  // AdoptSnapshot verifies the container end to end before writing;
  // OpenDatabase re-verifies on the way into the engine. A corrupt
  // shipped snapshot therefore never touches served state.
  storage::SnapshotStore store(dir_);
  Status adopted = store.AdoptSnapshot(target_generation, response->body);
  if (!adopted.ok()) return adopted;
  Status opened = db_->OpenDatabase(dir_);
  if (!opened.ok()) return opened;
  Status wal = db_->EnableWal(dir_);
  if (!wal.ok()) return wal;
  Status position = ResetStreamPosition();
  if (!position.ok()) return position;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++catchups_;
    caught_up_ = false;
  }
  OPINEDB_METRIC_COUNT("repl.client.snapshot_catchups", 1);
  return Status::OK();
}

Status ReplicationClient::Start() {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "ReplicationClient::Initialize first");
  }
  if (thread_.joinable()) {
    return Status::AlreadyExists("pull loop already running");
  }
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { RunLoop(); });
  return Status::OK();
}

void ReplicationClient::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  http_.Close();
}

void ReplicationClient::RunLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      if (stop_) return;
    }
    auto caught_up = SyncOnce();
    double sleep_ms = 0.0;
    if (!caught_up.ok()) {
      OPINEDB_METRIC_COUNT("repl.client.sync_failures", 1);
      http_.Close();  // A fresh connect next cycle beats a wedged one.
      sleep_ms = backoff_.NextDelayMs();
    } else if (*caught_up) {
      backoff_.Reset();
      sleep_ms = options_.poll_interval_ms;
    }
    // else: behind with a healthy primary — pull again immediately.
    if (sleep_ms > 0.0) {
      std::unique_lock<std::mutex> lock(stop_mu_);
      stop_cv_.wait_for(
          lock, std::chrono::duration<double, std::milli>(sleep_ms),
          [this] { return stop_; });
      if (stop_) return;
    }
  }
}

double ReplicationClient::lag_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return MillisSince(last_caught_up_);
}

bool ReplicationClient::caught_up() const {
  std::lock_guard<std::mutex> lock(mu_);
  return caught_up_;
}

uint64_t ReplicationClient::offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offset_;
}

uint32_t ReplicationClient::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fingerprint_;
}

uint64_t ReplicationClient::divergence_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return divergences_;
}

uint64_t ReplicationClient::catchup_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catchups_;
}

}  // namespace opinedb::repl
