#include "eval/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace opinedb::eval {

namespace {

PrF1 FromCounts(double matched, double predicted_total, double gold_total) {
  PrF1 out;
  out.precision = predicted_total > 0.0 ? matched / predicted_total : 0.0;
  out.recall = gold_total > 0.0 ? matched / gold_total : 0.0;
  out.f1 = (out.precision + out.recall) > 0.0
               ? 2.0 * out.precision * out.recall /
                     (out.precision + out.recall)
               : 0.0;
  return out;
}

}  // namespace

PrF1 SpanF1(const std::vector<std::vector<extract::Span>>& gold,
            const std::vector<std::vector<extract::Span>>& predicted) {
  assert(gold.size() == predicted.size());
  double matched = 0.0, pred_total = 0.0, gold_total = 0.0;
  for (size_t s = 0; s < gold.size(); ++s) {
    pred_total += static_cast<double>(predicted[s].size());
    gold_total += static_cast<double>(gold[s].size());
    for (const auto& p : predicted[s]) {
      for (const auto& g : gold[s]) {
        if (p == g) {
          matched += 1.0;
          break;
        }
      }
    }
  }
  return FromCounts(matched, pred_total, gold_total);
}

PrF1 SpanF1ForTag(const std::vector<std::vector<extract::Span>>& gold,
                  const std::vector<std::vector<extract::Span>>& predicted,
                  extract::Tag tag) {
  std::vector<std::vector<extract::Span>> g(gold.size()), p(gold.size());
  for (size_t s = 0; s < gold.size(); ++s) {
    for (const auto& span : gold[s]) {
      if (span.tag == tag) g[s].push_back(span);
    }
    for (const auto& span : predicted[s]) {
      if (span.tag == tag) p[s].push_back(span);
    }
  }
  return SpanF1(g, p);
}

double SatScore(const std::vector<std::vector<bool>>& satisfied) {
  double total = 0.0;
  for (size_t j = 0; j < satisfied.size(); ++j) {
    int count = 0;
    for (bool sat : satisfied[j]) {
      if (sat) ++count;
    }
    total += static_cast<double>(count) /
             std::log2(static_cast<double>(j) + 2.0);
  }
  return total;
}

double SatMax(std::vector<int> per_entity_counts, size_t k,
              size_t num_predicates) {
  // Ideal ranking: entities sorted by satisfaction count descending.
  std::sort(per_entity_counts.begin(), per_entity_counts.end(),
            std::greater<int>());
  double total = 0.0;
  const size_t n = std::min(k, per_entity_counts.size());
  for (size_t j = 0; j < n; ++j) {
    const int count =
        std::min<int>(per_entity_counts[j], static_cast<int>(num_predicates));
    total += static_cast<double>(count) /
             std::log2(static_cast<double>(j) + 2.0);
  }
  return total;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double ConfidenceInterval95(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  return 1.96 * StdDev(values) / std::sqrt(static_cast<double>(values.size()));
}

}  // namespace opinedb::eval
