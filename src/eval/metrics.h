#ifndef OPINEDB_EVAL_METRICS_H_
#define OPINEDB_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "extract/tags.h"

namespace opinedb::eval {

/// Precision/recall/F1 triple.
struct PrF1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Exact-span-match F1 (the Table 6 metric): a predicted span counts only
/// if it matches a gold span exactly (boundaries and tag).
PrF1 SpanF1(const std::vector<std::vector<extract::Span>>& gold,
            const std::vector<std::vector<extract::Span>>& predicted);

/// Like SpanF1 but restricted to spans of one tag (aspect or opinion).
PrF1 SpanF1ForTag(const std::vector<std::vector<extract::Span>>& gold,
                  const std::vector<std::vector<extract::Span>>& predicted,
                  extract::Tag tag);

/// The paper's result-quality metric (Section 5.2.3):
///   sat(Q, E) = sum_j (sum_i sat(q_i, e_j)) / log2(j + 1)
/// where `satisfied[j][i]` says whether result j satisfies predicate i.
double SatScore(const std::vector<std::vector<bool>>& satisfied);

/// Discounted gain of an ideal top-k list given each entity's
/// predicate-satisfaction count, i.e. sat-max(Q) (best permutation).
double SatMax(std::vector<int> per_entity_counts, size_t k,
              size_t num_predicates);

/// Mean of `values`.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double StdDev(const std::vector<double>& values);

/// Half-width of the 95% normal-approximation confidence interval.
double ConfidenceInterval95(const std::vector<double>& values);

}  // namespace opinedb::eval

#endif  // OPINEDB_EVAL_METRICS_H_
