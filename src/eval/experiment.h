#ifndef OPINEDB_EVAL_EXPERIMENT_H_
#define OPINEDB_EVAL_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/attribute_baseline.h"
#include "baselines/gz12.h"
#include "core/engine.h"
#include "datagen/generator.h"
#include "datagen/queries.h"

namespace opinedb::eval {

/// Everything one experiment domain needs: the synthetic ground truth,
/// the built engine, the predicate pool and the baselines.
struct DomainArtifacts {
  datagen::SyntheticDomain domain;
  std::unique_ptr<core::OpineDb> db;
  std::vector<datagen::QueryPredicate> pool;
  std::unique_ptr<baselines::Gz12Ranker> gz12;
  std::unique_ptr<baselines::AttributeBaseline> attribute_baseline;
};

/// End-to-end build of one domain: generate the corpus, train the
/// extractor on labeled sentences, build the engine, train the membership
/// model from latent-quality labels, and construct the baselines.
struct BuildOptions {
  datagen::GeneratorOptions generator;
  size_t extractor_training_sentences = 600;
  size_t predicate_pool_size = 190;
  size_t membership_training_tuples = 1000;
  core::EngineOptions engine;
  uint64_t seed = 42;
};

/// Builds artifacts for the hotel or restaurant domain.
DomainArtifacts BuildArtifacts(const datagen::DomainSpec& spec,
                               const BuildOptions& options);

/// Labeled membership tuples sampled from the predicate pool and the
/// latent ground truth, computed through the same feature path the engine
/// will use at query time (markers or no-markers, per `use_markers`).
std::vector<core::MembershipModel::LabeledTuple> MakeMembershipTuples(
    const core::OpineDb& db, const datagen::SyntheticDomain& domain,
    const std::vector<datagen::QueryPredicate>& pool, size_t count,
    bool use_markers, uint64_t seed);

/// Trains an opinion tagger for a spec.
extract::OpinionTagger TrainExtractor(const datagen::DomainSpec& spec,
                                      size_t sentences, uint64_t seed);

/// Evaluates a ranking (entity ids, best first) against the ground-truth
/// sat labels of the given predicates: returns sat(Q,E) / sat-max(Q).
double RankingQuality(const datagen::SyntheticDomain& domain,
                      const std::vector<datagen::QueryPredicate>& predicates,
                      const std::vector<int32_t>& ranking, size_t k);

/// Like RankingQuality but normalized by the best ranking available
/// among `eligible` entities only (objective-condition workloads).
double RankingQualityFiltered(
    const datagen::SyntheticDomain& domain,
    const std::vector<datagen::QueryPredicate>& predicates,
    const std::vector<int32_t>& ranking, const std::vector<int32_t>& eligible,
    size_t k);

/// Entities passing an objective filter, e.g. city == london.
std::vector<int32_t> EligibleEntities(
    const datagen::SyntheticDomain& domain,
    const std::function<bool(const datagen::SyntheticEntity&)>& filter);

}  // namespace opinedb::eval

#endif  // OPINEDB_EVAL_EXPERIMENT_H_
