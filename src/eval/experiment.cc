#include "eval/experiment.h"

#include <algorithm>

#include "eval/metrics.h"

namespace opinedb::eval {

extract::OpinionTagger TrainExtractor(const datagen::DomainSpec& spec,
                                      size_t sentences, uint64_t seed) {
  auto labeled = datagen::GenerateLabeledSentences(spec, sentences, seed);
  return extract::OpinionTagger::Train(labeled);
}

std::vector<core::MembershipModel::LabeledTuple> MakeMembershipTuples(
    const core::OpineDb& db, const datagen::SyntheticDomain& domain,
    const std::vector<datagen::QueryPredicate>& pool, size_t count,
    bool use_markers, uint64_t seed) {
  Rng rng(seed);
  std::vector<core::MembershipModel::LabeledTuple> tuples;
  tuples.reserve(count);
  const auto& embedder = db.phrase_embedder();
  for (size_t i = 0; i < count; ++i) {
    const auto& predicate = pool[rng.Below(pool.size())];
    const auto entity =
        static_cast<text::EntityId>(rng.Below(domain.entities.size()));
    // Interpret through the same path the engine uses so training and
    // inference features are distributed identically.
    auto interpretation =
        db.interpreter().InterpretWord2VecOnly(predicate.text);
    if (interpretation.atoms.empty()) continue;
    const auto& atom = interpretation.atoms[0];
    const embedding::Vec rep = embedder.Represent(predicate.text);
    const double senti = db.analyzer().ScorePhrase(predicate.text);
    core::MembershipModel::LabeledTuple tuple;
    if (use_markers) {
      tuple.features = core::MembershipFeatures(
          db.summary(atom.attribute, entity), atom.marker, rep, senti);
    } else {
      tuple.features = core::MembershipFeaturesNoMarkers(
          db.PhrasesOf(atom.attribute, entity), embedder, rep, senti);
    }
    tuple.label =
        datagen::SatisfiesGroundTruth(domain.entities[entity], predicate)
            ? 1
            : 0;
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

DomainArtifacts BuildArtifacts(const datagen::DomainSpec& spec,
                               const BuildOptions& options) {
  DomainArtifacts artifacts;
  artifacts.domain = datagen::GenerateDomain(spec, options.generator);

  auto tagger = TrainExtractor(spec, options.extractor_training_sentences,
                               options.seed);
  extract::ExtractionPipeline pipeline(std::move(tagger));

  artifacts.db =
      core::OpineDb::Build(artifacts.domain.corpus, artifacts.domain.schema,
                           pipeline, options.engine);
  // The engine keeps its own corpus copy; keep using the domain's.
  Status status =
      artifacts.db->SetObjectiveTable(artifacts.domain.objective_table);
  (void)status;

  artifacts.pool = datagen::BuildPredicatePool(
      spec, options.predicate_pool_size, options.seed + 1);

  auto tuples = MakeMembershipTuples(
      *artifacts.db, artifacts.domain, artifacts.pool,
      options.membership_training_tuples, options.engine.use_markers,
      options.seed + 2);
  artifacts.db->TrainMembership(tuples, options.seed + 3);

  artifacts.gz12 = std::make_unique<baselines::Gz12Ranker>(
      &artifacts.db->entity_index(), &artifacts.db->embeddings());

  std::vector<std::vector<double>> site_scores;
  std::vector<double> price;
  std::vector<double> rating;
  for (const auto& entity : artifacts.domain.entities) {
    site_scores.push_back(entity.site_scores);
    price.push_back(static_cast<double>(
        entity.price != 0 ? entity.price : entity.price_range));
    rating.push_back(entity.rating);
  }
  artifacts.attribute_baseline = std::make_unique<baselines::AttributeBaseline>(
      std::move(site_scores), std::move(price), std::move(rating));
  return artifacts;
}

double RankingQuality(const datagen::SyntheticDomain& domain,
                      const std::vector<datagen::QueryPredicate>& predicates,
                      const std::vector<int32_t>& ranking, size_t k) {
  std::vector<std::vector<bool>> satisfied;
  for (size_t j = 0; j < ranking.size() && j < k; ++j) {
    std::vector<bool> row;
    row.reserve(predicates.size());
    for (const auto& predicate : predicates) {
      row.push_back(datagen::SatisfiesGroundTruth(
          domain.entities[ranking[j]], predicate));
    }
    satisfied.push_back(std::move(row));
  }
  std::vector<int> counts;
  counts.reserve(domain.entities.size());
  for (const auto& entity : domain.entities) {
    int count = 0;
    for (const auto& predicate : predicates) {
      if (datagen::SatisfiesGroundTruth(entity, predicate)) ++count;
    }
    counts.push_back(count);
  }
  const double best = SatMax(counts, k, predicates.size());
  if (best <= 0.0) return 1.0;  // Nothing satisfiable: every ranking ties.
  return SatScore(satisfied) / best;
}

double RankingQualityFiltered(
    const datagen::SyntheticDomain& domain,
    const std::vector<datagen::QueryPredicate>& predicates,
    const std::vector<int32_t>& ranking, const std::vector<int32_t>& eligible,
    size_t k) {
  std::vector<std::vector<bool>> satisfied;
  for (size_t j = 0; j < ranking.size() && j < k; ++j) {
    std::vector<bool> row;
    for (const auto& predicate : predicates) {
      row.push_back(datagen::SatisfiesGroundTruth(
          domain.entities[ranking[j]], predicate));
    }
    satisfied.push_back(std::move(row));
  }
  std::vector<int> counts;
  for (int32_t e : eligible) {
    int count = 0;
    for (const auto& predicate : predicates) {
      if (datagen::SatisfiesGroundTruth(domain.entities[e], predicate)) {
        ++count;
      }
    }
    counts.push_back(count);
  }
  const double best = SatMax(counts, k, predicates.size());
  if (best <= 0.0) return 1.0;
  return SatScore(satisfied) / best;
}

std::vector<int32_t> EligibleEntities(
    const datagen::SyntheticDomain& domain,
    const std::function<bool(const datagen::SyntheticEntity&)>& filter) {
  std::vector<int32_t> eligible;
  for (size_t e = 0; e < domain.entities.size(); ++e) {
    if (filter(domain.entities[e])) {
      eligible.push_back(static_cast<int32_t>(e));
    }
  }
  return eligible;
}

}  // namespace opinedb::eval
