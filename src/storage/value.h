#ifndef OPINEDB_STORAGE_VALUE_H_
#define OPINEDB_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace opinedb::storage {

/// Column data types supported by the relational substrate.
enum class ValueType {
  kNull,
  kInt,
  kDouble,
  kString,
};

/// A dynamically-typed cell value.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors require the matching type.
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric view: ints widen to double. Requires kInt or kDouble.
  double AsNumber() const;

  /// SQL-style comparison. Null compares equal only to null and less than
  /// everything else; numbers compare numerically across int/double;
  /// comparing a number with a string orders by type id.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace opinedb::storage

#endif  // OPINEDB_STORAGE_VALUE_H_
