#include "storage/table.h"

namespace opinedb::storage {

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    column_index_[columns_[i].name] = static_cast<int>(i);
  }
}

int Table::ColumnIndex(const std::string& name) const {
  auto it = column_index_.find(name);
  return it == column_index_.end() ? -1 : it->second;
}

Status Table::Append(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != " +
        std::to_string(columns_.size()) + " for table " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != columns_[i].type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     columns_[i].name);
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Catalog::AddTable(Table table) {
  const std::string name = table.name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table " + name);
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return &it->second;
}

Result<Table*> Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

bool BoundColumnPredicate::Matches(const Table& table, size_t row) const {
  const Value& cell = table.at(row, column_);
  if (cell.is_null()) return false;  // SQL semantics: NULL never matches.
  const int cmp = cell.Compare(literal_);
  switch (op_) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

Result<BoundColumnPredicate> ColumnPredicate::Bind(const Table& table) const {
  const int col = table.ColumnIndex(column);
  if (col < 0) return Status::NotFound("column " + column);
  return BoundColumnPredicate(static_cast<size_t>(col), op, literal);
}

Result<bool> ColumnPredicate::Evaluate(const Table& table, size_t row) const {
  auto bound = Bind(table);
  if (!bound.ok()) return bound.status();
  return bound->Matches(table, row);
}

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<CompareOp> ParseCompareOp(const std::string& token) {
  if (token == "=" || token == "==") return CompareOp::kEq;
  if (token == "!=" || token == "<>") return CompareOp::kNe;
  if (token == "<") return CompareOp::kLt;
  if (token == "<=") return CompareOp::kLe;
  if (token == ">") return CompareOp::kGt;
  if (token == ">=") return CompareOp::kGe;
  return Status::ParseError("unknown comparison operator: " + token);
}

}  // namespace opinedb::storage
