#ifndef OPINEDB_STORAGE_TABLE_H_
#define OPINEDB_STORAGE_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/value.h"

namespace opinedb::storage {

/// A row is one value per column.
using Row = std::vector<Value>;

/// Column metadata.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// An in-memory relational table with named, typed columns.
///
/// This substrate plays the role PostgreSQL plays in the paper's
/// implementation: objective attributes live here and objective
/// predicates are evaluated against it.
class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }

  /// Index of a column by name; -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Appends a row after checking arity and types (nulls always pass).
  Status Append(Row row);

  const Row& row(size_t i) const { return rows_[i]; }
  const Value& at(size_t row, size_t col) const { return rows_[row][col]; }

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::unordered_map<std::string, int> column_index_;
  std::vector<Row> rows_;
};

/// A named collection of tables.
class Catalog {
 public:
  /// Registers a table; fails if the name already exists.
  Status AddTable(Table table);

  /// Looks up a table by name.
  Result<const Table*> GetTable(const std::string& name) const;

  /// Mutable lookup (for appends).
  Result<Table*> GetMutableTable(const std::string& name);

  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, Table> tables_;
};

/// Comparison operators usable in objective predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// A predicate bound to a concrete table: the column name has been
/// resolved to an index once, so Matches() is a direct cell comparison
/// with no per-row hash lookup. Obtain via ColumnPredicate::Bind; the
/// binding stays valid for the lifetime of the table's schema.
class BoundColumnPredicate {
 public:
  BoundColumnPredicate(size_t column, CompareOp op, Value literal)
      : column_(column), op_(op), literal_(std::move(literal)) {}

  /// Row-level evaluation (NULL cells never match, as in SQL).
  bool Matches(const Table& table, size_t row) const;

  size_t column() const { return column_; }
  CompareOp op() const { return op_; }
  const Value& literal() const { return literal_; }

 private:
  size_t column_;
  CompareOp op_;
  Value literal_;
};

/// An objective predicate `column <op> literal` over a table.
struct ColumnPredicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;

  /// Resolves the column against `table` once; errors if it is unknown.
  /// Scans should bind once per predicate and call Matches per row.
  Result<BoundColumnPredicate> Bind(const Table& table) const;

  /// Evaluates against a row of `table`. Errors if the column is unknown.
  /// Convenience for one-off checks; scans should use Bind().
  Result<bool> Evaluate(const Table& table, size_t row) const;
};

/// Parses "<", "<=", "=", "!=", ">", ">=" into a CompareOp.
Result<CompareOp> ParseCompareOp(const std::string& token);

/// Renders a CompareOp as its SQL token ("=", "!=", "<", ...).
const char* CompareOpSymbol(CompareOp op);

}  // namespace opinedb::storage

#endif  // OPINEDB_STORAGE_TABLE_H_
