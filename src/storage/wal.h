#ifndef OPINEDB_STORAGE_WAL_H_
#define OPINEDB_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace opinedb::storage {

/// Write-ahead log for incremental ingest (see docs/PERSISTENCE.md §WAL).
///
/// Layout: one segment per base snapshot generation,
///
///   <dir>/wal-%013llu.log
///
/// where the number is the generation the segment's records apply ON TOP
/// OF. The segment is a header followed by a flat sequence of records:
///
///   header:  "OPDBWAL1" magic (8) | u64 base generation | u32 masked
///            CRC32C over the first 16 bytes
///   record:  u32 payload length | u32 masked CRC32C(payload) | payload
///
/// All integers are little-endian, byte-encoded (no punning; decode runs
/// under ubsan). Payloads are opaque bytes — the engine encodes review
/// batches into them; the WAL checksums and orders them, nothing more.
///
/// Durability contract: WalWriter::Append returns OK only after the
/// record bytes are written AND fsynced (append → fsync → acknowledge).
/// A failed append leaves the writer broken (every later Append fails)
/// because the durable suffix is no longer known — exactly the state a
/// crashed process would leave; recovery re-establishes the invariant by
/// truncating at the first corrupt record.
///
/// Thread safety: none. The engine serializes all WAL access under its
/// exclusive reconfiguration lock.

/// Size of the segment header: magic (8) | u64 base generation | u32
/// masked CRC. Replication offsets count bytes past this header, so the
/// constant is part of the wire protocol (src/repl/protocol.h).
inline constexpr size_t kWalHeaderSize = 8 + 8 + 4;
/// Size of one record's frame header: u32 length | u32 masked CRC.
inline constexpr size_t kWalRecordHeaderSize = 4 + 4;

/// The decoded valid prefix of a WAL segment.
struct WalContents {
  /// Base generation from the header (0 when the header itself failed
  /// verification — then `records` is empty and `valid_bytes` is 0).
  uint64_t base_generation = 0;
  std::vector<std::string> records;
  /// True when the file held bytes past the valid prefix (torn tail,
  /// bit flip, garbage). Replay should physically truncate to
  /// `valid_bytes` before appending again.
  bool truncated = false;
  /// Length of the verified prefix (header + whole valid records).
  uint64_t valid_bytes = 0;
};

/// "wal-%013llu.log" — zero-padded so lexicographic order equals numeric
/// order, mirroring SnapshotStore::GenerationFileName.
std::string WalFileName(uint64_t base_generation);

/// Parses a WAL segment file name; returns false for anything else.
bool ParseWalFileName(const std::string& name, uint64_t* base_generation);

/// Reads and verifies a segment, returning its valid prefix. Never
/// fails on corruption — corruption just shortens the prefix (the
/// crash-recovery contract). Returns NotFound only when the file cannot
/// be opened, Internal on a read error.
Result<WalContents> ReadWal(const std::string& path);

/// Decodes the verified prefix of a bare record region (frames only, no
/// segment header): appends every record payload whose length bound and
/// CRC verify, stopping at the first violation. Returns the number of
/// bytes consumed (always a whole number of frames). ReadWal uses this
/// on the bytes past the header; the replication client uses it to
/// re-verify shipped frames before applying them.
size_t DecodeWalRecords(std::string_view bytes,
                        std::vector<std::string>* records);

/// Appends the frame encoding of one record — u32 length | u32 masked
/// CRC32C(payload) | payload — to `*out`. Framing is deterministic, so
/// re-encoding a decoded payload reproduces the on-disk bytes exactly
/// (the replication source re-frames records it serves, and a follower
/// journaling a shipped batch writes a byte-identical segment prefix).
void AppendWalRecordFrame(std::string_view payload, std::string* out);

/// Physically truncates the segment to `valid_bytes` (recovery's
/// response to a torn tail). A no-op when the file is already exactly
/// that long.
Status TruncateWal(const std::string& path, uint64_t valid_bytes);

/// Appends checksummed records to one segment. Create via Open().
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;

  /// Opens `path` for appending. A missing or empty file is initialized
  /// with a fresh header (fsynced, directory fsynced). An existing file
  /// must already be a valid prefix — callers run ReadWal + TruncateWal
  /// first; Open verifies the header and the base generation match.
  static Result<WalWriter> Open(const std::string& path,
                                uint64_t base_generation);

  /// Appends one record and fsyncs. OK means durable. On failure the
  /// writer becomes broken (is_open() false) and the on-disk state is
  /// either the old prefix or the old prefix plus a torn record —
  /// recovery handles both.
  Status Append(std::string_view payload);

  bool is_open() const { return fd_ >= 0; }
  /// Durable segment length acknowledged so far.
  uint64_t size() const { return size_; }

  /// Closes the descriptor (also done by the destructor).
  void Close();

 private:
  /// Failure path shared by every Append breakage point: closes the
  /// descriptor (the permanent-breakage contract), counts the failure,
  /// and raises the storage.wal.broken gauge that /healthz surfaces.
  void MarkBroken();

  int fd_ = -1;
  uint64_t size_ = 0;
  std::string path_;
};

}  // namespace opinedb::storage

#endif  // OPINEDB_STORAGE_WAL_H_
