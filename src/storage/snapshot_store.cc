#include "storage/snapshot_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault.h"
#include "obs/metrics.h"
#include "storage/checksum.h"
#include "storage/wal.h"

namespace opinedb::storage {

namespace {

namespace fs = std::filesystem;

/// Container framing constants. The magic doubles as an endianness and
/// file-type check; all integers are little-endian and encoded byte by
/// byte (no pointer-punning loads — frame decoding runs under ubsan).
constexpr char kMagic[8] = {'O', 'P', 'D', 'B', 'S', 'N', 'P', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kFooterSentinel = 0xffffffffu;
/// Plausibility caps on untrusted lengths (checked before allocation,
/// on top of the remaining-bytes bound).
constexpr size_t kMaxSectionName = 1u << 10;
constexpr size_t kMaxSections = 1u << 16;

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestSection[] = "manifest";
constexpr char kTmpSuffix[] = ".tmp";

void AppendU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU64(uint64_t v, std::string* out) {
  AppendU32(static_cast<uint32_t>(v & 0xffffffffu), out);
  AppendU32(static_cast<uint32_t>(v >> 32), out);
}

/// Bounds-checked little-endian reads over the in-memory file image.
bool ReadU32(std::string_view bytes, size_t* pos, uint32_t* out) {
  if (bytes.size() - *pos < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data() + *pos);
  *out = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
  *pos += 4;
  return true;
}

bool ReadU64(std::string_view bytes, size_t* pos, uint64_t* out) {
  uint32_t lo = 0, hi = 0;
  if (!ReadU32(bytes, pos, &lo) || !ReadU32(bytes, pos, &hi)) return false;
  *out = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

Status Corrupt(const std::string& what) {
  return Status::ParseError("corrupt snapshot container: " + what);
}

/// Full file contents, or an error. Reads via ifstream (no exceptions
/// enabled) so a vanished or unreadable file is a clean status.
Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("read failed: " + path);
  return std::move(buffer).str();
}

/// POSIX full write (loops over short writes / EINTR).
bool WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    n -= static_cast<size_t>(written);
  }
  return true;
}

/// fsync of a directory, so a rename inside it is durable. Best effort
/// on filesystems that reject directory fds.
void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Simulated media fault for the "storage.bitflip" site: flips one bit
/// in the middle of the (fully written, fsynced) file. The commit then
/// proceeds normally — the corruption is only discovered by recovery's
/// checksum verification, exactly like real bit rot.
void FlipOneBit(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return;
  struct stat st;
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    const off_t offset = st.st_size / 2;
    unsigned char byte = 0;
    if (::pread(fd, &byte, 1, offset) == 1) {
      byte ^= 0x10;
      ::pwrite(fd, &byte, 1, offset);
      ::fsync(fd);
    }
  }
  ::close(fd);
}

}  // namespace

const std::string* LoadedSnapshot::Find(const std::string& name) const {
  for (const auto& section : sections) {
    if (section.name == name) return &section.payload;
  }
  return nullptr;
}

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

std::string SnapshotStore::PathTo(const std::string& name) const {
  return dir_ + "/" + name;
}

std::string SnapshotStore::GenerationFileName(uint64_t generation) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "gen-%013llu.snap",
                static_cast<unsigned long long>(generation));
  return buffer;
}

bool SnapshotStore::ParseGenerationFileName(const std::string& name,
                                            uint64_t* generation) {
  constexpr std::string_view kPrefix = "gen-";
  constexpr std::string_view kSuffix = ".snap";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  uint64_t value = 0;
  const size_t digits_end = name.size() - kSuffix.size();
  if (digits_end == kPrefix.size()) return false;
  for (size_t i = kPrefix.size(); i < digits_end; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    if (value > (UINT64_MAX - 9) / 10) return false;  // Overflow.
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *generation = value;
  return true;
}

std::string SnapshotStore::EncodeContainer(
    const std::vector<SnapshotSection>& sections) {
  std::string out;
  size_t total = 16;
  for (const auto& section : sections) {
    total += 4 + section.name.size() + 8 + section.payload.size() + 4;
  }
  out.reserve(total + 12);
  // Header: magic, version, header CRC.
  out.append(kMagic, sizeof(kMagic));
  AppendU32(kFormatVersion, &out);
  AppendU32(MaskCrc(Crc32c(out.data(), out.size())), &out);
  // Sections: framed, each with its own CRC over name || payload.
  for (const auto& section : sections) {
    AppendU32(static_cast<uint32_t>(section.name.size()), &out);
    out.append(section.name);
    AppendU64(section.payload.size(), &out);
    out.append(section.payload);
    uint32_t crc = Crc32c(section.name.data(), section.name.size());
    crc = Crc32cExtend(crc, section.payload.data(), section.payload.size());
    AppendU32(MaskCrc(crc), &out);
  }
  // Footer: sentinel, section count, whole-file CRC (all bytes so far).
  AppendU32(kFooterSentinel, &out);
  AppendU32(static_cast<uint32_t>(sections.size()), &out);
  AppendU32(MaskCrc(Crc32c(out.data(), out.size())), &out);
  return out;
}

Result<std::vector<SnapshotSection>> SnapshotStore::DecodeContainer(
    std::string_view bytes) {
  size_t pos = 0;
  if (bytes.size() < 16) return Corrupt("shorter than the header");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic");
  }
  pos = sizeof(kMagic);
  uint32_t version = 0, header_crc = 0;
  ReadU32(bytes, &pos, &version);
  ReadU32(bytes, &pos, &header_crc);
  if (UnmaskCrc(header_crc) != Crc32c(bytes.data(), 12)) {
    return Corrupt("header checksum mismatch");
  }
  // Version is checked after the header CRC: a flipped version byte is
  // corruption, not an honest future format.
  if (version != kFormatVersion) {
    return Status::NotSupported("snapshot container version " +
                                std::to_string(version));
  }

  std::vector<SnapshotSection> sections;
  for (;;) {
    uint32_t name_len = 0;
    if (!ReadU32(bytes, &pos, &name_len)) {
      return Corrupt("truncated before footer");
    }
    if (name_len == kFooterSentinel) break;  // Footer reached.
    if (name_len > kMaxSectionName) return Corrupt("implausible name length");
    if (sections.size() >= kMaxSections) return Corrupt("too many sections");
    if (bytes.size() - pos < name_len) return Corrupt("truncated name");
    SnapshotSection section;
    section.name.assign(bytes.data() + pos, name_len);
    pos += name_len;
    uint64_t payload_len = 0;
    if (!ReadU64(bytes, &pos, &payload_len)) {
      return Corrupt("truncated payload length");
    }
    // The remaining-bytes bound both rejects truncation and caps the
    // allocation: a flipped length byte cannot demand gigabytes.
    if (payload_len > bytes.size() - pos) return Corrupt("truncated payload");
    section.payload.assign(bytes.data() + pos,
                           static_cast<size_t>(payload_len));
    pos += static_cast<size_t>(payload_len);
    uint32_t stored_crc = 0;
    if (!ReadU32(bytes, &pos, &stored_crc)) {
      return Corrupt("truncated section checksum");
    }
    uint32_t crc = Crc32c(section.name.data(), section.name.size());
    crc = Crc32cExtend(crc, section.payload.data(), section.payload.size());
    if (UnmaskCrc(stored_crc) != crc) {
      return Corrupt("section \"" + section.name + "\" checksum mismatch");
    }
    sections.push_back(std::move(section));
  }

  const size_t footer_crc_offset = pos + 4;  // After the section count.
  uint32_t section_count = 0, file_crc = 0;
  if (!ReadU32(bytes, &pos, &section_count) ||
      !ReadU32(bytes, &pos, &file_crc)) {
    return Corrupt("truncated footer");
  }
  if (section_count != sections.size()) {
    return Corrupt("section count mismatch");
  }
  if (UnmaskCrc(file_crc) != Crc32c(bytes.data(), footer_crc_offset)) {
    return Corrupt("file checksum mismatch");
  }
  if (pos != bytes.size()) return Corrupt("trailing bytes after footer");
  return sections;
}

std::vector<uint64_t> SnapshotStore::ListGenerations() const {
  std::vector<uint64_t> generations;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint64_t generation = 0;
    if (ParseGenerationFileName(entry.path().filename().string(),
                                &generation)) {
      generations.push_back(generation);
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

Status SnapshotStore::WriteFileAtomic(const std::string& final_name,
                                      const std::string& bytes,
                                      bool is_manifest) {
  const std::string final_path = PathTo(final_name);
  const std::string tmp_path = final_path + kTmpSuffix;
  const int fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create " + tmp_path + ": " +
                            std::strerror(errno));
  }
  // Torn-write site: persist only a prefix, then stop mid-protocol —
  // exactly the state a power cut during write() leaves behind.
  if (!is_manifest && OPINEDB_FAULT_HIT("storage.short_write")) {
    WriteAll(fd, bytes.data(), bytes.size() / 2);
    ::close(fd);
    return Status::Internal("injected fault at storage.short_write");
  }
  if (!WriteAll(fd, bytes.data(), bytes.size())) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("write failed: " + tmp_path + ": " + err);
  }
  if (!is_manifest && OPINEDB_FAULT_HIT("storage.fsync")) {
    ::close(fd);
    return Status::Internal("injected fault at storage.fsync");
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("fsync failed: " + tmp_path + ": " + err);
  }
  ::close(fd);
  // Media-fault site: the file is durable but one bit rots before the
  // rename. The commit succeeds; only recovery's checksums notice.
  if (!is_manifest && OPINEDB_FAULT_HIT("storage.bitflip")) {
    FlipOneBit(tmp_path);
  }
  // Crash sites: stop before the rename that would make the write
  // visible. The tmp file remains; recovery ignores it.
  if (!is_manifest && OPINEDB_FAULT_HIT("storage.rename_data")) {
    return Status::Internal("injected fault at storage.rename_data");
  }
  if (is_manifest && OPINEDB_FAULT_HIT("storage.rename_manifest")) {
    return Status::Internal("injected fault at storage.rename_manifest");
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Internal("rename failed: " + tmp_path + " -> " +
                            final_path + ": " + std::strerror(errno));
  }
  // Make the rename itself durable before anything depends on it.
  SyncDir(dir_);
  return Status::OK();
}

Result<uint64_t> SnapshotStore::Commit(
    const std::vector<SnapshotSection>& sections) {
  for (const auto& section : sections) {
    if (section.name.empty() || section.name.size() > kMaxSectionName) {
      return Status::InvalidArgument("bad section name");
    }
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot directory " + dir_ +
                            ": " + ec.message());
  }
  // Sweep droppings of crashed savers (best effort; recovery ignores
  // them anyway, this just keeps the directory tidy).
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == kTmpSuffix) {
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
    }
  }

  // Next generation: one past everything on disk, whether or not it is
  // valid — a corrupt gen-7 must not be overwritten by a new gen-7.
  uint64_t next = 1;
  const std::vector<uint64_t> existing = ListGenerations();
  if (!existing.empty()) next = existing.back() + 1;

  const std::string bytes = EncodeContainer(sections);
  Status data = WriteFileAtomic(GenerationFileName(next), bytes, false);
  if (!data.ok()) {
    OPINEDB_METRIC_COUNT("storage.snapshot.commit_failures", 1);
    return data;
  }

  std::vector<SnapshotSection> manifest(1);
  manifest[0].name = kManifestSection;
  manifest[0].payload = std::to_string(next);
  Status pointer =
      WriteFileAtomic(kManifestName, EncodeContainer(manifest), true);
  if (!pointer.ok()) {
    // The data generation is durable and self-validating; recovery will
    // serve it even though the manifest still names the predecessor.
    OPINEDB_METRIC_COUNT("storage.snapshot.commit_failures", 1);
    return pointer;
  }
  OPINEDB_METRIC_COUNT("storage.snapshot.commits", 1);
  OPINEDB_METRIC_COUNT("storage.snapshot.bytes_written", bytes.size());
  return next;
}

Result<LoadedSnapshot> SnapshotStore::Recover() const {
  std::vector<uint64_t> generations = ListGenerations();
  if (generations.empty()) {
    return Status::NotFound("no snapshot generations in " + dir_);
  }
  // The MANIFEST, when it verifies, is a hint for observability only —
  // the directory scan below is what decides. A valid generation newer
  // than the manifest (crash between data and manifest rename) is
  // served; a manifest pointing at a corrupt generation falls through.
  uint64_t manifest_generation = 0;
  {
    auto bytes = ReadFileBytes(PathTo(kManifestName));
    if (bytes.ok()) {
      auto sections = DecodeContainer(*bytes);
      if (sections.ok() && sections->size() == 1 &&
          (*sections)[0].name == kManifestSection) {
        manifest_generation = std::strtoull(
            (*sections)[0].payload.c_str(), nullptr, 10);
      }
    }
  }
  std::string newest_error;
  size_t skipped = 0;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string path = PathTo(GenerationFileName(*it));
    auto bytes = ReadFileBytes(path);
    if (!bytes.ok()) {
      if (newest_error.empty()) newest_error = bytes.status().ToString();
      ++skipped;
      continue;
    }
    auto sections = DecodeContainer(*bytes);
    if (!sections.ok()) {
      if (newest_error.empty()) {
        newest_error = path + ": " + sections.status().ToString();
      }
      ++skipped;
      OPINEDB_METRIC_COUNT("storage.snapshot.generations_skipped", 1);
      continue;
    }
    LoadedSnapshot snapshot;
    snapshot.generation = *it;
    snapshot.sections = std::move(*sections);
    snapshot.skipped_generations = skipped;
    snapshot.manifest_generation = manifest_generation;
    if (skipped > 0) {
      OPINEDB_METRIC_COUNT("storage.snapshot.recovered_fallback", 1);
    }
    return snapshot;
  }
  return Status::DataLoss(
      "all " + std::to_string(generations.size()) +
      " snapshot generation(s) in " + dir_ +
      " failed verification; newest failure: " + newest_error);
}

Status SnapshotStore::GarbageCollect(size_t keep) {
  return GarbageCollect(keep, nullptr);
}

Status SnapshotStore::GarbageCollect(size_t keep,
                                     const GenerationPins* pins) {
  std::vector<uint64_t> generations = ListGenerations();
  if (generations.size() <= keep) return Status::OK();
  // Never delete the newest generation that actually verifies — it is
  // what Recover() would serve. Without this, GarbageCollect(0) deleted
  // every generation including the served one, and a small `keep` could
  // retain only corrupt newer files while deleting the last good one.
  uint64_t served = 0;
  bool have_served = false;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    auto bytes = ReadFileBytes(PathTo(GenerationFileName(*it)));
    if (bytes.ok() && DecodeContainer(*bytes).ok()) {
      served = *it;
      have_served = true;
      break;
    }
  }
  // A WAL segment named wal-N.log means "gen-N plus these records" is a
  // recoverable state (crash recovery and a catching-up follower both
  // rebuild from it); deleting gen-N would orphan the segment.
  std::vector<uint64_t> wal_bases;
  {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      uint64_t base = 0;
      if (ParseWalFileName(entry.path().filename().string(), &base)) {
        wal_bases.push_back(base);
      }
    }
  }
  const auto retained = [&](uint64_t generation) {
    if (have_served && generation == served) return true;
    if (pins != nullptr && pins->IsPinned(generation)) return true;
    return std::find(wal_bases.begin(), wal_bases.end(), generation) !=
           wal_bases.end();
  };
  const size_t remove = generations.size() - keep;
  for (size_t i = 0; i < remove; ++i) {
    if (retained(generations[i])) continue;
    std::error_code ec;
    fs::remove(PathTo(GenerationFileName(generations[i])), ec);
    if (ec) {
      return Status::Internal("cannot remove generation " +
                              std::to_string(generations[i]) + ": " +
                              ec.message());
    }
  }
  SyncDir(dir_);
  return Status::OK();
}

Status SnapshotStore::AdoptSnapshot(uint64_t generation,
                                    const std::string& bytes) {
  // Verify BEFORE writing: a partitioned or buggy primary must not be
  // able to plant an unverifiable file that recovery then has to skip.
  auto sections = DecodeContainer(bytes);
  if (!sections.ok()) {
    return Status::DataLoss("adopted snapshot for generation " +
                            std::to_string(generation) +
                            " failed verification: " +
                            sections.status().ToString());
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot directory " + dir_ +
                            ": " + ec.message());
  }
  const std::string name = GenerationFileName(generation);
  auto existing = ReadFileBytes(PathTo(name));
  const bool already_good =
      existing.ok() && DecodeContainer(*existing).ok();
  if (!already_good) {
    Status data = WriteFileAtomic(name, bytes, false);
    if (!data.ok()) return data;
  }
  std::vector<SnapshotSection> manifest(1);
  manifest[0].name = kManifestSection;
  manifest[0].payload = std::to_string(generation);
  Status pointer =
      WriteFileAtomic(kManifestName, EncodeContainer(manifest), true);
  if (!pointer.ok()) return pointer;
  OPINEDB_METRIC_COUNT("storage.snapshot.adoptions", 1);
  return Status::OK();
}

}  // namespace opinedb::storage
