#include "storage/checksum.h"

#include <array>

namespace opinedb::storage {

namespace {

/// Four 256-entry tables for slice-by-4, generated once at startup from
/// the reflected Castagnoli polynomial. Table 0 alone is the classic
/// byte-at-a-time table; tables 1..3 fold four bytes per step.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected.
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Tables& GetTables() {
  static const Tables* tables = new Tables();  // Leaked: process lifetime.
  return *tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tables = GetTables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Byte-at-a-time until nothing remains or we can take 4-byte steps.
  // Bytes are assembled explicitly (no reinterpret_cast loads), so the
  // loop is alignment- and endianness-safe — this decoder runs under
  // ubsan in CI.
  while (n >= 4) {
    const uint32_t word = static_cast<uint32_t>(p[0]) |
                          (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
    crc ^= word;
    crc = tables.t[3][crc & 0xff] ^ tables.t[2][(crc >> 8) & 0xff] ^
          tables.t[1][(crc >> 16) & 0xff] ^ tables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p) & 0xff];
    ++p;
    --n;
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace opinedb::storage
