#include "storage/value.h"

#include <cassert>

namespace opinedb::storage {

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

double Value::AsNumber() const {
  if (type() == ValueType::kInt) return static_cast<double>(AsInt());
  return AsDouble();
}

int Value::Compare(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) {
    if (a == b) return 0;
    return a == ValueType::kNull ? -1 : 1;
  }
  const bool a_num = a == ValueType::kInt || a == ValueType::kDouble;
  const bool b_num = b == ValueType::kInt || b == ValueType::kDouble;
  if (a_num && b_num) {
    const double x = AsNumber();
    const double y = other.AsNumber();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a_num != b_num) return a_num ? -1 : 1;  // Numbers before strings.
  return AsString().compare(other.AsString()) < 0
             ? -1
             : (AsString() == other.AsString() ? 0 : 1);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case ValueType::kString:
      return AsString();
  }
  return "NULL";
}

}  // namespace opinedb::storage
