#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/fault.h"
#include "obs/metrics.h"
#include "storage/checksum.h"

namespace opinedb::storage {

namespace {

constexpr char kWalMagic[8] = {'O', 'P', 'D', 'B', 'W', 'A', 'L', '1'};
constexpr size_t kHeaderSize = kWalHeaderSize;
constexpr size_t kRecordHeader = kWalRecordHeaderSize;
/// Plausibility cap on untrusted record lengths, checked before
/// allocation on top of the remaining-bytes bound.
constexpr uint32_t kMaxRecordLen = 1u << 30;

void AppendU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU64(uint64_t v, std::string* out) {
  AppendU32(static_cast<uint32_t>(v & 0xffffffffu), out);
  AppendU32(static_cast<uint32_t>(v >> 32), out);
}

bool ReadU32(std::string_view bytes, size_t* pos, uint32_t* out) {
  if (bytes.size() - *pos < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data() + *pos);
  *out = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
  *pos += 4;
  return true;
}

bool ReadU64(std::string_view bytes, size_t* pos, uint64_t* out) {
  uint32_t lo = 0, hi = 0;
  if (!ReadU32(bytes, pos, &lo) || !ReadU32(bytes, pos, &hi)) return false;
  *out = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

std::string EncodeHeader(uint64_t base_generation) {
  std::string out;
  out.reserve(kHeaderSize);
  out.append(kWalMagic, sizeof(kWalMagic));
  AppendU64(base_generation, &out);
  AppendU32(MaskCrc(Crc32c(out.data(), out.size())), &out);
  return out;
}

/// Verifies the 20-byte header; returns false on any violation.
bool DecodeHeader(std::string_view bytes, uint64_t* base_generation) {
  if (bytes.size() < kHeaderSize) return false;
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return false;
  }
  size_t pos = sizeof(kWalMagic);
  uint64_t base = 0;
  uint32_t stored_crc = 0;
  if (!ReadU64(bytes, &pos, &base) || !ReadU32(bytes, &pos, &stored_crc)) {
    return false;
  }
  if (UnmaskCrc(stored_crc) != Crc32c(bytes.data(), 16)) return false;
  *base_generation = base;
  return true;
}

bool WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    n -= static_cast<size_t>(written);
  }
  return true;
}

void SyncDirOf(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd =
      ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("read failed: " + path);
  return std::move(buffer).str();
}

}  // namespace

std::string WalFileName(uint64_t base_generation) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "wal-%013llu.log",
                static_cast<unsigned long long>(base_generation));
  return buffer;
}

bool ParseWalFileName(const std::string& name, uint64_t* base_generation) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  uint64_t value = 0;
  const size_t digits_end = name.size() - kSuffix.size();
  if (digits_end == kPrefix.size()) return false;
  for (size_t i = kPrefix.size(); i < digits_end; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(name[i] - '0');
    if (value > UINT64_MAX / 10 ||
        (value == UINT64_MAX / 10 && digit > UINT64_MAX % 10)) {
      return false;  // Overflow.
    }
    value = value * 10 + digit;
  }
  *base_generation = value;
  return true;
}

Result<WalContents> ReadWal(const std::string& path) {
  auto bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::string& bytes = *bytes_or;

  WalContents contents;
  uint64_t base = 0;
  if (!DecodeHeader(bytes, &base)) {
    // A segment whose header does not verify contributes nothing; the
    // whole file is the invalid tail.
    contents.truncated = !bytes.empty();
    return contents;
  }
  contents.base_generation = base;
  const size_t consumed = DecodeWalRecords(
      std::string_view(bytes).substr(kHeaderSize), &contents.records);
  contents.valid_bytes = kHeaderSize + consumed;
  contents.truncated = contents.valid_bytes < bytes.size();
  return contents;
}

size_t DecodeWalRecords(std::string_view bytes,
                        std::vector<std::string>* records) {
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t cursor = pos;
    uint32_t len = 0, stored_crc = 0;
    if (!ReadU32(bytes, &cursor, &len) ||
        !ReadU32(bytes, &cursor, &stored_crc)) {
      break;  // Torn record header.
    }
    if (len > kMaxRecordLen || len > bytes.size() - cursor) break;
    std::string_view payload(bytes.data() + cursor, len);
    if (UnmaskCrc(stored_crc) != Crc32c(payload.data(), payload.size())) {
      break;  // Bit flip or torn payload.
    }
    records->emplace_back(payload);
    pos = cursor + len;
  }
  return pos;
}

void AppendWalRecordFrame(std::string_view payload, std::string* out) {
  AppendU32(static_cast<uint32_t>(payload.size()), out);
  AppendU32(MaskCrc(Crc32c(payload.data(), payload.size())), out);
  out->append(payload);
}

Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::Internal("cannot truncate " + path + ": " +
                            std::strerror(errno));
  }
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  OPINEDB_METRIC_COUNT("storage.wal.truncations", 1);
  return Status::OK();
}

WalWriter::~WalWriter() { Close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(other.fd_), size_(other.size_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.size_ = 0;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WalWriter::MarkBroken() {
  Close();
  OPINEDB_METRIC_COUNT("storage.wal.append_failures", 1);
  OPINEDB_METRIC_GAUGE_SET("storage.wal.broken", 1);
}

Result<WalWriter> WalWriter::Open(const std::string& path,
                                  uint64_t base_generation) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("cannot stat " + path + ": " +
                            std::strerror(errno));
  }

  WalWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  if (st.st_size == 0) {
    const std::string header = EncodeHeader(base_generation);
    if (!WriteAll(fd, header.data(), header.size()) || ::fsync(fd) != 0) {
      const std::string err = std::strerror(errno);
      writer.Close();
      return Status::Internal("cannot initialize " + path + ": " + err);
    }
    SyncDirOf(path);
    writer.size_ = header.size();
  } else {
    // Callers truncate to the verified prefix before opening; trust but
    // verify the header so a mismatched or foreign file is rejected
    // rather than appended to.
    auto bytes = ReadFileBytes(path);
    uint64_t base = 0;
    if (!bytes.ok() || !DecodeHeader(*bytes, &base) ||
        base != base_generation) {
      writer.Close();
      return Status::FailedPrecondition(
          path + " is not a valid WAL segment for generation " +
          std::to_string(base_generation) +
          " (run recovery/truncation before opening)");
    }
    writer.size_ = static_cast<uint64_t>(st.st_size);
  }
  OPINEDB_METRIC_GAUGE_SET("storage.wal.broken", 0);
  return writer;
}

Status WalWriter::Append(std::string_view payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition(
        "wal writer is broken (a previous append failed) or closed");
  }
  if (payload.size() > kMaxRecordLen) {
    return Status::InvalidArgument("wal record too large");
  }
  std::string frame;
  frame.reserve(kRecordHeader + payload.size());
  AppendWalRecordFrame(payload, &frame);

  // Torn-record site: persist half the frame, then stop — the state a
  // power cut mid-append leaves. The writer is broken from here on.
  if (OPINEDB_FAULT_HIT("storage.wal_short_write")) {
    WriteAll(fd_, frame.data(), frame.size() / 2);
    ::fsync(fd_);
    MarkBroken();
    return Status::Internal("injected fault at storage.wal_short_write");
  }
  if (!WriteAll(fd_, frame.data(), frame.size())) {
    const std::string err = std::strerror(errno);
    MarkBroken();
    return Status::Internal("wal write failed: " + path_ + ": " + err);
  }
  // fsync-failure site: the bytes reached the page cache but durability
  // is unknowable. Fail safe: roll the file back to the acknowledged
  // prefix so the durable state never contains unacknowledged records,
  // then break the writer (the PostgreSQL fsync-gate lesson).
  if (OPINEDB_FAULT_HIT("storage.wal_fsync")) {
    ::ftruncate(fd_, static_cast<off_t>(size_));
    MarkBroken();
    return Status::Internal("injected fault at storage.wal_fsync");
  }
  if (::fsync(fd_) != 0) {
    const std::string err = std::strerror(errno);
    ::ftruncate(fd_, static_cast<off_t>(size_));
    MarkBroken();
    return Status::Internal("wal fsync failed: " + path_ + ": " + err);
  }
  size_ += frame.size();
  OPINEDB_METRIC_COUNT("storage.wal.appends", 1);
  OPINEDB_METRIC_COUNT("storage.wal.bytes_written", frame.size());
  return Status::OK();
}

}  // namespace opinedb::storage
