#ifndef OPINEDB_STORAGE_SNAPSHOT_STORE_H_
#define OPINEDB_STORAGE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/pins.h"

namespace opinedb::storage {

/// One named payload inside a snapshot (e.g. "schema", "summaries").
/// Payloads are opaque bytes; the store checksums them, it does not
/// interpret them.
struct SnapshotSection {
  std::string name;
  std::string payload;
};

/// The result of a successful recovery: the newest fully valid
/// generation plus what had to be skipped to find it.
struct LoadedSnapshot {
  uint64_t generation = 0;
  std::vector<SnapshotSection> sections;
  /// Newer generations that existed on disk but failed verification
  /// (torn, truncated, bit-flipped). Zero on a clean open.
  size_t skipped_generations = 0;
  /// What the MANIFEST pointed at (0 when missing or invalid). Purely
  /// informational: after a crash between the data and manifest renames
  /// this lags `generation` by one, which operators can alert on.
  uint64_t manifest_generation = 0;

  /// Payload of the section named `name`, or nullptr if absent.
  const std::string* Find(const std::string& name) const;
};

/// A directory-based, crash-safe snapshot store.
///
/// Layout:
///
///   <dir>/gen-000000000000N.snap   one immutable snapshot per commit
///   <dir>/MANIFEST                 checksummed pointer to the intended
///                                  current generation
///   <dir>/*.tmp                    in-flight writes (ignored by
///                                  recovery, swept by the next commit)
///
/// Every file is a framed container (see docs/PERSISTENCE.md):
/// magic+version header, length-prefixed sections each carrying a
/// CRC32C, and a footer with a whole-file CRC32C. Commit() is strictly
/// atomic: write gen-N.tmp, fsync, rename into place, fsync the
/// directory, then update MANIFEST through the same tmp+rename dance.
/// A crash at any point leaves either the old current generation or the
/// new one — never a half-visible state.
///
/// Recover() trusts nothing: it scans candidate generations newest
/// first (the MANIFEST, when it verifies, only serves as a starting
/// hint), verifies every section checksum and the file checksum, and
/// returns the newest generation that verifies end to end. Torn writes,
/// truncations, bit flips and stray tmp files therefore yield a clean
/// older generation, or a typed error — never UB, a throw, or silently
/// wrong data:
///   - Status::NotFound   the directory holds no snapshot at all
///                        (a fresh store);
///   - Status::DataLoss   snapshots exist but none verifies.
///
/// Thread safety: a SnapshotStore is stateless between calls (every
/// call re-reads the directory); distinct instances over the same
/// directory are safe for concurrent Recover(), but concurrent
/// Commit()s must be serialized externally (OpineDb::SaveDatabase does
/// so with the engine reconfiguration lock).
class SnapshotStore {
 public:
  explicit SnapshotStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Commits `sections` as the next generation (max existing + 1).
  /// Creates the directory if needed. Returns the committed generation
  /// number. On error the store is unchanged up to stray tmp/corrupt
  /// files that the next Commit/Recover tolerates by construction.
  Result<uint64_t> Commit(const std::vector<SnapshotSection>& sections);

  /// Recovers the newest fully valid generation (see class comment).
  Result<LoadedSnapshot> Recover() const;

  /// Generation numbers of every gen-*.snap present (ascending, no
  /// validity check). Empty vector on a missing/empty directory.
  std::vector<uint64_t> ListGenerations() const;

  /// Removes all but the `keep` newest generation files, except that
  /// the newest generation that passes full container verification is
  /// always retained regardless of `keep` — it is what Recover() would
  /// serve, so GarbageCollect(0) tidies droppings without ever causing
  /// data loss. Keeping more than one generation is what makes fallback
  /// possible; keep >= 2 is recommended. Never touches MANIFEST, tmp
  /// files, or WAL segments.
  Status GarbageCollect(size_t keep);

  /// Pin-aware garbage collection (the replication-era overload): same
  /// contract as GarbageCollect(keep), with two extra retention rules —
  /// a generation is never deleted while (a) `pins` marks it pinned (a
  /// follower was promised that snapshot for catch-up) or (b) a WAL
  /// segment in this directory names it as base (wal-N.log means gen-N
  /// plus that segment is a recoverable state; deleting gen-N would
  /// orphan the segment). `pins` may be nullptr (rule (b) still holds).
  Status GarbageCollect(size_t keep, const GenerationPins* pins);

  /// Installs bytes fetched from a replication primary as generation
  /// `generation` — the follower side of snapshot catch-up. The bytes
  /// must verify as a framed container (DecodeContainer) or the call
  /// refuses with the decode error and writes nothing. If gen-N already
  /// exists and verifies, the call is an idempotent no-op; if it exists
  /// but is corrupt, the verified copy replaces it. On success the
  /// MANIFEST is updated to point at `generation` through the same
  /// atomic tmp+rename protocol Commit uses.
  Status AdoptSnapshot(uint64_t generation, const std::string& bytes);

  /// "gen-%013llu.snap" — zero-padded so lexicographic order equals
  /// numeric order in directory listings.
  static std::string GenerationFileName(uint64_t generation);

  /// Parses a generation file name; returns false for anything else
  /// (tmp files, MANIFEST, stray droppings).
  static bool ParseGenerationFileName(const std::string& name,
                                      uint64_t* generation);

  /// Serializes sections into the framed container format (exposed for
  /// tests and the corruption fuzzer; Commit uses it internally).
  static std::string EncodeContainer(
      const std::vector<SnapshotSection>& sections);

  /// Verifies and decodes a framed container. Any violation — bad
  /// magic, unknown version, truncation, section CRC, file CRC,
  /// trailing garbage, implausible lengths — is a clean ParseError /
  /// NotSupported; never a throw or an oversized allocation.
  static Result<std::vector<SnapshotSection>> DecodeContainer(
      std::string_view bytes);

 private:
  Status WriteFileAtomic(const std::string& final_name,
                         const std::string& bytes, bool is_manifest);
  std::string PathTo(const std::string& name) const;

  std::string dir_;
};

}  // namespace opinedb::storage

#endif  // OPINEDB_STORAGE_SNAPSHOT_STORE_H_
