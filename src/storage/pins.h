#ifndef OPINEDB_STORAGE_PINS_H_
#define OPINEDB_STORAGE_PINS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace opinedb::storage {

/// Refcounted registry of snapshot generations that must not be
/// retired. The replication source pins the base generation of every
/// segment a follower is actively pulling; Checkpoint skips deleting
/// pinned WAL segments and SnapshotStore::GarbageCollect retains
/// pinned snapshot files, so a lagging follower can always finish the
/// segment it started and fall back to the snapshot it was promised.
///
/// Pins are advisory and in-process only (they do not survive a
/// restart) — a restarted primary may have GC'd a generation a
/// follower still wants, which the wire protocol handles with the
/// 409 + snapshot-catch-up path, so an expired pin costs one catch-up,
/// never correctness.
///
/// Thread safety: all methods lock an internal mutex; callers hold no
/// lock. Pin/Unpin are cheap (a map touch), safe from request threads.
class GenerationPins {
 public:
  void Pin(uint64_t generation) {
    std::lock_guard<std::mutex> lock(mu_);
    ++refs_[generation];
  }

  void Unpin(uint64_t generation) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = refs_.find(generation);
    if (it == refs_.end()) return;
    if (--it->second == 0) refs_.erase(it);
  }

  bool IsPinned(uint64_t generation) const {
    std::lock_guard<std::mutex> lock(mu_);
    return refs_.count(generation) > 0;
  }

  /// All pinned generations, ascending.
  std::vector<uint64_t> Pinned() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint64_t> out;
    out.reserve(refs_.size());
    for (const auto& [gen, refs] : refs_) out.push_back(gen);
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, uint64_t> refs_;
};

}  // namespace opinedb::storage

#endif  // OPINEDB_STORAGE_PINS_H_
