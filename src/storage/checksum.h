#ifndef OPINEDB_STORAGE_CHECKSUM_H_
#define OPINEDB_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace opinedb::storage {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected). The snapshot
/// container checksums every section payload and the whole file with it:
/// CRC32C detects all single-bit errors, all double-bit errors within
/// its design distance and any burst up to 32 bits — exactly the torn
/// write / bit-rot failure modes the recovery path must catch.
///
/// Software slice-by-4 implementation: no SSE4.2 dependency, ~1 GB/s,
/// far faster than the iostream codecs it protects.
uint32_t Crc32c(const void* data, size_t n);

/// Incremental form: extends `crc` (a value previously returned by
/// Crc32c / Crc32cExtend) over `n` more bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(std::string_view bytes) {
  return Crc32c(bytes.data(), bytes.size());
}

/// Masking (the LevelDB/RocksDB idiom): a file that embeds CRCs of data
/// which itself contains CRCs risks accidental fixed points (a CRC of a
/// buffer containing that same CRC). Stored checksums are masked; verify
/// with UnmaskCrc before comparing.
inline uint32_t MaskCrc(uint32_t crc) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t UnmaskCrc(uint32_t masked) {
  constexpr uint32_t kMaskDelta = 0xa282ead8u;
  const uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace opinedb::storage

#endif  // OPINEDB_STORAGE_CHECKSUM_H_
