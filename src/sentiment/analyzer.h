#ifndef OPINEDB_SENTIMENT_ANALYZER_H_
#define OPINEDB_SENTIMENT_ANALYZER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/tokenizer.h"

namespace opinedb::sentiment {

/// A word -> valence mapping. Valences are in [-1, 1].
class Lexicon {
 public:
  /// Builds the default English opinion lexicon (covers the generic
  /// opinion vocabulary used in hotel/restaurant reviews).
  static Lexicon Default();

  /// Adds or overwrites an entry. `valence` is clamped to [-1, 1].
  void Set(std::string word, double valence);

  /// Returns the valence of `word`, or 0 if absent.
  double valence(std::string_view word) const;

  /// True if `word` has an entry.
  bool Contains(std::string_view word) const;

  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::string, double> entries_;
};

/// Rule-based sentiment analyzer (our substitute for the NLTK analyzer the
/// paper uses). Handles negation ("not clean"), intensifiers
/// ("very clean") and diminishers ("slightly dirty").
class Analyzer {
 public:
  explicit Analyzer(Lexicon lexicon = Lexicon::Default())
      : lexicon_(std::move(lexicon)) {}

  /// Sentiment of a short phrase in [-1, 1]. Returns 0 for neutral or
  /// unknown text.
  double ScorePhrase(std::string_view phrase) const;

  /// Sentiment of pre-tokenized text in [-1, 1].
  double ScoreTokens(const std::vector<std::string>& tokens) const;

  /// Sentiment of a whole document: mean of its sentence scores.
  double ScoreDocument(std::string_view document) const;

  const Lexicon& lexicon() const { return lexicon_; }

 private:
  Lexicon lexicon_;
  text::Tokenizer tokenizer_;
};

/// True if `word` is a negation marker ("not", "no", "never", ...).
bool IsNegation(std::string_view word);

/// Intensity multiplier for `word`: >1 for intensifiers ("very"),
/// <1 for diminishers ("slightly"), 1 otherwise.
double IntensityOf(std::string_view word);

}  // namespace opinedb::sentiment

#endif  // OPINEDB_SENTIMENT_ANALYZER_H_
