#include "sentiment/analyzer.h"

#include <algorithm>
#include <cmath>

namespace opinedb::sentiment {

namespace {

struct Entry {
  const char* word;
  double valence;
};

// The default lexicon. Valences follow the usual opinion-lexicon
// convention: strong words near +/-1, hedged words near +/-0.3.
constexpr Entry kDefaultLexicon[] = {
    // Cleanliness.
    {"clean", 0.7},        {"spotless", 1.0},     {"immaculate", 1.0},
    {"spotlessly", 0.9},   {"tidy", 0.6},         {"pristine", 0.95},
    {"hygienic", 0.6},     {"dirty", -0.7},       {"filthy", -1.0},
    {"dusty", -0.5},       {"stained", -0.6},     {"grimy", -0.8},
    {"smelly", -0.8},      {"moldy", -0.9},       {"sticky", -0.5},
    {"unclean", -0.7},     {"spotty", -0.4},
    // Comfort.
    {"comfortable", 0.7},  {"comfy", 0.7},        {"cozy", 0.6},
    {"soft", 0.4},         {"plush", 0.6},        {"firm", 0.3},
    {"supportive", 0.5},   {"lumpy", -0.6},       {"sagging", -0.6},
    {"worn", -0.5},        {"worn-out", -0.7},    {"uncomfortable", -0.7},
    {"hard", -0.3},        {"creaky", -0.4},
    // Service/staff.
    {"friendly", 0.7},     {"helpful", 0.7},      {"attentive", 0.7},
    {"courteous", 0.6},    {"welcoming", 0.7},    {"professional", 0.6},
    {"kind", 0.6},         {"polite", 0.5},       {"accommodating", 0.6},
    {"rude", -0.8},        {"unhelpful", -0.7},   {"dismissive", -0.6},
    {"indifferent", -0.4}, {"unfriendly", -0.7},  {"incompetent", -0.8},
    {"exceptional", 1.0},  {"impeccable", 0.95},
    // Food.
    {"delicious", 0.9},    {"tasty", 0.7},        {"flavorful", 0.7},
    {"fresh", 0.6},        {"succulent", 0.8},    {"mouthwatering", 0.9},
    {"bland", -0.5},       {"stale", -0.7},       {"greasy", -0.5},
    {"soggy", -0.5},       {"overcooked", -0.6},  {"undercooked", -0.7},
    {"inedible", -1.0},    {"flavorless", -0.6},  {"divine", 0.9},
    // Noise/quietness.
    {"quiet", 0.6},        {"peaceful", 0.8},     {"tranquil", 0.8},
    {"serene", 0.8},       {"silent", 0.5},       {"noisy", -0.7},
    {"loud", -0.6},        {"annoying", -0.7},    {"constant", -0.2},
    {"thin-walled", -0.5},
    // Style/decor.
    {"modern", 0.5},       {"luxurious", 0.9},    {"elegant", 0.8},
    {"stylish", 0.7},      {"chic", 0.7},         {"charming", 0.7},
    {"beautiful", 0.8},    {"stunning", 0.9},     {"gorgeous", 0.9},
    {"dated", -0.5},       {"outdated", -0.6},    {"old-fashioned", -0.3},
    {"shabby", -0.7},      {"drab", -0.5},        {"tired", -0.4},
    {"old", -0.3},         {"extravagant", 0.7},  {"opulent", 0.8},
    // Space.
    {"spacious", 0.7},     {"roomy", 0.6},        {"airy", 0.5},
    {"cramped", -0.7},     {"tiny", -0.5},        {"claustrophobic", -0.8},
    {"small", -0.3},       {"compact", -0.1},     {"generous", 0.5},
    // Value/price.
    {"affordable", 0.5},   {"reasonable", 0.4},   {"bargain", 0.6},
    {"overpriced", -0.7},  {"pricey", -0.4},      {"expensive", -0.3},
    {"cheap", -0.2},       {"value", 0.4},
    // Location.
    {"convenient", 0.6},   {"central", 0.5},      {"walkable", 0.5},
    {"remote", -0.3},      {"sketchy", -0.7},     {"unsafe", -0.8},
    {"safe", 0.6},         {"scenic", 0.7},
    // Ambience.
    {"romantic", 0.8},     {"lively", 0.6},       {"vibrant", 0.6},
    {"intimate", 0.6},     {"relaxing", 0.7},     {"inviting", 0.6},
    {"dull", -0.5},        {"boring", -0.5},      {"sterile", -0.4},
    {"crowded", -0.5},     {"packed", -0.3},      {"buzzing", 0.4},
    // Generic.
    {"great", 0.8},        {"good", 0.6},         {"excellent", 0.9},
    {"amazing", 0.9},      {"wonderful", 0.9},    {"fantastic", 0.9},
    {"awesome", 0.8},      {"superb", 0.9},       {"perfect", 1.0},
    {"outstanding", 0.9},  {"lovely", 0.7},       {"nice", 0.5},
    {"pleasant", 0.5},     {"fine", 0.3},         {"decent", 0.3},
    {"ok", 0.1},           {"okay", 0.1},         {"average", 0.0},
    {"standard", 0.0},     {"adequate", 0.1},     {"acceptable", 0.1},
    {"mediocre", -0.3},    {"disappointing", -0.6}, {"poor", -0.6},
    {"bad", -0.6},         {"terrible", -0.9},    {"awful", -0.9},
    {"horrible", -0.9},    {"dreadful", -0.9},    {"atrocious", -1.0},
    {"disgusting", -0.9},  {"gross", -0.8},       {"broken", -0.6},
    {"faulty", -0.6},      {"unacceptable", -0.8}, {"miserable", -0.8},
    {"appalling", -0.9},   {"abysmal", -1.0},     {"subpar", -0.5},
    {"underwhelming", -0.4}, {"memorable", 0.6},  {"delightful", 0.8},
    {"flawless", 0.95},    {"five-star", 0.9},    {"world-class", 0.9},
    // Speed / waiting.
    {"fast", 0.5},         {"quick", 0.5},        {"prompt", 0.6},
    {"speedy", 0.5},       {"slow", -0.5},        {"endless", -0.7},
    {"sluggish", -0.5},    {"instant", 0.5},
    // Product/build vocabulary (laptop domain).
    {"responsive", 0.6},   {"mushy", -0.5},       {"blazing", 0.8},
    {"solid", 0.6},        {"premium", 0.7},      {"sturdy", 0.6},
    {"flimsy", -0.6},
};

struct ModifierEntry {
  const char* word;
  double factor;
};

constexpr ModifierEntry kModifiers[] = {
    {"very", 1.5},       {"really", 1.5},   {"extremely", 1.8},
    {"incredibly", 1.8}, {"absolutely", 1.7}, {"super", 1.5},
    {"so", 1.3},         {"truly", 1.4},    {"exceptionally", 1.8},
    {"remarkably", 1.5}, {"totally", 1.4},  {"utterly", 1.6},
    {"quite", 1.2},      {"pretty", 1.1},   {"fairly", 0.9},
    {"somewhat", 0.7},   {"slightly", 0.5}, {"a-bit", 0.6},
    {"bit", 0.6},        {"kinda", 0.7},    {"rather", 1.1},
    {"mildly", 0.6},     {"barely", 0.4},   {"wee", 0.6},
};

constexpr const char* kNegations[] = {
    "not", "no", "never", "hardly", "isn't",  "wasn't", "aren't",
    "weren't", "don't", "didn't", "doesn't", "cannot", "can't",
    "won't", "nothing", "neither", "nor", "without",
};

}  // namespace

Lexicon Lexicon::Default() {
  Lexicon lex;
  for (const auto& entry : kDefaultLexicon) {
    lex.Set(entry.word, entry.valence);
  }
  return lex;
}

void Lexicon::Set(std::string word, double valence) {
  entries_[std::move(word)] = std::clamp(valence, -1.0, 1.0);
}

double Lexicon::valence(std::string_view word) const {
  auto it = entries_.find(std::string(word));
  return it == entries_.end() ? 0.0 : it->second;
}

bool Lexicon::Contains(std::string_view word) const {
  return entries_.count(std::string(word)) > 0;
}

bool IsNegation(std::string_view word) {
  for (const char* neg : kNegations) {
    if (word == neg) return true;
  }
  return false;
}

double IntensityOf(std::string_view word) {
  for (const auto& mod : kModifiers) {
    if (word == mod.word) return mod.factor;
  }
  return 1.0;
}

double Analyzer::ScoreTokens(const std::vector<std::string>& tokens) const {
  double sum = 0.0;
  int scored = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    double v = lexicon_.valence(tokens[i]);
    if (v == 0.0) continue;
    // Look back up to 3 tokens for negations and intensity modifiers.
    double intensity = 1.0;
    bool negated = false;
    size_t window_start = i >= 3 ? i - 3 : 0;
    for (size_t j = window_start; j < i; ++j) {
      if (IsNegation(tokens[j])) negated = !negated;
      intensity *= IntensityOf(tokens[j]);
    }
    v *= intensity;
    if (negated) v = -0.75 * v;  // Negation flips and dampens.
    sum += std::clamp(v, -1.0, 1.0);
    ++scored;
  }
  if (scored == 0) return 0.0;
  return std::clamp(sum / scored, -1.0, 1.0);
}

double Analyzer::ScorePhrase(std::string_view phrase) const {
  return ScoreTokens(tokenizer_.Tokenize(phrase));
}

double Analyzer::ScoreDocument(std::string_view document) const {
  auto sentences = text::Tokenizer::SplitSentences(document);
  if (sentences.empty()) return 0.0;
  double sum = 0.0;
  int counted = 0;
  for (const auto& sentence : sentences) {
    double s = ScorePhrase(sentence);
    sum += s;
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / counted;
}

}  // namespace opinedb::sentiment
