#include "ml/perceptron_tagger.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace opinedb::ml {

double PerceptronTagger::EmissionScore(
    int tag, const std::vector<std::string>& features, bool averaged) const {
  double score = 0.0;
  const auto& table = emission_[tag];
  for (const auto& feature : features) {
    auto it = table.find(feature);
    if (it != table.end()) {
      score += averaged ? it->second.averaged : it->second.weight;
    }
  }
  return score;
}

std::vector<int> PerceptronTagger::Decode(
    const std::vector<std::vector<std::string>>& features,
    bool averaged) const {
  const size_t n = features.size();
  std::vector<int> best_path;
  if (n == 0) return best_path;
  const int start = num_tags_;  // Virtual start tag.
  std::vector<std::vector<double>> score(n,
                                         std::vector<double>(num_tags_, 0.0));
  std::vector<std::vector<int>> back(n, std::vector<int>(num_tags_, 0));
  for (int t = 0; t < num_tags_; ++t) {
    const auto& entry = transition_[start][t];
    score[0][t] = (averaged ? entry.averaged : entry.weight) +
                  EmissionScore(t, features[0], averaged);
  }
  for (size_t i = 1; i < n; ++i) {
    for (int t = 0; t < num_tags_; ++t) {
      const double emit = EmissionScore(t, features[i], averaged);
      double best = -std::numeric_limits<double>::infinity();
      int best_prev = 0;
      for (int p = 0; p < num_tags_; ++p) {
        const auto& entry = transition_[p][t];
        const double s =
            score[i - 1][p] + (averaged ? entry.averaged : entry.weight);
        if (s > best) {
          best = s;
          best_prev = p;
        }
      }
      score[i][t] = best + emit;
      back[i][t] = best_prev;
    }
  }
  int best_last = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (int t = 0; t < num_tags_; ++t) {
    if (score[n - 1][t] > best_score) {
      best_score = score[n - 1][t];
      best_last = t;
    }
  }
  best_path.assign(n, 0);
  best_path[n - 1] = best_last;
  for (size_t i = n - 1; i > 0; --i) {
    best_path[i - 1] = back[i][best_path[i]];
  }
  return best_path;
}

void PerceptronTagger::UpdateFeature(int tag, const std::string& feature,
                                     double delta, int64_t timestamp) {
  WeightEntry& entry = emission_[tag][feature];
  entry.total += entry.weight * static_cast<double>(timestamp - entry.stamp);
  entry.stamp = timestamp;
  entry.weight += delta;
}

void PerceptronTagger::UpdateTransition(int prev, int cur, double delta,
                                        int64_t timestamp) {
  WeightEntry& entry = transition_[prev][cur];
  entry.total += entry.weight * static_cast<double>(timestamp - entry.stamp);
  entry.stamp = timestamp;
  entry.weight += delta;
}

void PerceptronTagger::FinalizeAverage(int64_t timestamp) {
  auto finalize = [timestamp](WeightEntry* entry) {
    entry->total +=
        entry->weight * static_cast<double>(timestamp - entry->stamp);
    entry->averaged =
        timestamp > 0 ? entry->total / static_cast<double>(timestamp) : 0.0;
  };
  for (auto& table : emission_) {
    for (auto& [feature, entry] : table) finalize(&entry);
  }
  for (auto& row : transition_) {
    for (auto& entry : row) finalize(&entry);
  }
  finalized_ = true;
}

PerceptronTagger PerceptronTagger::Train(
    const std::vector<TaggedSequence>& data, int num_tags,
    const Options& options) {
  PerceptronTagger tagger;
  tagger.num_tags_ = num_tags;
  tagger.emission_.resize(num_tags);
  tagger.transition_.assign(num_tags + 1,
                            std::vector<WeightEntry>(num_tags));
  Rng rng(options.seed);
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  int64_t timestamp = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const TaggedSequence& seq = data[idx];
      assert(seq.features.size() == seq.tags.size());
      if (seq.features.empty()) continue;
      ++timestamp;
      std::vector<int> predicted = tagger.Decode(seq.features, false);
      if (predicted == seq.tags) continue;
      // Structured update: +1 along the gold path, -1 along the predicted
      // path (emissions and transitions).
      const int start = num_tags;
      for (size_t i = 0; i < seq.features.size(); ++i) {
        if (predicted[i] != seq.tags[i]) {
          for (const auto& feature : seq.features[i]) {
            tagger.UpdateFeature(seq.tags[i], feature, +1.0, timestamp);
            tagger.UpdateFeature(predicted[i], feature, -1.0, timestamp);
          }
        }
        const int gold_prev = i == 0 ? start : seq.tags[i - 1];
        const int pred_prev = i == 0 ? start : predicted[i - 1];
        if (gold_prev != pred_prev || seq.tags[i] != predicted[i]) {
          tagger.UpdateTransition(gold_prev, seq.tags[i], +1.0, timestamp);
          tagger.UpdateTransition(pred_prev, predicted[i], -1.0, timestamp);
        }
      }
    }
  }
  tagger.FinalizeAverage(timestamp);
  return tagger;
}

std::vector<int> PerceptronTagger::Predict(
    const std::vector<std::vector<std::string>>& features) const {
  return Decode(features, finalized_);
}

double PerceptronTagger::TokenAccuracy(
    const std::vector<TaggedSequence>& data) const {
  int64_t correct = 0;
  int64_t total = 0;
  for (const auto& seq : data) {
    auto predicted = Predict(seq.features);
    for (size_t i = 0; i < seq.tags.size(); ++i) {
      if (predicted[i] == seq.tags[i]) ++correct;
      ++total;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

}  // namespace opinedb::ml
