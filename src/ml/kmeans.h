#ifndef OPINEDB_ML_KMEANS_H_
#define OPINEDB_ML_KMEANS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "embedding/vector_ops.h"

namespace opinedb::ml {

/// k-means clustering result.
struct KMeansResult {
  /// Cluster centroids (k of them).
  std::vector<embedding::Vec> centroids;
  /// Cluster assignment per input point.
  std::vector<int32_t> assignment;
  /// Sum of squared distances to assigned centroids.
  double inertia = 0.0;
  /// For each cluster, the index of the input point closest to its
  /// centroid (the "medoid"); used to pick representative marker phrases.
  std::vector<int32_t> medoids;
};

/// k-means options.
struct KMeansOptions {
  int max_iterations = 50;
  uint64_t seed = 42;
};

/// Lloyd's algorithm with k-means++ initialization. Used for inducing
/// categorical marker summaries (Section 4.2.1): cluster the linguistic
/// domain's phrase embeddings and take the phrases nearest each centroid
/// as the suggested markers.
KMeansResult KMeans(const std::vector<embedding::Vec>& points, size_t k,
                    const KMeansOptions& options = KMeansOptions());

}  // namespace opinedb::ml

#endif  // OPINEDB_ML_KMEANS_H_
