#include "ml/naive_bayes.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace opinedb::ml {

NaiveBayesClassifier NaiveBayesClassifier::Train(
    const std::vector<TextExample>& examples, int num_labels, double alpha) {
  NaiveBayesClassifier model;
  model.num_labels_ = num_labels;
  model.alpha_ = alpha;
  model.log_prior_.assign(num_labels, 0.0);
  model.label_token_totals_.assign(num_labels, 0.0);

  std::vector<double> label_counts(num_labels, 0.0);
  for (const auto& ex : examples) {
    assert(ex.label >= 0 && ex.label < num_labels);
    label_counts[ex.label] += 1.0;
    for (const auto& token : ex.tokens) {
      auto& counts = model.token_counts_[token];
      if (counts.empty()) counts.assign(num_labels, 0.0);
      counts[ex.label] += 1.0;
      model.label_token_totals_[ex.label] += 1.0;
    }
  }
  model.vocab_size_ = model.token_counts_.size();
  const double total =
      std::max<double>(1.0, static_cast<double>(examples.size()));
  for (int c = 0; c < num_labels; ++c) {
    model.log_prior_[c] = std::log((label_counts[c] + 1.0) /
                                   (total + num_labels));
  }
  return model;
}

std::vector<double> NaiveBayesClassifier::Scores(
    const std::vector<std::string>& tokens) const {
  std::vector<double> scores = log_prior_;
  const double v = static_cast<double>(std::max<size_t>(1, vocab_size_));
  for (const auto& token : tokens) {
    auto it = token_counts_.find(token);
    for (int c = 0; c < num_labels_; ++c) {
      const double count = it == token_counts_.end() ? 0.0 : it->second[c];
      scores[c] += std::log((count + alpha_) /
                            (label_token_totals_[c] + alpha_ * v));
    }
  }
  return scores;
}

int NaiveBayesClassifier::Classify(
    const std::vector<std::string>& tokens) const {
  return ClassifyWithMargin(tokens).first;
}

std::pair<int, double> NaiveBayesClassifier::ClassifyWithMargin(
    const std::vector<std::string>& tokens) const {
  auto scores = Scores(tokens);
  int best = 0;
  for (int c = 1; c < num_labels_; ++c) {
    if (scores[c] > scores[best]) best = c;
  }
  double runner_up = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < num_labels_; ++c) {
    if (c != best && scores[c] > runner_up) runner_up = scores[c];
  }
  const double margin =
      num_labels_ < 2 ? 0.0 : scores[best] - runner_up;
  return {best, margin};
}

double NaiveBayesClassifier::Accuracy(
    const std::vector<TextExample>& examples) const {
  if (examples.empty()) return 0.0;
  int correct = 0;
  for (const auto& ex : examples) {
    if (Classify(ex.tokens) == ex.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

}  // namespace opinedb::ml
