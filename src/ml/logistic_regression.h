#ifndef OPINEDB_ML_LOGISTIC_REGRESSION_H_
#define OPINEDB_ML_LOGISTIC_REGRESSION_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace opinedb::ml {

/// One binary-labeled training example with a dense feature vector.
struct Example {
  std::vector<double> features;
  int label = 0;  // 0 or 1.
};

/// Logistic-regression training options.
struct LogRegOptions {
  int epochs = 80;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  uint64_t seed = 42;
  /// Standardize features to zero mean / unit variance before training
  /// (stored so inference applies the same transform).
  bool standardize = true;
};

/// Binary logistic regression trained with mini-SGD.
///
/// This is the membership-function model of Section 3.3: the probability
/// output P(y=1|x) is used directly as a degree of truth in [0, 1].
class LogisticRegression {
 public:
  /// Trains on `examples` (all feature vectors of equal length).
  static LogisticRegression Train(const std::vector<Example>& examples,
                                  const LogRegOptions& options);

  /// P(y = 1 | features) in [0, 1].
  double Predict(const std::vector<double>& features) const;

  /// Allocation-free variant over a raw feature buffer, bit-identical to
  /// the vector overload (same accumulation order). The columnar scoring
  /// sweep calls this once per (entity, atom), so it must not touch the
  /// heap.
  double Predict(const double* features, size_t n) const;

  /// Hard decision at 0.5.
  int Classify(const std::vector<double>& features) const {
    return Predict(features) >= 0.5 ? 1 : 0;
  }

  /// Fraction of `examples` classified correctly.
  double Accuracy(const std::vector<Example>& examples) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  size_t dim() const { return weights_.size(); }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
  // Standardization parameters (identity when standardize was false).
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace opinedb::ml

#endif  // OPINEDB_ML_LOGISTIC_REGRESSION_H_
