#ifndef OPINEDB_ML_NAIVE_BAYES_H_
#define OPINEDB_ML_NAIVE_BAYES_H_

#include <string>
#include <utility>
#include <unordered_map>
#include <vector>

namespace opinedb::ml {

/// A labeled text example: bag of tokens + class label id.
struct TextExample {
  std::vector<std::string> tokens;
  int label = 0;
};

/// Multinomial naive Bayes text classifier with Laplace smoothing.
///
/// This is the attribute classifier of Section 4.2: it maps extracted
/// (aspect, opinion) pairs — encoded as token bags — to subjective
/// attributes, trained on seed-expanded weak supervision.
class NaiveBayesClassifier {
 public:
  /// Trains on `examples` covering labels 0..num_labels-1.
  static NaiveBayesClassifier Train(const std::vector<TextExample>& examples,
                                    int num_labels, double alpha = 1.0);

  /// Most likely label for a token bag.
  int Classify(const std::vector<std::string>& tokens) const;

  /// Most likely label plus the log-probability margin over the
  /// runner-up (0 when fewer than two labels). Small margins mean the
  /// token bag carries no real evidence.
  std::pair<int, double> ClassifyWithMargin(
      const std::vector<std::string>& tokens) const;

  /// Per-label log-posterior (unnormalized).
  std::vector<double> Scores(const std::vector<std::string>& tokens) const;

  /// Fraction of `examples` classified correctly.
  double Accuracy(const std::vector<TextExample>& examples) const;

  int num_labels() const { return num_labels_; }

 private:
  int num_labels_ = 0;
  double alpha_ = 1.0;
  std::vector<double> log_prior_;
  /// token -> per-label counts.
  std::unordered_map<std::string, std::vector<double>> token_counts_;
  std::vector<double> label_token_totals_;
  size_t vocab_size_ = 0;
};

}  // namespace opinedb::ml

#endif  // OPINEDB_ML_NAIVE_BAYES_H_
