#include "ml/logistic_regression.h"

#include <cassert>
#include <cmath>

namespace opinedb::ml {

namespace {

double Sigmoid(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

LogisticRegression LogisticRegression::Train(
    const std::vector<Example>& examples, const LogRegOptions& options) {
  LogisticRegression model;
  if (examples.empty()) return model;
  const size_t dim = examples[0].features.size();
  model.weights_.assign(dim, 0.0);
  model.mean_.assign(dim, 0.0);
  model.inv_std_.assign(dim, 1.0);

  if (options.standardize) {
    for (const auto& ex : examples) {
      assert(ex.features.size() == dim);
      for (size_t j = 0; j < dim; ++j) model.mean_[j] += ex.features[j];
    }
    for (size_t j = 0; j < dim; ++j) {
      model.mean_[j] /= static_cast<double>(examples.size());
    }
    std::vector<double> var(dim, 0.0);
    for (const auto& ex : examples) {
      for (size_t j = 0; j < dim; ++j) {
        const double d = ex.features[j] - model.mean_[j];
        var[j] += d * d;
      }
    }
    for (size_t j = 0; j < dim; ++j) {
      const double sd =
          std::sqrt(var[j] / static_cast<double>(examples.size()));
      model.inv_std_[j] = sd > 1e-9 ? 1.0 / sd : 1.0;
    }
  }

  Rng rng(options.seed);
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<double> x(dim);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr = options.learning_rate /
                      (1.0 + 0.05 * static_cast<double>(epoch));
    for (size_t idx : order) {
      const Example& ex = examples[idx];
      for (size_t j = 0; j < dim; ++j) {
        x[j] = (ex.features[j] - model.mean_[j]) * model.inv_std_[j];
      }
      double z = model.bias_;
      for (size_t j = 0; j < dim; ++j) z += model.weights_[j] * x[j];
      const double error = static_cast<double>(ex.label) - Sigmoid(z);
      for (size_t j = 0; j < dim; ++j) {
        model.weights_[j] +=
            lr * (error * x[j] - options.l2 * model.weights_[j]);
      }
      model.bias_ += lr * error;
    }
  }
  return model;
}

double LogisticRegression::Predict(
    const std::vector<double>& features) const {
  return Predict(features.data(), features.size());
}

double LogisticRegression::Predict(const double* features, size_t n) const {
  if (weights_.empty()) return 0.5;
  assert(n == weights_.size());
  (void)n;
  double z = bias_;
  for (size_t j = 0; j < weights_.size(); ++j) {
    z += weights_[j] * (features[j] - mean_[j]) * inv_std_[j];
  }
  return Sigmoid(z);
}

double LogisticRegression::Accuracy(
    const std::vector<Example>& examples) const {
  if (examples.empty()) return 0.0;
  int correct = 0;
  for (const auto& ex : examples) {
    if (Classify(ex.features) == ex.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

}  // namespace opinedb::ml
