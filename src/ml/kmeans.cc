#include "ml/kmeans.h"

#include <cassert>
#include <limits>

namespace opinedb::ml {

using embedding::SquaredDistance;
using embedding::Vec;

KMeansResult KMeans(const std::vector<Vec>& points, size_t k,
                    const KMeansOptions& options) {
  KMeansResult result;
  if (points.empty() || k == 0) return result;
  k = std::min(k, points.size());
  const size_t dim = points[0].size();
  Rng rng(options.seed);

  // k-means++ seeding.
  result.centroids.push_back(points[rng.Below(points.size())]);
  std::vector<double> min_dist(points.size(),
                               std::numeric_limits<double>::infinity());
  while (result.centroids.size() < k) {
    for (size_t i = 0; i < points.size(); ++i) {
      min_dist[i] = std::min(
          min_dist[i], SquaredDistance(points[i], result.centroids.back()));
    }
    double total = 0.0;
    for (double d : min_dist) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids.
      result.centroids.push_back(points[rng.Below(points.size())]);
      continue;
    }
    double target = rng.Uniform() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      target -= min_dist[i];
      if (target < 0.0) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }

  result.assignment.assign(points.size(), 0);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    bool changed = false;
    // Assignment step.
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      int32_t best_c = 0;
      for (size_t c = 0; c < result.centroids.size(); ++c) {
        const double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int32_t>(c);
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    // Update step.
    std::vector<Vec> sums(result.centroids.size(), embedding::Zeros(dim));
    std::vector<int> counts(result.centroids.size(), 0);
    for (size_t i = 0; i < points.size(); ++i) {
      embedding::AxPy(1.0, points[i], &sums[result.assignment[i]]);
      ++counts[result.assignment[i]];
    }
    for (size_t c = 0; c < result.centroids.size(); ++c) {
      if (counts[c] > 0) {
        embedding::Scale(1.0 / counts[c], &sums[c]);
        result.centroids[c] = sums[c];
      }
      // Empty clusters keep their previous centroid.
    }
    if (!changed && iteration > 0) break;
  }

  // Final inertia + medoids.
  result.inertia = 0.0;
  result.medoids.assign(result.centroids.size(), -1);
  std::vector<double> medoid_dist(result.centroids.size(),
                                  std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < points.size(); ++i) {
    const int32_t c = result.assignment[i];
    const double d = SquaredDistance(points[i], result.centroids[c]);
    result.inertia += d;
    if (d < medoid_dist[c]) {
      medoid_dist[c] = d;
      result.medoids[c] = static_cast<int32_t>(i);
    }
  }
  return result;
}

}  // namespace opinedb::ml
