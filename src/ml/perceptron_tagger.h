#ifndef OPINEDB_ML_PERCEPTRON_TAGGER_H_
#define OPINEDB_ML_PERCEPTRON_TAGGER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace opinedb::ml {

/// One training sequence: per-position feature bundles plus gold tags.
struct TaggedSequence {
  /// features[i] are the (string) emission features active at position i.
  std::vector<std::vector<std::string>> features;
  /// Gold tag id per position, in [0, num_tags).
  std::vector<int> tags;
};

/// Averaged structured perceptron sequence tagger with first-order
/// transitions, decoded with Viterbi.
///
/// This is our CPU-scale substitute for the BERT+BiLSTM+CRF tagger of
/// Section 4.1: same task shape (position-wise tag prediction with
/// transition structure), same training regime (small labeled sets),
/// trained in milliseconds instead of GPU-hours.
class PerceptronTagger {
 public:
  /// Training options.
  struct Options {
    int epochs = 8;
    uint64_t seed = 42;
  };

  /// Trains on `data` with tags in [0, num_tags).
  static PerceptronTagger Train(const std::vector<TaggedSequence>& data,
                                int num_tags, const Options& options);

  /// Viterbi-decodes the most likely tag sequence.
  std::vector<int> Predict(
      const std::vector<std::vector<std::string>>& features) const;

  /// Token-level accuracy over `data`.
  double TokenAccuracy(const std::vector<TaggedSequence>& data) const;

  int num_tags() const { return num_tags_; }

 private:
  double EmissionScore(int tag, const std::vector<std::string>& features,
                       bool averaged) const;

  std::vector<int> Decode(
      const std::vector<std::vector<std::string>>& features,
      bool averaged) const;

  void UpdateFeature(int tag, const std::string& feature, double delta,
                     int64_t timestamp);
  void UpdateTransition(int prev, int cur, double delta, int64_t timestamp);
  void FinalizeAverage(int64_t timestamp);

  struct WeightEntry {
    double weight = 0.0;
    double total = 0.0;     // Accumulated weight * steps (averaging trick).
    int64_t stamp = 0;      // Last update timestamp.
    double averaged = 0.0;  // Final averaged weight.
  };

  int num_tags_ = 0;
  /// Per-tag emission weights: feature -> entry.
  std::vector<std::unordered_map<std::string, WeightEntry>> emission_;
  /// Transition weights [prev][cur] (+1 virtual start tag at index
  /// num_tags_).
  std::vector<std::vector<WeightEntry>> transition_;
  bool finalized_ = false;
};

}  // namespace opinedb::ml

#endif  // OPINEDB_ML_PERCEPTRON_TAGGER_H_
