#ifndef OPINEDB_EMBEDDING_KDTREE_H_
#define OPINEDB_EMBEDDING_KDTREE_H_

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "embedding/vector_ops.h"

namespace opinedb::embedding {

/// A k-d tree over dense vectors for exact nearest-neighbour search
/// (Bentley 1975) — the fallback similarity-search structure of the
/// paper's Appendix B indexing scheme.
///
/// Items are identified by the index they were inserted with; the tree is
/// built once via Build() and is immutable afterwards.
class KdTree {
 public:
  /// Builds a tree over `points` (all of equal dimension; may be empty).
  static KdTree Build(std::vector<Vec> points);

  /// Index of the nearest point to `query` by Euclidean distance, or -1
  /// if the tree is empty. `visited` (optional) receives the number of
  /// nodes touched, for benchmarking pruning effectiveness.
  int32_t Nearest(const Vec& query, size_t* visited = nullptr) const;

  /// Indices of the k nearest points, closest first.
  std::vector<int32_t> KNearest(const Vec& query, size_t k) const;

  size_t size() const { return points_.size(); }

 private:
  struct Node {
    int32_t point = -1;     // Index into points_.
    int32_t left = -1;      // Node index.
    int32_t right = -1;     // Node index.
    int16_t axis = 0;
  };

  int32_t BuildRecursive(std::vector<int32_t>* items, size_t lo, size_t hi,
                         int depth);

  void Search(int32_t node, const Vec& query, size_t k,
              std::vector<std::pair<double, int32_t>>* heap,
              size_t* visited) const;

  std::vector<Vec> points_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t dim_ = 0;
};

}  // namespace opinedb::embedding

#endif  // OPINEDB_EMBEDDING_KDTREE_H_
