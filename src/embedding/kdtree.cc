#include "embedding/kdtree.h"

#include <algorithm>
#include <cassert>

namespace opinedb::embedding {

KdTree KdTree::Build(std::vector<Vec> points) {
  KdTree tree;
  tree.points_ = std::move(points);
  tree.dim_ = tree.points_.empty() ? 0 : tree.points_[0].size();
  if (tree.points_.empty()) return tree;
  std::vector<int32_t> items(tree.points_.size());
  for (size_t i = 0; i < items.size(); ++i) {
    items[i] = static_cast<int32_t>(i);
  }
  tree.nodes_.reserve(tree.points_.size());
  tree.root_ = tree.BuildRecursive(&items, 0, items.size(), 0);
  return tree;
}

int32_t KdTree::BuildRecursive(std::vector<int32_t>* items, size_t lo,
                               size_t hi, int depth) {
  if (lo >= hi) return -1;
  const int16_t axis = static_cast<int16_t>(depth % dim_);
  const size_t mid = lo + (hi - lo) / 2;
  std::nth_element(items->begin() + lo, items->begin() + mid,
                   items->begin() + hi,
                   [&](int32_t a, int32_t b) {
                     return points_[a][axis] < points_[b][axis];
                   });
  Node node;
  node.point = (*items)[mid];
  node.axis = axis;
  const int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  const int32_t left = BuildRecursive(items, lo, mid, depth + 1);
  const int32_t right = BuildRecursive(items, mid + 1, hi, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

void KdTree::Search(int32_t node_index, const Vec& query, size_t k,
                    std::vector<std::pair<double, int32_t>>* heap,
                    size_t* visited) const {
  if (node_index < 0) return;
  const Node& node = nodes_[node_index];
  if (visited != nullptr) ++*visited;
  const double dist = SquaredDistance(points_[node.point], query);
  // Max-heap on distance keeps the k best.
  if (heap->size() < k) {
    heap->emplace_back(dist, node.point);
    std::push_heap(heap->begin(), heap->end());
  } else if (dist < heap->front().first) {
    std::pop_heap(heap->begin(), heap->end());
    heap->back() = {dist, node.point};
    std::push_heap(heap->begin(), heap->end());
  }
  const double delta =
      double(query[node.axis]) - double(points_[node.point][node.axis]);
  const int32_t near = delta <= 0.0 ? node.left : node.right;
  const int32_t far = delta <= 0.0 ? node.right : node.left;
  Search(near, query, k, heap, visited);
  if (heap->size() < k || delta * delta < heap->front().first) {
    Search(far, query, k, heap, visited);
  }
}

int32_t KdTree::Nearest(const Vec& query, size_t* visited) const {
  if (root_ < 0) return -1;
  std::vector<std::pair<double, int32_t>> heap;
  Search(root_, query, 1, &heap, visited);
  return heap.empty() ? -1 : heap.front().second;
}

std::vector<int32_t> KdTree::KNearest(const Vec& query, size_t k) const {
  std::vector<int32_t> result;
  if (root_ < 0 || k == 0) return result;
  std::vector<std::pair<double, int32_t>> heap;
  Search(root_, query, k, &heap, nullptr);
  std::sort_heap(heap.begin(), heap.end());
  result.reserve(heap.size());
  for (const auto& [dist, point] : heap) result.push_back(point);
  return result;
}

}  // namespace opinedb::embedding
