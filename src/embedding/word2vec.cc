#include "embedding/word2vec.h"

#include <algorithm>
#include <cmath>

namespace opinedb::embedding {

namespace {

double Sigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

/// Unigram^(3/4) negative-sampling table (the standard word2vec trick).
class NegativeSampler {
 public:
  NegativeSampler(const text::Vocab& vocab) {
    weights_.reserve(vocab.size());
    for (size_t i = 0; i < vocab.size(); ++i) {
      weights_.push_back(
          std::pow(static_cast<double>(vocab.count(static_cast<int>(i))),
                   0.75));
    }
    // Build a cumulative table for binary-search sampling.
    cumulative_.resize(weights_.size());
    double total = 0.0;
    for (size_t i = 0; i < weights_.size(); ++i) {
      total += weights_[i];
      cumulative_[i] = total;
    }
    total_ = total;
  }

  text::WordId Sample(Rng* rng) const {
    const double target = rng->Uniform() * total_;
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), target);
    return static_cast<text::WordId>(it - cumulative_.begin());
  }

 private:
  std::vector<double> weights_;
  std::vector<double> cumulative_;
  double total_ = 0.0;
};

}  // namespace

WordEmbeddings::WordEmbeddings(text::Vocab vocab, std::vector<Vec> vectors)
    : vocab_(std::move(vocab)), vectors_(std::move(vectors)) {
  dim_ = vectors_.empty() ? 0 : vectors_[0].size();
}

WordEmbeddings WordEmbeddings::TrainSgns(
    const std::vector<std::vector<std::string>>& sentences,
    const Word2VecOptions& options) {
  // Pass 1: count the vocabulary.
  text::Vocab full;
  for (const auto& sentence : sentences) {
    for (const auto& token : sentence) full.Add(token);
  }
  text::Vocab vocab = full.Pruned(options.min_count);
  const size_t v = vocab.size();
  const size_t dim = options.dim;

  Rng rng(options.seed);
  std::vector<Vec> in(v), out(v);
  for (size_t i = 0; i < v; ++i) {
    in[i].resize(dim);
    for (float& x : in[i]) {
      x = static_cast<float>((rng.Uniform() - 0.5) / dim);
    }
    out[i].assign(dim, 0.0f);
  }
  if (v == 0) return WordEmbeddings(std::move(vocab), std::move(in));

  NegativeSampler sampler(vocab);
  const double total_count = static_cast<double>(vocab.total_count());

  // Pre-encode sentences as word ids.
  std::vector<std::vector<text::WordId>> encoded;
  encoded.reserve(sentences.size());
  for (const auto& sentence : sentences) {
    std::vector<text::WordId> ids;
    ids.reserve(sentence.size());
    for (const auto& token : sentence) {
      text::WordId id = vocab.Lookup(token);
      if (id != text::kInvalidWordId) ids.push_back(id);
    }
    if (ids.size() >= 2) encoded.push_back(std::move(ids));
  }

  Vec grad_accumulator(dim);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const double lr = options.learning_rate *
                      (1.0 - static_cast<double>(epoch) / options.epochs);
    for (const auto& ids : encoded) {
      // Frequent-word subsampling per occurrence.
      std::vector<text::WordId> kept;
      kept.reserve(ids.size());
      for (text::WordId id : ids) {
        if (options.subsample > 0.0) {
          const double freq =
              static_cast<double>(vocab.count(id)) / total_count;
          const double keep_prob =
              std::min(1.0, std::sqrt(options.subsample / freq) +
                                options.subsample / freq);
          if (!rng.Bernoulli(keep_prob)) continue;
        }
        kept.push_back(id);
      }
      for (size_t pos = 0; pos < kept.size(); ++pos) {
        const text::WordId center = kept[pos];
        const int reduced_window =
            1 + static_cast<int>(rng.Below(options.window));
        const size_t lo =
            pos >= static_cast<size_t>(reduced_window)
                ? pos - static_cast<size_t>(reduced_window)
                : 0;
        const size_t hi =
            std::min(kept.size() - 1, pos + static_cast<size_t>(reduced_window));
        for (size_t ctx_pos = lo; ctx_pos <= hi; ++ctx_pos) {
          if (ctx_pos == pos) continue;
          const text::WordId context = kept[ctx_pos];
          Vec& vin = in[context];
          std::fill(grad_accumulator.begin(), grad_accumulator.end(), 0.0f);
          // Positive example + negatives.
          for (int s = 0; s < options.negative_samples + 1; ++s) {
            text::WordId target;
            double label;
            if (s == 0) {
              target = center;
              label = 1.0;
            } else {
              target = sampler.Sample(&rng);
              if (target == center) continue;
              label = 0.0;
            }
            Vec& vout = out[target];
            const double score = Sigmoid(Dot(vin, vout));
            const double g = lr * (label - score);
            AxPy(g, vout, &grad_accumulator);
            AxPy(g, vin, &vout);
          }
          AxPy(1.0, grad_accumulator, &vin);
        }
      }
    }
  }
  return WordEmbeddings(std::move(vocab), std::move(in));
}

const Vec* WordEmbeddings::Get(std::string_view word) const {
  text::WordId id = vocab_.Lookup(word);
  if (id == text::kInvalidWordId && word.size() > 3 && word.back() == 's') {
    // Light morphological fallback: "rooms" -> "room". Review corpora are
    // small enough that one inflection may be unseen.
    id = vocab_.Lookup(word.substr(0, word.size() - 1));
  }
  if (id == text::kInvalidWordId) return nullptr;
  return &vectors_[id];
}

double WordEmbeddings::Similarity(std::string_view a,
                                  std::string_view b) const {
  const Vec* va = Get(a);
  const Vec* vb = Get(b);
  if (va == nullptr || vb == nullptr) return 0.0;
  return Cosine(*va, *vb);
}

std::vector<std::pair<std::string, double>> WordEmbeddings::MostSimilar(
    std::string_view word, size_t k) const {
  const Vec* query = Get(word);
  if (query == nullptr) return {};
  auto result = MostSimilarToVector(*query, k + 1);
  // Drop the word itself if present.
  std::vector<std::pair<std::string, double>> filtered;
  for (auto& [w, score] : result) {
    if (w != word) filtered.emplace_back(std::move(w), score);
    if (filtered.size() == k) break;
  }
  return filtered;
}

std::vector<std::pair<std::string, double>>
WordEmbeddings::MostSimilarToVector(const Vec& query, size_t k) const {
  std::vector<std::pair<std::string, double>> scored;
  scored.reserve(vectors_.size());
  for (size_t i = 0; i < vectors_.size(); ++i) {
    scored.emplace_back(vocab_.word(static_cast<text::WordId>(i)),
                        Cosine(query, vectors_[i]));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace opinedb::embedding
