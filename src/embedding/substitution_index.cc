#include "embedding/substitution_index.h"

#include <limits>
#include <set>

namespace opinedb::embedding {

namespace {

/// Generic query scaffolding words ignored when canonicalizing phrases
/// ("has spotless carpet" and "spotless carpet" are the same lookup key).
bool IsScaffolding(const std::string& token) {
  return text::IsStopword(token) || token == "has" || token == "place";
}

}  // namespace

std::string SubstitutionIndex::KeyOf(const std::vector<std::string>& tokens) {
  std::string key;
  for (const auto& token : tokens) {
    if (IsScaffolding(token)) continue;
    if (!key.empty()) key += ' ';
    key += token;
  }
  return key;
}

SubstitutionIndex::SubstitutionIndex(std::vector<std::string> phrases,
                                     const PhraseEmbedder* embedder)
    : phrases_(std::move(phrases)), embedder_(embedder) {
  // Dictionary of canonicalized phrases and the phrase-level k-d tree.
  std::vector<Vec> reps;
  reps.reserve(phrases_.size());
  std::set<std::string> domain_words;
  for (size_t i = 0; i < phrases_.size(); ++i) {
    auto tokens = tokenizer_.Tokenize(phrases_[i]);
    dictionary_.emplace(KeyOf(tokens), static_cast<int32_t>(i));
    for (const auto& token : tokens) domain_words.insert(token);
    reps.push_back(embedder_->RepresentTokens(tokens));
  }
  tree_ = KdTree::Build(std::move(reps));

  // Precompute, for each domain word, its nearest neighbour word by the
  // distance between the IDF-scaled embeddings (Appendix B).
  std::vector<std::string> words(domain_words.begin(), domain_words.end());
  std::vector<Vec> scaled;
  std::vector<size_t> known;  // Indices of words with embeddings.
  scaled.reserve(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    Vec rep = embedder_->RepresentTokens({words[i]});
    if (Norm(rep) == 0.0) continue;
    known.push_back(i);
    scaled.push_back(std::move(rep));
  }
  for (size_t a = 0; a < known.size(); ++a) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_b = known.size();
    for (size_t b = 0; b < known.size(); ++b) {
      if (a == b) continue;
      const double d = SquaredDistance(scaled[a], scaled[b]);
      if (d < best) {
        best = d;
        best_b = b;
      }
    }
    if (best_b < known.size()) {
      nearest_word_[words[known[a]]] = words[known[best_b]];
    }
  }
}

SubstitutionMatch SubstitutionIndex::Lookup(std::string_view query) const {
  SubstitutionMatch match;
  auto tokens = tokenizer_.Tokenize(query);
  // 1. Verbatim dictionary hit.
  auto it = dictionary_.find(KeyOf(tokens));
  if (it != dictionary_.end()) {
    match.phrase = it->second;
    match.fast_path = true;
    return match;
  }
  // 2. Single-word substitution with the precomputed nearest word.
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (IsScaffolding(tokens[i])) continue;
    auto sub = nearest_word_.find(tokens[i]);
    if (sub == nearest_word_.end()) continue;
    std::vector<std::string> variant = tokens;
    variant[i] = sub->second;
    auto hit = dictionary_.find(KeyOf(variant));
    if (hit != dictionary_.end()) {
      match.phrase = hit->second;
      match.fast_path = true;
      return match;
    }
  }
  // 3. Full similarity search over phrase representations.
  Vec rep = embedder_->RepresentTokens(tokens);
  match.phrase = tree_.Nearest(rep);
  match.fast_path = false;
  return match;
}

}  // namespace opinedb::embedding
