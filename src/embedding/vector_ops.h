#ifndef OPINEDB_EMBEDDING_VECTOR_OPS_H_
#define OPINEDB_EMBEDDING_VECTOR_OPS_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace opinedb::embedding {

/// Dense embedding vector.
using Vec = std::vector<float>;

/// Dot product. Vectors must have equal dimension.
double Dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double Norm(const Vec& a);

/// Cosine similarity in [-1, 1]; 0 if either vector is zero.
double Cosine(const Vec& a, const Vec& b);

/// Squared Euclidean distance.
double SquaredDistance(const Vec& a, const Vec& b);

/// a += scale * b.
void AxPy(double scale, const Vec& b, Vec* a);

/// Scales `a` in place.
void Scale(double s, Vec* a);

/// Returns a zero vector of dimension `dim`.
Vec Zeros(size_t dim);

/// Element-wise mean of `vectors`; zero vector of `dim` if empty.
Vec Mean(const std::vector<Vec>& vectors, size_t dim);

}  // namespace opinedb::embedding

#endif  // OPINEDB_EMBEDDING_VECTOR_OPS_H_
