#ifndef OPINEDB_EMBEDDING_PHRASE_REP_H_
#define OPINEDB_EMBEDDING_PHRASE_REP_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "embedding/word2vec.h"
#include "text/tokenizer.h"

namespace opinedb::embedding {

/// Computes IDF-weighted phrase representations (paper Eq. 1):
///
///   rep(p) = sum_{w in p} w2v(w) * idf(w)
///
/// and their cosine similarity (paper Eq. 2). This is the representation
/// the subjective query interpreter matches query predicates against
/// linguistic variations with.
class PhraseEmbedder {
 public:
  /// `idf` maps a token to its inverse document frequency over the review
  /// corpus; tokens the embedding model does not know are skipped.
  PhraseEmbedder(const WordEmbeddings* embeddings,
                 std::function<double(std::string_view)> idf);

  /// rep(phrase); the zero vector if no token is in vocabulary.
  Vec Represent(std::string_view phrase) const;

  /// rep over pre-tokenized text.
  Vec RepresentTokens(const std::vector<std::string>& tokens) const;

  /// cosine(rep(a), rep(b)).
  double Similarity(std::string_view a, std::string_view b) const;

  size_t dim() const { return embeddings_->dim(); }
  const WordEmbeddings& embeddings() const { return *embeddings_; }

 private:
  const WordEmbeddings* embeddings_;
  std::function<double(std::string_view)> idf_;
  text::Tokenizer tokenizer_;
};

}  // namespace opinedb::embedding

#endif  // OPINEDB_EMBEDDING_PHRASE_REP_H_
