#include "embedding/vector_ops.h"

#include <cassert>
#include <cmath>

namespace opinedb::embedding {

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += double(a[i]) * double(b[i]);
  return sum;
}

double Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

double Cosine(const Vec& a, const Vec& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

double SquaredDistance(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = double(a[i]) - double(b[i]);
    sum += d * d;
  }
  return sum;
}

void AxPy(double scale, const Vec& b, Vec* a) {
  assert(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    (*a)[i] += static_cast<float>(scale * b[i]);
  }
}

void Scale(double s, Vec* a) {
  for (float& x : *a) x = static_cast<float>(x * s);
}

Vec Zeros(size_t dim) { return Vec(dim, 0.0f); }

Vec Mean(const std::vector<Vec>& vectors, size_t dim) {
  Vec mean = Zeros(dim);
  if (vectors.empty()) return mean;
  for (const Vec& v : vectors) AxPy(1.0, v, &mean);
  Scale(1.0 / static_cast<double>(vectors.size()), &mean);
  return mean;
}

}  // namespace opinedb::embedding
