#include "embedding/phrase_rep.h"

#include <utility>

namespace opinedb::embedding {

PhraseEmbedder::PhraseEmbedder(const WordEmbeddings* embeddings,
                               std::function<double(std::string_view)> idf)
    : embeddings_(embeddings), idf_(std::move(idf)) {}

Vec PhraseEmbedder::RepresentTokens(
    const std::vector<std::string>& tokens) const {
  Vec rep = Zeros(embeddings_->dim());
  for (const auto& token : tokens) {
    const Vec* wv = embeddings_->Get(token);
    if (wv == nullptr) continue;
    const double weight = idf_ ? idf_(token) : 1.0;
    if (weight <= 0.0) continue;
    AxPy(weight, *wv, &rep);
  }
  return rep;
}

Vec PhraseEmbedder::Represent(std::string_view phrase) const {
  return RepresentTokens(tokenizer_.Tokenize(phrase));
}

double PhraseEmbedder::Similarity(std::string_view a,
                                  std::string_view b) const {
  return Cosine(Represent(a), Represent(b));
}

}  // namespace opinedb::embedding
