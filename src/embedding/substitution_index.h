#ifndef OPINEDB_EMBEDDING_SUBSTITUTION_INDEX_H_
#define OPINEDB_EMBEDDING_SUBSTITUTION_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "embedding/kdtree.h"
#include "embedding/phrase_rep.h"

namespace opinedb::embedding {

/// Result of a SubstitutionIndex lookup.
struct SubstitutionMatch {
  /// Index of the matched phrase within the indexed phrase list; -1 if no
  /// match was found at all.
  int32_t phrase = -1;
  /// True when the fast dictionary/substitution path answered the query;
  /// false when the k-d tree similarity search had to run.
  bool fast_path = false;
};

/// The Appendix-B indexing scheme for w2v-based phrase similarity search.
///
/// For each vocabulary word w of the indexed phrases, the word w' with the
/// closest IDF-scaled embedding is precomputed. A query is first tried
/// verbatim against a phrase dictionary, then with each single word
/// substituted by its precomputed neighbour; only if no variant matches
/// does the full k-d tree similarity search over phrase representations
/// run.
class SubstitutionIndex {
 public:
  /// Indexes `phrases` (e.g. a linguistic domain) using `embedder` for
  /// representations.
  SubstitutionIndex(std::vector<std::string> phrases,
                    const PhraseEmbedder* embedder);

  /// Finds the indexed phrase most similar to `query`.
  SubstitutionMatch Lookup(std::string_view query) const;

  const std::string& phrase(int32_t i) const { return phrases_[i]; }
  size_t num_phrases() const { return phrases_.size(); }

 private:
  /// Canonical dictionary key for a token sequence.
  static std::string KeyOf(const std::vector<std::string>& tokens);

  std::vector<std::string> phrases_;
  const PhraseEmbedder* embedder_;
  text::Tokenizer tokenizer_;
  /// Canonical token-join -> phrase index.
  std::unordered_map<std::string, int32_t> dictionary_;
  /// word -> nearest other word by |w2v*idf| distance.
  std::unordered_map<std::string, std::string> nearest_word_;
  KdTree tree_;
};

}  // namespace opinedb::embedding

#endif  // OPINEDB_EMBEDDING_SUBSTITUTION_INDEX_H_
