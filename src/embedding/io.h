#ifndef OPINEDB_EMBEDDING_IO_H_
#define OPINEDB_EMBEDDING_IO_H_

#include <istream>
#include <ostream>

#include "common/result.h"
#include "embedding/word2vec.h"

namespace opinedb::embedding {

/// Writes a trained embedding model in the word2vec-style text format:
///
///   opinedb-embeddings 1
///   <vocab_size> <dim>
///   <word> <count> <v0> <v1> ... <vdim-1>
///   ...
///
/// Training an SGNS model takes seconds on our corpora, but persisting
/// it makes databases reloadable without retraining and lets users bring
/// externally-trained vectors.
Status SaveEmbeddings(const WordEmbeddings& model, std::ostream* out);

/// Reads a model written by SaveEmbeddings.
Result<WordEmbeddings> LoadEmbeddings(std::istream* in);

}  // namespace opinedb::embedding

#endif  // OPINEDB_EMBEDDING_IO_H_
