#ifndef OPINEDB_EMBEDDING_WORD2VEC_H_
#define OPINEDB_EMBEDDING_WORD2VEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "embedding/vector_ops.h"
#include "text/vocab.h"

namespace opinedb::embedding {

/// Skip-gram-with-negative-sampling training options.
struct Word2VecOptions {
  size_t dim = 48;
  int window = 3;
  int negative_samples = 8;
  int epochs = 15;
  double learning_rate = 0.08;
  /// Words rarer than this are dropped from the vocabulary.
  int64_t min_count = 2;
  /// Frequent-word subsampling threshold (word2vec's `sample`); 0 disables.
  double subsample = 1e-3;
  uint64_t seed = 42;
};

/// A trained word-embedding model: word -> dense vector.
///
/// This is our from-scratch substitute for gensim's word2vec. The training
/// algorithm is the standard SGNS objective of Mikolov et al., which the
/// paper uses for (a) the interpreter's similarity method, (b) seed
/// expansion, and (c) phrase centroids in marker summaries.
class WordEmbeddings {
 public:
  WordEmbeddings() = default;
  WordEmbeddings(text::Vocab vocab, std::vector<Vec> vectors);

  /// Trains SGNS embeddings over tokenized sentences.
  static WordEmbeddings TrainSgns(
      const std::vector<std::vector<std::string>>& sentences,
      const Word2VecOptions& options);

  /// Returns the vector for `word`, or nullptr if out of vocabulary.
  const Vec* Get(std::string_view word) const;

  /// Cosine similarity of two words; 0 if either is unknown.
  double Similarity(std::string_view a, std::string_view b) const;

  /// Top-k most similar in-vocabulary words to `word` (excluding itself).
  std::vector<std::pair<std::string, double>> MostSimilar(
      std::string_view word, size_t k) const;

  /// Top-k most similar words to an arbitrary query vector.
  std::vector<std::pair<std::string, double>> MostSimilarToVector(
      const Vec& query, size_t k) const;

  const text::Vocab& vocab() const { return vocab_; }
  size_t dim() const { return dim_; }
  size_t size() const { return vectors_.size(); }
  const Vec& vector(text::WordId id) const { return vectors_[id]; }

 private:
  text::Vocab vocab_;
  std::vector<Vec> vectors_;
  size_t dim_ = 0;
};

}  // namespace opinedb::embedding

#endif  // OPINEDB_EMBEDDING_WORD2VEC_H_
