#include "embedding/io.h"

#include <limits>
#include <string>

namespace opinedb::embedding {

namespace {
constexpr char kMagic[] = "opinedb-embeddings";
constexpr int kVersion = 1;
}  // namespace

Status SaveEmbeddings(const WordEmbeddings& model, std::ostream* out) {
  // Full float precision so reload is bit-exact.
  out->precision(std::numeric_limits<float>::max_digits10);
  *out << kMagic << ' ' << kVersion << '\n';
  *out << model.size() << ' ' << model.dim() << '\n';
  for (size_t i = 0; i < model.size(); ++i) {
    const auto id = static_cast<text::WordId>(i);
    *out << model.vocab().word(id) << ' ' << model.vocab().count(id);
    for (float x : model.vector(id)) *out << ' ' << x;
    *out << '\n';
  }
  if (!out->good()) return Status::Internal("write failed");
  return Status::OK();
}

Result<WordEmbeddings> LoadEmbeddings(std::istream* in) {
  std::string magic;
  int version = 0;
  if (!(*in >> magic >> version) || magic != kMagic) {
    return Status::ParseError("not an opinedb embeddings file");
  }
  if (version != kVersion) {
    return Status::NotSupported("embeddings version " +
                                std::to_string(version));
  }
  size_t size = 0;
  size_t dim = 0;
  if (!(*in >> size >> dim)) {
    return Status::ParseError("bad embeddings header");
  }
  text::Vocab vocab;
  std::vector<Vec> vectors;
  vectors.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    std::string word;
    int64_t count = 0;
    if (!(*in >> word >> count)) {
      return Status::ParseError("truncated embeddings entry " +
                                std::to_string(i));
    }
    Vec vec(dim);
    for (size_t d = 0; d < dim; ++d) {
      if (!(*in >> vec[d])) {
        return Status::ParseError("truncated vector for " + word);
      }
    }
    if (vocab.AddCount(word, count) != static_cast<text::WordId>(i)) {
      return Status::ParseError("duplicate word " + word);
    }
    vectors.push_back(std::move(vec));
  }
  return WordEmbeddings(std::move(vocab), std::move(vectors));
}

}  // namespace opinedb::embedding
