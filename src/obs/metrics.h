#ifndef OPINEDB_OBS_METRICS_H_
#define OPINEDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace opinedb::obs {

/// Process-wide metrics switch. All instrumentation call sites are gated
/// on this flag, so with metrics disabled (the default) an instrumented
/// hot path costs one relaxed atomic load and a predictable branch. The
/// engine flips it from EngineOptions::trace_level (see engine.h); it is
/// global, so the most recent engine to change trace level wins — fine
/// for the single-engine-per-process deployments we target, and tests
/// that need isolation save/restore it.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// A process-wide registry of named counters, gauges and fixed-bucket
/// latency histograms with JSON export.
///
/// Lock discipline mirrors DegreeCache: registration (GetCounter /
/// GetGauge / GetHistogram) takes the registry mutex, but instruments are
/// registered once and the returned pointers are stable for the life of
/// the registry, so hot paths hold no locks at all — Counter::Add is one
/// relaxed fetch_add on a per-thread shard (16-way, cache-line padded,
/// merged on scrape exactly like DegreeCache's hash-sharded maps), and
/// Histogram::Observe is a bucket lookup plus two relaxed atomics.
/// Concurrent increments therefore sum exactly; see tests/obs_test.cc.
class MetricsRegistry {
 public:
  static constexpr size_t kNumShards = 16;

  /// Monotone counter, sharded across threads; merged on Value()/scrape.
  class Counter {
   public:
    void Add(uint64_t delta = 1) {
      shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
    }
    uint64_t Value() const {
      uint64_t total = 0;
      for (const auto& shard : shards_) {
        total += shard.value.load(std::memory_order_relaxed);
      }
      return total;
    }
    void Reset() {
      for (auto& shard : shards_) {
        shard.value.store(0, std::memory_order_relaxed);
      }
    }

   private:
    struct alignas(64) Cell {
      std::atomic<uint64_t> value{0};
    };
    static size_t ShardIndex();
    std::array<Cell, kNumShards> shards_;
  };

  /// Last-write-wins instantaneous value (e.g. queue depth).
  class Gauge {
   public:
    void Set(double value) {
      value_.store(value, std::memory_order_relaxed);
    }
    void Add(double delta) {
      double cur = value_.load(std::memory_order_relaxed);
      while (!value_.compare_exchange_weak(cur, cur + delta,
                                           std::memory_order_relaxed)) {
      }
    }
    double Value() const { return value_.load(std::memory_order_relaxed); }
    void Reset() { value_.store(0.0, std::memory_order_relaxed); }

   private:
    std::atomic<double> value_{0.0};
  };

  /// Fixed-bucket histogram: bucket i counts observations <= bounds[i],
  /// with one implicit overflow bucket above the last bound.
  class Histogram {
   public:
    explicit Histogram(std::vector<double> bounds);

    void Observe(double value);
    /// Per-bucket counts (bounds.size() + 1 entries, overflow last).
    std::vector<uint64_t> Counts() const;
    const std::vector<double>& bounds() const { return bounds_; }
    uint64_t TotalCount() const;
    double Sum() const;
    void Reset();

   private:
    std::vector<double> bounds_;
    std::vector<std::atomic<uint64_t>> counts_;
    std::atomic<double> sum_{0.0};
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by library instrumentation.
  static MetricsRegistry& Global();

  /// Finds or creates an instrument. Pointers are stable until the
  /// registry is destroyed; call once per site and cache the pointer
  /// (the OPINEDB_METRIC_* macros below do exactly that).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` must be strictly increasing; it is fixed on first creation
  /// (later calls with the same name ignore the argument).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Default latency buckets (milliseconds, roughly exponential).
  static std::vector<double> LatencyBucketsMs();

  /// Scrape: renders every instrument as one JSON object
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// sorted by name (deterministic output for golden tests).
  std::string ToJson() const;

  /// Zeroes every instrument (names stay registered). Intended for tests
  /// and benches; not safe concurrently with writers that expect exact
  /// sums.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  // Node-based maps: pointers into the mapped values are stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace opinedb::obs

/// Call-site helpers: one enabled-check branch, instrument resolved once
/// (function-local static) the first time the site fires while enabled.
#define OPINEDB_METRIC_COUNT(name, delta)                                   \
  do {                                                                      \
    if (::opinedb::obs::MetricsEnabled()) {                                 \
      static auto* _opinedb_counter =                                       \
          ::opinedb::obs::MetricsRegistry::Global().GetCounter(name);       \
      _opinedb_counter->Add(delta);                                         \
    }                                                                       \
  } while (0)

#define OPINEDB_METRIC_GAUGE_SET(name, value)                               \
  do {                                                                      \
    if (::opinedb::obs::MetricsEnabled()) {                                 \
      static auto* _opinedb_gauge =                                         \
          ::opinedb::obs::MetricsRegistry::Global().GetGauge(name);         \
      _opinedb_gauge->Set(value);                                           \
    }                                                                       \
  } while (0)

#define OPINEDB_METRIC_LATENCY_MS(name, value)                              \
  do {                                                                      \
    if (::opinedb::obs::MetricsEnabled()) {                                 \
      static auto* _opinedb_histogram =                                     \
          ::opinedb::obs::MetricsRegistry::Global().GetHistogram(           \
              name, ::opinedb::obs::MetricsRegistry::LatencyBucketsMs());   \
      _opinedb_histogram->Observe(value);                                   \
    }                                                                       \
  } while (0)

#endif  // OPINEDB_OBS_METRICS_H_
