#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace opinedb::obs {

namespace {

/// Ambient per-thread trace state. Worker-pool threads never have a
/// buffer installed, so spans constructed there are inert.
thread_local TraceBuffer* t_buffer = nullptr;
thread_local uint32_t t_current_span = 0;

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}


}  // namespace

TraceLevel ParseTraceLevel(std::string_view name) {
  if (name == "stats") return TraceLevel::kStats;
  if (name == "full") return TraceLevel::kFull;
  return TraceLevel::kOff;
}

const char* TraceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kStats:
      return "stats";
    case TraceLevel::kFull:
      return "full";
    case TraceLevel::kOff:
      break;
  }
  return "off";
}

std::string_view SpanRecord::Attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return {};
}

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      epoch_(std::chrono::steady_clock::now()) {}

uint32_t TraceBuffer::NextSpanId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void TraceBuffer::Push(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = next_seq_++;
  const size_t slot = record.seq % capacity_;
  if (slot < ring_.size()) {
    ring_[slot] = std::move(record);  // Evicts the oldest resident span.
  } else {
    ring_.push_back(std::move(record));
  }
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = ring_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ > capacity_ ? next_seq_ - capacity_ : 0;
}

std::string TraceBuffer::RenderTree() const {
  const auto spans = Snapshot();
  // Children in recording order under each parent; orphans (evicted
  // parents) become roots so the tree always renders every span.
  std::vector<size_t> roots;
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<int> index_of_id;
  for (const auto& span : spans) {
    if (span.id >= index_of_id.size()) index_of_id.resize(span.id + 1, -1);
  }
  for (size_t i = 0; i < spans.size(); ++i) index_of_id[spans[i].id] = i;
  for (size_t i = 0; i < spans.size(); ++i) {
    const uint32_t parent = spans[i].parent_id;
    if (parent != 0 && parent < index_of_id.size() &&
        index_of_id[parent] >= 0) {
      children[index_of_id[parent]].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::string out;
  // Iterative DFS; starts render before their children even though the
  // ring stores ends-first.
  struct Frame {
    size_t index;
    size_t depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const SpanRecord& span = spans[frame.index];
    out.append(2 * frame.depth, ' ');
    out += span.name;
    char timing[64];
    std::snprintf(timing, sizeof(timing), " %10.3f ms", span.duration_ms);
    out += timing;
    for (const auto& [key, value] : span.attributes) {
      out += "  " + key + "=" + value;
    }
    out += '\n';
    const auto& kids = children[frame.index];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, frame.depth + 1});
    }
  }
  return out;
}

std::string TraceBuffer::ToJson() const {
  const auto spans = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) out += ',';
    out += "\n  {\"id\": " + std::to_string(span.id);
    out += ", \"parent_id\": " + std::to_string(span.parent_id);
    out += ", \"seq\": " + std::to_string(span.seq);
    out += ", \"name\": ";
    JsonEscapeAppend(span.name, &out);
    out += ", \"start_ms\": " + FormatDouble(span.start_ms);
    out += ", \"duration_ms\": " + FormatDouble(span.duration_ms);
    out += ", \"attributes\": {";
    for (size_t a = 0; a < span.attributes.size(); ++a) {
      if (a > 0) out += ", ";
      JsonEscapeAppend(span.attributes[a].first, &out);
      out += ": ";
      JsonEscapeAppend(span.attributes[a].second, &out);
    }
    out += "}}";
  }
  out += spans.empty() ? "]" : "\n]";
  return out;
}

TraceScope::TraceScope(TraceBuffer* buffer)
    : previous_buffer_(t_buffer), previous_span_(t_current_span) {
  t_buffer = buffer;
  t_current_span = 0;
}

TraceScope::~TraceScope() {
  t_buffer = previous_buffer_;
  t_current_span = previous_span_;
}

TraceBuffer* TraceScope::Current() { return t_buffer; }

TraceSpan::TraceSpan(std::string_view name) : buffer_(t_buffer) {
  if (buffer_ == nullptr) return;  // Tracing off: one branch, no work.
  record_.id = buffer_->NextSpanId();
  record_.parent_id = t_current_span;
  record_.name = std::string(name);
  start_ = std::chrono::steady_clock::now();
  record_.start_ms =
      std::chrono::duration<double, std::milli>(start_ - buffer_->epoch())
          .count();
  saved_parent_ = t_current_span;
  t_current_span = record_.id;
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (buffer_ == nullptr) return;
  record_.duration_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
  t_current_span = saved_parent_;
  buffer_->Push(std::move(record_));
  buffer_ = nullptr;
}

void TraceSpan::AddAttribute(std::string_view key, std::string_view value) {
  if (buffer_ == nullptr) return;
  record_.attributes.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::AddAttribute(std::string_view key, double value) {
  if (buffer_ == nullptr) return;
  record_.attributes.emplace_back(std::string(key), FormatDouble(value));
}

void TraceSpan::AddAttribute(std::string_view key, uint64_t value) {
  if (buffer_ == nullptr) return;
  record_.attributes.emplace_back(std::string(key), std::to_string(value));
}

void TraceSpan::AddAttribute(std::string_view key, bool value) {
  if (buffer_ == nullptr) return;
  record_.attributes.emplace_back(std::string(key),
                                  value ? "true" : "false");
}

}  // namespace opinedb::obs
