#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

#include "common/string_util.h"

namespace opinedb::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Renders a double the way the BENCH_*.json writers do ("%g"), so the
/// JSON scrape is compact and locale-independent.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}


}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

size_t MetricsRegistry::Counter::ShardIndex() {
  // One shard per thread (hashed): increments from different threads
  // usually land on different cache lines, mirroring DegreeCache's
  // hash-sharding. The thread_local caches the hash computation.
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kNumShards;
  return shard;
}

MetricsRegistry::Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void MetricsRegistry::Histogram::Observe(double value) {
  // lower_bound, not upper_bound: bucket i is inclusive of bounds[i]
  // (Prometheus "le" semantics), so an observation exactly on a boundary
  // lands in the bucket that boundary names.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> MetricsRegistry::Histogram::Counts() const {
  std::vector<uint64_t> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t MetricsRegistry::Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& count : counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

double MetricsRegistry::Histogram::Sum() const {
  return sum_.load(std::memory_order_relaxed);
}

void MetricsRegistry::Histogram::Reset() {
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Counter* MetricsRegistry::GetCounter(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

MetricsRegistry::Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

MetricsRegistry::Histogram* MetricsRegistry::GetHistogram(
    const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

std::vector<double> MetricsRegistry::LatencyBucketsMs() {
  return {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0};
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    JsonEscapeAppend(name, &out);
    out += ": " + std::to_string(counter->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    JsonEscapeAppend(name, &out);
    out += ": " + FormatDouble(gauge->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    JsonEscapeAppend(name, &out);
    out += ": {\"bounds\": [";
    const auto& bounds = histogram->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatDouble(bounds[i]);
    }
    out += "], \"counts\": [";
    const auto counts = histogram->Counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(counts[i]);
    }
    out += "], \"count\": " + std::to_string(histogram->TotalCount());
    out += ", \"sum\": " + FormatDouble(histogram->Sum()) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace opinedb::obs
