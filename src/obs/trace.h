#ifndef OPINEDB_OBS_TRACE_H_
#define OPINEDB_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace opinedb::obs {

/// How much observability a query execution pays for:
///   kOff   — one predictable branch per instrumentation site;
///   kStats — MetricsRegistry counters/gauges/histograms;
///   kFull  — kStats plus per-query trace spans (ring buffer).
enum class TraceLevel {
  kOff = 0,
  kStats = 1,
  kFull = 2,
};

/// Parses "off" / "stats" / "full" (anything else → kOff); the inverse of
/// TraceLevelName. Handy for env-var / CLI plumbing.
TraceLevel ParseTraceLevel(std::string_view name);
const char* TraceLevelName(TraceLevel level);

/// One finished span. Spans are recorded on End (RAII destructor), so a
/// parent's record lands after its children's; `seq` restores the
/// recording order and `parent_id` the hierarchy.
struct SpanRecord {
  /// 1-based id unique within the owning TraceBuffer; 0 = "no span".
  uint32_t id = 0;
  /// Id of the enclosing span (0 for roots).
  uint32_t parent_id = 0;
  /// Monotone per-buffer sequence of the *end* event; the ring buffer
  /// evicts the smallest seq first, so overflow keeps the newest spans.
  uint64_t seq = 0;
  std::string name;
  /// Start offset relative to the buffer's epoch.
  double start_ms = 0.0;
  double duration_ms = 0.0;
  /// Ordered (key, value) attributes, e.g. {"stage", "word2vec"}.
  std::vector<std::pair<std::string, std::string>> attributes;

  /// First attribute value for `key`, or "" if absent.
  std::string_view Attribute(std::string_view key) const;
};

/// A per-query ring buffer of finished spans.
///
/// Thread safety: BeginSpan/Push/Snapshot may be called from any thread
/// (a mutex guards the ring). Span creation is phase-level, not
/// per-entity, so the lock is uncontended in practice; worker threads
/// inside ParallelFor see no ambient trace context and record nothing,
/// which also keeps tracing out of the bit-identity contract (see
/// tests/concurrency_test.cc).
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 256);

  /// Allocates a span id (ids never repeat within a buffer).
  uint32_t NextSpanId();

  /// Records one finished span; evicts the oldest record when full.
  void Push(SpanRecord record);

  /// Spans currently resident, oldest first (by seq).
  std::vector<SpanRecord> Snapshot() const;

  size_t capacity() const { return capacity_; }
  /// Spans evicted by ring overflow so far.
  uint64_t dropped() const;

  /// The buffer's epoch for start_ms offsets.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Renders a flame-style indented text tree:
  ///   execute_query                          12.345 ms
  ///     interpret                             4.200 ms  stage=word2vec
  /// Orphans (parents evicted by overflow) render as roots.
  std::string RenderTree() const;

  /// Renders the resident spans as a JSON array (oldest first).
  std::string ToJson() const;

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;   // Guarded by mu_; slot = seq % capacity.
  uint64_t next_seq_ = 0;          // Guarded by mu_.
  std::atomic<uint32_t> next_id_{1};
};

/// RAII installer of the ambient (thread-local) trace buffer. The engine
/// installs one per traced query on the query thread; every TraceSpan
/// constructed on that thread while the scope is alive records into it.
/// Scopes nest (the previous buffer is restored on destruction).
class TraceScope {
 public:
  explicit TraceScope(TraceBuffer* buffer);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// The ambient buffer of the calling thread (nullptr when not tracing).
  static TraceBuffer* Current();

 private:
  TraceBuffer* previous_buffer_;
  uint32_t previous_span_;
};

/// A hierarchical RAII trace scope. Construction is a no-op branch when
/// no ambient TraceBuffer is installed (trace_level < kFull); otherwise
/// the span links to the enclosing TraceSpan on the same thread and
/// records name, wall time and attributes into the buffer on destruction.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return buffer_ != nullptr; }

  /// Ends the span early (records it now); the destructor then no-ops.
  /// For phases whose extent doesn't match a C++ scope.
  void End();

  /// Attribute setters are no-ops on inactive spans.
  void AddAttribute(std::string_view key, std::string_view value);
  /// Without this overload a string literal would convert to bool
  /// (standard conversion) rather than string_view (user-defined).
  void AddAttribute(std::string_view key, const char* value) {
    AddAttribute(key, std::string_view(value));
  }
  void AddAttribute(std::string_view key, double value);
  void AddAttribute(std::string_view key, uint64_t value);
  void AddAttribute(std::string_view key, bool value);

 private:
  TraceBuffer* buffer_;
  SpanRecord record_;
  std::chrono::steady_clock::time_point start_;
  uint32_t saved_parent_ = 0;
};

}  // namespace opinedb::obs

/// Anonymous span covering the rest of the enclosing block:
///   OPINEDB_SPAN("interpret");
/// Use a named TraceSpan directly when attributes must be attached.
#define OPINEDB_SPAN_CONCAT_INNER(a, b) a##b
#define OPINEDB_SPAN_CONCAT(a, b) OPINEDB_SPAN_CONCAT_INNER(a, b)
#define OPINEDB_SPAN(name) \
  ::opinedb::obs::TraceSpan OPINEDB_SPAN_CONCAT(_opinedb_span_, __LINE__)(name)

#endif  // OPINEDB_OBS_TRACE_H_
