#ifndef OPINEDB_SERVER_HTTPD_H_
#define OPINEDB_SERVER_HTTPD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace opinedb::server {

/// One parsed HTTP/1.1 request.
struct HttpRequest {
  std::string method;  // Uppercase token, e.g. "GET", "POST".
  std::string target;  // Raw request target, e.g. "/query?trace=1".
  std::string path;    // Percent-decoded path component.
  /// Percent-decoded query parameters in source order.
  std::vector<std::pair<std::string, std::string>> query_params;
  /// Header fields with lower-cased names, in source order.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Whether the connection may serve another request after this one
  /// (HTTP/1.1 default unless "Connection: close"; inverted for 1.0).
  bool keep_alive = true;

  /// First header value for `name` (lower-case), or "" if absent.
  std::string_view Header(std::string_view name) const;
  /// First query parameter value for `key`, or "" if absent.
  std::string_view QueryParam(std::string_view key) const;
  /// True when `key` is present and not "0"/"false" — the `?trace=1`
  /// style request flags.
  bool QueryFlag(std::string_view key) const;
};

/// One HTTP response. Content-Length and Connection headers are managed
/// by the serializer; `headers` carries extras (e.g. Retry-After).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;

  static HttpResponse Json(int status, std::string body);
  /// A JSON error envelope: {"error": "<message>"}.
  static HttpResponse Error(int status, std::string_view message);
};

/// Reason phrase for the status codes the server emits.
const char* StatusReason(int status);

/// Hard input limits of the request parser. Exceeding a limit is a
/// protocol answer, never an allocation: oversized headers are 431,
/// oversized bodies 413, everything malformed 400.
struct ParserLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 1 << 20;
};

/// Incremental HTTP/1.1 request parser. Feed it bytes as they arrive
/// from the socket (at any split points — the fuzz suite feeds single
/// bytes); it buffers internally and reports kComplete exactly when one
/// full request (headers + Content-Length body) is resident. Bytes
/// beyond the current request are retained for the next one
/// (pipelining); ResetForNext() consumes the parsed request and resumes
/// parsing on the leftover.
///
/// The parser is strict where it is cheap to be strict (single-space
/// request line, token-only header names, digits-only Content-Length,
/// no Transfer-Encoding) and always answers a malformed stream with a
/// typed error status: 400 (syntax), 413 (body too large) or 431
/// (header block too large).
class HttpParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  explicit HttpParser(ParserLimits limits = ParserLimits());

  /// Appends bytes and advances the state machine.
  State Feed(std::string_view data);

  State state() const { return state_; }
  /// The parsed request; valid only in kComplete.
  const HttpRequest& request() const { return request_; }
  /// 400, 413 or 431; valid only in kError.
  int error_status() const { return error_status_; }
  const std::string& error_detail() const { return error_detail_; }

  /// Consumes the completed request and re-parses any buffered leftover
  /// (the next pipelined request may complete without another Feed).
  State ResetForNext();

  /// Bytes currently buffered (bounded by the limits plus one read's
  /// worth of slack; asserted by the fuzz suite).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  State Advance();
  State FailWith(int status, std::string detail);
  bool ParseHeaderBlock(std::string_view block);

  ParserLimits limits_;
  std::string buffer_;
  size_t body_begin_ = 0;   // Offset of the body within buffer_.
  size_t body_length_ = 0;  // Declared Content-Length.
  bool headers_done_ = false;
  State state_ = State::kNeedMore;
  int error_status_ = 0;
  std::string error_detail_;
  HttpRequest request_;
};

/// Percent-decodes a URL component; returns false on a malformed %
/// sequence. `plus_is_space` applies inside query strings.
bool PercentDecode(std::string_view in, bool plus_is_space,
                   std::string* out);

/// Configuration of the serving loop.
struct HttpdOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back via port()).
  uint16_t port = 0;
  /// Worker threads executing handlers (one connection at a time each).
  size_t num_workers = 4;
  /// Bounded admission queue of accepted-but-unserved connections. When
  /// the queue is full the acceptor sheds the connection with an
  /// immediate 429 instead of letting latency collapse.
  size_t queue_capacity = 64;
  ParserLimits limits;
  /// Per-recv timeout; an idle keep-alive connection is closed after
  /// one quiet interval so parked clients cannot starve the workers.
  int read_timeout_ms = 5000;
  /// Requests served per connection before the server forces a close
  /// (bounds how long one client can monopolize a worker).
  size_t max_requests_per_connection = 1024;
  /// Stop() drain budget: in-flight requests get this long to finish
  /// and flush their response (new connections are refused immediately,
  /// idle keep-alive connections are woken and closed). Connections
  /// still busy at the deadline are severed mid-response. 0 = sever
  /// everything immediately (the pre-drain behaviour).
  int drain_grace_ms = 5000;
};

/// A dependency-free threaded HTTP/1.1 server: one acceptor thread, a
/// bounded connection queue (the admission-control ladder's first rung)
/// and a fixed worker pool. The handler runs on worker threads and may
/// block; exceptions escaping it become 500 responses, and injected
/// faults at the named server.* sites degrade exactly one request (see
/// common/fault.h and docs/SERVING.md).
class Httpd {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  Httpd(HttpdOptions options, Handler handler);
  ~Httpd();

  Httpd(const Httpd&) = delete;
  Httpd& operator=(const Httpd&) = delete;

  /// Binds, listens and starts the acceptor + workers.
  Status Start();
  /// Graceful stop: closes the listening socket first (new connection
  /// attempts are refused at once), wakes idle keep-alive connections,
  /// then gives in-flight requests up to drain_grace_ms to finish and
  /// flush — a slow /query started before Stop() completes normally.
  /// Connections still busy at the deadline are severed. Queued-but-
  /// unserved connections are closed. Joins every thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after Start(); useful with ephemeral port 0).
  uint16_t port() const { return bound_port_; }

  // Serving counters for tests and admission-control probes; the same
  // quantities are published as server.* metrics when metrics are on.
  uint64_t accepted_count() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t shed_count() const {
    return shed_.load(std::memory_order_relaxed);
  }
  uint64_t served_count() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  bool QueuePush(int fd);
  int QueuePop();
  static bool WriteAll(int fd, std::string_view data);
  static std::string Serialize(const HttpResponse& response, bool keep_alive,
                               bool head_request);

  HttpdOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;
  // Connections currently inside ServeConnection. Stop() shuts these
  // down so a worker parked in recv() on an idle keep-alive socket
  // wakes immediately instead of riding out read_timeout_ms.
  std::mutex active_mu_;
  std::vector<int> active_fds_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<int64_t> inflight_{0};
};

}  // namespace opinedb::server

#endif  // OPINEDB_SERVER_HTTPD_H_
