#ifndef OPINEDB_SERVER_SERVER_H_
#define OPINEDB_SERVER_SERVER_H_

#include <functional>
#include <memory>
#include <string>

#include "core/engine.h"
#include "server/httpd.h"

namespace opinedb::repl {
class ReplicationSource;
}  // namespace opinedb::repl

namespace opinedb::server {

/// Query-server configuration on top of the transport options.
struct QueryServerOptions {
  HttpdOptions httpd;
  /// Upper clamp on the per-request `deadline_ms` budget (0 = no
  /// clamp). A client asking for more gets the clamp, so one request
  /// can never hold a worker past the operator's ceiling.
  double max_deadline_ms = 0.0;
  /// Deadline applied when the request names none (0 = unlimited).
  double default_deadline_ms = 0.0;
  /// Directory used by /admin/snapshot/{save,open} when the request
  /// body names none. Admin snapshot routes answer 400 when neither
  /// names a directory.
  std::string snapshot_dir;
  /// Admission cap on one POST /reviews batch. A batch larger than
  /// this answers 400 before touching the engine, so one oversized
  /// ingest request cannot monopolize the exclusive reconfiguration
  /// lock against live queries (0 = no cap).
  size_t max_ingest_batch = 1024;
  /// When set, the server exposes the primary-side replication routes
  /// (GET /repl/wal, GET /repl/snapshot/<gen>) off this source. The
  /// source must outlive the server. Null = routes answer 404.
  repl::ReplicationSource* replication_source = nullptr;
  /// Staleness probe for bounded-staleness reads on a follower:
  /// milliseconds since the replica was last caught up (typically
  /// ReplicationClient::lag_ms). When set, a /query carrying
  /// `max_staleness_ms` is checked against it — over budget the query
  /// still runs but the result is marked `degraded: true`, or answers
  /// 412 when the request also sets `"strict": true`. Null = the field
  /// is accepted and ignored (a primary is never stale).
  std::function<double()> replication_lag_ms;
  /// Failover hook for POST /admin/promote (typically
  /// OpineDb::Promote on the follower's engine, after stopping the
  /// pull loop). Null = the route answers 404.
  std::function<Status()> promote;
};

/// The OpineDB front door: routes HTTP onto one engine.
///
///   POST /query                  {"sql": ..., "deadline_ms"?, "stats"?}
///                                → core::ResultToJson document; honors
///                                  ?trace=1 / ?stats=1 request flags
///   POST /explain                {"sql": ...} → {"plan_text": ...}
///   GET  /metrics                MetricsRegistry::Global().ToJson()
///   GET  /healthz                {"status","entities",
///                                 "snapshot_generation","cache_epoch"}
///   POST /reviews                {"reviews": [{"entity", "reviewer",
///                                 "date", "body"}, ...]}
///                                → {"appended": N, "cache_epoch": E}
///   POST /admin/snapshot/save    {"dir"?} → {"generation": N}
///   POST /admin/snapshot/open    {"dir"?} → {"generation": N}
///   POST /admin/checkpoint       {} → {"generation": N} (WAL fold)
///   POST /admin/promote          {} → {"role": "primary",
///                                 "generation": N} (follower only)
///   GET  /repl/wal               WAL frame shipping (repl/protocol.h)
///   GET  /repl/snapshot/<gen>    snapshot container for catch-up
///
/// On a follower, /query accepts `max_staleness_ms` (and `strict`):
/// when the replication lag probe exceeds the budget, the result is
/// marked `degraded: true` — or the request answers 412 under strict.
/// /healthz additionally reports `role`, `wal`, and
/// `replication_lag_ms` when the corresponding hooks are configured.
///
/// Queries run on Httpd worker threads; the engine's shared
/// reconfiguration lock makes concurrent Execute calls safe, and the
/// admin snapshot routes serialize against in-flight queries inside
/// the engine itself. A request-level `deadline_ms` maps onto
/// core::QueryControl, so an over-budget query returns 200 with
/// `partial: true` and exact-prefix scores instead of an error (the
/// server.deadline_expired counter tracks how often). See
/// docs/SERVING.md for schemas and the admission-control ladder.
class QueryServer {
 public:
  /// `db` must outlive the server. The engine's trace level governs
  /// metrics publication and trace capture exactly as embedded.
  explicit QueryServer(core::OpineDb* db,
                       QueryServerOptions options = QueryServerOptions());

  Status Start();
  void Stop();
  uint16_t port() const { return httpd_->port(); }
  Httpd& httpd() { return *httpd_; }

  /// The routing function, exposed so tests can drive it without a
  /// socket (the loopback suites go through real sockets).
  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleExplain(const HttpRequest& request);
  HttpResponse HandleMetrics() const;
  HttpResponse HandleHealth() const;
  HttpResponse HandleSnapshot(const HttpRequest& request, bool save);
  HttpResponse HandleAppendReviews(const HttpRequest& request);
  HttpResponse HandleCheckpoint();
  HttpResponse HandlePromote();

  core::OpineDb* db_;
  QueryServerOptions options_;
  std::unique_ptr<Httpd> httpd_;
};

}  // namespace opinedb::server

#endif  // OPINEDB_SERVER_SERVER_H_
