#ifndef OPINEDB_SERVER_JSON_H_
#define OPINEDB_SERVER_JSON_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace opinedb::server {

/// A minimal immutable JSON document, parsed by a strict recursive-
/// descent parser with a hard nesting-depth limit. This is the decoder
/// behind every request body the query server accepts, so it is written
/// for hostile input: no recursion past `max_depth`, no over-reads
/// (every advance is bounds-checked against the input view), and every
/// malformed byte produces a typed ParseError instead of UB. The
/// 10k-request fuzz suite (tests/http_fuzz_test.cc) hammers exactly this
/// entry point under ASan/UBSan.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  /// Parses one complete JSON document; trailing whitespace is allowed,
  /// any other trailing byte is an error. `max_depth` bounds nesting of
  /// arrays/objects (a 100k-'[' body must not consume 100k stack
  /// frames).
  static Result<JsonValue> Parse(std::string_view text,
                                 size_t max_depth = 64);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Scalar accessors; defaulted when the kind does not match.
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsNumber(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }

  /// Container accessors (empty for non-containers).
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in source order (later duplicates win in Find).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup (nullptr when absent or not an object). With
  /// duplicate keys the last occurrence wins, matching common decoders.
  const JsonValue* Find(std::string_view key) const;

  /// Typed object-member conveniences for flat request bodies.
  std::optional<std::string> GetString(std::string_view key) const;
  std::optional<double> GetNumber(std::string_view key) const;
  std::optional<bool> GetBool(std::string_view key) const;

 private:
  friend class JsonParser;
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace opinedb::server

#endif  // OPINEDB_SERVER_JSON_H_
