#include "server/httpd.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/fault.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace opinedb::server {

namespace {

/// RFC 7230 token characters (header field names, methods).
bool IsTokenChar(unsigned char c) {
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'':
    case '*': case '+': case '-': case '.': case '^': case '_':
    case '`': case '|': case '~':
      return true;
    default:
      return false;
  }
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return 10 + (c - 'a');
  if (c >= 'A' && c <= 'F') return 10 + (c - 'A');
  return -1;
}

/// Offset just past the first empty line (the header terminator), or
/// npos. Accepts both CRLF and bare LF line endings.
size_t FindHeaderEnd(std::string_view buffer) {
  for (size_t i = 0; i < buffer.size(); ++i) {
    if (buffer[i] != '\n') continue;
    if (i + 1 < buffer.size() && buffer[i + 1] == '\n') return i + 2;
    if (i + 2 < buffer.size() && buffer[i + 1] == '\r' &&
        buffer[i + 2] == '\n') {
      return i + 3;
    }
  }
  return std::string_view::npos;
}

}  // namespace

// --------------------------------------------------------- HttpRequest.

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

std::string_view HttpRequest::QueryParam(std::string_view key) const {
  for (const auto& [name, value] : query_params) {
    if (name == key) return value;
  }
  return {};
}

bool HttpRequest::QueryFlag(std::string_view key) const {
  for (const auto& [name, value] : query_params) {
    if (name == key) return value != "0" && value != "false";
  }
  return false;
}

// -------------------------------------------------------- HttpResponse.

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Error(int status, std::string_view message) {
  std::string body = "{\"error\": ";
  JsonEscapeAppend(message, &body);
  body += "}\n";
  return Json(status, std::move(body));
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 413: return "Payload Too Large";
    case 416: return "Range Not Satisfiable";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

// ------------------------------------------------------- PercentDecode.

bool PercentDecode(std::string_view in, bool plus_is_space,
                   std::string* out) {
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size()) return false;
      const int hi = HexDigit(in[i + 1]);
      const int lo = HexDigit(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out->push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (c == '+' && plus_is_space) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  return true;
}

// ---------------------------------------------------------- HttpParser.

HttpParser::HttpParser(ParserLimits limits) : limits_(limits) {}

HttpParser::State HttpParser::Feed(std::string_view data) {
  if (state_ == State::kError) return state_;
  buffer_.append(data.data(), data.size());
  if (state_ == State::kComplete) return state_;  // Pipelined surplus.
  return Advance();
}

HttpParser::State HttpParser::FailWith(int status, std::string detail) {
  state_ = State::kError;
  error_status_ = status;
  error_detail_ = std::move(detail);
  return state_;
}

HttpParser::State HttpParser::Advance() {
  if (state_ != State::kNeedMore) return state_;
  if (!headers_done_) {
    const size_t end = FindHeaderEnd(buffer_);
    if (end == std::string_view::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return FailWith(431, "header block exceeds " +
                                 std::to_string(limits_.max_header_bytes) +
                                 " bytes");
      }
      return state_;
    }
    if (end > limits_.max_header_bytes) {
      return FailWith(431, "header block exceeds " +
                               std::to_string(limits_.max_header_bytes) +
                               " bytes");
    }
    if (!ParseHeaderBlock(std::string_view(buffer_).substr(0, end))) {
      return state_;  // FailWith already ran.
    }
    headers_done_ = true;
    body_begin_ = end;
  }
  if (buffer_.size() - body_begin_ < body_length_) return state_;
  request_.body = buffer_.substr(body_begin_, body_length_);
  state_ = State::kComplete;
  return state_;
}

bool HttpParser::ParseHeaderBlock(std::string_view block) {
  // Split into lines; the final empty line terminates the block.
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < block.size()) {
    size_t nl = block.find('\n', start);
    if (nl == std::string_view::npos) break;
    std::string_view line = block.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
    start = nl + 1;
  }
  if (lines.empty() || lines[0].empty()) {
    FailWith(400, "empty request line");
    return false;
  }

  // Request line: METHOD SP TARGET SP VERSION, single spaces.
  const std::string_view request_line = lines[0];
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    FailWith(400, "malformed request line");
    return false;
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target =
      request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (method.empty() || method.size() > 16) {
    FailWith(400, "bad method");
    return false;
  }
  for (const char c : method) {
    if (c < 'A' || c > 'Z') {
      FailWith(400, "bad method");
      return false;
    }
  }
  if (target.empty() || target[0] != '/' ||
      target.find(' ') != std::string_view::npos) {
    FailWith(400, "bad request target");
    return false;
  }
  bool http_11 = false;
  if (version == "HTTP/1.1") {
    http_11 = true;
  } else if (version != "HTTP/1.0") {
    FailWith(400, "unsupported HTTP version");
    return false;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);

  // Split the target into path and query, percent-decoding both.
  const size_t qmark = target.find('?');
  const std::string_view raw_path =
      qmark == std::string_view::npos ? target : target.substr(0, qmark);
  if (!PercentDecode(raw_path, /*plus_is_space=*/false, &request_.path)) {
    FailWith(400, "bad percent-encoding in path");
    return false;
  }
  if (request_.path.find('\0') != std::string::npos) {
    FailWith(400, "NUL byte in path");
    return false;
  }
  if (qmark != std::string_view::npos) {
    std::string_view query = target.substr(qmark + 1);
    while (!query.empty()) {
      const size_t amp = query.find('&');
      const std::string_view pair =
          amp == std::string_view::npos ? query : query.substr(0, amp);
      query = amp == std::string_view::npos ? std::string_view()
                                            : query.substr(amp + 1);
      if (pair.empty()) continue;
      const size_t eq = pair.find('=');
      std::string key, value;
      const std::string_view raw_key =
          eq == std::string_view::npos ? pair : pair.substr(0, eq);
      const std::string_view raw_value =
          eq == std::string_view::npos ? std::string_view()
                                       : pair.substr(eq + 1);
      if (!PercentDecode(raw_key, /*plus_is_space=*/true, &key) ||
          !PercentDecode(raw_value, /*plus_is_space=*/true, &value)) {
        FailWith(400, "bad percent-encoding in query");
        return false;
      }
      request_.query_params.emplace_back(std::move(key), std::move(value));
    }
  }

  // Header fields.
  bool have_content_length = false;
  uint64_t content_length = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty()) break;  // Terminator.
    if (line[0] == ' ' || line[0] == '\t') {
      FailWith(400, "obsolete header folding");
      return false;
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      FailWith(400, "malformed header field");
      return false;
    }
    const std::string_view raw_name = line.substr(0, colon);
    for (const char c : raw_name) {
      if (!IsTokenChar(static_cast<unsigned char>(c))) {
        FailWith(400, "bad header name");
        return false;
      }
    }
    const std::string name = ToLower(raw_name);
    const std::string value(Trim(line.substr(colon + 1)));
    for (const char c : value) {
      if (static_cast<unsigned char>(c) < 0x20 && c != '\t') {
        FailWith(400, "control byte in header value");
        return false;
      }
    }
    if (name == "content-length") {
      if (value.empty() || value.size() > 19) {
        FailWith(400, "bad content-length");
        return false;
      }
      uint64_t parsed = 0;
      for (const char c : value) {
        if (c < '0' || c > '9') {
          FailWith(400, "bad content-length");
          return false;
        }
        parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
      }
      if (have_content_length && parsed != content_length) {
        FailWith(400, "conflicting content-length");
        return false;
      }
      have_content_length = true;
      content_length = parsed;
    } else if (name == "transfer-encoding") {
      FailWith(400, "transfer-encoding not supported");
      return false;
    }
    request_.headers.emplace_back(name, std::move(value));
  }

  if (content_length > limits_.max_body_bytes) {
    FailWith(413, "body of " + std::to_string(content_length) +
                      " bytes exceeds " +
                      std::to_string(limits_.max_body_bytes));
    return false;
  }
  body_length_ = content_length;

  // Connection persistence: HTTP/1.1 defaults to keep-alive, 1.0 to
  // close; an explicit Connection header overrides either way.
  request_.keep_alive = http_11;
  const std::string connection = ToLower(request_.Header("connection"));
  if (Contains(connection, "close")) {
    request_.keep_alive = false;
  } else if (Contains(connection, "keep-alive")) {
    request_.keep_alive = true;
  }
  return true;
}

HttpParser::State HttpParser::ResetForNext() {
  if (state_ != State::kComplete) return state_;
  buffer_.erase(0, body_begin_ + body_length_);
  request_ = HttpRequest();
  headers_done_ = false;
  body_begin_ = 0;
  body_length_ = 0;
  state_ = State::kNeedMore;
  return Advance();
}

// --------------------------------------------------------------- Httpd.

Httpd::Httpd(HttpdOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

Httpd::~Httpd() { Stop(); }

Status Httpd::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 256) != 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  const size_t workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Httpd::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  // New arrivals are refused from this instant: the acceptor is gone,
  // so closing the listening socket turns connection attempts during
  // the drain into refusals instead of parking them in the backlog.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Wake workers parked in recv() on idle keep-alive connections:
  // SHUT_RD makes their pending read return 0 immediately, so Stop()
  // never rides out read_timeout_ms — but the write side stays open,
  // so a response in flight (a slow /query that started before the
  // stop) still reaches the client. stopping_ flips keep_alive off,
  // closing each drained connection after its current response.
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }
  queue_cv_.notify_all();
  // Drain grace: bounded wait for in-flight connections to finish.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max(0, options_.drain_grace_ms));
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      if (active_fds_.empty()) break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      // Budget exhausted: sever the stragglers both ways (their
      // response is abandoned mid-write — the bounded-teardown
      // contract beats delivery here).
      std::lock_guard<std::mutex> lock(active_mu_);
      for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (const int fd : queue_) ::close(fd);
    queue_.clear();
  }
  running_.store(false, std::memory_order_release);
}

bool Httpd::QueuePush(int fd) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.queue_capacity) return false;
    queue_.push_back(fd);
  }
  queue_cv_.notify_one();
  return true;
}

int Httpd::QueuePop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [this] {
    return !queue_.empty() || stopping_.load(std::memory_order_acquire);
  });
  // On shutdown the remaining queue is closed unserved by Stop();
  // serving it here could park this worker in recv() mid-teardown.
  if (stopping_.load(std::memory_order_acquire)) return -1;
  if (queue_.empty()) return -1;
  const int fd = queue_.front();
  queue_.pop_front();
  return fd;
}

void Httpd::AcceptLoop() {
  pollfd pfd{listen_fd_, POLLIN, 0};
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // A fault at the accept site drops exactly this connection; the
    // loop keeps serving everyone else.
    bool accept_fault = false;
    try {
      OPINEDB_FAULT("server.accept");
    } catch (const fault::FaultInjected&) {
      accept_fault = true;
    }
    if (accept_fault) {
      OPINEDB_METRIC_COUNT("server.errors", 1);
      ::close(fd);
      continue;
    }
    // Admission control: a full queue (or an armed shed site) answers
    // 429 immediately instead of queueing unbounded work. The write is
    // a few hundred bytes into a fresh socket buffer, so the acceptor
    // never blocks on a slow client here.
    bool shed = false;
    try {
      OPINEDB_FAULT("server.shed");
    } catch (const fault::FaultInjected&) {
      shed = true;
    }
    if (!shed && QueuePush(fd)) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    shed_.fetch_add(1, std::memory_order_relaxed);
    OPINEDB_METRIC_COUNT("server.shed", 1);
    HttpResponse response = HttpResponse::Error(
        429, "server overloaded: admission queue full");
    response.headers.emplace_back("Retry-After", "1");
    WriteAll(fd, Serialize(response, /*keep_alive=*/false,
                           /*head_request=*/false));
    ::close(fd);
  }
}

void Httpd::WorkerLoop() {
  for (;;) {
    const int fd = QueuePop();
    if (fd < 0) return;
    ServeConnection(fd);
  }
}

void Httpd::ServeConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    // Registration and the stop check share one critical section so a
    // concurrent Stop() either sees this fd in its shutdown sweep or
    // we see stopping_ and bail before touching the socket.
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    active_fds_.push_back(fd);
  }
  timeval timeout{};
  timeout.tv_sec = options_.read_timeout_ms / 1000;
  timeout.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  HttpParser parser(options_.limits);
  size_t served_on_connection = 0;
  char buffer[8192];
  for (;;) {
    if (parser.state() == HttpParser::State::kNeedMore) {
      // A fault at the read site abandons the connection mid-request
      // (the client sees a close); the worker moves on cleanly.
      bool read_fault = false;
      try {
        OPINEDB_FAULT("server.read");
      } catch (const fault::FaultInjected&) {
        read_fault = true;
      }
      if (read_fault) {
        OPINEDB_METRIC_COUNT("server.errors", 1);
        break;
      }
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF, timeout or error: close.
      parser.Feed(std::string_view(buffer, static_cast<size_t>(n)));
      continue;
    }
    if (parser.state() == HttpParser::State::kError) {
      OPINEDB_METRIC_COUNT("server.bad_requests", 1);
      const HttpResponse response =
          HttpResponse::Error(parser.error_status(), parser.error_detail());
      WriteAll(fd, Serialize(response, /*keep_alive=*/false,
                             /*head_request=*/false));
      // The client may still be sending (e.g. a 413 mid-upload):
      // closing with unread input would RST the socket and can destroy
      // the response in flight. Shut down our write side and drain
      // until EOF or timeout so the error frame is deliverable.
      ::shutdown(fd, SHUT_WR);
      size_t drained = 0;
      while (drained < options_.limits.max_body_bytes + sizeof(buffer)) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) break;  // EOF or timeout; a flood stops at the cap.
        drained += static_cast<size_t>(n);
      }
      break;
    }

    // One complete request is resident.
    const HttpRequest& request = parser.request();
    ++served_on_connection;
    served_.fetch_add(1, std::memory_order_relaxed);
    OPINEDB_METRIC_COUNT("server.requests", 1);
    OPINEDB_METRIC_GAUGE_SET(
        "server.inflight",
        static_cast<double>(
            inflight_.fetch_add(1, std::memory_order_relaxed) + 1));
    const auto start = std::chrono::steady_clock::now();
    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response = HttpResponse::Error(500, e.what());
    } catch (...) {
      response = HttpResponse::Error(500, "unknown handler failure");
    }
    OPINEDB_METRIC_GAUGE_SET(
        "server.inflight",
        static_cast<double>(
            inflight_.fetch_sub(1, std::memory_order_relaxed) - 1));

    const bool keep_alive =
        request.keep_alive &&
        served_on_connection < options_.max_requests_per_connection &&
        !stopping_.load(std::memory_order_acquire);
    const bool head_request = request.method == "HEAD";
    // A fault at the write site degrades this response to a 500 but
    // must not poison the connection: the substituted response is a
    // well-formed frame, so the next request on the same connection is
    // served normally (asserted by tests/fault_injection_test.cc).
    std::string wire;
    try {
      OPINEDB_FAULT("server.write");
      wire = Serialize(response, keep_alive, head_request);
    } catch (const fault::FaultInjected& e) {
      response = HttpResponse::Error(500, e.what());
      wire = Serialize(response, keep_alive, head_request);
    }
    if (response.status >= 500) {
      OPINEDB_METRIC_COUNT("server.errors", 1);
    } else if (response.status >= 400) {
      OPINEDB_METRIC_COUNT("server.bad_requests", 1);
    }
    if (!WriteAll(fd, wire)) break;
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    OPINEDB_METRIC_LATENCY_MS("server.latency_ms", elapsed_ms);
    if (!keep_alive) break;
    parser.ResetForNext();
  }
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_fds_.erase(std::find(active_fds_.begin(), active_fds_.end(), fd));
  }
  ::close(fd);
}

bool Httpd::WriteAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string Httpd::Serialize(const HttpResponse& response, bool keep_alive,
                             bool head_request) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  if (!head_request) out += response.body;
  return out;
}

}  // namespace opinedb::server
