#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace opinedb::server {
namespace {

bool IsJsonWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Appends a Unicode code point as UTF-8.
void AppendCodePoint(uint32_t cp, std::string* out) {
  if (cp <= 0x7F) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

/// The parser object holds the cursor so the recursive value parser
/// stays readable; every byte access goes through the bounds-checked
/// Peek/Take pair.
class JsonParser {
 public:
  JsonParser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Run() {
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && IsJsonWhitespace(Peek())) ++pos_;
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.size() - pos_ < literal.size()) return false;
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    SkipWhitespace();
    if (AtEnd()) return Fail("unexpected end of input");
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeLiteral("true")) return Fail("bad literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("bad literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("bad literal");
        out->kind_ = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Fail(std::string("unexpected byte '") + c + "'");
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    if (depth >= max_depth_) return Fail("nesting too deep");
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    if (depth >= max_depth_) return Fail("nesting too deep");
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (text_.size() - pos_ < 4) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = 10 + (c - 'a');
      } else if (c >= 'A' && c <= 'F') {
        digit = 10 + (c - 'A');
      } else {
        return Fail("bad \\u escape digit");
      }
      value = (value << 4) | digit;
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    for (;;) {
      if (AtEnd()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(Peek());
      ++pos_;
      if (c == '"') return Status::OK();
      if (c < 0x20) return Fail("raw control byte in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        continue;
      }
      if (AtEnd()) return Fail("truncated escape");
      const char esc = Peek();
      ++pos_;
      switch (esc) {
        case '"':  out->push_back('"');  break;
        case '\\': out->push_back('\\'); break;
        case '/':  out->push_back('/');  break;
        case 'b':  out->push_back('\b'); break;
        case 'f':  out->push_back('\f'); break;
        case 'n':  out->push_back('\n'); break;
        case 'r':  out->push_back('\r'); break;
        case 't':  out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          Status status = ParseHex4(&cp);
          if (!status.ok()) return status;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!ConsumeLiteral("\\u")) return Fail("unpaired surrogate");
            uint32_t low = 0;
            status = ParseHex4(&low);
            if (!status.ok()) return status;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("unpaired surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendCodePoint(cp, out);
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("bad number");
    }
    if (Peek() == '0') {
      ++pos_;  // A leading zero must stand alone.
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("bad fraction");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("bad exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    // The span is already validated digit by digit, so strtod cannot
    // read past it; copy to guarantee NUL termination.
    const std::string span(text_.substr(start, pos_ - start));
    errno = 0;
    const double value = std::strtod(span.c_str(), nullptr);
    if (!std::isfinite(value)) return Fail("number out of range");
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t max_depth_;
};

Result<JsonValue> JsonValue::Parse(std::string_view text, size_t max_depth) {
  return JsonParser(text, max_depth).Run();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) found = &value;
  }
  return found;
}

std::optional<std::string> JsonValue::GetString(std::string_view key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->is_string()) return std::nullopt;
  return value->AsString();
}

std::optional<double> JsonValue::GetNumber(std::string_view key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->is_number()) return std::nullopt;
  return value->AsNumber();
}

std::optional<bool> JsonValue::GetBool(std::string_view key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->is_bool()) return std::nullopt;
  return value->AsBool();
}

}  // namespace opinedb::server
