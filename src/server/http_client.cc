#include "server/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace opinedb::server {

namespace {

/// Offset just past the first blank line, or npos (CRLF or bare LF).
size_t FindHeaderEnd(std::string_view buffer) {
  for (size_t i = 0; i < buffer.size(); ++i) {
    if (buffer[i] != '\n') continue;
    if (i + 1 < buffer.size() && buffer[i + 1] == '\n') return i + 2;
    if (i + 2 < buffer.size() && buffer[i + 1] == '\r' &&
        buffer[i + 2] == '\n') {
      return i + 3;
    }
  }
  return std::string_view::npos;
}

}  // namespace

std::string_view HttpClient::Response::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

HttpClient::~HttpClient() { Close(); }

Status HttpClient::Connect(const std::string& host, uint16_t port,
                           int connect_timeout_ms, int read_timeout_ms) {
  Close();
  if (read_timeout_ms <= 0) read_timeout_ms = connect_timeout_ms;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  timeval timeout{};
  timeout.tv_sec = read_timeout_ms / 1000;
  timeout.tv_usec = (read_timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host: " + host);
  }
  // Non-blocking connect so the handshake honours its own budget
  // (SO_SNDTIMEO does not reliably bound connect() on all kernels): put
  // the socket in O_NONBLOCK, poll for writability, read the final
  // verdict from SO_ERROR, then restore blocking mode for the
  // timeout-governed request I/O.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    const int ready = ::poll(&pfd, 1, connect_timeout_ms);
    if (ready == 0) {
      Close();
      return Status::Unavailable("connect timed out after " +
                                 std::to_string(connect_timeout_ms) +
                                 " ms: " + host + ":" +
                                 std::to_string(port));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (ready < 0 ||
        ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      const Status status = Status::Unavailable(
          std::string("connect: ") +
          std::strerror(so_error != 0 ? so_error : errno));
      Close();
      return status;
    }
  } else if (rc != 0) {
    const Status status =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    Close();
    return status;
  }
  ::fcntl(fd_, F_SETFL, flags);
  buffer_.clear();
  return Status::OK();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status HttpClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Internal("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Close();
      return Status::Unavailable("send timed out (peer stalled)");
    }
    if (n <= 0) {
      const Status status =
          Status::Internal(std::string("send: ") + std::strerror(errno));
      Close();
      return status;
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpClient::Response> HttpClient::Request(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: opinedb\r\n";
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : headers) {
    wire += name + ": " + value + "\r\n";
  }
  wire += "\r\n";
  wire += body;
  Status status = SendRaw(wire);
  if (!status.ok()) return status;
  return ReadResponse();
}

Result<HttpClient::Response> HttpClient::ReadResponse() {
  if (fd_ < 0) return Status::Internal("not connected");
  char chunk[8192];
  // Read until the header block is complete.
  size_t header_end;
  while ((header_end = FindHeaderEnd(buffer_)) == std::string_view::npos) {
    if (buffer_.size() > (1u << 20)) {
      Close();
      return Status::Internal("response header block too large");
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired against a stalled peer: typed so callers'
      // retry loops (the replication client) key on it.
      Close();
      return Status::Unavailable(
          "read timed out waiting for response headers");
    }
    if (n <= 0) {
      Close();
      return Status::Internal("connection closed before response headers");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }

  Response response;
  size_t content_length = 0;
  {
    const std::string_view block =
        std::string_view(buffer_).substr(0, header_end);
    size_t start = 0;
    bool first = true;
    while (start < block.size()) {
      size_t nl = block.find('\n', start);
      if (nl == std::string_view::npos) break;
      std::string_view line = block.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;
      if (first) {
        first = false;
        // "HTTP/1.1 200 OK"
        const size_t sp = line.find(' ');
        if (sp == std::string_view::npos || line.size() < sp + 4) {
          Close();
          return Status::ParseError("bad status line");
        }
        response.status = 0;
        for (size_t i = sp + 1; i < line.size() && line[i] != ' '; ++i) {
          if (line[i] < '0' || line[i] > '9') {
            Close();
            return Status::ParseError("bad status code");
          }
          response.status = response.status * 10 + (line[i] - '0');
        }
        continue;
      }
      if (line.empty()) break;
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos) continue;
      const std::string name = ToLower(line.substr(0, colon));
      const std::string value(Trim(line.substr(colon + 1)));
      if (name == "content-length") {
        content_length = 0;
        for (const char c : value) {
          if (c < '0' || c > '9') {
            Close();
            return Status::ParseError("bad content-length");
          }
          content_length = content_length * 10 + static_cast<size_t>(c - '0');
        }
      }
      response.headers.emplace_back(name, value);
    }
  }

  // Read the body.
  while (buffer_.size() - header_end < content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Close();
      return Status::Unavailable("read timed out mid-body (peer stalled)");
    }
    if (n <= 0) {
      Close();
      return Status::Internal("connection closed mid-body");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  response.body = buffer_.substr(header_end, content_length);
  buffer_.erase(0, header_end + content_length);
  return response;
}

}  // namespace opinedb::server
