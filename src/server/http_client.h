#ifndef OPINEDB_SERVER_HTTP_CLIENT_H_
#define OPINEDB_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace opinedb::server {

/// A minimal blocking HTTP/1.1 client over one TCP connection, shared
/// by the serving tests, the fault sweep and the load driver. Supports
/// keep-alive reuse (Request() may be called repeatedly on one
/// connection) and raw byte injection for protocol-abuse tests.
class HttpClient {
 public:
  struct Response {
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /// First header value for `name` (lower-case), or "" if absent.
    std::string_view Header(std::string_view name) const;
  };

  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  HttpClient& operator=(HttpClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects with separate budgets for the TCP handshake and each
  /// subsequent socket read/write (the replication client uses a tight
  /// connect budget and a looser read budget; read_timeout_ms = 0
  /// inherits connect_timeout_ms). A connection that times out — during
  /// the handshake or against a stalled peer mid-response — surfaces as
  /// the typed, retryable Status::Unavailable, never a generic error.
  Status Connect(const std::string& host, uint16_t port,
                 int connect_timeout_ms = 10000, int read_timeout_ms = 0);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one request and reads the full response. On any transport
  /// or framing error the connection is closed and an error status
  /// returned (a shed or reset connection surfaces here, not as UB).
  Result<Response> Request(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  /// Convenience wrappers.
  Result<Response> Get(const std::string& target) {
    return Request("GET", target);
  }
  Result<Response> Post(const std::string& target, const std::string& body) {
    return Request("POST", target, body);
  }

  /// Writes raw bytes (no framing) — for malformed-request tests.
  Status SendRaw(std::string_view bytes);
  /// Reads one response after SendRaw.
  Result<Response> ReadResponse();

 private:
  int fd_ = -1;
  std::string buffer_;  // Unconsumed bytes beyond the last response.
};

}  // namespace opinedb::server

#endif  // OPINEDB_SERVER_HTTP_CLIENT_H_
