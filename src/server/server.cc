#include "server/server.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/string_util.h"
#include "core/result_json.h"
#include "obs/metrics.h"
#include "repl/protocol.h"
#include "repl/source.h"
#include "server/json.h"

namespace opinedb::server {

namespace {

/// Pulls a boolean request flag from the query string or the body
/// ("?stats=1" and {"stats": true} are equivalent).
bool RequestFlag(const HttpRequest& request, const JsonValue& body,
                 std::string_view key) {
  if (request.QueryFlag(key)) return true;
  if (const JsonValue* member = body.Find(key)) return member->AsBool(false);
  return false;
}

}  // namespace

QueryServer::QueryServer(core::OpineDb* db, QueryServerOptions options)
    : db_(db), options_(std::move(options)) {
  httpd_ = std::make_unique<Httpd>(
      options_.httpd,
      [this](const HttpRequest& request) { return Handle(request); });
}

Status QueryServer::Start() { return httpd_->Start(); }

void QueryServer::Stop() { httpd_->Stop(); }

HttpResponse QueryServer::Handle(const HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/query") {
    if (request.method != "POST") {
      return HttpResponse::Error(405, "POST required");
    }
    return HandleQuery(request);
  }
  if (path == "/explain") {
    if (request.method != "POST") {
      return HttpResponse::Error(405, "POST required");
    }
    return HandleExplain(request);
  }
  if (path == "/metrics") {
    if (request.method != "GET" && request.method != "HEAD") {
      return HttpResponse::Error(405, "GET required");
    }
    return HandleMetrics();
  }
  if (path == "/healthz") {
    if (request.method != "GET" && request.method != "HEAD") {
      return HttpResponse::Error(405, "GET required");
    }
    return HandleHealth();
  }
  if (path == "/reviews") {
    if (request.method != "POST") {
      return HttpResponse::Error(405, "POST required");
    }
    return HandleAppendReviews(request);
  }
  if (path == "/admin/snapshot/save" || path == "/admin/snapshot/open") {
    if (request.method != "POST") {
      return HttpResponse::Error(405, "POST required");
    }
    return HandleSnapshot(request, path == "/admin/snapshot/save");
  }
  if (path == "/admin/checkpoint") {
    if (request.method != "POST") {
      return HttpResponse::Error(405, "POST required");
    }
    return HandleCheckpoint();
  }
  if (path == "/admin/promote") {
    if (request.method != "POST") {
      return HttpResponse::Error(405, "POST required");
    }
    return HandlePromote();
  }
  if (path == repl::kWalRoute) {
    if (request.method != "GET") {
      return HttpResponse::Error(405, "GET required");
    }
    if (options_.replication_source == nullptr) {
      return HttpResponse::Error(404, "replication is not enabled");
    }
    return options_.replication_source->HandleWalFetch(request);
  }
  if (path.rfind(repl::kSnapshotRoutePrefix, 0) == 0) {
    if (request.method != "GET") {
      return HttpResponse::Error(405, "GET required");
    }
    if (options_.replication_source == nullptr) {
      return HttpResponse::Error(404, "replication is not enabled");
    }
    return options_.replication_source->HandleSnapshotFetch(request);
  }
  return HttpResponse::Error(404, "no such route: " + path);
}

HttpResponse QueryServer::HandleQuery(const HttpRequest& request) {
  Result<JsonValue> body = JsonValue::Parse(request.body);
  if (!body.ok()) {
    return HttpResponse::Error(400, body.status().message());
  }
  if (!body->is_object()) {
    return HttpResponse::Error(400, "request body must be a JSON object");
  }
  const std::optional<std::string> sql = body->GetString("sql");
  if (!sql.has_value() || sql->empty()) {
    return HttpResponse::Error(400, "missing required field: sql");
  }

  // Map the request budget onto QueryControl. An absent field means
  // the operator default; an explicit 0 is a zero budget (the query
  // expires at its first checkpoint and returns a partial result); a
  // request above the operator's ceiling gets the ceiling.
  std::optional<double> budget;
  if (options_.default_deadline_ms > 0.0) {
    budget = options_.default_deadline_ms;
  }
  if (const std::optional<double> requested = body->GetNumber("deadline_ms")) {
    if (!(*requested >= 0.0)) {  // Also rejects NaN.
      return HttpResponse::Error(400, "deadline_ms must be >= 0");
    }
    budget = *requested;
  }
  if (options_.max_deadline_ms > 0.0 &&
      (!budget.has_value() || *budget > options_.max_deadline_ms)) {
    budget = options_.max_deadline_ms;
  }
  core::QueryControl control;
  if (budget.has_value()) {
    control.deadline = QueryDeadline::AfterMillis(*budget);
  }

  // Bounded-staleness contract: a request naming `max_staleness_ms` on
  // a node with a lag probe (a follower) is checked against the probe.
  // Over budget, the default is to still answer — marked degraded — so
  // a partitioned follower stays useful for best-effort reads; under
  // `"strict": true` the request answers 412 instead.
  bool stale = false;
  double observed_lag_ms = 0.0;
  if (const std::optional<double> max_staleness =
          body->GetNumber("max_staleness_ms")) {
    if (!(*max_staleness >= 0.0)) {  // Also rejects NaN.
      return HttpResponse::Error(400, "max_staleness_ms must be >= 0");
    }
    if (options_.replication_lag_ms) {
      observed_lag_ms = options_.replication_lag_ms();
      stale = observed_lag_ms > *max_staleness;
    }
  }
  if (stale) {
    OPINEDB_METRIC_COUNT("server.staleness.exceeded", 1);
    if (RequestFlag(request, *body, "strict")) {
      return HttpResponse::Error(
          412, "replica is " + std::to_string(observed_lag_ms) +
                   " ms behind, over the requested max_staleness_ms");
    }
  }

  Result<core::QueryResult> result = db_->Execute(*sql, control);
  if (!result.ok()) {
    return HttpResponse::Error(400, result.status().message());
  }
  if (stale) result->degraded = true;
  if (result->partial) {
    OPINEDB_METRIC_COUNT("server.deadline_expired", 1);
  }

  core::ResultJsonOptions json_options;
  json_options.include_stats = RequestFlag(request, *body, "stats");
  json_options.include_trace = RequestFlag(request, *body, "trace");
  if (const JsonValue* member = body->Find("interpretations")) {
    json_options.include_interpretations = member->AsBool(true);
  }
  return HttpResponse::Json(200, core::ResultToJson(*result, json_options));
}

HttpResponse QueryServer::HandleExplain(const HttpRequest& request) {
  Result<JsonValue> body = JsonValue::Parse(request.body);
  if (!body.ok()) {
    return HttpResponse::Error(400, body.status().message());
  }
  std::optional<std::string> sql =
      body->is_object() ? body->GetString("sql") : std::nullopt;
  if (!sql.has_value() || sql->empty()) {
    return HttpResponse::Error(400, "missing required field: sql");
  }
  // /explain is sugar for an EXPLAIN statement; accept either spelling.
  std::string statement = *sql;
  const std::string lowered = ToLower(Trim(statement));
  if (lowered.rfind("explain", 0) != 0) {
    statement = "explain " + statement;
  }
  Result<core::QueryResult> result = db_->Execute(statement);
  if (!result.ok()) {
    return HttpResponse::Error(400, result.status().message());
  }
  std::string out = "{\n  \"plan\": ";
  JsonEscapeAppend(core::PlanKindName(result->plan), &out);
  out += ",\n  \"plan_text\": ";
  JsonEscapeAppend(result->plan_text, &out);
  out += "\n}\n";
  return HttpResponse::Json(200, std::move(out));
}

HttpResponse QueryServer::HandleMetrics() const {
  return HttpResponse::Json(200, obs::MetricsRegistry::Global().ToJson());
}

HttpResponse QueryServer::HandleHealth() const {
  // A broken WAL means acknowledged-durability is no longer being
  // promised; surface it as a degraded health status so orchestration
  // can stop routing writes here without waiting for one to fail.
  const bool wal_broken = db_->wal_broken();
  std::string out = "{\"status\": ";
  out += wal_broken ? "\"degraded\"" : "\"ok\"";
  out += ", \"entities\": " + std::to_string(db_->corpus().num_entities());
  out += ", \"snapshot_generation\": " +
         std::to_string(db_->snapshot_generation());
  out += ", \"cache_epoch\": " + std::to_string(db_->cache_epoch());
  out += ", \"role\": ";
  out += db_->read_only() ? "\"follower\"" : "\"primary\"";
  // Check broken first: a broken writer is closed, so wal_enabled()
  // is false for it too — "off" must mean "never attached".
  out += ", \"wal\": ";
  out += wal_broken ? "\"broken\""
                    : (db_->wal_enabled() ? "\"on\"" : "\"off\"");
  if (options_.replication_lag_ms) {
    out += ", \"replication_lag_ms\": " +
           std::to_string(options_.replication_lag_ms());
  }
  out += "}\n";
  return HttpResponse::Json(200, std::move(out));
}

HttpResponse QueryServer::HandleSnapshot(const HttpRequest& request,
                                         bool save) {
  std::string dir = options_.snapshot_dir;
  if (!request.body.empty()) {
    Result<JsonValue> body = JsonValue::Parse(request.body);
    if (!body.ok()) {
      return HttpResponse::Error(400, body.status().message());
    }
    if (body->is_object()) {
      if (const std::optional<std::string> requested = body->GetString("dir")) {
        dir = *requested;
      }
    }
  }
  if (dir.empty()) {
    return HttpResponse::Error(
        400, "no snapshot directory: pass {\"dir\": ...} or configure one");
  }
  const Status status = save ? db_->SaveDatabase(dir) : db_->OpenDatabase(dir);
  if (!status.ok()) {
    // Surface storage-layer failures as 500 (the request was well
    // formed; the store was not).
    return HttpResponse::Error(500, status.message());
  }
  std::string out = "{\"generation\": " +
                    std::to_string(db_->snapshot_generation()) + "}\n";
  return HttpResponse::Json(200, std::move(out));
}

HttpResponse QueryServer::HandleAppendReviews(const HttpRequest& request) {
  Result<JsonValue> body = JsonValue::Parse(request.body);
  if (!body.ok()) {
    return HttpResponse::Error(400, body.status().message());
  }
  if (!body->is_object()) {
    return HttpResponse::Error(400, "request body must be a JSON object");
  }
  const JsonValue* reviews_json = body->Find("reviews");
  if (reviews_json == nullptr || !reviews_json->is_array()) {
    return HttpResponse::Error(400, "missing required array field: reviews");
  }
  if (options_.max_ingest_batch > 0 &&
      reviews_json->items().size() > options_.max_ingest_batch) {
    OPINEDB_METRIC_COUNT("server.ingest.rejected_oversized", 1);
    return HttpResponse::Error(
        400, "batch of " + std::to_string(reviews_json->items().size()) +
                 " reviews exceeds max_ingest_batch=" +
                 std::to_string(options_.max_ingest_batch));
  }

  std::vector<text::Review> batch;
  batch.reserve(reviews_json->items().size());
  for (size_t i = 0; i < reviews_json->items().size(); ++i) {
    const JsonValue& item = reviews_json->items()[i];
    const std::string at = "reviews[" + std::to_string(i) + "]";
    if (!item.is_object()) {
      return HttpResponse::Error(400, at + " must be a JSON object");
    }
    text::Review review;
    review.id = 0;  // Assigned by the engine in append order.
    struct IntField {
      const char* name;
      int32_t* dest;
    };
    int32_t entity = 0;
    int32_t reviewer = 0;
    int32_t date = 0;
    for (const IntField& field : {IntField{"entity", &entity},
                                  IntField{"reviewer", &reviewer},
                                  IntField{"date", &date}}) {
      const std::optional<double> number = item.GetNumber(field.name);
      if (!number.has_value()) {
        return HttpResponse::Error(
            400, at + " missing required integer field: " + field.name);
      }
      if (!(*number >= INT32_MIN && *number <= INT32_MAX) ||
          *number != static_cast<double>(static_cast<int64_t>(*number))) {
        return HttpResponse::Error(
            400, at + "." + field.name + " must be a 32-bit integer");
      }
      *field.dest = static_cast<int32_t>(*number);
    }
    review.entity = entity;
    review.reviewer = reviewer;
    review.date = date;
    const std::optional<std::string> review_body = item.GetString("body");
    if (!review_body.has_value()) {
      return HttpResponse::Error(400,
                                 at + " missing required string field: body");
    }
    review.body = *review_body;
    batch.push_back(std::move(review));
  }

  const Status status = db_->AppendReviews(batch);
  if (!status.ok()) {
    // A malformed batch (unknown entity) or an engine configured so
    // that incremental aggregation cannot be exact is the client's
    // problem; anything else (WAL write failure) is ours.
    const bool client_fault =
        status.code() == StatusCode::kInvalidArgument ||
        status.code() == StatusCode::kFailedPrecondition;
    return HttpResponse::Error(client_fault ? 400 : 500, status.message());
  }
  OPINEDB_METRIC_COUNT("server.ingest.requests", 1);
  OPINEDB_METRIC_COUNT("server.ingest.reviews", batch.size());
  std::string out = "{\"appended\": " + std::to_string(batch.size()) +
                    ", \"cache_epoch\": " + std::to_string(db_->cache_epoch()) +
                    "}\n";
  return HttpResponse::Json(200, std::move(out));
}

HttpResponse QueryServer::HandleCheckpoint() {
  const Status status = db_->Checkpoint();
  if (!status.ok()) {
    // Checkpoint without an attached WAL is a client/operator mistake;
    // a failure folding or rotating the log is a server fault.
    const int code =
        status.code() == StatusCode::kFailedPrecondition ? 400 : 500;
    return HttpResponse::Error(code, status.message());
  }
  OPINEDB_METRIC_COUNT("server.ingest.checkpoints", 1);
  std::string out = "{\"generation\": " +
                    std::to_string(db_->snapshot_generation()) + "}\n";
  return HttpResponse::Json(200, std::move(out));
}

HttpResponse QueryServer::HandlePromote() {
  if (!options_.promote) {
    return HttpResponse::Error(
        404, "this node has no promote hook (not a follower)");
  }
  const Status status = options_.promote();
  if (!status.ok()) {
    // Promoting a node that is not a follower (or whose WAL is broken)
    // is an operator mistake; anything else is a server fault.
    const int code =
        status.code() == StatusCode::kFailedPrecondition ? 409 : 500;
    return HttpResponse::Error(code, status.message());
  }
  std::string out = "{\"role\": \"primary\", \"generation\": " +
                    std::to_string(db_->snapshot_generation()) + "}\n";
  return HttpResponse::Json(200, std::move(out));
}

}  // namespace opinedb::server
