# Empty dependencies file for opinedb_tests.
# This may be replaced when dependencies are built.
