
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/opinedb_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/opinedb_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_components_test.cc" "tests/CMakeFiles/opinedb_tests.dir/core_components_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/core_components_test.cc.o.d"
  "/root/repo/tests/core_model_test.cc" "tests/CMakeFiles/opinedb_tests.dir/core_model_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/core_model_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/opinedb_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/embedding_test.cc" "tests/CMakeFiles/opinedb_tests.dir/embedding_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/embedding_test.cc.o.d"
  "/root/repo/tests/engine_integration_test.cc" "tests/CMakeFiles/opinedb_tests.dir/engine_integration_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/engine_integration_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/opinedb_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/opinedb_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/extract_test.cc" "tests/CMakeFiles/opinedb_tests.dir/extract_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/extract_test.cc.o.d"
  "/root/repo/tests/fuzzy_test.cc" "tests/CMakeFiles/opinedb_tests.dir/fuzzy_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/fuzzy_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/opinedb_tests.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/index_test.cc.o.d"
  "/root/repo/tests/ml_test.cc" "tests/CMakeFiles/opinedb_tests.dir/ml_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/ml_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/opinedb_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/restaurant_integration_test.cc" "tests/CMakeFiles/opinedb_tests.dir/restaurant_integration_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/restaurant_integration_test.cc.o.d"
  "/root/repo/tests/sentiment_test.cc" "tests/CMakeFiles/opinedb_tests.dir/sentiment_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/sentiment_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/opinedb_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/text_test.cc" "tests/CMakeFiles/opinedb_tests.dir/text_test.cc.o" "gcc" "tests/CMakeFiles/opinedb_tests.dir/text_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/opinedb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
