
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/attribute_baseline.cc" "src/CMakeFiles/opinedb.dir/baselines/attribute_baseline.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/baselines/attribute_baseline.cc.o.d"
  "/root/repo/src/baselines/gz12.cc" "src/CMakeFiles/opinedb.dir/baselines/gz12.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/baselines/gz12.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/opinedb.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/opinedb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/opinedb.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/aggregator.cc" "src/CMakeFiles/opinedb.dir/core/aggregator.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/aggregator.cc.o.d"
  "/root/repo/src/core/attribute_classifier.cc" "src/CMakeFiles/opinedb.dir/core/attribute_classifier.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/attribute_classifier.cc.o.d"
  "/root/repo/src/core/degree_cache.cc" "src/CMakeFiles/opinedb.dir/core/degree_cache.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/degree_cache.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/opinedb.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/engine.cc.o.d"
  "/root/repo/src/core/interpreter.cc" "src/CMakeFiles/opinedb.dir/core/interpreter.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/interpreter.cc.o.d"
  "/root/repo/src/core/marker_induction.cc" "src/CMakeFiles/opinedb.dir/core/marker_induction.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/marker_induction.cc.o.d"
  "/root/repo/src/core/marker_summary.cc" "src/CMakeFiles/opinedb.dir/core/marker_summary.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/marker_summary.cc.o.d"
  "/root/repo/src/core/membership.cc" "src/CMakeFiles/opinedb.dir/core/membership.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/membership.cc.o.d"
  "/root/repo/src/core/personalize.cc" "src/CMakeFiles/opinedb.dir/core/personalize.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/personalize.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/opinedb.dir/core/query.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/query.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/CMakeFiles/opinedb.dir/core/schema.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/schema.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/CMakeFiles/opinedb.dir/core/serialize.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/core/serialize.cc.o.d"
  "/root/repo/src/datagen/domain_spec.cc" "src/CMakeFiles/opinedb.dir/datagen/domain_spec.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/datagen/domain_spec.cc.o.d"
  "/root/repo/src/datagen/generator.cc" "src/CMakeFiles/opinedb.dir/datagen/generator.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/datagen/generator.cc.o.d"
  "/root/repo/src/datagen/queries.cc" "src/CMakeFiles/opinedb.dir/datagen/queries.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/datagen/queries.cc.o.d"
  "/root/repo/src/datagen/survey.cc" "src/CMakeFiles/opinedb.dir/datagen/survey.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/datagen/survey.cc.o.d"
  "/root/repo/src/embedding/io.cc" "src/CMakeFiles/opinedb.dir/embedding/io.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/embedding/io.cc.o.d"
  "/root/repo/src/embedding/kdtree.cc" "src/CMakeFiles/opinedb.dir/embedding/kdtree.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/embedding/kdtree.cc.o.d"
  "/root/repo/src/embedding/phrase_rep.cc" "src/CMakeFiles/opinedb.dir/embedding/phrase_rep.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/embedding/phrase_rep.cc.o.d"
  "/root/repo/src/embedding/substitution_index.cc" "src/CMakeFiles/opinedb.dir/embedding/substitution_index.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/embedding/substitution_index.cc.o.d"
  "/root/repo/src/embedding/vector_ops.cc" "src/CMakeFiles/opinedb.dir/embedding/vector_ops.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/embedding/vector_ops.cc.o.d"
  "/root/repo/src/embedding/word2vec.cc" "src/CMakeFiles/opinedb.dir/embedding/word2vec.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/embedding/word2vec.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/opinedb.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/opinedb.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/eval/metrics.cc.o.d"
  "/root/repo/src/extract/opinion_tagger.cc" "src/CMakeFiles/opinedb.dir/extract/opinion_tagger.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/extract/opinion_tagger.cc.o.d"
  "/root/repo/src/extract/pairing.cc" "src/CMakeFiles/opinedb.dir/extract/pairing.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/extract/pairing.cc.o.d"
  "/root/repo/src/extract/pipeline.cc" "src/CMakeFiles/opinedb.dir/extract/pipeline.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/extract/pipeline.cc.o.d"
  "/root/repo/src/extract/tags.cc" "src/CMakeFiles/opinedb.dir/extract/tags.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/extract/tags.cc.o.d"
  "/root/repo/src/fuzzy/logic.cc" "src/CMakeFiles/opinedb.dir/fuzzy/logic.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/fuzzy/logic.cc.o.d"
  "/root/repo/src/fuzzy/threshold_algorithm.cc" "src/CMakeFiles/opinedb.dir/fuzzy/threshold_algorithm.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/fuzzy/threshold_algorithm.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/opinedb.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/CMakeFiles/opinedb.dir/ml/kmeans.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/ml/kmeans.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/CMakeFiles/opinedb.dir/ml/logistic_regression.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/ml/logistic_regression.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/CMakeFiles/opinedb.dir/ml/naive_bayes.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/ml/naive_bayes.cc.o.d"
  "/root/repo/src/ml/perceptron_tagger.cc" "src/CMakeFiles/opinedb.dir/ml/perceptron_tagger.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/ml/perceptron_tagger.cc.o.d"
  "/root/repo/src/sentiment/analyzer.cc" "src/CMakeFiles/opinedb.dir/sentiment/analyzer.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/sentiment/analyzer.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/opinedb.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/opinedb.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/storage/value.cc.o.d"
  "/root/repo/src/text/corpus.cc" "src/CMakeFiles/opinedb.dir/text/corpus.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/text/corpus.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/opinedb.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocab.cc" "src/CMakeFiles/opinedb.dir/text/vocab.cc.o" "gcc" "src/CMakeFiles/opinedb.dir/text/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
