# Empty dependencies file for opinedb.
# This may be replaced when dependencies are built.
