file(REMOVE_RECURSE
  "libopinedb.a"
)
