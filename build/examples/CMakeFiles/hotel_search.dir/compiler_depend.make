# Empty compiler generated dependencies file for hotel_search.
# This may be replaced when dependencies are built.
