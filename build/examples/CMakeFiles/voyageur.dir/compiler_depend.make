# Empty compiler generated dependencies file for voyageur.
# This may be replaced when dependencies are built.
