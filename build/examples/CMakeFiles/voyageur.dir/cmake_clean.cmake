file(REMOVE_RECURSE
  "CMakeFiles/voyageur.dir/voyageur.cpp.o"
  "CMakeFiles/voyageur.dir/voyageur.cpp.o.d"
  "voyageur"
  "voyageur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voyageur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
