# Empty dependencies file for opinedb_shell.
# This may be replaced when dependencies are built.
