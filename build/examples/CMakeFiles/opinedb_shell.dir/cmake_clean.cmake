file(REMOVE_RECURSE
  "CMakeFiles/opinedb_shell.dir/opinedb_shell.cpp.o"
  "CMakeFiles/opinedb_shell.dir/opinedb_shell.cpp.o.d"
  "opinedb_shell"
  "opinedb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opinedb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
