# Empty dependencies file for bench_table5_quality.
# This may be replaced when dependencies are built.
