file(REMOVE_RECURSE
  "CMakeFiles/bench_appendixc_pairing.dir/bench_appendixc_pairing.cc.o"
  "CMakeFiles/bench_appendixc_pairing.dir/bench_appendixc_pairing.cc.o.d"
  "bench_appendixc_pairing"
  "bench_appendixc_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendixc_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
