# Empty dependencies file for bench_appendixc_pairing.
# This may be replaced when dependencies are built.
