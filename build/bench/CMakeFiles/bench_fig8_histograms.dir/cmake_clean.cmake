file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_histograms.dir/bench_fig8_histograms.cc.o"
  "CMakeFiles/bench_fig8_histograms.dir/bench_fig8_histograms.cc.o.d"
  "bench_fig8_histograms"
  "bench_fig8_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
