file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fuzzy_vs_hard.dir/bench_fig7_fuzzy_vs_hard.cc.o"
  "CMakeFiles/bench_fig7_fuzzy_vs_hard.dir/bench_fig7_fuzzy_vs_hard.cc.o.d"
  "bench_fig7_fuzzy_vs_hard"
  "bench_fig7_fuzzy_vs_hard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fuzzy_vs_hard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
