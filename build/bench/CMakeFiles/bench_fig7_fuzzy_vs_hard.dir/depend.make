# Empty dependencies file for bench_fig7_fuzzy_vs_hard.
# This may be replaced when dependencies are built.
