file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_markers.dir/bench_table7_markers.cc.o"
  "CMakeFiles/bench_table7_markers.dir/bench_table7_markers.cc.o.d"
  "bench_table7_markers"
  "bench_table7_markers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_markers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
