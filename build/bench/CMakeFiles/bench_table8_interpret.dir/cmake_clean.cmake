file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_interpret.dir/bench_table8_interpret.cc.o"
  "CMakeFiles/bench_table8_interpret.dir/bench_table8_interpret.cc.o.d"
  "bench_table8_interpret"
  "bench_table8_interpret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_interpret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
