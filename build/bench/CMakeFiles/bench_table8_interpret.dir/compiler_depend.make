# Empty compiler generated dependencies file for bench_table8_interpret.
# This may be replaced when dependencies are built.
