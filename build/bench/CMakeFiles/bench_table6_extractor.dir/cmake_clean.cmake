file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_extractor.dir/bench_table6_extractor.cc.o"
  "CMakeFiles/bench_table6_extractor.dir/bench_table6_extractor.cc.o.d"
  "bench_table6_extractor"
  "bench_table6_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
