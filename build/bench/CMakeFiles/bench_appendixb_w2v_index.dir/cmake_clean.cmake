file(REMOVE_RECURSE
  "CMakeFiles/bench_appendixb_w2v_index.dir/bench_appendixb_w2v_index.cc.o"
  "CMakeFiles/bench_appendixb_w2v_index.dir/bench_appendixb_w2v_index.cc.o.d"
  "bench_appendixb_w2v_index"
  "bench_appendixb_w2v_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendixb_w2v_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
