# Empty dependencies file for bench_appendixb_w2v_index.
# This may be replaced when dependencies are built.
