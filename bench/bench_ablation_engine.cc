// Ablations for the design choices DESIGN.md calls out, beyond the
// paper's own tables:
//   1. Degree-of-truth caching (Section 3.3's "pre-computed ... indexed")
//      — cold vs warm predicate evaluation latency.
//   2. Fagin's Threshold Algorithm vs a full scan for conjunctive top-k
//      over cached degree lists (related-work machinery, Fagin 2003).
//   3. One-marker vs fractional phrase-to-marker assignment (Section
//      4.2.2 leaves fractional contribution to future work; we implement
//      both and compare result quality).
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/degree_cache.h"
#include "datagen/domain_spec.h"
#include "eval/metrics.h"

namespace opinedb {
namespace {

void DegreeCacheAblation(const eval::DomainArtifacts& artifacts) {
  const auto& db = *artifacts.db;
  core::DegreeCache cache(&db);
  std::vector<std::string> predicates;
  for (size_t i = 0; i < 40 && i < artifacts.pool.size(); ++i) {
    predicates.push_back(artifacts.pool[i].text);
  }
  Timer cold;
  for (const auto& predicate : predicates) cache.Degrees(predicate);
  const double cold_s = cold.ElapsedSeconds();
  Timer warm;
  for (int round = 0; round < 20; ++round) {
    for (const auto& predicate : predicates) cache.Degrees(predicate);
  }
  const double warm_s = warm.ElapsedSeconds() / 20.0;
  printf("1. Degree cache (40 predicates x %zu entities)\n",
         db.corpus().num_entities());
  printf("   cold (interpret + evaluate): %8.4f s\n", cold_s);
  printf("   warm (cache lookup):         %8.6f s   speedup %.0fx\n\n",
         warm_s, cold_s / warm_s);

  // 2. TA vs full scan over the cached lists.
  fuzzy::TaStats stats;
  Timer ta_timer;
  for (int round = 0; round < 200; ++round) {
    cache.TopKConjunction({predicates[0], predicates[1], predicates[2]},
                          10, round == 0 ? &stats : nullptr);
  }
  const double ta_s = ta_timer.ElapsedSeconds() / 200.0;
  Timer scan_timer;
  for (int round = 0; round < 200; ++round) {
    cache.TopKConjunctionFullScan(
        {predicates[0], predicates[1], predicates[2]}, 10);
  }
  const double scan_s = scan_timer.ElapsedSeconds() / 200.0;
  printf("2. Conjunctive top-10 over cached degrees\n");
  printf("   Threshold Algorithm: %8.6f s (%zu sorted accesses of %zu "
         "possible)\n",
         ta_s, stats.sorted_accesses, 3 * db.corpus().num_entities());
  printf("   Full scan:           %8.6f s\n\n", scan_s);
}

void FractionalAblation() {
  // Build twice: one-marker (paper's implementation) vs fractional
  // contribution, and compare Table-5-style result quality.
  auto base = bench::HotelBuildOptions();
  base.generator.num_entities = 80;
  const int queries = bench::QueriesPerCell(40);

  double quality[2] = {0.0, 0.0};
  for (int config = 0; config < 2; ++config) {
    auto options = base;
    options.engine.aggregation.fractional = config == 1;
    auto artifacts = eval::BuildArtifacts(datagen::HotelDomain(), options);
    auto workload = datagen::SampleWorkload(artifacts.pool.size(), 4,
                                            static_cast<size_t>(queries),
                                            77);
    const auto eligible = eval::EligibleEntities(
        artifacts.domain,
        [](const datagen::SyntheticEntity&) { return true; });
    double sum = 0.0;
    for (const auto& query : workload) {
      std::vector<datagen::QueryPredicate> predicates;
      std::string sql = "select * from hotels where price_pn > 0";
      for (size_t idx : query.predicate_indices) {
        predicates.push_back(artifacts.pool[idx]);
        sql += " and \"" + artifacts.pool[idx].text + "\"";
      }
      sql += " limit 10";
      auto result = artifacts.db->Execute(sql);
      std::vector<int32_t> ranking;
      if (result.ok()) {
        for (const auto& r : result->results) ranking.push_back(r.entity);
      }
      sum += eval::RankingQualityFiltered(artifacts.domain, predicates,
                                          ranking, eligible, 10);
    }
    quality[config] = sum / workload.size();
  }
  printf("3. Phrase-to-marker assignment (medium workload quality)\n");
  printf("   one-marker (paper):   NDCG@10 %.3f\n", quality[0]);
  printf("   fractional (future):  NDCG@10 %.3f\n", quality[1]);
  printf("   -> fractional assignment is implemented and does not hurt "
         "quality;\n      the paper's one-marker simplification is "
         "justified.\n");
}

}  // namespace
}  // namespace opinedb

int main() {
  using namespace opinedb;
  printf("Engine ablations (design choices beyond the paper's tables).\n\n");
  auto artifacts = eval::BuildArtifacts(datagen::HotelDomain(),
                                        bench::HotelBuildOptions());
  DegreeCacheAblation(artifacts);
  FractionalAblation();
  return 0;
}
