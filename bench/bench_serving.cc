// Serving-path load driver: measures the HTTP front door end to end on
// the seed hotel dataset and writes BENCH_serving.json.
//
// Two phases over the same zipfian query mix the cache sweep uses
// (~40 distinct queries, rank weights 1/(rank+1)):
//
//  1. Closed loop: N persistent keep-alive clients issue requests
//     back-to-back for a fixed window, at N = 1, 2, 4, 8, 16. Each
//     step records throughput and the p50/p99/p999 request latency;
//     the best throughput across steps is the max sustainable QPS.
//  2. Open loop at 2x saturation: a dispatcher pool fires
//     one-connection-per-request arrivals paced at twice the measured
//     max QPS against a deliberately small admission queue. Overload
//     must surface as fast 429 sheds — bounded, counted, and reported
//     as the shed rate — never as latency collapse or errors.
//
// Knobs: OPINEDB_SERVING_SECONDS (window per step, default 2),
// OPINEDB_SERVING_OPEN_SECONDS (open-loop window, default 2).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "server/http_client.h"
#include "server/server.h"

namespace opinedb {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsEnv(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) return std::atof(env);
  return fallback;
}

double ElapsedSeconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

/// The zipfian request mix: ~40 distinct /query bodies, heavy head.
struct Workload {
  std::vector<std::string> bodies;
  std::vector<double> weights;
  double total_weight = 0.0;

  size_t Pick(Rng* rng) const {
    double pick = rng->Uniform() * total_weight;
    size_t idx = 0;
    while (idx + 1 < bodies.size() && pick > weights[idx]) {
      pick -= weights[idx];
      ++idx;
    }
    return idx;
  }
};

Workload MakeWorkload(const eval::DomainArtifacts& artifacts) {
  constexpr size_t kDistinct = 40;
  Workload workload;
  for (size_t i = 0; i < kDistinct; ++i) {
    const size_t limit = (i < kDistinct / 2) ? 5 + i % 3 : 10 + i % 3;
    const std::string sql =
        "select * from hotels where \"" +
        artifacts.pool[(i % (kDistinct / 2)) % artifacts.pool.size()].text +
        "\" limit " + std::to_string(limit);
    std::string body = "{\"sql\": ";
    JsonEscapeAppend(sql, &body);
    body += "}";
    workload.bodies.push_back(std::move(body));
    workload.weights.push_back(1.0 / static_cast<double>(i + 1));
    workload.total_weight += workload.weights.back();
  }
  return workload;
}

double Percentile(std::vector<double>* sorted_inout, double q) {
  if (sorted_inout->empty()) return 0.0;
  std::sort(sorted_inout->begin(), sorted_inout->end());
  const size_t n = sorted_inout->size();
  const size_t idx = std::min(
      n - 1, static_cast<size_t>(std::ceil(q * static_cast<double>(n))) -
                 (q > 0.0 ? 1 : 0));
  return (*sorted_inout)[idx];
}

struct ClosedLoopResult {
  size_t clients = 0;
  size_t requests = 0;
  size_t failures = 0;
  size_t reconnects = 0;  // keep-alive cap closes; not failures
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

ClosedLoopResult RunClosedLoop(uint16_t port, const Workload& workload,
                               size_t clients, double seconds) {
  std::atomic<size_t> requests{0};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> reconnects{0};
  std::mutex latencies_mu;
  std::vector<double> latencies;
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(100 + c);
      server::HttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<double> local;
      while (ElapsedSeconds(start) < seconds) {
        const std::string& body = workload.bodies[workload.Pick(&rng)];
        const auto begin = Clock::now();
        auto response = client.Post("/query", body);
        if (!response.ok()) {
          // Expected when the server closes at its keep-alive request
          // cap; transport errors on a live connection would repeat and
          // show up as a failed reconnect.
          reconnects.fetch_add(1);
          if (!client.Connect("127.0.0.1", port).ok()) {
            failures.fetch_add(1);
            return;
          }
          continue;
        }
        if (response->status != 200) {
          failures.fetch_add(1);
          continue;
        }
        local.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - begin)
                .count());
        requests.fetch_add(1);
      }
      std::lock_guard<std::mutex> lock(latencies_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (auto& thread : threads) thread.join();

  ClosedLoopResult result;
  result.clients = clients;
  result.requests = requests.load();
  result.failures = failures.load();
  result.reconnects = reconnects.load();
  result.seconds = ElapsedSeconds(start);
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(result.requests) / result.seconds
                   : 0.0;
  result.p50_ms = Percentile(&latencies, 0.50);
  result.p99_ms = Percentile(&latencies, 0.99);
  result.p999_ms = Percentile(&latencies, 0.999);
  return result;
}

struct OpenLoopResult {
  double target_qps = 0.0;
  size_t attempts = 0;
  size_t served = 0;
  size_t shed = 0;
  size_t errors = 0;
  double seconds = 0.0;
  double shed_rate = 0.0;
  double shed_p99_ms = 0.0;  // 429s must be fast: that is the point.
};

/// Paced arrivals at `target_qps`, one fresh connection per request so
/// admission control sees every arrival. A dispatcher pool consumes a
/// global tick schedule; when the server is saturated the pool falls
/// behind, which is exactly the overload the bounded queue sheds.
OpenLoopResult RunOpenLoop(uint16_t port, const Workload& workload,
                           double target_qps, double seconds) {
  OpenLoopResult result;
  result.target_qps = target_qps;
  const size_t total =
      static_cast<size_t>(std::max(1.0, target_qps * seconds));
  const double interval = 1.0 / target_qps;
  std::atomic<size_t> next_tick{0};
  std::atomic<size_t> served{0}, shed{0}, errors{0};
  std::mutex shed_mu;
  std::vector<double> shed_latencies;
  // Enough blocking dispatchers to keep arrivals ahead of service even
  // on a small box: they spend their time parked in connect/recv, so
  // this is deliberately not scaled to hardware_concurrency (on a
  // single-core runner that would cap outstanding requests below the
  // admission queue depth and overload could never materialize).
  const size_t dispatchers = 32;
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(dispatchers);
  for (size_t d = 0; d < dispatchers; ++d) {
    threads.emplace_back([&, d] {
      Rng rng(500 + d);
      for (;;) {
        const size_t tick = next_tick.fetch_add(1);
        if (tick >= total) return;
        const double due = static_cast<double>(tick) * interval;
        const double now = ElapsedSeconds(start);
        if (due > now) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(due - now));
        }
        server::HttpClient client;
        if (!client.Connect("127.0.0.1", port).ok()) {
          errors.fetch_add(1);
          continue;
        }
        const auto begin = Clock::now();
        auto response =
            client.Post("/query", workload.bodies[workload.Pick(&rng)]);
        if (!response.ok()) {
          errors.fetch_add(1);
        } else if (response->status == 200) {
          served.fetch_add(1);
        } else if (response->status == 429) {
          shed.fetch_add(1);
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - begin)
                                .count();
          std::lock_guard<std::mutex> lock(shed_mu);
          shed_latencies.push_back(ms);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  result.attempts = total;
  result.served = served.load();
  result.shed = shed.load();
  result.errors = errors.load();
  result.seconds = ElapsedSeconds(start);
  result.shed_rate =
      static_cast<double>(result.shed) / static_cast<double>(total);
  result.shed_p99_ms = Percentile(&shed_latencies, 0.99);
  return result;
}

int Main() {
  printf("Serving bench: building the seed hotel dataset...\n");
  auto artifacts =
      eval::BuildArtifacts(datagen::HotelDomain(), bench::HotelBuildOptions());
  const Workload workload = MakeWorkload(artifacts);
  const double step_seconds = SecondsEnv("OPINEDB_SERVING_SECONDS", 2.0);
  const double open_seconds = SecondsEnv("OPINEDB_SERVING_OPEN_SECONDS", 2.0);

  server::QueryServerOptions options;
  options.httpd.num_workers = 4;
  options.httpd.queue_capacity = 16;
  server::QueryServer query_server(artifacts.db.get(), options);
  {
    const Status started = query_server.Start();
    if (!started.ok()) {
      fprintf(stderr, "server start failed: %s\n",
              started.ToString().c_str());
      return 1;
    }
  }
  printf("Server up on 127.0.0.1:%u (%zu workers, queue %zu)\n",
         query_server.port(), options.httpd.num_workers,
         options.httpd.queue_capacity);

  // Warm-up pass so embeddings/indexes are paged in before timing.
  (void)RunClosedLoop(query_server.port(), workload, 2, 0.5);

  const size_t kClientSteps[] = {1, 2, 4, 8, 16};
  std::vector<ClosedLoopResult> closed;
  const ClosedLoopResult* best = nullptr;
  for (const size_t clients : kClientSteps) {
    closed.push_back(RunClosedLoop(query_server.port(), workload, clients,
                                   step_seconds));
    const auto& step = closed.back();
    printf("  closed loop  clients=%2zu  qps=%8.1f  p50=%6.2fms  "
           "p99=%6.2fms  p99.9=%6.2fms  failures=%zu\n",
           step.clients, step.qps, step.p50_ms, step.p99_ms, step.p999_ms,
           step.failures);
    if (best == nullptr || step.qps > best->qps) best = &closed.back();
  }
  const double max_qps = best->qps;
  query_server.Stop();

  // Open-loop overload phase against a deliberately constrained front
  // door (one worker, a small admission queue) over the same database.
  // A multi-worker server on a quiet machine can absorb 2x the
  // closed-loop throughput without its queue ever filling, which would
  // measure nothing; the constrained door guarantees the arrival rate
  // actually exceeds service capacity so the shed path is exercised.
  server::QueryServerOptions constrained = options;
  constrained.httpd.num_workers = 1;
  constrained.httpd.queue_capacity = 8;
  server::QueryServer overload_server(artifacts.db.get(), constrained);
  if (!overload_server.Start().ok()) {
    fprintf(stderr, "overload server start failed\n");
    return 1;
  }
  const ClosedLoopResult single_worker = RunClosedLoop(
      overload_server.port(), workload, 4, std::max(0.5, step_seconds / 2));
  printf("Constrained door saturation: %.1f qps (1 worker, queue %zu)\n",
         single_worker.qps, constrained.httpd.queue_capacity);
  const OpenLoopResult open =
      RunOpenLoop(overload_server.port(), workload, 2.0 * single_worker.qps,
                  open_seconds);
  printf("  open loop 2x: attempts=%zu served=%zu shed=%zu errors=%zu  "
         "shed_rate=%.3f  shed_p99=%.2fms over %.2fs\n",
         open.attempts, open.served, open.shed, open.errors, open.shed_rate,
         open.shed_p99_ms, open.seconds);
  overload_server.Stop();

  FILE* out = fopen("BENCH_serving.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write BENCH_serving.json\n");
    return 1;
  }
  fprintf(out, "{\n");
  fprintf(out, "  \"bench\": \"serving\",\n");
  fprintf(out, "  \"dataset\": \"hotel_seed\",\n");
  opinedb::bench::WriteHostFields(out, options.httpd.num_workers);
  fprintf(out, "  \"workers\": %zu,\n", options.httpd.num_workers);
  fprintf(out, "  \"queue_capacity\": %zu,\n", options.httpd.queue_capacity);
  fprintf(out, "  \"step_seconds\": %.2f,\n", step_seconds);
  fprintf(out, "  \"closed_loop\": [\n");
  for (size_t i = 0; i < closed.size(); ++i) {
    const auto& step = closed[i];
    fprintf(out,
            "    {\"clients\": %zu, \"requests\": %zu, \"failures\": %zu, "
            "\"reconnects\": %zu, \"qps\": %.2f, \"p50_ms\": %.3f, "
            "\"p99_ms\": %.3f, \"p999_ms\": %.3f}%s\n",
            step.clients, step.requests, step.failures, step.reconnects,
            step.qps, step.p50_ms, step.p99_ms, step.p999_ms,
            i + 1 < closed.size() ? "," : "");
  }
  fprintf(out, "  ],\n");
  fprintf(out, "  \"max_sustainable_qps\": %.2f,\n", max_qps);
  fprintf(out, "  \"best_clients\": %zu,\n", best->clients);
  fprintf(out, "  \"p50_ms\": %.3f,\n", best->p50_ms);
  fprintf(out, "  \"p99_ms\": %.3f,\n", best->p99_ms);
  fprintf(out, "  \"p999_ms\": %.3f,\n", best->p999_ms);
  fprintf(out, "  \"open_loop_2x\": {\n");
  fprintf(out, "    \"workers\": %zu,\n", constrained.httpd.num_workers);
  fprintf(out, "    \"queue_capacity\": %zu,\n",
          constrained.httpd.queue_capacity);
  fprintf(out, "    \"saturation_qps\": %.2f,\n", single_worker.qps);
  fprintf(out, "    \"target_qps\": %.2f,\n", open.target_qps);
  fprintf(out, "    \"seconds\": %.2f,\n", open.seconds);
  fprintf(out, "    \"attempts\": %zu,\n", open.attempts);
  fprintf(out, "    \"served\": %zu,\n", open.served);
  fprintf(out, "    \"shed\": %zu,\n", open.shed);
  fprintf(out, "    \"errors\": %zu,\n", open.errors);
  fprintf(out, "    \"shed_rate\": %.4f,\n", open.shed_rate);
  fprintf(out, "    \"shed_p99_ms\": %.3f\n", open.shed_p99_ms);
  fprintf(out, "  }\n");
  fprintf(out, "}\n");
  fclose(out);
  printf("Wrote BENCH_serving.json (max sustainable %.1f qps)\n", max_qps);
  return 0;
}

}  // namespace
}  // namespace opinedb

int main() { return opinedb::Main(); }
