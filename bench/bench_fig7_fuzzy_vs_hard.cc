// Reproduces Appendix A / Figure 7: fuzzy product combination versus hard
// per-predicate thresholds. Prints the two selection frontiers (the
// fuzzy iso-score curve A1*A2 = 0.06 and the hard-constraint rectangle
// A1 > 0.2, A2 > 0.3) and quantifies the shaded area of the figure: the
// near-boundary entities the fuzzy semantics keeps but hard constraints
// drop — which grows with the number of conjuncts.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "fuzzy/logic.h"

namespace opinedb {
namespace {

/// Counts selection outcomes over uniformly random degree-of-truth
/// vectors of `n` predicates.
struct Outcome {
  int fuzzy_only = 0;   // Kept by fuzzy, dropped by hard constraints.
  int hard_only = 0;    // Kept by hard constraints, dropped by fuzzy.
  int both = 0;
};

Outcome Simulate(size_t n, double fuzzy_cut, double hard_threshold,
                 int samples, Rng* rng) {
  Outcome outcome;
  for (int s = 0; s < samples; ++s) {
    double product = 1.0;
    bool hard_pass = true;
    for (size_t j = 0; j < n; ++j) {
      const double degree = rng->Uniform();
      product = fuzzy::And(fuzzy::Variant::kProduct, product, degree);
      if (degree <= hard_threshold) hard_pass = false;
    }
    const bool fuzzy_pass = product >= fuzzy_cut;
    if (fuzzy_pass && !hard_pass) ++outcome.fuzzy_only;
    if (!fuzzy_pass && hard_pass) ++outcome.hard_only;
    if (fuzzy_pass && hard_pass) ++outcome.both;
  }
  return outcome;
}

}  // namespace
}  // namespace opinedb

int main() {
  using namespace opinedb;
  printf("Figure 7: fuzzy product combination vs hard constraints.\n\n");

  // The two frontiers of the figure: points (A2, A1) on each boundary.
  printf("Frontier series (A1 as a function of A2):\n");
  printf("%6s %14s %16s\n", "A2", "fuzzy A1*A2=.06", "hard A1>.2,A2>.3");
  for (double a2 = 0.1; a2 <= 0.9001; a2 += 0.1) {
    const double fuzzy_a1 = 0.06 / a2;
    const double hard_a1 = a2 > 0.3 ? 0.2 : -1.0;  // -1 = excluded.
    if (hard_a1 < 0.0) {
      printf("%6.2f %14.3f %16s\n", a2, fuzzy_a1 > 1.0 ? 1.0 : fuzzy_a1,
             "excluded");
    } else {
      printf("%6.2f %14.3f %16.3f\n", a2, fuzzy_a1 > 1.0 ? 1.0 : fuzzy_a1,
             hard_a1);
    }
  }

  // The quantitative claim: the entities missed by hard constraints but
  // kept by fuzzy logic (the shaded area) grow with the number of
  // conditions.
  printf("\nEntities kept by fuzzy (product >= cut) but dropped by hard "
         "thresholds,\nout of 100000 random entities (cut matched so both "
         "select ~the same share):\n");
  printf("%12s %12s %12s %12s\n", "#conditions", "fuzzy-only", "hard-only",
         "both");
  Rng rng(7);
  for (size_t n = 2; n <= 7; ++n) {
    // Keep the hard threshold fixed at 0.25 per predicate and choose the
    // fuzzy cut as 0.25^n so the nominal corner point coincides.
    double cut = 1.0;
    for (size_t j = 0; j < n; ++j) cut *= 0.25;
    const auto outcome = Simulate(n, cut, 0.25, 100000, &rng);
    printf("%12zu %12d %12d %12d\n", n, outcome.fuzzy_only,
           outcome.hard_only, outcome.both);
  }
  printf("\nExpected shape: fuzzy-only counts dominate hard-only and grow "
         "with #conditions —\nhard constraints discard ever more "
         "near-boundary entities (paper Appendix A).\n");
  return 0;
}
