// Scale benchmark (docs/SCALING.md): builds a synthesized large fixture
// (datagen::BuildScaledFixture — full-size summaries and objective rows,
// models trained on a small vocab sub-corpus) and measures subjective
// scoring throughput with the columnar data plane on and off, single
// threaded and at hardware concurrency. Writes BENCH_scale.json with
// dense-scoring entities/sec, achieved scan GB/s and the columnar/row
// speedup. Entity count: OPINEDB_SCALE_ENTITIES (default 100000);
// repeats: OPINEDB_REPEATS (default 3).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/columnar.h"
#include "core/engine.h"
#include "datagen/scale.h"

namespace opinedb {
namespace {

struct SweepPoint {
  size_t threads = 1;
  bool columnar = false;
  double dense_scoring_ms = 0.0;
  double dense_total_ms = 0.0;
  uint64_t dense_entities = 0;
  double dense_scan_bytes = 0.0;
  double filtered_total_ms = 0.0;

  double EntitiesPerSec() const {
    return dense_scoring_ms > 0.0
               ? static_cast<double>(dense_entities) /
                     (dense_scoring_ms / 1000.0)
               : 0.0;
  }
  double ScanGBps() const {
    return dense_scoring_ms > 0.0
               ? dense_scan_bytes / (dense_scoring_ms / 1000.0) / 1e9
               : 0.0;
  }
};

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const long long v = std::atoll(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

int Run() {
  const size_t num_entities = EnvSize("OPINEDB_SCALE_ENTITIES", 100000);
  const int repeats = bench::Repeats(3);

  datagen::ScaleSpec spec;
  spec.num_entities = num_entities;
  printf("Building scaled fixture (%zu entities)...\n", num_entities);
  datagen::ScaledFixture fixture = datagen::BuildScaledFixture(spec);
  core::OpineDb& db = *fixture.db;

  // One dense (subjective-only) query per sampled predicate, plus the
  // same predicates behind an objective filter to exercise the columnar
  // predicate sweep.
  std::vector<std::string> dense_sql;
  std::vector<std::string> filtered_sql;
  const size_t stride =
      std::max<size_t>(1, fixture.subjective_predicates.size() / 8);
  for (size_t i = 0; i < fixture.subjective_predicates.size() &&
                     dense_sql.size() < 8;
       i += stride) {
    const std::string& predicate = fixture.subjective_predicates[i];
    dense_sql.push_back("select * from " + fixture.table_name + " where \"" +
                        predicate + "\" limit 10");
    filtered_sql.push_back("select * from " + fixture.table_name +
                           " where price_pn < 120 and \"" + predicate +
                           "\" limit 10");
  }

  // Per-query scanned bytes (columnar layout), from the interpretation's
  // bound attributes. Captured while the store is resident.
  const core::ColumnarSummaryStore* store = db.columnar_store();
  if (store == nullptr) {
    fprintf(stderr, "columnar store missing after build\n");
    return 1;
  }
  const size_t store_bytes = store->bytes();
  std::vector<double> query_bytes_per_entity(dense_sql.size(), 0.0);
  for (size_t i = 0; i < dense_sql.size(); ++i) {
    const auto interpretation = db.interpreter().InterpretWord2VecOnly(
        fixture.subjective_predicates[i * stride]);
    for (const auto& atom : interpretation.atoms) {
      if (atom.attribute < 0 ||
          static_cast<size_t>(atom.attribute) >= store->num_attributes()) {
        continue;
      }
      query_bytes_per_entity[i] += static_cast<double>(
          store->attribute(static_cast<size_t>(atom.attribute))
              .scan_bytes_per_entity());
    }
  }

  std::vector<size_t> threads = {1};
  const size_t hw = bench::ResolvedThreads(0);
  if (hw > 1) threads.push_back(hw);

  std::vector<SweepPoint> sweep;
  for (size_t t : threads) {
    db.SetNumThreads(t);
    for (bool columnar : {false, true}) {
      db.SetColumnar(columnar);
      SweepPoint point;
      point.threads = t;
      point.columnar = columnar;
      // Warm-up pass: faults the fixture in and fills the
      // interpretation path once per query.
      for (const auto& sql : dense_sql) {
        auto result = db.Execute(sql);
        if (!result.ok()) {
          fprintf(stderr, "query failed: %s\n",
                  result.status().ToString().c_str());
          return 1;
        }
      }
      for (int r = 0; r < repeats; ++r) {
        for (size_t i = 0; i < dense_sql.size(); ++i) {
          auto result = db.Execute(dense_sql[i]);
          if (!result.ok()) return 1;
          point.dense_scoring_ms += result->stats.scoring_ms;
          point.dense_total_ms += result->stats.total_ms;
          point.dense_entities += result->stats.entities_scored;
          point.dense_scan_bytes +=
              static_cast<double>(result->stats.entities_scored) *
              query_bytes_per_entity[i];
        }
        for (const auto& sql : filtered_sql) {
          auto result = db.Execute(sql);
          if (!result.ok()) return 1;
          point.filtered_total_ms += result->stats.total_ms;
        }
      }
      printf("  threads=%zu %-8s dense %10.0f entities/s  (%.3f GB/s, "
             "scoring %.1f ms)\n",
             t, columnar ? "columnar" : "row", point.EntitiesPerSec(),
             point.ScanGBps(), point.dense_scoring_ms);
      sweep.push_back(point);
    }
  }
  db.SetColumnar(true);

  const SweepPoint* row_1t = nullptr;
  const SweepPoint* col_1t = nullptr;
  for (const auto& point : sweep) {
    if (point.threads != 1) continue;
    (point.columnar ? col_1t : row_1t) = &point;
  }
  const double speedup_1t =
      (row_1t != nullptr && col_1t != nullptr && col_1t->EntitiesPerSec() > 0)
          ? col_1t->EntitiesPerSec() / row_1t->EntitiesPerSec()
          : 0.0;

  FILE* out = fopen("BENCH_scale.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write BENCH_scale.json\n");
    return 1;
  }
  fprintf(out, "{\n");
  fprintf(out, "  \"bench\": \"scale\",\n");
  fprintf(out, "  \"dataset\": \"hotel_scale_synth\",\n");
  bench::WriteHostFields(out, threads.back());
  fprintf(out, "  \"num_entities\": %zu,\n", num_entities);
  fprintf(out, "  \"repeats\": %d,\n", repeats);
  fprintf(out, "  \"dense_queries\": %zu,\n", dense_sql.size());
  fprintf(out, "  \"columnar_store_bytes\": %zu,\n", store_bytes);
  fprintf(out, "  \"thread_sweep\": %s,\n", bench::JsonArray(threads).c_str());
  fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& point = sweep[i];
    fprintf(out,
            "    {\"threads\": %zu, \"columnar\": %s, "
            "\"dense_scoring_ms\": %.3f, \"dense_total_ms\": %.3f, "
            "\"dense_entities_per_sec\": %.1f, \"scan_gbps\": %.4f, "
            "\"filtered_total_ms\": %.3f}%s\n",
            point.threads, point.columnar ? "true" : "false",
            point.dense_scoring_ms, point.dense_total_ms,
            point.EntitiesPerSec(), point.ScanGBps(),
            point.filtered_total_ms, i + 1 < sweep.size() ? "," : "");
  }
  fprintf(out, "  ],\n");
  fprintf(out, "  \"dense_entities_per_sec_row_1t\": %.1f,\n",
          row_1t != nullptr ? row_1t->EntitiesPerSec() : 0.0);
  fprintf(out, "  \"dense_entities_per_sec_columnar_1t\": %.1f,\n",
          col_1t != nullptr ? col_1t->EntitiesPerSec() : 0.0);
  fprintf(out, "  \"scan_gbps_columnar_1t\": %.4f,\n",
          col_1t != nullptr ? col_1t->ScanGBps() : 0.0);
  fprintf(out, "  \"columnar_speedup_1t\": %.3f\n", speedup_1t);
  fprintf(out, "}\n");
  fclose(out);
  printf("Wrote BENCH_scale.json (single-core columnar speedup %.2fx)\n",
         speedup_1t);
  return 0;
}

}  // namespace
}  // namespace opinedb

int main() { return opinedb::Run(); }
