// Reproduces Appendix C: the two pairing models of the opinion extractor.
// The rule-based method links each opinion span to the nearest aspect
// span; the supervised method classifies candidate (aspect, opinion)
// links. The paper reports 83.87% accuracy for the supervised classifier
// on 1000 held-out sentence-phrase pairs; the rule-based method performs
// comparably, which is why OpineDB ships it by default.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <optional>

#include "common/rng.h"
#include "datagen/domain_spec.h"
#include "datagen/generator.h"
#include "extract/pairing.h"

namespace opinedb {
namespace {

/// Builds gold pairing data from two-clause sentences: realize
/// "the <a1> was <o1> and the <a2> was <o2>", whose gold links are
/// (a1, o1) and (a2, o2).
struct PairingDataset {
  std::vector<extract::PairingClassifier::Example> link_examples;
  /// Per sentence: spans + gold pairs (for end-to-end pairing accuracy).
  std::vector<std::pair<std::vector<extract::Span>,
                        std::vector<extract::OpinionPair>>> sentences;
};

PairingDataset BuildDataset(const datagen::DomainSpec& spec, size_t n,
                            uint64_t seed) {
  Rng rng(seed);
  PairingDataset dataset;
  for (size_t i = 0; i < n; ++i) {
    // Two clauses with known span structure.
    std::vector<extract::Span> spans;
    std::vector<extract::OpinionPair> gold;
    int cursor = 0;
    const int clauses = 2;
    for (int c = 0; c < clauses; ++c) {
      const auto& attribute =
          spec.attributes[rng.Below(spec.attributes.size())];
      const int aspect_len = 1;
      const auto& opinion = datagen::SampleOpinion(attribute, rng.Uniform(),
                                                   0.4, &rng);
      const int opinion_len =
          1 + static_cast<int>(std::count(opinion.text.begin(),
                                          opinion.text.end(), ' '));
      // Layout: the <asp> [near the <distractor>] was <op> (and ...)
      // Distractor aspects between the gold aspect and its opinion are
      // the hard cases ("the room near the bar was clean"): proximity
      // alone links the opinion to the wrong aspect.
      extract::Span aspect{cursor + 1, cursor + 1 + aspect_len,
                           extract::kAS};
      int op_begin = cursor + 2 + aspect_len;
      std::optional<extract::Span> distractor;
      if (rng.Bernoulli(0.15)) {
        distractor = extract::Span{op_begin + 1, op_begin + 2, extract::kAS};
        op_begin += 3;  // "near the <distractor>"
      }
      extract::Span op{op_begin, op_begin + opinion_len, extract::kOP};
      spans.push_back(aspect);
      if (distractor.has_value()) spans.push_back(*distractor);
      spans.push_back(op);
      extract::OpinionPair pair;
      pair.aspect = aspect;
      pair.opinion = op;
      gold.push_back(pair);
      cursor = op.end + 1;  // "and"
    }
    // Candidate links: every aspect x opinion combination.
    for (const auto& span : spans) {
      if (span.tag != extract::kOP) continue;
      for (const auto& aspect : spans) {
        if (aspect.tag != extract::kAS) continue;
        extract::PairingClassifier::Example example;
        example.spans = spans;
        example.aspect = aspect;
        example.opinion = span;
        example.correct = false;
        for (const auto& pair : gold) {
          if (pair.aspect == aspect && pair.opinion == span) {
            example.correct = true;
          }
        }
        dataset.link_examples.push_back(std::move(example));
      }
    }
    dataset.sentences.emplace_back(std::move(spans), std::move(gold));
  }
  return dataset;
}

double EndToEndPairAccuracy(
    const PairingDataset& dataset,
    const std::function<std::vector<extract::OpinionPair>(
        const std::vector<extract::Span>&)>& pair_fn) {
  int correct = 0;
  int total = 0;
  for (const auto& [spans, gold] : dataset.sentences) {
    auto predicted = pair_fn(spans);
    for (const auto& g : gold) {
      ++total;
      for (const auto& p : predicted) {
        if (p == g) {
          ++correct;
          break;
        }
      }
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

}  // namespace
}  // namespace opinedb

int main() {
  using namespace opinedb;
  auto spec = datagen::HotelDomain();
  // Paper: 1000 training pairs from the 912 hotel sentences, 1000 test.
  auto train = BuildDataset(spec, 250, 11);   // ~1000 candidate links.
  auto test = BuildDataset(spec, 250, 12);

  auto classifier = extract::PairingClassifier::Train(train.link_examples);

  printf("Appendix C: pairing models of the opinion extractor.\n\n");
  printf("Training candidate links: %zu, test links: %zu\n",
         train.link_examples.size(), test.link_examples.size());
  printf("Supervised link-classification accuracy: %.2f%% (paper: "
         "83.87%%)\n",
         100.0 * classifier.Accuracy(test.link_examples));

  const double rule_accuracy = EndToEndPairAccuracy(
      test, [](const std::vector<extract::Span>& spans) {
        return extract::RuleBasedPairing(spans);
      });
  const double model_accuracy = EndToEndPairAccuracy(
      test, [&](const std::vector<extract::Span>& spans) {
        return classifier.Pair(spans);
      });
  printf("End-to-end pairing accuracy: rule-based %.2f%%, supervised "
         "%.2f%%\n",
         100.0 * rule_accuracy, 100.0 * model_accuracy);
  printf("\nExpected shape: the rule-based method is comparable to the "
         "supervised one\n(the paper keeps the rule-based pairer for this "
         "reason).\n");
  return 0;
}
