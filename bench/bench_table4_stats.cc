// Reproduces Table 4: "Review statistics" — entity counts, review counts,
// average review length and average sentiment polarity under each of the
// four objective query conditions.
#include <cstdio>

#include "bench_common.h"
#include "datagen/domain_spec.h"
#include "datagen/generator.h"
#include "sentiment/analyzer.h"
#include "text/tokenizer.h"

namespace opinedb {
namespace {

struct ConditionStats {
  size_t entities = 0;
  size_t reviews = 0;
  double avg_words = 0.0;
  double avg_polarity = 0.0;
};

ConditionStats ComputeStats(
    const datagen::SyntheticDomain& domain,
    const std::function<bool(const datagen::SyntheticEntity&)>& filter) {
  sentiment::Analyzer analyzer;
  text::Tokenizer tokenizer;
  ConditionStats stats;
  double words = 0.0;
  double polarity = 0.0;
  for (size_t e = 0; e < domain.entities.size(); ++e) {
    if (!filter(domain.entities[e])) continue;
    ++stats.entities;
    for (auto review_id :
         domain.corpus.entity_reviews(static_cast<text::EntityId>(e))) {
      const auto& review = domain.corpus.review(review_id);
      ++stats.reviews;
      words += static_cast<double>(tokenizer.Tokenize(review.body).size());
      polarity += analyzer.ScoreDocument(review.body);
    }
  }
  if (stats.reviews > 0) {
    stats.avg_words = words / static_cast<double>(stats.reviews);
    stats.avg_polarity = polarity / static_cast<double>(stats.reviews);
  }
  return stats;
}

void PrintRow(const char* name, const ConditionStats& stats) {
  printf("%-16s %9zu %9zu %11.2f %12.2f\n", name, stats.entities,
         stats.reviews, stats.avg_words, stats.avg_polarity);
}

}  // namespace
}  // namespace opinedb

int main() {
  using namespace opinedb;
  const auto hotel_options = bench::HotelBuildOptions();
  const auto restaurant_options = bench::RestaurantBuildOptions();
  auto hotels = datagen::GenerateDomain(datagen::HotelDomain(),
                                        hotel_options.generator);
  auto restaurants = datagen::GenerateDomain(datagen::RestaurantDomain(),
                                             restaurant_options.generator);

  printf("Table 4: Review statistics per query condition.\n");
  printf("%-16s %9s %9s %11s %12s\n", "Condition", "#Entities", "#Reviews",
         "avg #words", "avg polarity");
  printf("---------------------------------------------------------------\n");
  PrintRow("London,<$300",
           ComputeStats(hotels, [](const datagen::SyntheticEntity& e) {
             return e.city == "london" && e.price < 300;
           }));
  PrintRow("Amsterdam",
           ComputeStats(hotels, [](const datagen::SyntheticEntity& e) {
             return e.city == "amsterdam";
           }));
  PrintRow("Low Price",
           ComputeStats(restaurants, [](const datagen::SyntheticEntity& e) {
             return e.price_range == 1;
           }));
  PrintRow("JP Cuisine",
           ComputeStats(restaurants, [](const datagen::SyntheticEntity& e) {
             return e.cuisine == "japanese";
           }));
  printf("\nPaper reference (different corpus scale, same shape):\n"
         "  London,<$300: 189 entities / 139,293 reviews / 34.27 / 0.19\n"
         "  Amsterdam:     91 entities /  45,875 reviews / 37.02 / 0.21\n"
         "  Low Price:    112 entities /  22,302 reviews /104.01 / 0.71\n"
         "  JP Cuisine:   108 entities /  24,701 reviews /126.02 / 0.72\n");
  return 0;
}
