// Reproduces Appendix B: the nearest-word substitution index over the
// w2v-based phrase embeddings. Measures the fraction of predicate lookups
// answered without the full k-d tree similarity search and the resulting
// speedup (paper: 54.5% avoided, 19.8% faster).
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "datagen/domain_spec.h"
#include "embedding/substitution_index.h"

int main() {
  using namespace opinedb;
  auto artifacts = eval::BuildArtifacts(datagen::HotelDomain(),
                                        bench::HotelBuildOptions());
  const auto& db = *artifacts.db;

  // Index the union of all linguistic domains (the phrases the w2v
  // interpretation method searches).
  std::vector<std::string> phrases;
  for (const auto& attribute : db.schema().attributes) {
    for (const auto& phrase : attribute.linguistic_domain) {
      phrases.push_back(phrase);
    }
    for (const auto& marker : attribute.summary_type.markers) {
      phrases.push_back(marker);
    }
  }
  embedding::SubstitutionIndex index(phrases, &db.phrase_embedder());
  printf("Appendix B: substitution index over %zu domain phrases.\n\n",
         index.num_phrases());

  // Query workload: the predicate pool.
  size_t fast = 0;
  const int kRounds = 30;  // Amortize timer resolution.
  Timer with_index;
  for (int round = 0; round < kRounds; ++round) {
    for (const auto& predicate : artifacts.pool) {
      auto match = index.Lookup(predicate.text);
      if (round == 0 && match.fast_path) ++fast;
    }
  }
  const double indexed_time = with_index.ElapsedSeconds();

  // Baseline: always run the k-d tree similarity search (simulated by an
  // index over the same phrases whose dictionary never hits: we query
  // pre-embedded representations directly against the tree).
  embedding::KdTree tree;
  {
    std::vector<embedding::Vec> reps;
    for (const auto& phrase : phrases) {
      reps.push_back(db.phrase_embedder().Represent(phrase));
    }
    tree = embedding::KdTree::Build(std::move(reps));
  }
  Timer without_index;
  for (int round = 0; round < kRounds; ++round) {
    for (const auto& predicate : artifacts.pool) {
      tree.Nearest(db.phrase_embedder().Represent(predicate.text));
    }
  }
  const double full_time = without_index.ElapsedSeconds();

  printf("Lookups answered by the fast path: %.1f%% (paper: 54.5%%)\n",
         100.0 * static_cast<double>(fast) /
             static_cast<double>(artifacts.pool.size()));
  printf("Time with index:    %.4f s (%d rounds over %zu predicates)\n",
         indexed_time, kRounds, artifacts.pool.size());
  printf("Time without index: %.4f s\n", full_time);
  printf("Speedup: %.1f%% (paper: 19.8%%)\n",
         100.0 * (full_time - indexed_time) / full_time);
  printf("\nExpected shape: a majority of lookups avoid the similarity "
         "search and total\nlookup time drops by a double-digit "
         "percentage.\n");
  return 0;
}
