// Reproduces Table 5: top-10 result quality (sat / sat-max, the paper's
// NDCG@10-style metric) of the IR baseline (GZ12), the attribute-based
// baselines (ByPrice, ByRating, best 1-/2-attribute) and OpineDB on
// easy/medium/hard conjunctive workloads under each objective condition,
// for both domains. Ground truth comes from the generator's latent
// per-attribute qualities.
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "datagen/domain_spec.h"
#include "eval/metrics.h"

namespace opinedb {
namespace {

constexpr size_t kTopK = 10;

struct Condition {
  const char* name;
  std::function<bool(const datagen::SyntheticEntity&)> filter;
  /// SQL prefix for OpineDB's objective predicates.
  std::string sql_prefix;
};

struct CellScores {
  std::vector<double> gz12, by_price, by_rating, one_attr, two_attr, opine;
};

/// Runs one workload (a set of conjunctive queries) for one condition and
/// accumulates normalized sat scores per method.
void RunWorkload(const eval::DomainArtifacts& artifacts,
                 const Condition& condition,
                 const std::vector<datagen::WorkloadQuery>& workload,
                 CellScores* scores) {
  const auto& domain = artifacts.domain;
  const auto eligible = eval::EligibleEntities(domain, condition.filter);
  if (eligible.empty()) return;

  for (const auto& query : workload) {
    std::vector<datagen::QueryPredicate> predicates;
    std::vector<std::string> texts;
    for (size_t idx : query.predicate_indices) {
      predicates.push_back(artifacts.pool[idx]);
      texts.push_back(artifacts.pool[idx].text);
    }
    // Ground truth restricted to eligible entities: build a filtered view
    // by evaluating rankings that already respect the condition.
    auto quality = [&](const std::vector<int32_t>& ranking) {
      // Quality is computed against the whole domain's sat-max restricted
      // to eligible entities.
      std::vector<std::vector<bool>> satisfied;
      for (size_t j = 0; j < ranking.size() && j < kTopK; ++j) {
        std::vector<bool> row;
        for (const auto& p : predicates) {
          row.push_back(datagen::SatisfiesGroundTruth(
              domain.entities[ranking[j]], p));
        }
        satisfied.push_back(std::move(row));
      }
      std::vector<int> counts;
      for (int32_t e : eligible) {
        int count = 0;
        for (const auto& p : predicates) {
          if (datagen::SatisfiesGroundTruth(domain.entities[e], p)) ++count;
        }
        counts.push_back(count);
      }
      const double best = eval::SatMax(counts, kTopK, predicates.size());
      if (best <= 0.0) return 1.0;
      return eval::SatScore(satisfied) / best;
    };

    // --- GZ12 (IR-based): rank eligible entities by combined BM25.
    {
      auto ranked_all = artifacts.gz12->Rank(
          texts, artifacts.domain.entities.size());
      std::vector<int32_t> ranking;
      for (const auto& scored : ranked_all) {
        if (condition.filter(domain.entities[scored.doc])) {
          ranking.push_back(scored.doc);
          if (ranking.size() == kTopK) break;
        }
      }
      scores->gz12.push_back(quality(ranking));
    }
    // --- Attribute-based baselines.
    scores->by_price.push_back(
        quality(artifacts.attribute_baseline->ByPrice(eligible, kTopK)));
    scores->by_rating.push_back(
        quality(artifacts.attribute_baseline->ByRating(eligible, kTopK)));
    scores->one_attr.push_back(quality(
        artifacts.attribute_baseline->BestOneAttribute(eligible, kTopK,
                                                       quality)));
    scores->two_attr.push_back(quality(
        artifacts.attribute_baseline->BestTwoAttributes(eligible, kTopK,
                                                        quality)));
    // --- OpineDB.
    {
      std::string sql = "select * from " +
                        artifacts.domain.schema.objective_table + " where " +
                        condition.sql_prefix;
      for (const auto& text : texts) {
        sql += " and \"" + text + "\"";
      }
      sql += " limit " + std::to_string(kTopK);
      auto result = artifacts.db->Execute(sql);
      std::vector<int32_t> ranking;
      if (result.ok()) {
        for (const auto& r : result->results) {
          ranking.push_back(r.entity);
        }
      }
      scores->opine.push_back(quality(ranking));
    }
  }
}

void RunDomain(const char* title, const datagen::DomainSpec& spec,
               const eval::BuildOptions& base_options,
               const std::vector<Condition>& conditions) {
  const int repeats = bench::Repeats(3);
  const int queries = bench::QueriesPerCell(60);
  const size_t hardness[] = {2, 4, 7};
  const char* hardness_names[] = {"easy", "medium", "hard"};

  printf("\n=== %s ===\n", title);
  printf("%-12s", "Method");
  for (const auto& condition : conditions) {
    for (const char* h : hardness_names) {
      printf(" %s/%-6s", condition.name, h);
    }
  }
  printf("\n");

  // scores[condition][hardness]
  std::vector<std::vector<CellScores>> cells(
      conditions.size(), std::vector<CellScores>(3));
  for (int r = 0; r < repeats; ++r) {
    auto options = base_options;
    options.generator.seed += static_cast<uint64_t>(r) * 977;
    options.seed += static_cast<uint64_t>(r) * 977;
    auto artifacts = eval::BuildArtifacts(spec, options);
    for (size_t c = 0; c < conditions.size(); ++c) {
      for (size_t h = 0; h < 3; ++h) {
        auto workload = datagen::SampleWorkload(
            artifacts.pool.size(), hardness[h],
            static_cast<size_t>(queries),
            base_options.seed + 31 * r + 7 * h + c);
        RunWorkload(artifacts, conditions[c], workload, &cells[c][h]);
      }
    }
  }

  auto print_row = [&](const char* name,
                       const std::function<const std::vector<double>&(
                           const CellScores&)>& pick) {
    printf("%-12s", name);
    double max_ci = 0.0;
    for (size_t c = 0; c < conditions.size(); ++c) {
      for (size_t h = 0; h < 3; ++h) {
        const auto& values = pick(cells[c][h]);
        printf(" %7.2f  ", eval::Mean(values));
        max_ci = std::max(max_ci, eval::ConfidenceInterval95(values));
      }
    }
    printf("  (max CI +/-%.3f)\n", max_ci);
  };
  print_row("GZ12 (IR)", [](const CellScores& s) -> const std::vector<
                              double>& { return s.gz12; });
  print_row("ByPrice", [](const CellScores& s) -> const std::vector<
                            double>& { return s.by_price; });
  print_row("ByRating", [](const CellScores& s) -> const std::vector<
                             double>& { return s.by_rating; });
  print_row("1-Attribute", [](const CellScores& s) -> const std::vector<
                                double>& { return s.one_attr; });
  print_row("2-Attribute", [](const CellScores& s) -> const std::vector<
                                double>& { return s.two_attr; });
  print_row("OpineDB", [](const CellScores& s) -> const std::vector<
                            double>& { return s.opine; });
}

}  // namespace
}  // namespace opinedb

int main() {
  using namespace opinedb;
  printf("Table 5: top-10 result quality (sat / sat-max).\n");

  std::vector<Condition> hotel_conditions = {
      {"Lon<300",
       [](const datagen::SyntheticEntity& e) {
         return e.city == "london" && e.price < 300;
       },
       "city = 'london' and price_pn < 300"},
      {"Amst",
       [](const datagen::SyntheticEntity& e) {
         return e.city == "amsterdam";
       },
       "city = 'amsterdam'"},
  };
  RunDomain("Hotels (booking.com stand-in)", datagen::HotelDomain(),
            bench::HotelBuildOptions(), hotel_conditions);

  std::vector<Condition> restaurant_conditions = {
      {"LowPr",
       [](const datagen::SyntheticEntity& e) { return e.price_range == 1; },
       "price_range = 1"},
      {"JPCui",
       [](const datagen::SyntheticEntity& e) {
         return e.cuisine == "japanese";
       },
       "cuisine = 'japanese'"},
  };
  RunDomain("Restaurants (yelp stand-in)", datagen::RestaurantDomain(),
            bench::RestaurantBuildOptions(), restaurant_conditions);

  printf("\nPaper reference (hotels, London/easy..hard): GZ12 0.75-0.76, "
         "ByPrice 0.65-0.68,\n  ByRating 0.62-0.65, 1-Attr 0.71-0.72, "
         "2-Attr 0.76-0.78, OpineDB 0.80-0.84.\n"
         "Expected shape: OpineDB >= all baselines; AB improves with more "
         "attributes;\n  OpineDB's margin grows with query hardness.\n");
  return 0;
}
