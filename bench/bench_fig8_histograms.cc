// Reproduces Appendix D / Figure 8: for the query "quiet room", compare
// the quietness marker summary of the top hotel returned by the IR
// baseline with the top hotel returned by OpineDB. The IR winner's
// histogram contains contradicting negative mass (its reviews *mention*
// quietness words a lot, including "noisy"); OpineDB's winner is cleanly
// concentrated on the positive markers.
#include <cstdio>

#include "bench_common.h"
#include "datagen/domain_spec.h"

namespace opinedb {
namespace {

void PrintHistogram(const char* title, const core::MarkerSummary& summary) {
  printf("%s\n", title);
  for (size_t m = 0; m < summary.num_markers(); ++m) {
    printf("  %-14s %6.1f  ", summary.type().markers[m].c_str(),
           summary.count(m));
    const int bars = static_cast<int>(summary.count(m));
    for (int b = 0; b < bars && b < 60; ++b) printf("#");
    printf("\n");
  }
}

}  // namespace
}  // namespace opinedb

int main() {
  using namespace opinedb;
  auto artifacts = eval::BuildArtifacts(datagen::HotelDomain(),
                                        bench::HotelBuildOptions());
  const auto& db = *artifacts.db;
  const int attr = db.schema().AttributeIndex("quietness");
  if (attr < 0) {
    printf("quietness attribute missing\n");
    return 1;
  }
  const std::string query = "quiet street";

  // IR baseline winner.
  auto ir = artifacts.gz12->Rank({query}, 1);
  // OpineDB winner.
  auto result = db.Execute("select * from hotels where \"" + query +
                           "\" limit 1");
  if (ir.empty() || !result.ok() || result->results.empty()) {
    printf("no results\n");
    return 1;
  }
  const auto ir_winner = static_cast<text::EntityId>(ir[0].doc);
  const auto opine_winner = result->results[0].entity;

  printf("Figure 8: quietness summaries of the top hotel for \"%s\".\n\n",
         query.c_str());
  char title[128];
  snprintf(title, sizeof(title), "IR baseline winner: %s (latent quietness "
                                 "%.2f)",
           db.corpus().entity_name(ir_winner).c_str(),
           artifacts.domain.entities[ir_winner].quality[attr]);
  PrintHistogram(title, db.summary(attr, ir_winner));
  printf("\n");
  snprintf(title, sizeof(title), "OpineDB winner: %s (latent quietness "
                                 "%.2f)",
           db.corpus().entity_name(opine_winner).c_str(),
           artifacts.domain.entities[opine_winner].quality[attr]);
  PrintHistogram(title, db.summary(attr, opine_winner));

  // The figure's claim, quantified: fraction of negative-marker mass.
  auto negative_fraction = [&](const core::MarkerSummary& summary) {
    double negative = 0.0;
    double total = summary.total_count();
    for (size_t m = 0; m < summary.num_markers(); ++m) {
      if (db.analyzer().ScorePhrase(summary.type().markers[m]) < 0.0) {
        negative += summary.count(m);
      }
    }
    return total > 0.0 ? negative / total : 0.0;
  };
  printf("\nNegative-marker mass: IR winner %.2f vs OpineDB winner %.2f\n",
         negative_fraction(db.summary(attr, ir_winner)),
         negative_fraction(db.summary(attr, opine_winner)));
  printf("Expected shape: the IR winner carries contradicting negative "
         "mass; OpineDB's does not.\n");
  return 0;
}
