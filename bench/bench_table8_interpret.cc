// Reproduces Table 8: accuracy of the predicate-interpretation methods —
// word2vec alone, co-occurrence alone, and the combined cascade — against
// gold attribute labels, over the hotel and restaurant predicate pools,
// repeated over independently-built databases for confidence intervals.
#include <cstdio>

#include "bench_common.h"
#include "datagen/domain_spec.h"
#include "eval/metrics.h"

namespace opinedb {
namespace {

struct Accuracies {
  double w2v = 0.0;
  double cooccur = 0.0;
  double combined = 0.0;
  size_t pool = 0;
};

Accuracies Evaluate(const eval::DomainArtifacts& artifacts) {
  Accuracies acc;
  size_t w2v_hits = 0;
  size_t cooccur_hits = 0;
  size_t combined_hits = 0;
  size_t total = 0;
  for (const auto& predicate : artifacts.pool) {
    if (predicate.gold_attribute < 0) continue;
    ++total;
    const auto& interpreter = artifacts.db->interpreter();
    // A correlated concept constrained by several attributes ("perfect
    // for our anniversary" is driven by service AND bathroom style)
    // accepts any of its trigger attributes as a correct interpretation;
    // a human labeler could defensibly pick either.
    auto hit = [&](const core::PredicateInterpretation& interpretation) {
      if (interpretation.atoms.empty()) return false;
      const int top = interpretation.atoms[0].attribute;
      if (top == predicate.gold_attribute) return true;
      for (int attr : predicate.quality_attributes) {
        if (top == attr) return true;
      }
      return false;
    };
    if (hit(interpreter.InterpretWord2VecOnly(predicate.text))) ++w2v_hits;
    if (hit(interpreter.InterpretCooccurrenceOnly(predicate.text))) {
      ++cooccur_hits;
    }
    if (hit(interpreter.Interpret(predicate.text))) ++combined_hits;
  }
  acc.pool = total;
  if (total > 0) {
    acc.w2v = 100.0 * w2v_hits / total;
    acc.cooccur = 100.0 * cooccur_hits / total;
    acc.combined = 100.0 * combined_hits / total;
  }
  return acc;
}

}  // namespace
}  // namespace opinedb

int main() {
  using namespace opinedb;
  const int repeats = bench::Repeats(3);
  struct Row {
    const char* name;
    eval::BuildOptions options;
    datagen::DomainSpec spec;
  } rows[] = {
      {"Hotel queries", bench::HotelBuildOptions(), datagen::HotelDomain()},
      {"Restaurant queries", bench::RestaurantBuildOptions(),
       datagen::RestaurantDomain()},
  };
  printf("Table 8: query predicate interpretation accuracy (%%).\n");
  printf("%-20s %5s %8s %9s %14s %7s\n", "Query set", "size", "w2v",
         "co-occur", "w2v+co-occur", "max.CI");
  printf("----------------------------------------------------------------"
         "---\n");
  for (auto& row : rows) {
    std::vector<double> w2v;
    std::vector<double> cooccur;
    std::vector<double> combined;
    size_t pool = 0;
    for (int r = 0; r < repeats; ++r) {
      auto options = row.options;
      options.generator.seed += static_cast<uint64_t>(r) * 101;
      options.seed += static_cast<uint64_t>(r) * 101;
      auto artifacts = eval::BuildArtifacts(row.spec, options);
      const auto acc = Evaluate(artifacts);
      w2v.push_back(acc.w2v);
      cooccur.push_back(acc.cooccur);
      combined.push_back(acc.combined);
      pool = acc.pool;
    }
    const double ci = std::max(
        {eval::ConfidenceInterval95(w2v), eval::ConfidenceInterval95(cooccur),
         eval::ConfidenceInterval95(combined)});
    printf("%-20s %5zu %8.2f %9.2f %14.2f %7.2f\n", row.name, pool,
           eval::Mean(w2v), eval::Mean(cooccur), eval::Mean(combined), ci);
  }
  printf("\nPaper reference: Hotel 84.05 / 72.63 / 84.89, Restaurant 81.62 "
         "/ 68.65 / 82.16.\nExpected shape: w2v strong alone, co-occur "
         "weaker alone, combined >= w2v.\n");
  return 0;
}
