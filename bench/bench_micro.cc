// Micro-benchmarks (google-benchmark) for the core kernels: BM25 top-k,
// fuzzy evaluation (both t-norm variants — the DESIGN.md ablation),
// Fagin's TA vs full scan, k-d tree search, logistic-regression
// inference, tokenization, marker-summary aggregation and the
// observability primitives. After the google-benchmark run, a
// threads={1,2,4,8} sweep of PrecomputeMarkers and ExecuteQuery on the
// seed hotel dataset writes BENCH_parallel.json (skip with
// OPINEDB_SKIP_PARALLEL_SWEEP=1), and a trace_level={off,stats,full}
// sweep of the same query list writes BENCH_obs.json — the
// metrics-overhead numbers DESIGN.md "Observability" quotes (skip with
// OPINEDB_SKIP_OBS_SWEEP=1). Finally, a physical-plan sweep pits the
// dense scan against the objective-pushdown filtered scan across
// price_pn selectivities and against the TA fast path on a warm degree
// cache, writing BENCH_planner.json (skip with
// OPINEDB_SKIP_PLANNER_SWEEP=1), and a snapshot-store sweep times
// SaveDatabase / OpenDatabase / corrupted-generation fallback recovery,
// writing BENCH_snapshot.json (skip with OPINEDB_SKIP_SNAPSHOT_SWEEP=1),
// and a result/interpretation-cache sweep times a zipfian repeat mix
// cold, warm and post-Reaggregate, writing BENCH_cache.json (skip with
// OPINEDB_SKIP_CACHE_SWEEP=1).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cache/cache_config.h"
#include "cache/interpretation_cache.h"
#include "cache/result_cache.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/degree_cache.h"
#include "core/marker_summary.h"
#include "embedding/kdtree.h"
#include "fuzzy/logic.h"
#include "fuzzy/threshold_algorithm.h"
#include "index/inverted_index.h"
#include "ml/logistic_regression.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/snapshot_store.h"
#include "text/tokenizer.h"

namespace opinedb {
namespace {

index::InvertedIndex BuildIndex(size_t docs, size_t words_per_doc) {
  Rng rng(1);
  index::InvertedIndex idx;
  const char* vocab[] = {"clean",  "dirty", "room",   "staff", "friendly",
                         "noisy",  "quiet", "bed",    "soft",  "lumpy",
                         "modern", "old",   "lovely", "cheap", "pricey"};
  for (size_t d = 0; d < docs; ++d) {
    std::vector<std::string> tokens;
    for (size_t w = 0; w < words_per_doc; ++w) {
      tokens.push_back(vocab[rng.Below(std::size(vocab))]);
    }
    idx.AddDocument(tokens);
  }
  return idx;
}

void BM_Bm25TopK(benchmark::State& state) {
  auto idx = BuildIndex(static_cast<size_t>(state.range(0)), 40);
  std::vector<std::string> query = {"clean", "quiet", "friendly"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.TopK(query, 10));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Bm25TopK)->Arg(1000)->Arg(10000);

void BM_FuzzyEvaluate(benchmark::State& state) {
  const auto variant = static_cast<fuzzy::Variant>(state.range(0));
  // (p0 AND (p1 OR p2) AND NOT p3)
  auto expr = fuzzy::Expr::MakeAnd(
      {fuzzy::Expr::Leaf(0),
       fuzzy::Expr::MakeOr({fuzzy::Expr::Leaf(1), fuzzy::Expr::Leaf(2)}),
       fuzzy::Expr::MakeNot(fuzzy::Expr::Leaf(3))});
  Rng rng(2);
  std::vector<double> truths = {rng.Uniform(), rng.Uniform(), rng.Uniform(),
                                rng.Uniform()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->Evaluate(
        variant, [&](size_t i) { return truths[i]; }));
  }
}
BENCHMARK(BM_FuzzyEvaluate)
    ->Arg(static_cast<int>(fuzzy::Variant::kGodel))
    ->Arg(static_cast<int>(fuzzy::Variant::kProduct));

std::vector<std::vector<double>> RandomLists(size_t lists, size_t entities) {
  Rng rng(3);
  std::vector<std::vector<double>> out(lists,
                                       std::vector<double>(entities));
  for (auto& list : out) {
    for (auto& v : list) v = rng.Uniform();
  }
  return out;
}

void BM_ThresholdAlgorithm(benchmark::State& state) {
  auto lists = RandomLists(3, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzzy::ThresholdAlgorithmTopK(
        lists, 10, fuzzy::Variant::kProduct));
  }
}
BENCHMARK(BM_ThresholdAlgorithm)->Arg(1000)->Arg(10000);

void BM_FullScanTopK(benchmark::State& state) {
  auto lists = RandomLists(3, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fuzzy::FullScanTopK(lists, 10, fuzzy::Variant::kProduct));
  }
}
BENCHMARK(BM_FullScanTopK)->Arg(1000)->Arg(10000);

void BM_KdTreeNearest(benchmark::State& state) {
  Rng rng(4);
  std::vector<embedding::Vec> points;
  for (int i = 0; i < state.range(0); ++i) {
    embedding::Vec p(16);
    for (auto& x : p) x = static_cast<float>(rng.Uniform());
    points.push_back(std::move(p));
  }
  auto tree = embedding::KdTree::Build(std::move(points));
  embedding::Vec query(16, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Nearest(query));
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(1000)->Arg(10000);

void BM_LogisticPredict(benchmark::State& state) {
  Rng rng(5);
  std::vector<ml::Example> train;
  for (int i = 0; i < 200; ++i) {
    ml::Example ex;
    for (int j = 0; j < 10; ++j) ex.features.push_back(rng.Uniform());
    ex.label = ex.features[0] > 0.5 ? 1 : 0;
    train.push_back(std::move(ex));
  }
  auto model = ml::LogisticRegression::Train(train, ml::LogRegOptions());
  std::vector<double> features(10, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(features));
  }
}
BENCHMARK(BM_LogisticPredict);

void BM_Tokenize(benchmark::State& state) {
  text::Tokenizer tokenizer;
  const std::string body =
      "The room was very clean, well-decorated and the staff was "
      "incredibly friendly. Breakfast could've been fresher though!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(body));
  }
}
BENCHMARK(BM_Tokenize);

void BM_MarkerSummaryAddPhrase(benchmark::State& state) {
  core::MarkerSummaryType type;
  type.name = "cleanliness";
  type.markers = {"very clean", "average", "dirty", "filthy"};
  core::MarkerSummary summary(&type, 48);
  embedding::Vec vec(48, 0.1f);
  std::vector<double> weights = {1.0, 0.0, 0.0, 0.0};
  for (auto _ : state) {
    summary.AddPhrase(weights, 0.5, vec, 7);
  }
}
BENCHMARK(BM_MarkerSummaryAddPhrase);

// --------------------------------------- Observability primitives.

void BM_MetricCountDisabled(benchmark::State& state) {
  obs::SetMetricsEnabled(false);
  // The trace_level=off cost of an instrumentation site: one relaxed
  // atomic load plus a predictable branch.
  for (auto _ : state) {
    OPINEDB_METRIC_COUNT("bench.count_disabled", 1);
  }
}
BENCHMARK(BM_MetricCountDisabled);

void BM_MetricCountEnabled(benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  for (auto _ : state) {
    OPINEDB_METRIC_COUNT("bench.count_enabled", 1);
  }
  obs::SetMetricsEnabled(false);
}
BENCHMARK(BM_MetricCountEnabled);

void BM_HistogramObserve(benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  double v = 0.0;
  for (auto _ : state) {
    OPINEDB_METRIC_LATENCY_MS("bench.hist_enabled", v);
    v = v < 900.0 ? v + 0.1 : 0.0;
  }
  obs::SetMetricsEnabled(false);
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceSpanDisabled(benchmark::State& state) {
  // No ambient TraceBuffer: span construction is one thread_local read.
  for (auto _ : state) {
    obs::TraceSpan span("bench.span_disabled");
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanRecorded(benchmark::State& state) {
  obs::TraceBuffer buffer(256);
  obs::TraceScope scope(&buffer);
  for (auto _ : state) {
    obs::TraceSpan span("bench.span_recorded");
    span.AddAttribute("k", static_cast<uint64_t>(1));
  }
}
BENCHMARK(BM_TraceSpanRecorded);

// ------------------------------------------- Parallel execution sweep.

/// Times one invocation of `fn` in milliseconds.
template <typename Fn>
double TimeMs(const Fn& fn) {
  Timer timer;
  fn();
  return timer.ElapsedMillis();
}

/// Best-of-`repeats` wall time (minimum is the standard noise-resistant
/// estimator for throughput benchmarks).
template <typename Fn>
double BestOfMs(int repeats, const Fn& fn) {
  double best = TimeMs(fn);
  for (int r = 1; r < repeats; ++r) best = std::min(best, TimeMs(fn));
  return best;
}

void RunParallelSweep() {
  const std::vector<size_t> threads = {1, 2, 4, 8};
  printf("\nParallel sweep: PrecomputeMarkers + ExecuteQuery on the seed "
         "hotel dataset (threads = 1, 2, 4, 8)...\n");
  auto artifacts =
      eval::BuildArtifacts(datagen::HotelDomain(), bench::HotelBuildOptions());
  core::OpineDb& db = *artifacts.db;
  const std::vector<std::string> queries = {
      "select * from hotels where \"clean room\" limit 10",
      "select * from hotels where \"clean room\" and \"friendly staff\" "
      "limit 10",
      "select * from hotels where \"comfortable bed\" or \"quiet street\" "
      "limit 10",
  };
  const int repeats = bench::Repeats();

  std::vector<double> precompute_ms;
  std::vector<double> execute_ms;
  for (size_t t : threads) {
    db.SetNumThreads(t);
    precompute_ms.push_back(BestOfMs(repeats, [&] {
      core::DegreeCache cache(&db);
      cache.PrecomputeMarkers();
    }));
    execute_ms.push_back(BestOfMs(repeats, [&] {
      for (const auto& sql : queries) {
        auto result = db.Execute(sql);
        if (!result.ok()) {
          fprintf(stderr, "query failed: %s\n",
                  result.status().ToString().c_str());
          std::exit(1);
        }
      }
    }));
    printf("  threads=%zu  PrecomputeMarkers %8.2f ms   ExecuteQuery(x%zu) "
           "%8.2f ms\n",
           t, precompute_ms.back(), queries.size(), execute_ms.back());
  }
  db.SetNumThreads(1);

  std::vector<double> precompute_speedup;
  std::vector<double> execute_speedup;
  for (size_t i = 0; i < threads.size(); ++i) {
    precompute_speedup.push_back(precompute_ms[0] / precompute_ms[i]);
    execute_speedup.push_back(execute_ms[0] / execute_ms[i]);
  }

  FILE* out = fopen("BENCH_parallel.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write BENCH_parallel.json\n");
    std::exit(1);
  }
  fprintf(out, "{\n");
  fprintf(out, "  \"bench\": \"parallel_sweep\",\n");
  fprintf(out, "  \"dataset\": \"hotel_seed\",\n");
  bench::WriteHostFields(out, threads.back());
  fprintf(out, "  \"repeats\": %d,\n", repeats);
  fprintf(out, "  \"threads\": %s,\n", bench::JsonArray(threads).c_str());
  fprintf(out, "  \"precompute_markers_ms\": %s,\n",
          bench::JsonArray(precompute_ms).c_str());
  fprintf(out, "  \"execute_query_ms\": %s,\n",
          bench::JsonArray(execute_ms).c_str());
  fprintf(out, "  \"precompute_markers_speedup\": %s,\n",
          bench::JsonArray(precompute_speedup).c_str());
  fprintf(out, "  \"execute_query_speedup\": %s,\n",
          bench::JsonArray(execute_speedup).c_str());
  fprintf(out, "  \"speedup_precompute_4t\": %g,\n", precompute_speedup[2]);
  fprintf(out, "  \"speedup_execute_4t\": %g\n", execute_speedup[2]);
  fprintf(out, "}\n");
  fclose(out);
  printf("  wrote BENCH_parallel.json (4-thread speedups: "
         "PrecomputeMarkers %.2fx, ExecuteQuery %.2fx)\n",
         precompute_speedup[2], execute_speedup[2]);
}

// ----------------------------------------- Observability overhead sweep.

void RunObsOverheadSweep() {
  printf("\nObservability sweep: ExecuteQuery on the seed hotel dataset "
         "at trace_level = off, stats, full...\n");
  auto artifacts =
      eval::BuildArtifacts(datagen::HotelDomain(), bench::HotelBuildOptions());
  core::OpineDb& db = *artifacts.db;
  db.SetNumThreads(1);  // Serial: cleanest per-query-cost comparison.
  const std::vector<std::string> queries = {
      "select * from hotels where \"clean room\" limit 10",
      "select * from hotels where \"clean room\" and \"friendly staff\" "
      "limit 10",
      "select * from hotels where \"comfortable bed\" or \"quiet street\" "
      "limit 10",
  };
  const int repeats = std::max(bench::Repeats(), 5);
  auto sweep = [&] {
    for (const auto& sql : queries) {
      auto result = db.Execute(sql);
      if (!result.ok()) {
        fprintf(stderr, "query failed: %s\n",
                result.status().ToString().c_str());
        std::exit(1);
      }
    }
  };

  // Off is measured twice: their relative difference is the run-to-run
  // noise floor, which bounds how much the off-level instrumentation
  // sites (one relaxed atomic load + branch each) can possibly cost.
  db.SetTraceLevel(obs::TraceLevel::kOff);
  const double off_ms = BestOfMs(repeats, sweep);
  const double off_rerun_ms = BestOfMs(repeats, sweep);
  db.SetTraceLevel(obs::TraceLevel::kStats);
  const double stats_ms = BestOfMs(repeats, sweep);
  db.SetTraceLevel(obs::TraceLevel::kFull);
  const double full_ms = BestOfMs(repeats, sweep);
  db.SetTraceLevel(obs::TraceLevel::kOff);

  const double off_best = std::min(off_ms, off_rerun_ms);
  auto pct_vs_off = [off_best](double ms) {
    return (ms - off_best) / off_best * 100.0;
  };
  const double off_noise_pct =
      std::fabs(off_ms - off_rerun_ms) / off_best * 100.0;
  const double stats_pct = pct_vs_off(stats_ms);
  const double full_pct = pct_vs_off(full_ms);

  // Per-site cost of a disabled instrumentation point, in nanoseconds.
  constexpr int kOps = 2'000'000;
  obs::SetMetricsEnabled(false);
  const double disabled_count_ns = TimeMs([&] {
    for (int i = 0; i < kOps; ++i) {
      OPINEDB_METRIC_COUNT("obs_sweep.disabled", 1);
    }
  }) * 1e6 / kOps;
  const double disabled_span_ns = TimeMs([&] {
    for (int i = 0; i < kOps; ++i) {
      obs::TraceSpan span("obs_sweep.disabled");
      benchmark::DoNotOptimize(span.active());
    }
  }) * 1e6 / kOps;

  printf("  off   %8.2f ms (re-run %8.2f ms, noise %.2f%%)\n", off_ms,
         off_rerun_ms, off_noise_pct);
  printf("  stats %8.2f ms (%+.2f%% vs off)\n", stats_ms, stats_pct);
  printf("  full  %8.2f ms (%+.2f%% vs off)\n", full_ms, full_pct);
  printf("  disabled site: count %.1f ns, span %.1f ns\n",
         disabled_count_ns, disabled_span_ns);

  FILE* out = fopen("BENCH_obs.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write BENCH_obs.json\n");
    std::exit(1);
  }
  fprintf(out, "{\n");
  fprintf(out, "  \"bench\": \"obs_overhead_sweep\",\n");
  fprintf(out, "  \"dataset\": \"hotel_seed\",\n");
  bench::WriteHostFields(out, bench::ResolvedThreads(0));
  fprintf(out, "  \"repeats\": %d,\n", repeats);
  fprintf(out, "  \"queries_per_sweep\": %zu,\n", queries.size());
  fprintf(out, "  \"execute_query_ms_off\": %g,\n", off_ms);
  fprintf(out, "  \"execute_query_ms_off_rerun\": %g,\n", off_rerun_ms);
  fprintf(out, "  \"execute_query_ms_stats\": %g,\n", stats_ms);
  fprintf(out, "  \"execute_query_ms_full\": %g,\n", full_ms);
  fprintf(out, "  \"trace_off_noise_floor_pct\": %g,\n", off_noise_pct);
  fprintf(out, "  \"overhead_stats_pct\": %g,\n", stats_pct);
  fprintf(out, "  \"overhead_full_pct\": %g,\n", full_pct);
  fprintf(out, "  \"disabled_metric_count_ns\": %g,\n", disabled_count_ns);
  fprintf(out, "  \"disabled_trace_span_ns\": %g\n", disabled_span_ns);
  fprintf(out, "}\n");
  fclose(out);
  printf("  wrote BENCH_obs.json (stats %+.2f%%, full %+.2f%% vs off)\n",
         stats_pct, full_pct);
}

// ------------------------------------------------ Planner plan sweep.

void RunPlannerSweep() {
  printf("\nPlanner sweep: dense scan vs objective pushdown vs TA fast "
         "path on the seed hotel dataset...\n");
  auto artifacts =
      eval::BuildArtifacts(datagen::HotelDomain(), bench::HotelBuildOptions());
  core::OpineDb& db = *artifacts.db;
  db.SetNumThreads(1);  // Serial: isolates plan work, not parallelism.
  const int repeats = std::max(bench::Repeats(), 5);
  const size_t num_entities = db.corpus().num_entities();

  auto run_forced = [&](core::PlanForce force, const std::string& sql,
                        core::QueryResult* last) {
    db.mutable_options()->force_plan = force;
    const double ms = BestOfMs(repeats, [&] {
      auto result = db.Execute(sql);
      if (!result.ok()) {
        fprintf(stderr, "query failed: %s\n",
                result.status().ToString().c_str());
        std::exit(1);
      }
      if (last != nullptr) *last = std::move(*result);
    });
    db.mutable_options()->force_plan = core::PlanForce::kAuto;
    return ms;
  };

  // Pushdown: one subjective predicate behind a price cut-off of
  // decreasing selectivity. No degree cache attached, so subjective
  // scoring really recomputes per entity — the work the filter skips.
  const std::vector<int> cutoffs = {100, 200, 300, 400, 550};
  std::vector<double> dense_ms;
  std::vector<double> filtered_ms;
  std::vector<double> pushdown_speedup;
  std::vector<size_t> survivors;
  std::vector<double> selectivity;
  for (const int cutoff : cutoffs) {
    const std::string sql = "select * from hotels where price_pn < " +
                            std::to_string(cutoff) +
                            " and \"friendly staff\" limit 10";
    core::QueryResult filtered_result;
    dense_ms.push_back(
        run_forced(core::PlanForce::kDenseScan, sql, nullptr));
    filtered_ms.push_back(
        run_forced(core::PlanForce::kFilteredScan, sql, &filtered_result));
    if (filtered_result.plan != core::PlanKind::kFilteredScan) {
      fprintf(stderr, "expected filtered_scan plan\n");
      std::exit(1);
    }
    pushdown_speedup.push_back(dense_ms.back() / filtered_ms.back());
    survivors.push_back(filtered_result.stats.entities_scored);
    selectivity.push_back(static_cast<double>(survivors.back()) /
                          static_cast<double>(num_entities));
    printf("  price_pn < %-3d  survivors %3zu/%zu  dense %7.2f ms  "
           "filtered %7.2f ms  speedup %.2fx\n",
           cutoff, survivors.back(), num_entities, dense_ms.back(),
           filtered_ms.back(), pushdown_speedup.back());
  }

  // TA fast path: conjunctive subjective query over a warm degree
  // cache. Dense still reads the cached lists, so the delta is pure
  // combine+rank work vs Fagin early termination.
  core::DegreeCache cache(&db);
  db.AttachDegreeCache(&cache);
  const std::string ta_sql =
      "select * from hotels where \"clean room\" and \"friendly staff\" "
      "limit 10";
  core::QueryResult ta_result;
  (void)run_forced(core::PlanForce::kDenseScan, ta_sql, nullptr);  // Warm.
  const double ta_dense_ms =
      run_forced(core::PlanForce::kDenseScan, ta_sql, nullptr);
  const double ta_ms = run_forced(core::PlanForce::kTaTopK, ta_sql,
                                  &ta_result);
  db.AttachDegreeCache(nullptr);
  if (ta_result.plan != core::PlanKind::kTaTopK) {
    fprintf(stderr, "expected ta_topk plan\n");
    std::exit(1);
  }
  const double ta_speedup = ta_dense_ms / ta_ms;
  printf("  TA (warm cache): dense %7.2f ms  ta %.2f ms  speedup %.2fx  "
         "entities_seen %zu/%zu\n",
         ta_dense_ms, ta_ms, ta_speedup, ta_result.stats.entities_scored,
         num_entities);

  FILE* out = fopen("BENCH_planner.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write BENCH_planner.json\n");
    std::exit(1);
  }
  fprintf(out, "{\n");
  fprintf(out, "  \"bench\": \"planner_sweep\",\n");
  fprintf(out, "  \"dataset\": \"hotel_seed\",\n");
  bench::WriteHostFields(out, bench::ResolvedThreads(0));
  fprintf(out, "  \"repeats\": %d,\n", repeats);
  fprintf(out, "  \"num_entities\": %zu,\n", num_entities);
  fprintf(out, "  \"price_cutoffs\": %s,\n",
          bench::JsonArray(cutoffs).c_str());
  fprintf(out, "  \"survivors\": %s,\n", bench::JsonArray(survivors).c_str());
  fprintf(out, "  \"selectivity\": %s,\n",
          bench::JsonArray(selectivity).c_str());
  fprintf(out, "  \"dense_ms\": %s,\n", bench::JsonArray(dense_ms).c_str());
  fprintf(out, "  \"filtered_ms\": %s,\n",
          bench::JsonArray(filtered_ms).c_str());
  fprintf(out, "  \"pushdown_speedup\": %s,\n",
          bench::JsonArray(pushdown_speedup).c_str());
  fprintf(out, "  \"ta_dense_ms\": %g,\n", ta_dense_ms);
  fprintf(out, "  \"ta_ms\": %g,\n", ta_ms);
  fprintf(out, "  \"ta_speedup\": %g,\n", ta_speedup);
  fprintf(out, "  \"ta_entities_seen\": %zu\n",
          ta_result.stats.entities_scored);
  fprintf(out, "}\n");
  fclose(out);
  printf("  wrote BENCH_planner.json (most selective pushdown %.2fx, "
         "TA %.2fx)\n",
         pushdown_speedup.front(), ta_speedup);
}

// ------------------------------------------------ Snapshot store sweep.

void RunSnapshotSweep() {
  printf("\nSnapshot sweep: SaveDatabase / OpenDatabase / corrupted-"
         "generation recovery on the seed hotel dataset...\n");
  namespace fs = std::filesystem;
  auto artifacts =
      eval::BuildArtifacts(datagen::HotelDomain(), bench::HotelBuildOptions());
  core::OpineDb& db = *artifacts.db;
  const int repeats = std::max(bench::Repeats(), 5);
  const fs::path dir = fs::temp_directory_path() / "opinedb_bench_snapshot";
  std::error_code ec;
  fs::remove_all(dir, ec);
  const std::string dir_str = dir.string();

  auto must_ok = [](const Status& status, const char* what) {
    if (!status.ok()) {
      fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
      std::exit(1);
    }
  };

  // Save: each call commits a fresh generation (GC keeps the directory
  // from growing across repeats).
  storage::SnapshotStore store(dir_str);
  const double save_ms = BestOfMs(repeats, [&] {
    must_ok(db.SaveDatabase(dir_str), "SaveDatabase");
    must_ok(store.GarbageCollect(2), "GarbageCollect");
  });
  const uint64_t generation = db.snapshot_generation();
  const auto snapshot_bytes = static_cast<size_t>(fs::file_size(
      dir / storage::SnapshotStore::GenerationFileName(generation)));

  // Open: verify every checksum, parse both payloads, swap engine state.
  const double open_ms = BestOfMs(repeats, [&] {
    must_ok(db.OpenDatabase(dir_str), "OpenDatabase");
  });

  // Recovery with fallback: the newest generation is bit-rotted, so
  // every open pays one failed verification before serving the older
  // generation. The delta over open_ms is the cost of skipping one
  // corrupt file.
  must_ok(db.SaveDatabase(dir_str), "SaveDatabase");
  const fs::path newest =
      dir / storage::SnapshotStore::GenerationFileName(db.snapshot_generation());
  {
    std::fstream file(newest, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(snapshot_bytes / 2));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(snapshot_bytes / 2));
    file.put(static_cast<char>(byte ^ 0x10));
  }
  const double fallback_ms = BestOfMs(repeats, [&] {
    must_ok(db.OpenDatabase(dir_str), "OpenDatabase (fallback)");
  });
  if (db.snapshot_generation() == 0) {
    fprintf(stderr, "fallback open served no generation\n");
    std::exit(1);
  }

  fs::remove_all(dir, ec);
  printf("  save %8.2f ms  open %8.2f ms  open+fallback %8.2f ms  "
         "(%zu snapshot bytes)\n",
         save_ms, open_ms, fallback_ms, snapshot_bytes);

  FILE* out = fopen("BENCH_snapshot.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write BENCH_snapshot.json\n");
    std::exit(1);
  }
  fprintf(out, "{\n");
  fprintf(out, "  \"bench\": \"snapshot_sweep\",\n");
  fprintf(out, "  \"dataset\": \"hotel_seed\",\n");
  bench::WriteHostFields(out, bench::ResolvedThreads(0));
  fprintf(out, "  \"repeats\": %d,\n", repeats);
  fprintf(out, "  \"snapshot_bytes\": %zu,\n", snapshot_bytes);
  fprintf(out, "  \"save_database_ms\": %g,\n", save_ms);
  fprintf(out, "  \"open_database_ms\": %g,\n", open_ms);
  fprintf(out, "  \"open_with_fallback_ms\": %g,\n", fallback_ms);
  fprintf(out, "  \"fallback_overhead_ms\": %g\n", fallback_ms - open_ms);
  fprintf(out, "}\n");
  fclose(out);
  printf("  wrote BENCH_snapshot.json (fallback overhead %.2f ms)\n",
         fallback_ms - open_ms);
}

// ----------------------------------------------------- Cache sweep.

/// Cold / warm / post-Reaggregate timings of a zipfian repeat mix over
/// ~40 distinct queries (docs/CACHING.md). "Cold" is the cache-disabled
/// engine; "fill" is the first cache-enabled pass (misses + fills);
/// "warm" is the steady-state pass the result cache exists for; the
/// post-Reaggregate pass prices the recovery after a wholesale epoch
/// invalidation. Hit rates come from both the cache counters and the
/// engine.cache.* metrics (the sweep runs at trace_level=stats so the
/// counters publish).
void RunCacheSweep() {
  printf("\nCache sweep: zipfian repeat mix, cold vs warm vs "
         "post-Reaggregate on the seed hotel dataset...\n");
  auto artifacts =
      eval::BuildArtifacts(datagen::HotelDomain(), bench::HotelBuildOptions());
  core::OpineDb& db = *artifacts.db;
  db.SetTraceLevel(obs::TraceLevel::kStats);
  const int repeats = std::max(bench::Repeats(), 5);

  // ~40 distinct queries; zipfian rank weights 1/(rank+1) concentrate
  // most of the 400-execution stream on the head of the list.
  constexpr size_t kDistinct = 40;
  constexpr size_t kStream = 400;
  // Each predicate appears at two different LIMITs: distinct result-
  // cache keys, shared interpretation-cache keys — so the sweep
  // exercises both layers (an interp hit under a result miss).
  std::vector<std::string> queries;
  for (size_t i = 0; i < kDistinct; ++i) {
    const size_t limit = (i < kDistinct / 2) ? 5 + i % 3 : 10 + i % 3;
    queries.push_back(
        "select * from hotels where \"" +
        artifacts.pool[(i % (kDistinct / 2)) % artifacts.pool.size()].text +
        "\" limit " + std::to_string(limit));
  }
  std::vector<double> weights(kDistinct);
  double total_weight = 0.0;
  for (size_t i = 0; i < kDistinct; ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
    total_weight += weights[i];
  }
  std::vector<size_t> stream;
  stream.reserve(kStream);
  Rng rng(7);
  for (size_t q = 0; q < kStream; ++q) {
    double pick = rng.Uniform() * total_weight;
    size_t idx = 0;
    while (idx + 1 < kDistinct && pick > weights[idx]) {
      pick -= weights[idx];
      ++idx;
    }
    stream.push_back(idx);
  }

  auto run_stream = [&] {
    for (const size_t idx : stream) {
      auto result = db.Execute(queries[idx]);
      if (!result.ok()) {
        fprintf(stderr, "query failed: %s\n",
                result.status().ToString().c_str());
        std::exit(1);
      }
    }
  };

  // Cold: no caches at all — every execution pays the full cascade.
  const double cold_ms = BestOfMs(repeats, run_stream);

  // Fill: first cache-enabled pass (misses + insert cost), measured
  // once — repeating it would measure warm hits.
  cache::CacheConfig config;
  config.enable_interpretation = true;
  config.enable_results = true;
  config.result_cache_bytes = 32u << 20;
  db.ConfigureCaches(config);
  const double fill_ms = TimeMs(run_stream);

  // Warm: the steady state. Every repeat serves from the result cache.
  const double warm_ms = BestOfMs(repeats, run_stream);
  const uint64_t warm_hits = db.result_cache()->hits();
  const uint64_t warm_misses = db.result_cache()->misses();
  const uint64_t interp_hits = db.interpretation_cache()->hits();
  const uint64_t interp_misses = db.interpretation_cache()->misses();
  const double hit_rate =
      static_cast<double>(warm_hits) /
      static_cast<double>(std::max<uint64_t>(warm_hits + warm_misses, 1));

  // Post-Reaggregate: the epoch bump empties everything; one recovery
  // pass re-fills (same options, so the summaries are bit-identical —
  // this prices pure invalidation, not new data).
  db.Reaggregate(db.options().aggregation);
  if (db.result_cache()->size() != 0) {
    fprintf(stderr, "Reaggregate left the result cache populated\n");
    std::exit(1);
  }
  const double recovery_ms = TimeMs(run_stream);

  const double speedup = cold_ms / std::max(warm_ms, 1e-9);
  db.ConfigureCaches(cache::CacheConfig());
  db.SetTraceLevel(obs::TraceLevel::kOff);

  auto& metrics = obs::MetricsRegistry::Global();
  const double metric_hits = metrics.GetCounter("engine.cache.hit")->Value();
  const double metric_misses =
      metrics.GetCounter("engine.cache.miss")->Value();
  const double metric_interp_hits =
      metrics.GetCounter("engine.cache.interp_hit")->Value();

  printf("  cold %8.2f ms  fill %8.2f ms  warm %8.2f ms  "
         "post-reaggregate %8.2f ms  (warm speedup %.1fx, hit rate "
         "%.3f)\n",
         cold_ms, fill_ms, warm_ms, recovery_ms, speedup, hit_rate);
  if (speedup < 10.0) {
    fprintf(stderr,
            "warm speedup %.1fx below the 10x acceptance floor\n", speedup);
    std::exit(1);
  }

  FILE* out = fopen("BENCH_cache.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write BENCH_cache.json\n");
    std::exit(1);
  }
  fprintf(out, "{\n");
  fprintf(out, "  \"bench\": \"cache_sweep\",\n");
  fprintf(out, "  \"dataset\": \"hotel_seed\",\n");
  bench::WriteHostFields(out, bench::ResolvedThreads(0));
  fprintf(out, "  \"repeats\": %d,\n", repeats);
  fprintf(out, "  \"distinct_queries\": %zu,\n", kDistinct);
  fprintf(out, "  \"stream_length\": %zu,\n", kStream);
  fprintf(out, "  \"result_cache_bytes\": %u,\n", 32u << 20);
  fprintf(out, "  \"cold_stream_ms\": %g,\n", cold_ms);
  fprintf(out, "  \"fill_stream_ms\": %g,\n", fill_ms);
  fprintf(out, "  \"warm_stream_ms\": %g,\n", warm_ms);
  fprintf(out, "  \"post_reaggregate_stream_ms\": %g,\n", recovery_ms);
  fprintf(out, "  \"warm_speedup\": %g,\n", speedup);
  fprintf(out, "  \"result_cache_hits\": %llu,\n",
          static_cast<unsigned long long>(warm_hits));
  fprintf(out, "  \"result_cache_misses\": %llu,\n",
          static_cast<unsigned long long>(warm_misses));
  fprintf(out, "  \"result_cache_hit_rate\": %g,\n", hit_rate);
  fprintf(out, "  \"interp_cache_hits\": %llu,\n",
          static_cast<unsigned long long>(interp_hits));
  fprintf(out, "  \"interp_cache_misses\": %llu,\n",
          static_cast<unsigned long long>(interp_misses));
  fprintf(out, "  \"metric_engine_cache_hit\": %g,\n", metric_hits);
  fprintf(out, "  \"metric_engine_cache_miss\": %g,\n", metric_misses);
  fprintf(out, "  \"metric_engine_cache_interp_hit\": %g\n",
          metric_interp_hits);
  fprintf(out, "}\n");
  fclose(out);
  printf("  wrote BENCH_cache.json (warm speedup %.1fx)\n", speedup);
}

}  // namespace
}  // namespace opinedb

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* skip = std::getenv("OPINEDB_SKIP_PARALLEL_SWEEP");
  if (skip == nullptr || skip[0] == '0') {
    opinedb::RunParallelSweep();
  }
  const char* skip_obs = std::getenv("OPINEDB_SKIP_OBS_SWEEP");
  if (skip_obs == nullptr || skip_obs[0] == '0') {
    opinedb::RunObsOverheadSweep();
  }
  const char* skip_planner = std::getenv("OPINEDB_SKIP_PLANNER_SWEEP");
  if (skip_planner == nullptr || skip_planner[0] == '0') {
    opinedb::RunPlannerSweep();
  }
  const char* skip_snapshot = std::getenv("OPINEDB_SKIP_SNAPSHOT_SWEEP");
  if (skip_snapshot == nullptr || skip_snapshot[0] == '0') {
    opinedb::RunSnapshotSweep();
  }
  const char* skip_cache = std::getenv("OPINEDB_SKIP_CACHE_SWEEP");
  if (skip_cache == nullptr || skip_cache[0] == '0') {
    opinedb::RunCacheSweep();
  }
  return 0;
}
