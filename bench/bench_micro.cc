// Micro-benchmarks (google-benchmark) for the core kernels: BM25 top-k,
// fuzzy evaluation (both t-norm variants — the DESIGN.md ablation),
// Fagin's TA vs full scan, k-d tree search, logistic-regression
// inference, tokenization and marker-summary aggregation.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/marker_summary.h"
#include "embedding/kdtree.h"
#include "fuzzy/logic.h"
#include "fuzzy/threshold_algorithm.h"
#include "index/inverted_index.h"
#include "ml/logistic_regression.h"
#include "text/tokenizer.h"

namespace opinedb {
namespace {

index::InvertedIndex BuildIndex(size_t docs, size_t words_per_doc) {
  Rng rng(1);
  index::InvertedIndex idx;
  const char* vocab[] = {"clean",  "dirty", "room",   "staff", "friendly",
                         "noisy",  "quiet", "bed",    "soft",  "lumpy",
                         "modern", "old",   "lovely", "cheap", "pricey"};
  for (size_t d = 0; d < docs; ++d) {
    std::vector<std::string> tokens;
    for (size_t w = 0; w < words_per_doc; ++w) {
      tokens.push_back(vocab[rng.Below(std::size(vocab))]);
    }
    idx.AddDocument(tokens);
  }
  return idx;
}

void BM_Bm25TopK(benchmark::State& state) {
  auto idx = BuildIndex(static_cast<size_t>(state.range(0)), 40);
  std::vector<std::string> query = {"clean", "quiet", "friendly"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.TopK(query, 10));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Bm25TopK)->Arg(1000)->Arg(10000);

void BM_FuzzyEvaluate(benchmark::State& state) {
  const auto variant = static_cast<fuzzy::Variant>(state.range(0));
  // (p0 AND (p1 OR p2) AND NOT p3)
  auto expr = fuzzy::Expr::MakeAnd(
      {fuzzy::Expr::Leaf(0),
       fuzzy::Expr::MakeOr({fuzzy::Expr::Leaf(1), fuzzy::Expr::Leaf(2)}),
       fuzzy::Expr::MakeNot(fuzzy::Expr::Leaf(3))});
  Rng rng(2);
  std::vector<double> truths = {rng.Uniform(), rng.Uniform(), rng.Uniform(),
                                rng.Uniform()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->Evaluate(
        variant, [&](size_t i) { return truths[i]; }));
  }
}
BENCHMARK(BM_FuzzyEvaluate)
    ->Arg(static_cast<int>(fuzzy::Variant::kGodel))
    ->Arg(static_cast<int>(fuzzy::Variant::kProduct));

std::vector<std::vector<double>> RandomLists(size_t lists, size_t entities) {
  Rng rng(3);
  std::vector<std::vector<double>> out(lists,
                                       std::vector<double>(entities));
  for (auto& list : out) {
    for (auto& v : list) v = rng.Uniform();
  }
  return out;
}

void BM_ThresholdAlgorithm(benchmark::State& state) {
  auto lists = RandomLists(3, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzzy::ThresholdAlgorithmTopK(
        lists, 10, fuzzy::Variant::kProduct));
  }
}
BENCHMARK(BM_ThresholdAlgorithm)->Arg(1000)->Arg(10000);

void BM_FullScanTopK(benchmark::State& state) {
  auto lists = RandomLists(3, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fuzzy::FullScanTopK(lists, 10, fuzzy::Variant::kProduct));
  }
}
BENCHMARK(BM_FullScanTopK)->Arg(1000)->Arg(10000);

void BM_KdTreeNearest(benchmark::State& state) {
  Rng rng(4);
  std::vector<embedding::Vec> points;
  for (int i = 0; i < state.range(0); ++i) {
    embedding::Vec p(16);
    for (auto& x : p) x = static_cast<float>(rng.Uniform());
    points.push_back(std::move(p));
  }
  auto tree = embedding::KdTree::Build(std::move(points));
  embedding::Vec query(16, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Nearest(query));
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(1000)->Arg(10000);

void BM_LogisticPredict(benchmark::State& state) {
  Rng rng(5);
  std::vector<ml::Example> train;
  for (int i = 0; i < 200; ++i) {
    ml::Example ex;
    for (int j = 0; j < 10; ++j) ex.features.push_back(rng.Uniform());
    ex.label = ex.features[0] > 0.5 ? 1 : 0;
    train.push_back(std::move(ex));
  }
  auto model = ml::LogisticRegression::Train(train, ml::LogRegOptions());
  std::vector<double> features(10, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(features));
  }
}
BENCHMARK(BM_LogisticPredict);

void BM_Tokenize(benchmark::State& state) {
  text::Tokenizer tokenizer;
  const std::string body =
      "The room was very clean, well-decorated and the staff was "
      "incredibly friendly. Breakfast could've been fresher though!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(body));
  }
}
BENCHMARK(BM_Tokenize);

void BM_MarkerSummaryAddPhrase(benchmark::State& state) {
  core::MarkerSummaryType type;
  type.name = "cleanliness";
  type.markers = {"very clean", "average", "dirty", "filthy"};
  core::MarkerSummary summary(&type, 48);
  embedding::Vec vec(48, 0.1f);
  std::vector<double> weights = {1.0, 0.0, 0.0, 0.0};
  for (auto _ : state) {
    summary.AddPhrase(weights, 0.5, vec, 7);
  }
}
BENCHMARK(BM_MarkerSummaryAddPhrase);

}  // namespace
}  // namespace opinedb

BENCHMARK_MAIN();
