#ifndef OPINEDB_BENCH_BENCH_COMMON_H_
#define OPINEDB_BENCH_BENCH_COMMON_H_

// Shared configuration for the experiment-reproduction benches so every
// table/figure runs against the same pair of synthetic domains.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "datagen/domain_spec.h"
#include "eval/experiment.h"

namespace opinedb::bench {

/// Standard hotel-domain build (the Booking.com stand-in): more reviews
/// per entity than the restaurant domain, mirroring the paper's datasets
/// (booking.com averages ~345 reviews/hotel vs yelp's ~205/restaurant,
/// scaled down to laptop size).
inline eval::BuildOptions HotelBuildOptions() {
  eval::BuildOptions options;
  options.generator.num_entities = 120;
  options.generator.min_reviews_per_entity = 25;
  options.generator.max_reviews_per_entity = 60;
  options.generator.seed = 42;
  options.predicate_pool_size = 190;  // Paper: 190 hotel predicates.
  options.seed = 42;
  return options;
}

/// Standard restaurant-domain build (the Yelp stand-in): fewer reviews
/// per entity, longer bodies are approximated by the same generator.
inline eval::BuildOptions RestaurantBuildOptions() {
  eval::BuildOptions options;
  options.generator.num_entities = 100;
  options.generator.min_reviews_per_entity = 12;
  options.generator.max_reviews_per_entity = 30;
  // Yelp reviews are long and skew positive (Table 4: 104-126 words,
  // polarity ~0.7 vs booking.com's 34-37 words, ~0.2).
  options.generator.min_sentences_per_review = 6;
  options.generator.max_sentences_per_review = 11;
  options.generator.quality_skew = 1.7;
  options.generator.seed = 43;
  options.predicate_pool_size = 185;  // Paper: 185 restaurant predicates.
  options.seed = 43;
  return options;
}

/// Number of repeated runs (paper: 10); override with OPINEDB_REPEATS.
inline int Repeats(int fallback = 3) {
  const char* env = std::getenv("OPINEDB_REPEATS");
  if (env != nullptr) return std::atoi(env);
  return fallback;
}

/// Queries per workload cell (paper: 100); override with
/// OPINEDB_QUERIES.
inline int QueriesPerCell(int fallback = 60) {
  const char* env = std::getenv("OPINEDB_QUERIES");
  if (env != nullptr) return std::atoi(env);
  return fallback;
}

/// Worker threads the engine actually runs with for a requested count
/// (EngineOptions::num_threads semantics: 0 = hardware concurrency).
inline size_t ResolvedThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Emits the host/parallelism fields every BENCH_*.json records, so a
/// result file is interpretable without knowing the machine it ran on:
/// the hardware concurrency and the thread count the bench actually
/// used (for sweeps, the widest point).
inline void WriteHostFields(FILE* out, size_t threads_used) {
  fprintf(out, "  \"hardware_concurrency\": %u,\n",
          std::thread::hardware_concurrency());
  fprintf(out, "  \"threads_used\": %zu,\n", threads_used);
}

/// Renders a numeric vector as a JSON array ("[1.5, 2.25]") for the
/// BENCH_*.json result files.
template <typename T>
inline std::string JsonArray(const std::vector<T>& values) {
  std::string out = "[";
  char buffer[64];
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buffer, sizeof(buffer), "%g",
                  static_cast<double>(values[i]));
    out += buffer;
  }
  out += "]";
  return out;
}

}  // namespace opinedb::bench

#endif  // OPINEDB_BENCH_BENCH_COMMON_H_
