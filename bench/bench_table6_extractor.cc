// Reproduces Table 6: extractor quality (exact-span F1) of our model
// (averaged perceptron + Viterbi — the BERT+BiLSTM+CRF stand-in) versus
// the prior-art baseline (lexicon/rule tagger — the CMLA/RNCRF stand-in)
// on four datasets sized like the paper's: SemEval-14 Restaurant (3841),
// SemEval-14 Laptop (3845), SemEval-15 Restaurant (2000) and the
// Booking.com Hotel set (912). Scores are averaged over repeated training
// runs with a 95% confidence interval, as in the paper.
#include <cstdio>
#include <unordered_set>

#include "bench_common.h"
#include "datagen/domain_spec.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "extract/opinion_tagger.h"

namespace opinedb {
namespace {

struct Dataset {
  const char* name;
  datagen::DomainSpec spec;
  size_t train;
  size_t test;
};

double EvaluateTagger(
    const std::function<std::vector<int>(
        const std::vector<std::string>&)>& tag,
    const std::vector<extract::LabeledSentence>& test) {
  std::vector<std::vector<extract::Span>> gold;
  std::vector<std::vector<extract::Span>> predicted;
  for (const auto& sentence : test) {
    gold.push_back(extract::SpansFromTags(sentence.tags));
    predicted.push_back(extract::SpansFromTags(tag(sentence.tokens)));
  }
  // Combined F1: average of the aspect-term and opinion-term F1 scores,
  // as in the paper's Table 6.
  const auto aspect = eval::SpanF1ForTag(gold, predicted, extract::kAS);
  const auto opinion = eval::SpanF1ForTag(gold, predicted, extract::kOP);
  return 100.0 * (aspect.f1 + opinion.f1) / 2.0;
}

std::unordered_set<std::string> AspectGazetteer(
    const datagen::DomainSpec& spec) {
  // The baseline gets a partial gazetteer (half of the aspect nouns):
  // prior-art systems knew common aspects but generalized poorly.
  std::unordered_set<std::string> nouns;
  for (const auto& attribute : spec.attributes) {
    for (size_t i = 0; i < attribute.aspect_nouns.size(); i += 2) {
      nouns.insert(attribute.aspect_nouns[i]);
    }
  }
  return nouns;
}

}  // namespace
}  // namespace opinedb

int main() {
  using namespace opinedb;
  const int repeats = bench::Repeats(5);
  std::vector<Dataset> datasets = {
      {"SemEval-14 Restaurant", datagen::RestaurantDomain(), 3041, 800},
      {"SemEval-14 Laptop", datagen::LaptopDomain(), 3045, 800},
      {"SemEval-15 Restaurant", datagen::RestaurantDomain(), 1315, 685},
      {"Booking.com Hotel", datagen::HotelDomain(), 800, 112},
  };

  printf("Table 6: extractor combined F1 (aspect/opinion average).\n");
  printf("%-22s %6s %6s %10s %16s\n", "Dataset", "Train", "Test",
         "Baseline", "Our Model (CI)");
  printf("----------------------------------------------------------------"
         "\n");
  for (auto& dataset : datasets) {
    // Distinct seeds per dataset keep SemEval-14R and SemEval-15R from
    // being identical samples.
    const uint64_t base_seed =
        1000 + static_cast<uint64_t>(&dataset - datasets.data());
    datagen::LabeledSentenceOptions test_options;
    // Gold-label noise models inter-annotator disagreement (exact-span
    // agreement on SemEval-style data is far from perfect); without it
    // the synthetic grammar is fully learnable and every model saturates.
    test_options.label_noise = 0.05;
    auto test = datagen::GenerateLabeledSentences(dataset.spec, dataset.test,
                                                  base_seed + 500,
                                                  test_options);
    extract::RuleBasedTagger baseline(AspectGazetteer(dataset.spec));
    const double baseline_f1 = EvaluateTagger(
        [&](const std::vector<std::string>& tokens) {
          return baseline.Tag(tokens);
        },
        test);

    std::vector<double> model_scores;
    for (int run = 0; run < repeats; ++run) {
      datagen::LabeledSentenceOptions train_options;
      train_options.label_noise = 0.08;  // Annotation noise.
      train_options.exclude_holdout_vocabulary = true;
      auto train = datagen::GenerateLabeledSentences(
          dataset.spec, dataset.train, base_seed + run, train_options);
      auto tagger =
          extract::OpinionTagger::Train(train, /*epochs=*/8,
                                        /*seed=*/base_seed + 100 + run);
      model_scores.push_back(EvaluateTagger(
          [&](const std::vector<std::string>& tokens) {
            return tagger.Tag(tokens);
          },
          test));
    }
    printf("%-22s %6zu %6zu %10.2f %10.2f +/- %.2f\n", dataset.name,
           dataset.train, dataset.test, baseline_f1,
           eval::Mean(model_scores),
           eval::ConfidenceInterval95(model_scores));
  }
  printf("\nPaper reference (SOTA -> BERT model): 85.52->85.53, "
         "78.99->79.82, 72.21->75.40, 68.04->74.71\n"
         "Expected shape: our model beats the baseline on every dataset.\n");
  return 0;
}
