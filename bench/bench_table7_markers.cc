// Reproduces Table 7: OpineDB with marker summaries (10 markers per
// attribute) versus without markers (membership features computed by
// scanning and re-embedding the raw extraction phrases at query time).
// Reports the membership model's test accuracy (LR-accuracy), the query
// result quality (NDCG@10-style sat / sat-max) and the running time per
// 100 queries, per query set, plus the speedup.
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "common/timer.h"
#include "core/marker_induction.h"
#include "datagen/domain_spec.h"
#include "eval/metrics.h"

namespace opinedb {
namespace {

constexpr size_t kTopK = 10;

struct QuerySet {
  const char* name;
  std::function<bool(const datagen::SyntheticEntity&)> filter;
  std::string sql_prefix;
  bool hotel = true;
};

struct ConfigResult {
  std::vector<double> lr_accuracy;
  std::vector<double> ndcg;
  std::vector<double> runtime_s;
};

/// Evaluates one engine configuration (markers on/off) on one query set.
void Evaluate(eval::DomainArtifacts* artifacts, const QuerySet& set,
              bool use_markers, int queries, uint64_t seed,
              ConfigResult* out) {
  auto& db = *artifacts->db;
  db.mutable_options()->use_markers = use_markers;

  // Train the membership model on features from the matching path, with
  // a held-out test split for LR-accuracy (paper: 1000 labeled pairs).
  auto train = eval::MakeMembershipTuples(db, artifacts->domain,
                                          artifacts->pool, 1000, use_markers,
                                          seed);
  auto test = eval::MakeMembershipTuples(db, artifacts->domain,
                                         artifacts->pool, 400, use_markers,
                                         seed + 1);
  db.TrainMembership(train, seed + 2);
  out->lr_accuracy.push_back(db.membership_model().Accuracy(test));

  const auto eligible = eval::EligibleEntities(artifacts->domain, set.filter);
  auto workload = datagen::SampleWorkload(artifacts->pool.size(), 4,
                                          static_cast<size_t>(queries),
                                          seed + 3);
  double quality_sum = 0.0;
  Timer timer;
  for (const auto& query : workload) {
    std::vector<datagen::QueryPredicate> predicates;
    std::string sql = "select * from " +
                      artifacts->domain.schema.objective_table + " where " +
                      set.sql_prefix;
    for (size_t idx : query.predicate_indices) {
      predicates.push_back(artifacts->pool[idx]);
      sql += " and \"" + artifacts->pool[idx].text + "\"";
    }
    sql += " limit " + std::to_string(kTopK);
    auto result = db.Execute(sql);
    std::vector<int32_t> ranking;
    if (result.ok()) {
      for (const auto& r : result->results) ranking.push_back(r.entity);
    }
    quality_sum += eval::RankingQualityFiltered(
        artifacts->domain, predicates, ranking, eligible, kTopK);
  }
  const double elapsed = timer.ElapsedSeconds();
  out->ndcg.push_back(quality_sum / workload.size());
  // Normalize to "per 100 queries" as in the paper.
  out->runtime_s.push_back(elapsed * 100.0 / workload.size());
}

}  // namespace
}  // namespace opinedb

int main() {
  using namespace opinedb;
  const int repeats = bench::Repeats(3);
  const int queries = bench::QueriesPerCell(40);

  std::vector<QuerySet> sets = {
      {"London",
       [](const datagen::SyntheticEntity& e) {
         return e.city == "london" && e.price < 300;
       },
       "city = 'london' and price_pn < 300", true},
      {"Amsterdam",
       [](const datagen::SyntheticEntity& e) {
         return e.city == "amsterdam";
       },
       "city = 'amsterdam'", true},
      {"Low-Price",
       [](const datagen::SyntheticEntity& e) { return e.price_range == 1; },
       "price_range = 1", false},
      {"JP Cuisine",
       [](const datagen::SyntheticEntity& e) {
         return e.cuisine == "japanese";
       },
       "cuisine = 'japanese'", false},
  };

  // With 10 induced markers per attribute, as in the paper's Section
  // 5.4.2 ("we created 10 markers for each subjective attribute").
  auto hotel_options = bench::HotelBuildOptions();
  auto restaurant_options = bench::RestaurantBuildOptions();
  hotel_options.engine.induced_markers = 10;
  restaurant_options.engine.induced_markers = 10;

  std::vector<ConfigResult> with_markers(sets.size());
  std::vector<ConfigResult> no_markers(sets.size());
  for (int r = 0; r < repeats; ++r) {
    auto hopt = hotel_options;
    auto ropt = restaurant_options;
    hopt.generator.seed += static_cast<uint64_t>(r) * 613;
    hopt.seed += static_cast<uint64_t>(r) * 613;
    ropt.generator.seed += static_cast<uint64_t>(r) * 613;
    ropt.seed += static_cast<uint64_t>(r) * 613;
    // Strip the designer markers so the build induces 10 automatically.
    auto hotel_spec = datagen::HotelDomain();
    for (auto& attribute : hotel_spec.attributes) attribute.markers.clear();
    auto restaurant_spec = datagen::RestaurantDomain();
    for (auto& attribute : restaurant_spec.attributes) {
      attribute.markers.clear();
    }
    auto hotels = eval::BuildArtifacts(hotel_spec, hopt);
    auto restaurants = eval::BuildArtifacts(restaurant_spec, ropt);
    for (size_t s = 0; s < sets.size(); ++s) {
      auto* artifacts = sets[s].hotel ? &hotels : &restaurants;
      const uint64_t seed = 5000 + 17 * r + s;
      Evaluate(artifacts, sets[s], true, queries, seed, &with_markers[s]);
      Evaluate(artifacts, sets[s], false, queries, seed, &no_markers[s]);
    }
  }

  printf("Table 7: OpineDB with 10 induced markers vs no markers.\n");
  printf("Runtime is per 100 queries (seconds).\n\n");
  printf("%-10s %12s %12s %12s %12s\n", "", "London", "Amsterdam",
         "Low-Price", "JP Cuisine");
  auto row = [&](const char* label,
                 const std::function<double(const ConfigResult&)>& pick,
                 const std::vector<ConfigResult>& configs) {
    printf("%-24s", label);
    for (const auto& config : configs) printf(" %10.3f ", pick(config));
    printf("\n");
  };
  auto mean_of = [](const std::vector<double>& v) { return eval::Mean(v); };
  printf("---- 10-markers ----\n");
  row("  LR-accuracy",
      [&](const ConfigResult& c) { return mean_of(c.lr_accuracy); },
      with_markers);
  row("  NDCG@10", [&](const ConfigResult& c) { return mean_of(c.ndcg); },
      with_markers);
  row("  Runtime (s)",
      [&](const ConfigResult& c) { return mean_of(c.runtime_s); },
      with_markers);
  printf("---- no-markers ----\n");
  row("  LR-accuracy",
      [&](const ConfigResult& c) { return mean_of(c.lr_accuracy); },
      no_markers);
  row("  NDCG@10", [&](const ConfigResult& c) { return mean_of(c.ndcg); },
      no_markers);
  row("  Runtime (s)",
      [&](const ConfigResult& c) { return mean_of(c.runtime_s); },
      no_markers);
  printf("---- speedup (no-markers / 10-markers) ----\n");
  printf("%-24s", "  Speedup");
  for (size_t s = 0; s < sets.size(); ++s) {
    printf(" %9.2fx ", eval::Mean(no_markers[s].runtime_s) /
                           eval::Mean(with_markers[s].runtime_s));
  }
  printf("\n\nPaper reference: speedups 3.65x / 3.34x / 5.59x / 6.65x with "
         "LR-accuracy and\n  NDCG@10 essentially unchanged between "
         "configurations.\n");
  return 0;
}
