// Reproduces Table 3: "Subjective attributes in different domains" — the
// fraction of user-named search criteria that are subjective, tabulated
// over the frozen survey-criteria corpus (the stand-in for the paper's
// MTurk study; see DESIGN.md).
#include <cstdio>

#include "datagen/survey.h"

int main() {
  printf("Table 3: Subjective attributes in different domains.\n");
  printf("%-12s %-12s %s\n", "Domain", "%Subj. Attr", "Some examples");
  printf("-----------------------------------------------------------\n");
  for (const auto& survey : opinedb::datagen::SurveyData()) {
    std::string examples;
    for (const auto& example : survey.ExampleSubjective(3)) {
      if (!examples.empty()) examples += ", ";
      examples += example;
    }
    printf("%-12s %-12.1f %s\n", survey.domain.c_str(),
           100.0 * survey.SubjectiveFraction(), examples.c_str());
  }
  printf("\nPaper reference: Hotel 69.0, Restaurant 64.3, Vacation 82.6, "
         "College 77.4,\n  Home 68.8, Career 65.8, Car 56.0\n");
  return 0;
}
