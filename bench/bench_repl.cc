// Replication load driver: measures WAL shipping between a primary and
// one follower over loopback HTTP, and writes BENCH_repl.json.
//
// Three phases:
//
//  1. Catch-up: the primary accumulates a WAL backlog while the
//     follower is detached; the follower then drains it with
//     back-to-back SyncOnce cycles. Records shipped bytes, records,
//     wall time and MB/s — the "restore a cold replica" number.
//  2. Steady state: the background pull loop runs while a writer
//     appends batches back-to-back; the replication lag gauge is
//     sampled on a fixed cadence. Records lag p50/p99/max and the
//     sustained replicated-reviews/sec — the bounded-staleness
//     envelope an operator can promise.
//  3. Failover: the primary's front door stops, the follower is
//     promoted and its own front door starts. Records the wall time
//     from primary death to the first successful /query answer on the
//     new primary — the drill in docs/REPLICATION.md.
//
// Knobs: OPINEDB_REPL_SECONDS (steady-state window, default 2),
// OPINEDB_REPL_BACKLOG_BATCHES (catch-up backlog, default 150),
// OPINEDB_REPL_BATCH (reviews per append, default 8).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/engine.h"
#include "repl/client.h"
#include "repl/source.h"
#include "server/http_client.h"
#include "server/server.h"
#include "storage/wal.h"

namespace opinedb {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsEnv(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) return std::atof(env);
  return fallback;
}

int IntEnv(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) return std::atoi(env);
  return fallback;
}

double ElapsedSeconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

double Percentile(std::vector<double>* sorted_inout, double q) {
  if (sorted_inout->empty()) return 0.0;
  std::sort(sorted_inout->begin(), sorted_inout->end());
  const size_t n = sorted_inout->size();
  const size_t idx = std::min(
      n - 1, static_cast<size_t>(std::ceil(q * static_cast<double>(n))) -
                 (q > 0.0 ? 1 : 0));
  return (*sorted_inout)[idx];
}

/// Replication replays extraction on the follower, so both sides pay
/// the full ingest cost per record; a smaller corpus than the serving
/// bench keeps the two builds fast while the WAL volume stays real.
eval::BuildOptions ReplBuildOptions() {
  eval::BuildOptions options;
  options.generator.num_entities = 40;
  options.generator.min_reviews_per_entity = 10;
  options.generator.max_reviews_per_entity = 20;
  options.generator.seed = 42;
  options.seed = 42;
  options.predicate_pool_size = 40;
  return options;
}

std::vector<text::Review> MakeBatch(uint64_t seed, int size,
                                    int32_t num_entities) {
  static const std::vector<std::string> kBodies = {
      "the room was very clean and the staff was friendly",
      "terrible noisy location but the bed was comfortable",
      "excellent breakfast and a spotless bathroom",
      "rude reception and the wifi never worked",
      "the pool area was beautiful and the view stunning",
  };
  Rng rng(seed);
  std::vector<text::Review> batch;
  for (int i = 0; i < size; ++i) {
    text::Review review;
    review.entity = static_cast<int32_t>(rng.Next() % num_entities);
    review.reviewer = 5000 + static_cast<int32_t>(rng.Next() % 200);
    review.date = 20260800 + static_cast<int32_t>(seed % 28);
    review.body = kBodies[rng.Next() % kBodies.size()];
    batch.push_back(std::move(review));
  }
  return batch;
}

int Main() {
  const double seconds = SecondsEnv("OPINEDB_REPL_SECONDS", 2.0);
  const int backlog_batches = IntEnv("OPINEDB_REPL_BACKLOG_BATCHES", 150);
  const int batch_size = IntEnv("OPINEDB_REPL_BATCH", 8);

  printf("Replication bench: building the primary/follower pair...\n");
  auto primary = eval::BuildArtifacts(datagen::HotelDomain(),
                                      ReplBuildOptions());
  auto follower = eval::BuildArtifacts(datagen::HotelDomain(),
                                       ReplBuildOptions());
  const int32_t entities =
      static_cast<int32_t>(primary.db->corpus().num_entities());

  const auto root =
      std::filesystem::temp_directory_path() / "opinedb_bench_repl";
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  std::filesystem::create_directories(root / "primary");
  std::filesystem::create_directories(root / "follower");

  if (!primary.db->EnableWal((root / "primary").string()).ok()) {
    fprintf(stderr, "EnableWal failed on the primary\n");
    return 1;
  }
  repl::ReplicationSource source(primary.db.get());
  server::QueryServerOptions primary_options;
  primary_options.httpd.num_workers = 2;
  primary_options.replication_source = &source;
  server::QueryServer primary_server(primary.db.get(), primary_options);
  if (!primary_server.Start().ok()) {
    fprintf(stderr, "primary server failed to start\n");
    return 1;
  }
  repl::ReplicationClientOptions client_options;
  client_options.primary_port = primary_server.port();
  client_options.poll_interval_ms = 5.0;
  repl::ReplicationClient client(follower.db.get(),
                                 (root / "follower").string(),
                                 client_options);
  if (!client.Initialize().ok()) {
    fprintf(stderr, "follower Initialize failed\n");
    return 1;
  }

  // Phase 1: catch-up. The primary accumulates a backlog, then the
  // detached follower drains it as fast as SyncOnce can pull.
  uint64_t backlog_reviews = 0;
  for (int b = 0; b < backlog_batches; ++b) {
    const auto batch =
        MakeBatch(static_cast<uint64_t>(b), batch_size, entities);
    if (!primary.db->AppendReviews(batch).ok()) {
      fprintf(stderr, "backlog append failed\n");
      return 1;
    }
    backlog_reviews += batch.size();
  }
  const uint64_t backlog_bytes =
      primary.db->wal_acknowledged_bytes() - storage::kWalHeaderSize;
  const auto catchup_begin = Clock::now();
  for (;;) {
    auto caught_up = client.SyncOnce();
    if (!caught_up.ok()) {
      fprintf(stderr, "catch-up sync failed: %s\n",
              caught_up.status().ToString().c_str());
      return 1;
    }
    if (*caught_up) break;
  }
  const double catchup_seconds = ElapsedSeconds(catchup_begin);
  const double catchup_mb_per_sec =
      static_cast<double>(backlog_bytes) / (1024.0 * 1024.0) /
      catchup_seconds;
  printf("  catch-up: %llu reviews / %.2f MiB drained in %.2fs "
         "(%.2f MiB/s)\n",
         static_cast<unsigned long long>(backlog_reviews),
         static_cast<double>(backlog_bytes) / (1024.0 * 1024.0),
         catchup_seconds, catchup_mb_per_sec);

  // Phase 2: steady state under the background pull loop.
  if (!client.Start().ok()) {
    fprintf(stderr, "pull loop failed to start\n");
    return 1;
  }
  std::vector<double> lag_samples;
  uint64_t steady_reviews = 0;
  uint64_t batches = static_cast<uint64_t>(backlog_batches);
  const auto steady_begin = Clock::now();
  auto next_sample = steady_begin;
  while (ElapsedSeconds(steady_begin) < seconds) {
    const auto batch = MakeBatch(batches++, batch_size, entities);
    if (!primary.db->AppendReviews(batch).ok()) {
      fprintf(stderr, "steady-state append failed\n");
      return 1;
    }
    steady_reviews += batch.size();
    if (Clock::now() >= next_sample) {
      lag_samples.push_back(client.lag_ms());
      next_sample = Clock::now() + std::chrono::milliseconds(10);
    }
  }
  // Let the follower drain the tail, then take a final settled sample.
  const auto drain_deadline = Clock::now() + std::chrono::seconds(10);
  while (!client.caught_up() && Clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  lag_samples.push_back(client.lag_ms());
  const double steady_seconds = ElapsedSeconds(steady_begin);
  const double replicated_per_sec =
      static_cast<double>(steady_reviews) / steady_seconds;
  const double lag_max =
      *std::max_element(lag_samples.begin(), lag_samples.end());
  const double lag_p50 = Percentile(&lag_samples, 0.50);
  const double lag_p99 = Percentile(&lag_samples, 0.99);
  printf("  steady state: %.1f reviews/sec replicated, lag p50=%.1fms "
         "p99=%.1fms max=%.1fms (%zu samples)\n",
         replicated_per_sec, lag_p50, lag_p99, lag_max,
         lag_samples.size());
  client.Stop();

  // Phase 3: failover. Primary front door dies; promote the follower
  // and time the gap until its first served answer.
  const std::string sql = "select * from " +
                          primary.db->schema().objective_table + " where \"" +
                          primary.pool[0].text + "\" limit 5";
  primary_server.Stop();
  const auto failover_begin = Clock::now();
  server::QueryServerOptions follower_options;
  follower_options.httpd.num_workers = 2;
  core::OpineDb* follower_db = follower.db.get();
  follower_options.promote = [follower_db] {
    return follower_db->Promote();
  };
  server::QueryServer follower_server(follower_db, follower_options);
  if (!follower_server.Start().ok()) {
    fprintf(stderr, "follower server failed to start\n");
    return 1;
  }
  server::HttpClient http;
  if (!http.Connect("127.0.0.1", follower_server.port()).ok()) {
    fprintf(stderr, "connect to promoted follower failed\n");
    return 1;
  }
  auto promoted = http.Post("/admin/promote", "{}");
  if (!promoted.ok() || promoted->status != 200) {
    fprintf(stderr, "promote failed\n");
    return 1;
  }
  std::string query_body = "{\"sql\": \"";
  for (const char c : sql) {
    if (c == '"' || c == '\\') query_body.push_back('\\');
    query_body.push_back(c);
  }
  query_body += "\"}";
  auto first_query = http.Post("/query", query_body);
  if (!first_query.ok() || first_query->status != 200) {
    fprintf(stderr, "first post-failover query failed\n");
    return 1;
  }
  const double failover_ms = ElapsedSeconds(failover_begin) * 1e3;
  printf("  failover: promote + first served query in %.1fms\n",
         failover_ms);
  follower_server.Stop();

  FILE* out = fopen("BENCH_repl.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write BENCH_repl.json\n");
    return 1;
  }
  fprintf(out, "{\n");
  fprintf(out, "  \"bench\": \"repl\",\n");
  fprintf(out, "  \"dataset\": \"hotel_repl\",\n");
  opinedb::bench::WriteHostFields(out, 2);
  fprintf(out, "  \"batch_size\": %d,\n", batch_size);
  fprintf(out, "  \"steady_seconds\": %.2f,\n", seconds);
  fprintf(out, "  \"catch_up\": {\n");
  fprintf(out, "    \"backlog_reviews\": %llu,\n",
          static_cast<unsigned long long>(backlog_reviews));
  fprintf(out, "    \"backlog_bytes\": %llu,\n",
          static_cast<unsigned long long>(backlog_bytes));
  fprintf(out, "    \"seconds\": %.3f,\n", catchup_seconds);
  fprintf(out, "    \"mb_per_sec\": %.3f\n", catchup_mb_per_sec);
  fprintf(out, "  },\n");
  fprintf(out, "  \"steady_state\": {\n");
  fprintf(out, "    \"replicated_reviews_per_sec\": %.2f,\n",
          replicated_per_sec);
  fprintf(out, "    \"lag_p50_ms\": %.3f,\n", lag_p50);
  fprintf(out, "    \"lag_p99_ms\": %.3f,\n", lag_p99);
  fprintf(out, "    \"lag_max_ms\": %.3f,\n", lag_max);
  fprintf(out, "    \"samples\": %zu\n", lag_samples.size());
  fprintf(out, "  },\n");
  fprintf(out, "  \"failover\": {\"time_to_first_query_ms\": %.3f}\n",
          failover_ms);
  fprintf(out, "}\n");
  fclose(out);

  std::filesystem::remove_all(root, ec);
  printf("Wrote BENCH_repl.json (catch-up %.2f MiB/s, steady lag "
         "p99 %.1fms, failover %.1fms)\n",
         catchup_mb_per_sec, lag_p99, failover_ms);
  return 0;
}

}  // namespace
}  // namespace opinedb

int main() { return opinedb::Main(); }
