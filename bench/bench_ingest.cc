// Incremental-ingest load driver: measures OpineDb::AppendReviews on
// the seed hotel dataset with the checksummed WAL attached, and writes
// BENCH_ingest.json.
//
// Three phases over the zipfian query mix the serving bench uses:
//
//  1. Baseline: N reader threads run paced queries for a fixed window
//     with no ingest; records query p50/p99 and throughput.
//  2. Ingest under load: the same readers keep querying while one
//     writer appends WAL-journaled review batches back-to-back;
//     records sustained reviews/sec, appended-batch latency
//     percentiles, the query p50/p99 during ingest and the p99
//     regression ratio against phase 1, plus the attached degree
//     cache's hit rate across the phase (warm lists must survive
//     ingest — RefreshAfterIngest patches, it does not evict).
//  3. Checkpoint: folds the accumulated WAL into the next snapshot
//     generation and records the fold latency and resulting segment
//     rotation.
//
// Readers pace themselves (~1ms between requests) so the exclusive-
// locking writer is never starved by back-to-back shared acquisitions;
// the paced rate is reported so the regression ratio is interpretable.
//
// Knobs: OPINEDB_INGEST_SECONDS (window per phase, default 2),
// OPINEDB_INGEST_BATCH (reviews per append, default 8),
// OPINEDB_INGEST_READERS (query threads, default 4).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/degree_cache.h"
#include "core/engine.h"
#include "storage/wal.h"

namespace opinedb {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsEnv(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) return std::atof(env);
  return fallback;
}

int IntEnv(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) return std::atoi(env);
  return fallback;
}

double ElapsedSeconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

double Percentile(std::vector<double>* sorted_inout, double q) {
  if (sorted_inout->empty()) return 0.0;
  std::sort(sorted_inout->begin(), sorted_inout->end());
  const size_t n = sorted_inout->size();
  const size_t idx = std::min(
      n - 1, static_cast<size_t>(std::ceil(q * static_cast<double>(n))) -
                 (q > 0.0 ? 1 : 0));
  return (*sorted_inout)[idx];
}

/// Zipfian-weighted SQL mix (heavy head, churning tail).
std::vector<std::string> MakeQueries(const eval::DomainArtifacts& artifacts) {
  std::vector<std::string> queries;
  for (size_t i = 0; i < 20 && i < artifacts.pool.size(); ++i) {
    queries.push_back("select * from hotels where \"" +
                      artifacts.pool[i].text + "\" limit " +
                      std::to_string(5 + i % 6));
  }
  return queries;
}

std::vector<text::Review> MakeBatch(uint64_t seed, int size,
                                    int32_t num_entities) {
  static const std::vector<std::string> kBodies = {
      "the room was very clean and the staff was friendly",
      "terrible noisy location but the bed was comfortable",
      "excellent breakfast and a spotless bathroom",
      "rude reception and the wifi never worked",
      "the pool area was beautiful and the view stunning",
  };
  Rng rng(seed);
  std::vector<text::Review> batch;
  for (int i = 0; i < size; ++i) {
    text::Review review;
    review.entity = static_cast<int32_t>(rng.Next() % num_entities);
    review.reviewer = 5000 + static_cast<int32_t>(rng.Next() % 200);
    review.date = 20260800 + static_cast<int32_t>(seed % 28);
    review.body = kBodies[rng.Next() % kBodies.size()];
    batch.push_back(std::move(review));
  }
  return batch;
}

struct QueryPhaseResult {
  size_t queries = 0;
  size_t failures = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Runs `readers` paced query threads for `seconds`; if `ingest` is
/// non-null it is invoked on the caller thread until the window closes,
/// and its per-batch latencies/counts are returned through the pointers.
QueryPhaseResult RunPhase(core::OpineDb* db,
                          const std::vector<std::string>& queries,
                          int readers, double seconds,
                          const std::function<bool()>* ingest) {
  std::mutex mu;
  std::vector<double> latencies;
  std::atomic<size_t> total{0};
  std::atomic<size_t> failures{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(2026u + static_cast<uint64_t>(t));
      std::vector<double> local;
      while (!stop.load(std::memory_order_relaxed)) {
        // Zipfian-ish pick: min of two uniforms concentrates the head.
        const size_t a = rng.Next() % queries.size();
        const size_t b = rng.Next() % queries.size();
        const auto& sql = queries[std::min(a, b)];
        const auto begin = Clock::now();
        auto result = db->Execute(sql);
        local.push_back(ElapsedSeconds(begin) * 1e3);
        total.fetch_add(1, std::memory_order_relaxed);
        if (!result.ok()) failures.fetch_add(1, std::memory_order_relaxed);
        // Pacing: leave lock-free gaps so the ingest writer's exclusive
        // acquisition is never starved by back-to-back readers.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }

  const auto start = Clock::now();
  if (ingest != nullptr) {
    while (ElapsedSeconds(start) < seconds) {
      if (!(*ingest)()) break;
    }
  } else {
    while (ElapsedSeconds(start) < seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  stop.store(true);
  for (auto& thread : threads) thread.join();

  QueryPhaseResult result;
  result.queries = total.load();
  result.failures = failures.load();
  result.qps = static_cast<double>(result.queries) / ElapsedSeconds(start);
  result.p50_ms = Percentile(&latencies, 0.50);
  result.p99_ms = Percentile(&latencies, 0.99);
  return result;
}

int Main() {
  printf("Ingest bench: building the seed hotel dataset...\n");
  auto artifacts =
      eval::BuildArtifacts(datagen::HotelDomain(), bench::HotelBuildOptions());
  core::OpineDb& db = *artifacts.db;
  const auto queries = MakeQueries(artifacts);
  const double seconds = SecondsEnv("OPINEDB_INGEST_SECONDS", 2.0);
  const int batch_size = IntEnv("OPINEDB_INGEST_BATCH", 8);
  const int readers = IntEnv("OPINEDB_INGEST_READERS", 4);
  const int32_t entities = static_cast<int32_t>(db.corpus().num_entities());

  core::DegreeCache degree_cache(&db);
  db.AttachDegreeCache(&degree_cache);
  const size_t warm_lists = degree_cache.PrecomputeMarkers();
  printf("Warm degree cache: %zu marker lists precomputed\n", warm_lists);

  const auto wal_dir =
      std::filesystem::temp_directory_path() / "opinedb_bench_ingest_wal";
  std::error_code ec;
  std::filesystem::remove_all(wal_dir, ec);
  {
    const Status saved = db.SaveDatabase(wal_dir.string());
    if (!saved.ok()) {
      fprintf(stderr, "snapshot failed: %s\n", saved.ToString().c_str());
      return 1;
    }
  }
  {
    const Status enabled = db.EnableWal(wal_dir.string());
    if (!enabled.ok()) {
      fprintf(stderr, "EnableWal failed: %s\n", enabled.ToString().c_str());
      return 1;
    }
  }

  // Phase 1: queries only.
  const QueryPhaseResult baseline =
      RunPhase(&db, queries, readers, seconds, nullptr);
  printf("  baseline      qps=%7.1f  p50=%6.2fms  p99=%6.2fms  "
         "failures=%zu\n",
         baseline.qps, baseline.p50_ms, baseline.p99_ms, baseline.failures);

  // Phase 2: the same query load with the WAL-journaled writer running.
  const auto cache_before = degree_cache.stats();
  std::vector<double> append_ms;
  uint64_t batches = 0;
  uint64_t reviews_appended = 0;
  const auto ingest_start = Clock::now();
  std::function<bool()> ingest = [&]() {
    const auto batch = MakeBatch(batches, batch_size, entities);
    const auto begin = Clock::now();
    const Status appended = db.AppendReviews(batch);
    if (!appended.ok()) {
      fprintf(stderr, "append failed: %s\n", appended.ToString().c_str());
      return false;
    }
    append_ms.push_back(ElapsedSeconds(begin) * 1e3);
    ++batches;
    reviews_appended += batch.size();
    return true;
  };
  const QueryPhaseResult under_ingest =
      RunPhase(&db, queries, readers, seconds, &ingest);
  const double ingest_seconds = ElapsedSeconds(ingest_start);
  const double reviews_per_sec =
      static_cast<double>(reviews_appended) / ingest_seconds;
  const auto cache_after = degree_cache.stats();
  const size_t phase_hits = cache_after.hits - cache_before.hits;
  const size_t phase_misses = cache_after.misses - cache_before.misses;
  const double hit_rate =
      phase_hits + phase_misses == 0
          ? 1.0
          : static_cast<double>(phase_hits) /
                static_cast<double>(phase_hits + phase_misses);
  const double p99_regression =
      baseline.p99_ms > 0.0 ? under_ingest.p99_ms / baseline.p99_ms : 0.0;
  printf("  under ingest  qps=%7.1f  p50=%6.2fms  p99=%6.2fms  "
         "failures=%zu\n",
         under_ingest.qps, under_ingest.p50_ms, under_ingest.p99_ms,
         under_ingest.failures);
  printf("  writer: %llu batches, %.1f reviews/sec sustained, append "
         "p50=%.2fms p99=%.2fms; degree-cache hit rate %.3f\n",
         static_cast<unsigned long long>(batches), reviews_per_sec,
         Percentile(&append_ms, 0.50), Percentile(&append_ms, 0.99),
         hit_rate);

  // Phase 3: fold the accumulated log into the next generation.
  const auto fold_begin = Clock::now();
  const Status folded = db.Checkpoint();
  const double checkpoint_ms = ElapsedSeconds(fold_begin) * 1e3;
  if (!folded.ok()) {
    fprintf(stderr, "checkpoint failed: %s\n", folded.ToString().c_str());
    return 1;
  }
  printf("  checkpoint: folded %llu batches into gen %llu in %.1fms\n",
         static_cast<unsigned long long>(batches),
         static_cast<unsigned long long>(db.snapshot_generation()),
         checkpoint_ms);

  FILE* out = fopen("BENCH_ingest.json", "w");
  if (out == nullptr) {
    fprintf(stderr, "cannot write BENCH_ingest.json\n");
    return 1;
  }
  fprintf(out, "{\n");
  fprintf(out, "  \"bench\": \"ingest\",\n");
  fprintf(out, "  \"dataset\": \"hotel_seed\",\n");
  opinedb::bench::WriteHostFields(out, static_cast<size_t>(readers));
  fprintf(out, "  \"readers\": %d,\n", readers);
  fprintf(out, "  \"batch_size\": %d,\n", batch_size);
  fprintf(out, "  \"phase_seconds\": %.2f,\n", seconds);
  fprintf(out, "  \"baseline\": {\"qps\": %.2f, \"p50_ms\": %.3f, "
               "\"p99_ms\": %.3f, \"failures\": %zu},\n",
          baseline.qps, baseline.p50_ms, baseline.p99_ms, baseline.failures);
  fprintf(out, "  \"under_ingest\": {\"qps\": %.2f, \"p50_ms\": %.3f, "
               "\"p99_ms\": %.3f, \"failures\": %zu},\n",
          under_ingest.qps, under_ingest.p50_ms, under_ingest.p99_ms,
          under_ingest.failures);
  fprintf(out, "  \"query_p99_regression\": %.3f,\n", p99_regression);
  fprintf(out, "  \"ingest\": {\n");
  fprintf(out, "    \"batches\": %llu,\n",
          static_cast<unsigned long long>(batches));
  fprintf(out, "    \"reviews_appended\": %llu,\n",
          static_cast<unsigned long long>(reviews_appended));
  fprintf(out, "    \"reviews_per_sec\": %.2f,\n", reviews_per_sec);
  fprintf(out, "    \"append_p50_ms\": %.3f,\n", Percentile(&append_ms, 0.50));
  fprintf(out, "    \"append_p99_ms\": %.3f,\n", Percentile(&append_ms, 0.99));
  fprintf(out, "    \"degree_cache_hit_rate\": %.4f\n", hit_rate);
  fprintf(out, "  },\n");
  fprintf(out, "  \"checkpoint\": {\"fold_ms\": %.3f, \"generation\": %llu}\n",
          checkpoint_ms,
          static_cast<unsigned long long>(db.snapshot_generation()));
  fprintf(out, "}\n");
  fclose(out);

  db.AttachDegreeCache(nullptr);
  std::filesystem::remove_all(wal_dir, ec);
  printf("Wrote BENCH_ingest.json (%.1f reviews/sec sustained, query p99 "
         "regression %.2fx)\n",
         reviews_per_sec, p99_regression);
  return 0;
}

}  // namespace
}  // namespace opinedb

int main() { return opinedb::Main(); }
