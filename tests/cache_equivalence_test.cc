// Differential cache-equivalence harness (docs/CACHING.md):
//
// Two engines are built from the same seed — identical corpora, models
// and summaries. Engine A serves with every cache enabled (result +
// interpretation + attached degree cache); engine B serves bare. A
// seeded randomized operation stream — zipfian-skewed queries (with
// whitespace/case predicate variants) interleaved with Reaggregate,
// TrainMembership, SetNumThreads, SetTraceLevel and SaveDatabase →
// OpenDatabase — is applied to BOTH engines in lockstep. After every
// query the harness asserts bit-identical answers (entities, names,
// scores, interpretations, partial/degraded flags); after every
// mutation it asserts both engines' cache epochs advanced together,
// monotonically, by exactly one.
//
// This is the contract that makes the cache shippable: caching is an
// invisible optimization. It may never change a byte of an answer, at
// any thread count, at any trace level, across any mutation history.
// The multi-threaded hammer at the bottom is the tsan gate for the
// cache's internal locking.
#include <cctype>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache_config.h"
#include "cache/interpretation_cache.h"
#include "cache/result_cache.h"
#include "core/degree_cache.h"
#include "core/engine.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "obs/trace.h"

namespace opinedb {
namespace {

namespace fs = std::filesystem;

eval::DomainArtifacts BuildEngine() {
  eval::BuildOptions options;
  options.generator.num_entities = 18;
  options.generator.min_reviews_per_entity = 8;
  options.generator.max_reviews_per_entity = 12;
  options.generator.seed = 71;
  options.seed = 71;
  options.extractor_training_sentences = 400;
  options.predicate_pool_size = 24;
  options.membership_training_tuples = 400;
  return eval::BuildArtifacts(datagen::HotelDomain(), options);
}

/// A whitespace/case-mangled rendition of `text` that tokenizes (and
/// therefore scores) identically: uppercase every other letter, pad
/// with extra interior and edge whitespace.
std::string MangledPredicate(const std::string& text) {
  std::string out = "  ";
  bool upper = true;
  for (char c : text) {
    if (c == ' ') {
      out += "  \t";
      continue;
    }
    out += upper ? static_cast<char>(std::toupper(c)) : c;
    upper = !upper;
  }
  out += ' ';
  return out;
}

void ExpectBitIdentical(const core::QueryResult& cached,
                        const core::QueryResult& bare, size_t step) {
  EXPECT_EQ(cached.partial, bare.partial) << "step " << step;
  EXPECT_EQ(cached.degraded, bare.degraded) << "step " << step;
  ASSERT_EQ(cached.results.size(), bare.results.size()) << "step " << step;
  for (size_t i = 0; i < cached.results.size(); ++i) {
    EXPECT_EQ(cached.results[i].entity, bare.results[i].entity)
        << "step " << step << " rank " << i;
    EXPECT_EQ(cached.results[i].entity_name, bare.results[i].entity_name)
        << "step " << step << " rank " << i;
    EXPECT_EQ(cached.results[i].score, bare.results[i].score)
        << "step " << step << " rank " << i;
  }
  ASSERT_EQ(cached.interpretations.size(), bare.interpretations.size())
      << "step " << step;
  for (size_t c = 0; c < cached.interpretations.size(); ++c) {
    const auto& ci = cached.interpretations[c];
    const auto& bi = bare.interpretations[c];
    EXPECT_EQ(ci.method, bi.method) << "step " << step;
    EXPECT_EQ(ci.conjunctive, bi.conjunctive) << "step " << step;
    EXPECT_EQ(ci.confidence, bi.confidence) << "step " << step;
    ASSERT_EQ(ci.atoms.size(), bi.atoms.size()) << "step " << step;
    for (size_t a = 0; a < ci.atoms.size(); ++a) {
      EXPECT_EQ(ci.atoms[a].attribute, bi.atoms[a].attribute);
      EXPECT_EQ(ci.atoms[a].marker, bi.atoms[a].marker);
      EXPECT_EQ(ci.atoms[a].score, bi.atoms[a].score);
    }
  }
}

class CacheEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cached_ = new eval::DomainArtifacts(BuildEngine());
    bare_ = new eval::DomainArtifacts(BuildEngine());
    degree_cache_ = new core::DegreeCache(cached_->db.get());
  }

  static void TearDownTestSuite() {
    delete degree_cache_;
    degree_cache_ = nullptr;
    delete cached_;
    cached_ = nullptr;
    delete bare_;
    bare_ = nullptr;
  }

  void SetUp() override {
    cache::CacheConfig on;
    on.enable_interpretation = true;
    on.enable_results = true;
    cached().ConfigureCaches(on);
    cached().AttachDegreeCache(degree_cache_);
  }

  void TearDown() override {
    cached().AttachDegreeCache(nullptr);
    cached().ConfigureCaches(cache::CacheConfig());
    for (auto* db : {&cached(), &bare()}) {
      db->SetNumThreads(1);
      db->SetTraceLevel(obs::TraceLevel::kOff);
    }
  }

  static core::OpineDb& cached() { return *cached_->db; }
  static core::OpineDb& bare() { return *bare_->db; }

  /// A mixed pool of distinct executable queries: single-predicate,
  /// conjunction, disjunction, objective+subjective, varied limits.
  static std::vector<std::string> QueryPool() {
    const auto& pool = cached_->pool;
    auto pred = [&](size_t i) { return pool[i % pool.size()].text; };
    std::vector<std::string> queries;
    for (size_t i = 0; i < 8; ++i) {
      queries.push_back("select * from hotels where \"" + pred(i) +
                        "\" limit " + std::to_string(3 + i % 5));
    }
    queries.push_back("select * from hotels where \"" + pred(0) +
                      "\" and \"" + pred(3) + "\" limit 5");
    queries.push_back("select * from hotels where \"" + pred(1) +
                      "\" or \"" + pred(4) + "\" limit 6");
    queries.push_back("select * from hotels where price_pn < 150 and \"" +
                      pred(2) + "\" limit 5");
    queries.push_back("select * from hotels where not \"" + pred(5) +
                      "\" limit 4");
    return queries;
  }

  static eval::DomainArtifacts* cached_;
  static eval::DomainArtifacts* bare_;
  static core::DegreeCache* degree_cache_;
};

eval::DomainArtifacts* CacheEquivalenceTest::cached_ = nullptr;
eval::DomainArtifacts* CacheEquivalenceTest::bare_ = nullptr;
core::DegreeCache* CacheEquivalenceTest::degree_cache_ = nullptr;

// The harness proper: 160 steps of zipfian-skewed queries with every
// mutation class interleaved, equivalence checked at each step.
TEST_F(CacheEquivalenceTest, RandomizedStreamIsBitIdenticalUnderMutations) {
  const auto queries = QueryPool();
  std::vector<std::string> variants;
  variants.reserve(queries.size());
  for (const auto& q : queries) variants.push_back(q);
  // Predicate-variant forms for the single-predicate queries: same
  // tokens, different whitespace/case — the interpretation cache must
  // normalize them onto one key, and answers must not move.
  for (size_t i = 0; i < 8; ++i) {
    const auto& text = cached_->pool[i % cached_->pool.size()].text;
    variants[i] = "select * from hotels where \"" + MangledPredicate(text) +
                  "\" limit " + std::to_string(3 + i % 5);
  }

  std::mt19937 rng(2026);
  uint64_t expected_epoch = cached().cache_epoch();
  ASSERT_EQ(bare().cache_epoch(), expected_epoch)
      << "identical builds must start at the same epoch";

  const fs::path snap_a =
      fs::path(::testing::TempDir()) / "cache_equiv_snap_a";
  const fs::path snap_b =
      fs::path(::testing::TempDir()) / "cache_equiv_snap_b";
  fs::remove_all(snap_a);
  fs::remove_all(snap_b);

  const core::AggregationOptions original = cached().options().aggregation;
  bool toggled = false;
  // Once a SaveDatabase → OpenDatabase step lands, the extraction
  // relation no longer derives the served summaries and Reaggregate
  // must refuse instead of silently wiping them (the FailedPrecondition
  // regression exercised below).
  bool authoritative = true;
  const std::vector<std::string> review_bodies = {
      "the room was very clean and the staff was friendly",
      "terrible noisy location but the bed was comfortable",
      "excellent breakfast and a spotless bathroom",
      "rude reception and the wifi never worked",
  };

  for (size_t step = 0; step < 160; ++step) {
    const uint32_t roll = rng() % 100;
    if (roll < 76) {
      // Zipfian-ish skew: min of two uniform draws concentrates mass on
      // low indices, so the head queries repeat often enough to serve
      // from cache while the tail still churns the LRU.
      const size_t a = rng() % queries.size();
      const size_t b = rng() % queries.size();
      const size_t idx = std::min(a, b);
      const std::string& sql =
          (rng() % 4 == 0) ? variants[idx] : queries[idx];
      auto from_cached = cached().Execute(sql);
      auto from_bare = bare().Execute(sql);
      ASSERT_TRUE(from_cached.ok())
          << "step " << step << ": " << from_cached.status().ToString();
      ASSERT_TRUE(from_bare.ok())
          << "step " << step << ": " << from_bare.status().ToString();
      ExpectBitIdentical(*from_cached, *from_bare, step);
    } else if (roll < 80) {
      // Incremental ingest, applied to both engines in lockstep: one
      // batch built once, appended to each, exactly one epoch bump.
      // The cached engine's warm layers (re-derived interpretations,
      // refreshed degree lists, lazily expired results) must keep
      // every later answer bit-identical to the bare engine.
      std::vector<text::Review> batch;
      const size_t batch_size = 1 + rng() % 3;
      for (size_t i = 0; i < batch_size; ++i) {
        text::Review review;
        review.entity = static_cast<text::EntityId>(
            rng() % cached().corpus().num_entities());
        review.reviewer = static_cast<text::ReviewerId>(500 + rng() % 7);
        review.date = 20260200 + static_cast<int32_t>(step);
        review.body = review_bodies[rng() % review_bodies.size()];
        batch.push_back(std::move(review));
      }
      ASSERT_TRUE(cached().AppendReviews(batch).ok()) << "step " << step;
      ASSERT_TRUE(bare().AppendReviews(batch).ok()) << "step " << step;
      ++expected_epoch;
    } else if (roll < 85) {
      core::AggregationOptions changed = original;
      changed.fractional = toggled ? original.fractional
                                   : !original.fractional;
      const Status cached_status = cached().Reaggregate(changed);
      const Status bare_status = bare().Reaggregate(changed);
      if (authoritative) {
        ASSERT_TRUE(cached_status.ok())
            << "step " << step << ": " << cached_status.ToString();
        ASSERT_TRUE(bare_status.ok())
            << "step " << step << ": " << bare_status.ToString();
        toggled = !toggled;
        ++expected_epoch;
      } else {
        // Silent-wipe regression: rebuilding summaries from the
        // post-open (empty) extraction relation must be refused with a
        // typed error and zero epoch movement, not quietly executed.
        ASSERT_EQ(cached_status.code(), StatusCode::kFailedPrecondition)
            << "step " << step;
        ASSERT_EQ(bare_status.code(), StatusCode::kFailedPrecondition)
            << "step " << step;
      }
    } else if (roll < 90) {
      const size_t threads = (rng() % 2 == 0) ? 1 : 8;
      cached().SetNumThreads(threads);
      bare().SetNumThreads(threads);
    } else if (roll < 94) {
      const auto level = (rng() % 2 == 0) ? obs::TraceLevel::kOff
                                          : obs::TraceLevel::kFull;
      cached().SetTraceLevel(level);
      bare().SetTraceLevel(level);
    } else if (roll < 97) {
      // Same tuples, same seed → same model on both sides. Derived from
      // the cached engine, but both engines are bit-identical here so
      // the choice of source engine is immaterial.
      const auto tuples = eval::MakeMembershipTuples(
          cached(), cached_->domain, cached_->pool, 120, true,
          1000 + step);
      ASSERT_TRUE(cached().TrainMembership(tuples, 7).ok());
      ASSERT_TRUE(bare().TrainMembership(tuples, 7).ok());
      ++expected_epoch;
    } else {
      ASSERT_TRUE(cached().SaveDatabase(snap_a.string()).ok());
      ASSERT_TRUE(bare().SaveDatabase(snap_b.string()).ok());
      ASSERT_TRUE(cached().OpenDatabase(snap_a.string()).ok());
      ASSERT_TRUE(bare().OpenDatabase(snap_b.string()).ok());
      authoritative = false;
      ++expected_epoch;
    }
    // Epoch discipline: monotone, lockstep, exactly one bump per
    // mutation and zero per execution-reconfig or query.
    ASSERT_EQ(cached().cache_epoch(), expected_epoch) << "step " << step;
    ASSERT_EQ(bare().cache_epoch(), expected_epoch) << "step " << step;
  }

  // The stream must actually have exercised the caches.
  ASSERT_NE(cached().result_cache(), nullptr);
  EXPECT_GT(cached().result_cache()->hits(), 0u)
      << "the zipfian stream never hit the result cache";
  ASSERT_NE(cached().interpretation_cache(), nullptr);
  EXPECT_GT(cached().interpretation_cache()->hits(), 0u);

  // Restore the fixture's aggregation for any later suite (possible
  // only while the relation still derives the summaries).
  if (toggled && authoritative) {
    ASSERT_TRUE(cached().Reaggregate(original).ok());
    ASSERT_TRUE(bare().Reaggregate(original).ok());
  }
  fs::remove_all(snap_a);
  fs::remove_all(snap_b);
}

// The acceptance matrix: warm hits are bit-identical to the bare
// engine at {1, 8} threads × {off, full} trace.
TEST_F(CacheEquivalenceTest, WarmHitsMatchAtEveryThreadCountAndTraceLevel) {
  const std::string sql = "select * from hotels where \"" +
                          cached_->pool[0].text + "\" limit 5";
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    for (const auto level : {obs::TraceLevel::kOff, obs::TraceLevel::kFull}) {
      cached().SetNumThreads(threads);
      bare().SetNumThreads(threads);
      cached().SetTraceLevel(level);
      bare().SetTraceLevel(level);
      auto fill = cached().Execute(sql);
      ASSERT_TRUE(fill.ok()) << fill.status().ToString();
      auto hit = cached().Execute(sql);
      ASSERT_TRUE(hit.ok()) << hit.status().ToString();
      EXPECT_TRUE(hit->stats.result_cache_hit)
          << "threads=" << threads << " trace=" << static_cast<int>(level);
      auto reference = bare().Execute(sql);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      ExpectBitIdentical(*hit, *reference, threads);
      ExpectBitIdentical(*fill, *reference, threads);
    }
  }
}

// tsan gate: concurrent readers hammering the caches while ingest
// batches land and bump the epoch. Correctness here is "no data race,
// every answer is a complete consistent snapshot" — the reconfiguration
// lock guarantees a query sees either the pre- or the post-batch
// summaries, never a mix. (The mutator is AppendReviews rather than
// Reaggregate because the randomized-stream test above leaves the
// shared fixture opened-from-snapshot, where Reaggregate is refused.)
TEST_F(CacheEquivalenceTest, ConcurrentHammerIsRaceFreeAndConsistent) {
  const auto queries = QueryPool();
  cached().SetNumThreads(4);

  // Deterministic batches, built once: applied to the cached engine
  // while the readers hammer it, then to the bare engine quietly —
  // both end in the same state, so the differential below still binds.
  auto make_batch = [&](size_t k) {
    std::vector<text::Review> batch;
    for (size_t i = 0; i < 3; ++i) {
      text::Review review;
      review.entity = static_cast<text::EntityId>(
          (k * 7 + i * 5) % cached().corpus().num_entities());
      review.reviewer = static_cast<text::ReviewerId>(900 + k);
      review.date = static_cast<int32_t>(20260301 + k);
      review.body =
          "the room was spotless and the staff went out of their way "
          "but the street below was noisy at night";
      batch.push_back(std::move(review));
    }
    return batch;
  };

  std::vector<std::thread> workers;
  workers.reserve(4);
  for (size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937 rng(90 + t);
      for (size_t i = 0; i < 24; ++i) {
        const auto& sql = queries[rng() % queries.size()];
        auto result = cached().Execute(sql);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        for (const auto& r : result->results) {
          ASSERT_TRUE(std::isfinite(r.score));
          ASSERT_GE(r.score, 0.0);
          ASSERT_LE(r.score, 1.0);
        }
      }
    });
  }
  for (size_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(cached().AppendReviews(make_batch(k)).ok());
  }
  for (auto& w : workers) w.join();
  for (size_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(bare().AppendReviews(make_batch(k)).ok());
  }

  // Post-hammer: the cached engine still agrees with the bare one.
  for (const auto& sql : queries) {
    auto from_cached = cached().Execute(sql);
    auto from_bare = bare().Execute(sql);
    ASSERT_TRUE(from_cached.ok()) << from_cached.status().ToString();
    ASSERT_TRUE(from_bare.ok()) << from_bare.status().ToString();
    ExpectBitIdentical(*from_cached, *from_bare, 0);
  }
}

}  // namespace
}  // namespace opinedb
