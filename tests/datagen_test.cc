#include <set>

#include <gtest/gtest.h>

#include "datagen/domain_spec.h"
#include "datagen/generator.h"
#include "datagen/queries.h"
#include "datagen/survey.h"
#include "sentiment/analyzer.h"

namespace opinedb::datagen {
namespace {

TEST(DomainSpecTest, HotelSpecIsWellFormed) {
  auto spec = HotelDomain();
  EXPECT_EQ(spec.name, "hotel");
  EXPECT_GE(spec.attributes.size(), 8u);
  for (const auto& attribute : spec.attributes) {
    EXPECT_FALSE(attribute.aspect_nouns.empty()) << attribute.name;
    EXPECT_GE(attribute.opinions.size(), 6u) << attribute.name;
    EXPECT_FALSE(attribute.markers.empty()) << attribute.name;
    for (const auto& opinion : attribute.opinions) {
      EXPECT_GE(opinion.polarity, -1.0);
      EXPECT_LE(opinion.polarity, 1.0);
    }
  }
  EXPECT_FALSE(spec.concepts.empty());
  EXPECT_FALSE(spec.hard_queries.empty());
  EXPECT_FALSE(spec.fillers.empty());
}

TEST(DomainSpecTest, ConceptTriggersReferToValidAttributes) {
  for (const auto& spec : {HotelDomain(), RestaurantDomain()}) {
    for (const auto& concept_spec : spec.concepts) {
      EXPECT_GE(concept_spec.gold_attribute, 0);
      EXPECT_LT(concept_spec.gold_attribute,
                static_cast<int>(spec.attributes.size()));
      for (int trigger : concept_spec.trigger_attributes) {
        EXPECT_GE(trigger, 0);
        EXPECT_LT(trigger, static_cast<int>(spec.attributes.size()));
      }
    }
  }
}

TEST(DomainSpecTest, OpinionWordsCoveredByLexicon) {
  // Marker induction sorts by sentiment; opinions the analyzer scores as
  // zero would collapse the scale. Most opinions must carry sentiment.
  sentiment::Analyzer analyzer;
  for (const auto& spec :
       {HotelDomain(), RestaurantDomain(), LaptopDomain()}) {
    size_t scored = 0;
    size_t total = 0;
    for (const auto& attribute : spec.attributes) {
      for (const auto& opinion : attribute.opinions) {
        ++total;
        if (analyzer.ScorePhrase(opinion.text) != 0.0 ||
            opinion.polarity == 0.0) {
          ++scored;
        }
      }
    }
    EXPECT_GT(static_cast<double>(scored) / total, 0.9) << spec.name;
  }
}

TEST(DomainSpecTest, LexiconPolarityAgreesWithSpecPolarity) {
  sentiment::Analyzer analyzer;
  for (const auto& attribute : HotelDomain().attributes) {
    for (const auto& opinion : attribute.opinions) {
      const double lex = analyzer.ScorePhrase(opinion.text);
      if (opinion.polarity > 0.3) EXPECT_GT(lex, 0.0) << opinion.text;
      if (opinion.polarity < -0.3) EXPECT_LT(lex, 0.0) << opinion.text;
    }
  }
}

class GeneratorTest : public ::testing::Test {
 protected:
  static SyntheticDomain MakeDomain() {
    GeneratorOptions options;
    options.num_entities = 25;
    options.min_reviews_per_entity = 5;
    options.max_reviews_per_entity = 10;
    options.seed = 3;
    return GenerateDomain(HotelDomain(), options);
  }
};

TEST_F(GeneratorTest, ShapesAndDeterminism) {
  auto a = MakeDomain();
  auto b = MakeDomain();
  EXPECT_EQ(a.entities.size(), 25u);
  EXPECT_EQ(a.corpus.num_entities(), 25u);
  EXPECT_GE(a.corpus.num_reviews(), 25u * 5);
  EXPECT_LE(a.corpus.num_reviews(), 25u * 10);
  EXPECT_EQ(a.corpus.num_reviews(), b.corpus.num_reviews());
  EXPECT_EQ(a.corpus.review(0).body, b.corpus.review(0).body);
  EXPECT_EQ(a.entities[7].quality, b.entities[7].quality);
}

TEST_F(GeneratorTest, ObjectiveTableMatchesEntities) {
  auto domain = MakeDomain();
  ASSERT_EQ(domain.objective_table.num_rows(), domain.entities.size());
  const int name_col = domain.objective_table.ColumnIndex("name");
  const int city_col = domain.objective_table.ColumnIndex("city");
  ASSERT_GE(name_col, 0);
  ASSERT_GE(city_col, 0);
  for (size_t e = 0; e < domain.entities.size(); ++e) {
    EXPECT_EQ(domain.objective_table.at(e, name_col).AsString(),
              domain.entities[e].name);
    EXPECT_EQ(domain.objective_table.at(e, city_col).AsString(),
              domain.entities[e].city);
  }
}

TEST_F(GeneratorTest, ReviewPolarityTracksLatentQuality) {
  // Entities with high cleanliness quality must produce reviews whose
  // bodies score more positively on cleanliness words.
  auto domain = MakeDomain();
  sentiment::Analyzer analyzer;
  double hi_senti = 0.0, lo_senti = 0.0;
  int hi_n = 0, lo_n = 0;
  for (size_t e = 0; e < domain.entities.size(); ++e) {
    double mean_quality = 0.0;
    for (double q : domain.entities[e].quality) mean_quality += q;
    mean_quality /= domain.entities[e].quality.size();
    for (auto review_id :
         domain.corpus.entity_reviews(static_cast<text::EntityId>(e))) {
      const double s =
          analyzer.ScoreDocument(domain.corpus.review(review_id).body);
      if (mean_quality > 0.6) {
        hi_senti += s;
        ++hi_n;
      } else if (mean_quality < 0.4) {
        lo_senti += s;
        ++lo_n;
      }
    }
  }
  ASSERT_GT(hi_n, 0);
  ASSERT_GT(lo_n, 0);
  EXPECT_GT(hi_senti / hi_n, lo_senti / lo_n + 0.1);
}

TEST_F(GeneratorTest, RatingCorrelatesWithMeanQuality) {
  auto domain = MakeDomain();
  double best_rating = 0.0, worst_rating = 6.0;
  double best_quality = 0.0, worst_quality = 0.0;
  for (const auto& entity : domain.entities) {
    double mean_quality = 0.0;
    for (double q : entity.quality) mean_quality += q;
    mean_quality /= entity.quality.size();
    if (entity.rating > best_rating) {
      best_rating = entity.rating;
      best_quality = mean_quality;
    }
    if (entity.rating < worst_rating) {
      worst_rating = entity.rating;
      worst_quality = mean_quality;
    }
  }
  EXPECT_GT(best_quality, worst_quality);
}

TEST(SampleOpinionTest, TracksQuality) {
  Rng rng(5);
  // The spec must outlive the reference: operator[] on a member of a
  // temporary does not extend the temporary's lifetime.
  const auto domain = HotelDomain();
  const auto& attribute = domain.attributes[0];
  double high_sum = 0.0, low_sum = 0.0;
  for (int i = 0; i < 300; ++i) {
    high_sum += SampleOpinion(attribute, 0.95, 0.2, &rng).polarity;
    low_sum += SampleOpinion(attribute, 0.05, 0.2, &rng).polarity;
  }
  EXPECT_GT(high_sum / 300, 0.4);
  EXPECT_LT(low_sum / 300, -0.4);
}

TEST(RealizeOpinionSentenceTest, TagsCoverSlotFillers) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    auto realized = RealizeOpinionSentence("room", "very clean", &rng);
    ASSERT_EQ(realized.tokens.size(), realized.tags.size());
    int aspects = 0, opinions = 0;
    for (size_t t = 0; t < realized.tokens.size(); ++t) {
      if (realized.tags[t] == extract::kAS) {
        ++aspects;
        EXPECT_EQ(realized.tokens[t], "room");
      }
      if (realized.tags[t] == extract::kOP) ++opinions;
    }
    EXPECT_EQ(aspects, 1);
    EXPECT_EQ(opinions, 2);  // "very clean".
  }
}

TEST(LabeledSentencesTest, OptionsControlNoiseAndHoldout) {
  LabeledSentenceOptions clean;
  auto a = GenerateLabeledSentences(HotelDomain(), 200, 1, clean);
  EXPECT_EQ(a.size(), 200u);

  LabeledSentenceOptions noisy;
  noisy.label_noise = 1.0;  // Every tag resampled uniformly.
  auto b = GenerateLabeledSentences(HotelDomain(), 200, 1, noisy);
  int differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].tags != b[i].tags) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(LabeledSentencesTest, HoldoutVocabularyShrinks) {
  LabeledSentenceOptions all;
  LabeledSentenceOptions held;
  held.exclude_holdout_vocabulary = true;
  auto with_all = GenerateLabeledSentences(HotelDomain(), 800, 2, all);
  auto with_held = GenerateLabeledSentences(HotelDomain(), 800, 2, held);
  std::set<std::string> vocab_all, vocab_held;
  for (const auto& s : with_all) {
    vocab_all.insert(s.tokens.begin(), s.tokens.end());
  }
  for (const auto& s : with_held) {
    vocab_held.insert(s.tokens.begin(), s.tokens.end());
  }
  EXPECT_LT(vocab_held.size(), vocab_all.size());
}

TEST(PredicatePoolTest, SizeGoldLabelsAndDeterminism) {
  auto spec = HotelDomain();
  auto a = BuildPredicatePool(spec, 190, 1);
  auto b = BuildPredicatePool(spec, 190, 1);
  EXPECT_EQ(a.size(), 190u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
  std::set<std::string> texts;
  int correlated = 0;
  for (const auto& predicate : a) {
    EXPECT_TRUE(texts.insert(predicate.text).second) << predicate.text;
    EXPECT_LT(predicate.gold_attribute,
              static_cast<int>(spec.attributes.size()));
    if (predicate.correlated) ++correlated;
  }
  // Concepts + hard queries survive trimming.
  EXPECT_GE(correlated,
            static_cast<int>(spec.concepts.size() +
                             spec.hard_queries.size()) - 1);
}

TEST(GroundTruthTest, ThresholdSemantics) {
  SyntheticEntity entity;
  entity.quality = {0.9, 0.3};
  QueryPredicate high;
  high.quality_attributes = {0};
  high.threshold = 0.6;
  EXPECT_TRUE(SatisfiesGroundTruth(entity, high));
  QueryPredicate low;
  low.quality_attributes = {1};
  low.threshold = 0.6;
  EXPECT_FALSE(SatisfiesGroundTruth(entity, low));
  QueryPredicate both;
  both.quality_attributes = {0, 1};  // min(0.9, 0.3) < 0.6.
  EXPECT_FALSE(SatisfiesGroundTruth(entity, both));
  QueryPredicate none;
  EXPECT_FALSE(SatisfiesGroundTruth(entity, none));
}

TEST(WorkloadTest, ConjunctsAreDistinctAndDeterministic) {
  auto a = SampleWorkload(100, 4, 50, 9);
  auto b = SampleWorkload(100, 4, 50, 9);
  EXPECT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].predicate_indices, b[i].predicate_indices);
    std::set<size_t> unique(a[i].predicate_indices.begin(),
                            a[i].predicate_indices.end());
    EXPECT_EQ(unique.size(), 4u);
  }
}

TEST(WorkloadTest, ConjunctsClampedToPool) {
  auto workload = SampleWorkload(3, 7, 5, 1);
  for (const auto& query : workload) {
    EXPECT_EQ(query.predicate_indices.size(), 3u);
  }
}

TEST(SurveyTest, MatchesPaperProportions) {
  auto surveys = SurveyData();
  ASSERT_EQ(surveys.size(), 7u);
  struct Expected {
    const char* domain;
    double fraction;
  } expected[] = {
      {"Hotel", 0.690},  {"Restaurant", 0.643}, {"Vacation", 0.826},
      {"College", 0.774}, {"Home", 0.688},      {"Career", 0.658},
      {"Car", 0.560},
  };
  for (size_t i = 0; i < surveys.size(); ++i) {
    EXPECT_EQ(surveys[i].domain, expected[i].domain);
    EXPECT_NEAR(surveys[i].SubjectiveFraction(), expected[i].fraction,
                0.005)
        << surveys[i].domain;
  }
}

TEST(SurveyTest, ExamplesAreSubjective) {
  for (const auto& survey : SurveyData()) {
    auto examples = survey.ExampleSubjective(3);
    EXPECT_EQ(examples.size(), 3u);
  }
}

}  // namespace
}  // namespace opinedb::datagen
