#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "embedding/kdtree.h"
#include "embedding/phrase_rep.h"
#include "embedding/substitution_index.h"
#include "embedding/vector_ops.h"
#include "embedding/word2vec.h"

namespace opinedb::embedding {
namespace {

TEST(VectorOpsTest, DotNormCosine) {
  Vec a = {1.0f, 0.0f};
  Vec b = {0.0f, 2.0f};
  Vec c = {2.0f, 0.0f};
  EXPECT_EQ(Dot(a, b), 0.0);
  EXPECT_EQ(Norm(b), 2.0);
  EXPECT_NEAR(Cosine(a, c), 1.0, 1e-9);
  EXPECT_NEAR(Cosine(a, b), 0.0, 1e-9);
}

TEST(VectorOpsTest, CosineOfZeroVectorIsZero) {
  Vec zero = {0.0f, 0.0f};
  Vec a = {1.0f, 1.0f};
  EXPECT_EQ(Cosine(zero, a), 0.0);
}

TEST(VectorOpsTest, AxPyAndScale) {
  Vec a = {1.0f, 2.0f};
  Vec b = {10.0f, 20.0f};
  AxPy(0.5, b, &a);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[1], 12.0f);
  Scale(2.0, &a);
  EXPECT_FLOAT_EQ(a[0], 12.0f);
}

TEST(VectorOpsTest, MeanOfVectors) {
  Vec mean = Mean({{2.0f, 0.0f}, {0.0f, 2.0f}}, 2);
  EXPECT_FLOAT_EQ(mean[0], 1.0f);
  EXPECT_FLOAT_EQ(mean[1], 1.0f);
  Vec empty_mean = Mean({}, 3);
  EXPECT_EQ(empty_mean.size(), 3u);
  EXPECT_FLOAT_EQ(empty_mean[0], 0.0f);
}

// Synthetic corpus with two clearly separated topics: words within a
// topic co-occur, words across topics never do, so SGNS must embed them
// closer within topic than across.
std::vector<std::vector<std::string>> TwoTopicCorpus() {
  Rng rng(7);
  const std::vector<std::string> clean_words = {"clean", "spotless", "tidy",
                                                "fresh"};
  const std::vector<std::string> noisy_words = {"noisy", "loud", "traffic",
                                                "honking"};
  std::vector<std::vector<std::string>> sentences;
  for (int i = 0; i < 600; ++i) {
    const auto& pool = (i % 2 == 0) ? clean_words : noisy_words;
    std::vector<std::string> sentence;
    for (int j = 0; j < 6; ++j) {
      sentence.push_back(pool[rng.Below(pool.size())]);
    }
    sentences.push_back(std::move(sentence));
  }
  return sentences;
}

TEST(Word2VecTest, LearnsTopicStructure) {
  Word2VecOptions options;
  options.dim = 16;
  options.epochs = 4;
  options.seed = 3;
  auto model = WordEmbeddings::TrainSgns(TwoTopicCorpus(), options);
  EXPECT_GT(model.size(), 0u);
  EXPECT_GT(model.Similarity("clean", "spotless"),
            model.Similarity("clean", "noisy"));
  EXPECT_GT(model.Similarity("loud", "traffic"),
            model.Similarity("loud", "tidy"));
}

TEST(Word2VecTest, DeterministicAcrossRuns) {
  Word2VecOptions options;
  options.dim = 8;
  options.epochs = 2;
  auto corpus = TwoTopicCorpus();
  auto a = WordEmbeddings::TrainSgns(corpus, options);
  auto b = WordEmbeddings::TrainSgns(corpus, options);
  const Vec* va = a.Get("clean");
  const Vec* vb = b.Get("clean");
  ASSERT_NE(va, nullptr);
  ASSERT_NE(vb, nullptr);
  for (size_t i = 0; i < va->size(); ++i) {
    EXPECT_FLOAT_EQ((*va)[i], (*vb)[i]);
  }
}

TEST(Word2VecTest, OovReturnsNull) {
  Word2VecOptions options;
  options.dim = 8;
  options.epochs = 1;
  auto model = WordEmbeddings::TrainSgns(TwoTopicCorpus(), options);
  EXPECT_EQ(model.Get("unseen-word"), nullptr);
  EXPECT_EQ(model.Similarity("unseen-word", "clean"), 0.0);
  EXPECT_TRUE(model.MostSimilar("unseen-word", 3).empty());
}

TEST(Word2VecTest, MinCountPrunesRareWords) {
  std::vector<std::vector<std::string>> sentences = {
      {"common", "common", "rare"},
      {"common", "common", "common"},
  };
  Word2VecOptions options;
  options.dim = 4;
  options.min_count = 3;
  options.epochs = 1;
  auto model = WordEmbeddings::TrainSgns(sentences, options);
  EXPECT_NE(model.Get("common"), nullptr);
  EXPECT_EQ(model.Get("rare"), nullptr);
}

TEST(Word2VecTest, MostSimilarExcludesSelf) {
  Word2VecOptions options;
  options.dim = 16;
  options.epochs = 3;
  auto model = WordEmbeddings::TrainSgns(TwoTopicCorpus(), options);
  auto similar = model.MostSimilar("clean", 3);
  ASSERT_EQ(similar.size(), 3u);
  for (const auto& [word, score] : similar) EXPECT_NE(word, "clean");
}

TEST(PhraseEmbedderTest, IdfWeightsDominantWord) {
  // Build tiny embeddings by hand: "clean" -> x-axis, "the" -> y-axis.
  text::Vocab vocab;
  vocab.Add("clean");
  vocab.Add("the");
  std::vector<Vec> vectors = {{1.0f, 0.0f}, {0.0f, 1.0f}};
  WordEmbeddings embeddings(std::move(vocab), std::move(vectors));
  PhraseEmbedder embedder(&embeddings, [](std::string_view w) {
    return w == "clean" ? 2.0 : 0.1;  // "the" has low idf.
  });
  Vec rep = embedder.Represent("the clean");
  EXPECT_GT(rep[0], rep[1]);
  EXPECT_NEAR(Cosine(rep, {1.0f, 0.0f}), 1.0, 0.1);
}

TEST(PhraseEmbedderTest, UnknownPhraseIsZero) {
  text::Vocab vocab;
  vocab.Add("clean");
  std::vector<Vec> vectors = {{1.0f, 0.0f}};
  WordEmbeddings embeddings(std::move(vocab), std::move(vectors));
  PhraseEmbedder embedder(&embeddings, nullptr);
  EXPECT_EQ(Norm(embedder.Represent("unknown words only")), 0.0);
  EXPECT_EQ(embedder.Similarity("unknown", "clean"), 0.0);
}

TEST(KdTreeTest, NearestMatchesBruteForce) {
  Rng rng(11);
  std::vector<Vec> points;
  for (int i = 0; i < 200; ++i) {
    Vec p(5);
    for (auto& x : p) x = static_cast<float>(rng.Uniform(-1, 1));
    points.push_back(p);
  }
  auto tree = KdTree::Build(points);
  for (int t = 0; t < 50; ++t) {
    Vec query(5);
    for (auto& x : query) x = static_cast<float>(rng.Uniform(-1, 1));
    int32_t best = -1;
    double best_dist = 1e18;
    for (size_t i = 0; i < points.size(); ++i) {
      const double d = SquaredDistance(points[i], query);
      if (d < best_dist) {
        best_dist = d;
        best = static_cast<int32_t>(i);
      }
    }
    EXPECT_EQ(tree.Nearest(query), best);
  }
}

TEST(KdTreeTest, KNearestSortedAndCorrectSize) {
  Rng rng(13);
  std::vector<Vec> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back({static_cast<float>(rng.Uniform()),
                      static_cast<float>(rng.Uniform())});
  }
  auto tree = KdTree::Build(points);
  Vec query = {0.5f, 0.5f};
  auto knn = tree.KNearest(query, 10);
  ASSERT_EQ(knn.size(), 10u);
  for (size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(SquaredDistance(points[knn[i - 1]], query),
              SquaredDistance(points[knn[i]], query));
  }
}

TEST(KdTreeTest, EmptyTree) {
  auto tree = KdTree::Build({});
  EXPECT_EQ(tree.Nearest({1.0f}), -1);
  EXPECT_TRUE(tree.KNearest({1.0f}, 3).empty());
}

TEST(KdTreeTest, PruningVisitsFewerNodesThanLinear) {
  Rng rng(5);
  std::vector<Vec> points;
  for (int i = 0; i < 2000; ++i) {
    points.push_back({static_cast<float>(rng.Uniform()),
                      static_cast<float>(rng.Uniform()),
                      static_cast<float>(rng.Uniform())});
  }
  auto tree = KdTree::Build(points);
  size_t visited = 0;
  tree.Nearest({0.5f, 0.5f, 0.5f}, &visited);
  EXPECT_LT(visited, points.size() / 2);
}

TEST(SubstitutionIndexTest, VerbatimHitUsesFastPath) {
  text::Vocab vocab;
  vocab.Add("very");
  vocab.Add("really");
  vocab.Add("clean");
  vocab.Add("dirty");
  std::vector<Vec> vectors = {
      {1.0f, 0.0f, 0.1f}, {0.9f, 0.1f, 0.1f},  // very ~ really
      {0.0f, 1.0f, 0.0f}, {0.0f, -1.0f, 0.0f}};
  WordEmbeddings embeddings(std::move(vocab), std::move(vectors));
  PhraseEmbedder embedder(&embeddings, nullptr);
  SubstitutionIndex index({"very clean", "dirty"}, &embedder);

  auto match = index.Lookup("very clean");
  EXPECT_TRUE(match.fast_path);
  EXPECT_EQ(index.phrase(match.phrase), "very clean");
}

TEST(SubstitutionIndexTest, OneWordSubstitutionUsesFastPath) {
  text::Vocab vocab;
  vocab.Add("very");
  vocab.Add("really");
  vocab.Add("clean");
  vocab.Add("dirty");
  std::vector<Vec> vectors = {
      {1.0f, 0.0f, 0.1f}, {0.95f, 0.05f, 0.1f},
      {0.0f, 1.0f, 0.0f}, {0.0f, -1.0f, 0.0f}};
  WordEmbeddings embeddings(std::move(vocab), std::move(vectors));
  PhraseEmbedder embedder(&embeddings, nullptr);
  // "really" does not occur in the domain, but its nearest word "very"
  // does, so "really clean" resolves by substitution.
  SubstitutionIndex index({"very clean", "very dirty", "really", "clean"},
                          &embedder);
  auto match = index.Lookup("really clean");
  EXPECT_TRUE(match.fast_path);
  EXPECT_EQ(index.phrase(match.phrase), "very clean");
}

TEST(SubstitutionIndexTest, FallsBackToSimilaritySearch) {
  text::Vocab vocab;
  vocab.Add("clean");
  vocab.Add("dirty");
  vocab.Add("spotless");
  std::vector<Vec> vectors = {
      {1.0f, 0.0f}, {-1.0f, 0.0f}, {0.9f, 0.3f}};
  WordEmbeddings embeddings(std::move(vocab), std::move(vectors));
  PhraseEmbedder embedder(&embeddings, nullptr);
  SubstitutionIndex index({"clean", "dirty"}, &embedder);
  // "spotless" matches nothing lexically; the k-d tree must find "clean".
  auto match = index.Lookup("spotless");
  EXPECT_FALSE(match.fast_path);
  EXPECT_EQ(index.phrase(match.phrase), "clean");
}

}  // namespace
}  // namespace opinedb::embedding
