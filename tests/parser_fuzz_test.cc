// Fuzz tests for ParseSubjectiveSql: 10k mutated / truncated / garbage
// inputs driven by the deterministic common/rng. The contract under test
// is that the parser NEVER crashes or throws — every malformed input
// becomes a clean Result error. Directed regression cases pin the bugs
// this suite originally found (std::stod / std::stoll throwing
// std::out_of_range on oversized numeric literals, and negative LIMIT
// silently wrapping to a huge size_t).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/query.h"

namespace opinedb::core {
namespace {

/// Valid seed queries the mutator starts from — mutations of
/// almost-valid SQL probe deeper parser states than pure noise.
const std::vector<std::string>& SeedCorpus() {
  static const std::vector<std::string> corpus = {
      "select * from hotels where \"clean room\" limit 10",
      "select * from hotels where \"clean room\" and \"friendly staff\"",
      "select * from hotels where (\"quiet street\" or \"lively bar\") "
      "and price_pn < 300 limit 5",
      "select * from restaurants where not \"slow service\"",
      "select * from hotels where city = 'london' and stars >= 4",
      "select * from hotels where price_pn <= 120.5 limit 3;",
      "select * from t where a != 1 or b <> 2 or c > -3",
      "select * from hotels",
      // EXPLAIN-prefixed seeds: mutations probe the statement-prefix
      // path (truncated keyword, doubled EXPLAIN, EXPLAIN spliced into
      // the middle of a clause, ...).
      "explain select * from hotels where \"clean room\" limit 10",
      "EXPLAIN select * from hotels where (\"quiet street\" or "
      "\"lively bar\") and price_pn < 300 limit 5",
      "explain select * from restaurants where not \"slow service\";",
  };
  return corpus;
}

std::string RandomGarbage(Rng* rng, size_t max_length) {
  const size_t length = rng->Below(max_length + 1);
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    // Bias towards SQL-ish bytes but include the whole byte range.
    if (rng->Bernoulli(0.7)) {
      static const char kAlphabet[] =
          "select from where and or not limit \"'()*,;<>=!._-0123456789";
      s.push_back(kAlphabet[rng->Below(sizeof(kAlphabet) - 1)]);
    } else {
      s.push_back(static_cast<char>(rng->Below(256)));
    }
  }
  return s;
}

std::string Mutate(std::string input, Rng* rng) {
  const int kind = static_cast<int>(rng->Below(6));
  switch (kind) {
    case 0: {  // Truncate.
      if (!input.empty()) input.resize(rng->Below(input.size() + 1));
      return input;
    }
    case 1: {  // Flip random bytes.
      for (int flips = static_cast<int>(rng->Below(4)) + 1;
           flips > 0 && !input.empty(); --flips) {
        input[rng->Below(input.size())] =
            static_cast<char>(rng->Below(256));
      }
      return input;
    }
    case 2: {  // Insert garbage at a random position.
      const size_t at = rng->Below(input.size() + 1);
      return input.substr(0, at) + RandomGarbage(rng, 12) +
             input.substr(at);
    }
    case 3: {  // Delete a random slice.
      if (input.empty()) return input;
      const size_t at = rng->Below(input.size());
      const size_t len = rng->Below(input.size() - at) + 1;
      return input.erase(at, len);
    }
    case 4: {  // Splice two seeds.
      const auto& other =
          SeedCorpus()[rng->Below(SeedCorpus().size())];
      const size_t cut_a = rng->Below(input.size() + 1);
      const size_t cut_b = rng->Below(other.size() + 1);
      return input.substr(0, cut_a) + other.substr(cut_b);
    }
    default: {  // Duplicate a slice (nests parens, repeats clauses).
      if (input.empty()) return input;
      const size_t at = rng->Below(input.size());
      const size_t len = rng->Below(input.size() - at) + 1;
      return input + " " + input.substr(at, len);
    }
  }
}

/// One fuzz iteration: the parser must return, not throw. The Result
/// itself may be ok (mutations can stay valid) or any error.
void ExpectParsesOrErrsCleanly(const std::string& sql) {
  EXPECT_NO_THROW({
    auto result = ParseSubjectiveSql(sql);
    if (result.ok()) {
      // A successful parse must produce a sane query object.
      EXPECT_FALSE(result->table.empty()) << sql;
    }
  }) << "input: " << sql;
}

TEST(ParserFuzzTest, TenThousandMutatedInputsNeverThrow) {
  Rng rng(2026);
  for (int i = 0; i < 10000; ++i) {
    std::string input;
    if (rng.Bernoulli(0.2)) {
      input = RandomGarbage(&rng, 80);  // Pure noise.
    } else {
      input = SeedCorpus()[rng.Below(SeedCorpus().size())];
      const int rounds = static_cast<int>(rng.Below(3)) + 1;
      for (int r = 0; r < rounds; ++r) input = Mutate(input, &rng);
    }
    ExpectParsesOrErrsCleanly(input);
  }
}

TEST(ParserFuzzTest, SeedCorpusStillParses) {
  for (const auto& sql : SeedCorpus()) {
    auto result = ParseSubjectiveSql(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
  }
}

// ------------------------------------------------- Directed regressions.

TEST(ParserFuzzTest, OversizedIntegerLiteralIsParseError) {
  // std::stoll used to throw std::out_of_range here.
  auto result = ParseSubjectiveSql(
      "select * from hotels where price_pn < 99999999999999999999999999");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(ParserFuzzTest, OversizedDecimalLiteralIsParseError) {
  // std::stod used to throw std::out_of_range for > ~1e308.
  std::string huge(400, '9');
  auto result = ParseSubjectiveSql(
      "select * from hotels where price_pn < " + huge + ".5");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(ParserFuzzTest, OversizedLimitIsParseError) {
  auto result = ParseSubjectiveSql(
      "select * from hotels limit 99999999999999999999999999");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(ParserFuzzTest, NegativeLimitIsParseError) {
  // Used to wrap through size_t into a practically-unbounded limit.
  auto result = ParseSubjectiveSql("select * from hotels limit -5");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(ParserFuzzTest, FractionalLimitIsParseError) {
  // Used to silently truncate 3.9 to 3.
  auto result = ParseSubjectiveSql("select * from hotels limit 3.9");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(ParserFuzzTest, MultiDotNumberIsParseError) {
  // The lexer tokenizes "1.2.3" as one number; std::stod used to
  // silently parse the 1.2 prefix and drop the rest.
  auto result =
      ParseSubjectiveSql("select * from hotels where price_pn < 1.2.3");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(ParserFuzzTest, ValidLimitBoundaries) {
  auto zero = ParseSubjectiveSql("select * from hotels limit 0");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->limit, 0u);
  auto big = ParseSubjectiveSql("select * from hotels limit 1000000");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->limit, 1000000u);
}

TEST(ParserFuzzTest, NegativeComparisonLiteralStillParses) {
  auto result =
      ParseSubjectiveSql("select * from t where temperature > -10");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->conditions.size(), 1u);
  auto fractional =
      ParseSubjectiveSql("select * from t where score > -1.25");
  ASSERT_TRUE(fractional.ok());
}

TEST(ParserFuzzTest, UnterminatedQuotesAreParseErrors) {
  EXPECT_FALSE(ParseSubjectiveSql("select * from t where \"open").ok());
  EXPECT_FALSE(ParseSubjectiveSql("select * from t where x = 'open").ok());
}

TEST(ParserFuzzTest, ExplainPrefixSetsFlag) {
  auto result = ParseSubjectiveSql(
      "explain select * from hotels where \"clean room\" limit 10");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->explain);
  EXPECT_EQ(result->table, "hotels");
  // A bare EXPLAIN with nothing to explain is an error, not a crash.
  EXPECT_FALSE(ParseSubjectiveSql("explain").ok());
  EXPECT_FALSE(ParseSubjectiveSql("explain explain select * from t").ok());
}

TEST(ParserFuzzTest, DeeplyNestedParensDoNotCrash) {
  std::string sql = "select * from t where ";
  for (int i = 0; i < 200; ++i) sql += '(';
  sql += "\"quiet\"";
  for (int i = 0; i < 200; ++i) sql += ')';
  auto result = ParseSubjectiveSql(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace opinedb::core
