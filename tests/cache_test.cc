// Unit coverage for the caching layers (docs/CACHING.md):
//
//  - ResultCache: LRU eviction under the byte budget, hit-touch
//    recency, shard independence, epoch-mismatch misses, oversized
//    entries, Clear accounting.
//  - CanonicalQueryKey: whitespace / case / literal-formatting
//    invariance, LIMIT and literal-value sensitivity, AND-order
//    sensitivity (floating-point fold order is part of the result).
//  - InterpretationCache: epoch-keyed lookups and the deterministic
//    serialized form (bit-exact round trip, byte-identical re-save).
//  - Engine never-cache rules: EXPLAIN and forced-plan queries bypass
//    the result cache; partial (deadline) and degraded (fault) results
//    are never inserted; hits are bit-identical at every trace level.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache_config.h"
#include "cache/interpretation_cache.h"
#include "cache/result_cache.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "core/engine.h"
#include "core/planner.h"
#include "core/query.h"
#include "datagen/domain_spec.h"
#include "eval/experiment.h"
#include "obs/trace.h"

namespace opinedb {
namespace {

using cache::CachedResult;
using cache::InterpretationCache;
using cache::ResultCache;

// ------------------------------------------------------- ResultCache.

/// A value whose ApproxBytes charge is predictable and adjustable via
/// the entity-name payload.
CachedResult MakeValue(size_t name_bytes) {
  CachedResult value;
  core::RankedResult r;
  r.entity = 1;
  r.entity_name.assign(name_bytes, 'x');
  r.score = 0.5;
  value.results.push_back(std::move(r));
  return value;
}

/// Keys that all land in the same shard (and, with distinct residues,
/// in different shards) — found by probing the fingerprint, which is
/// exactly the cache's shard selector.
std::vector<std::string> KeysInShard(uint64_t shard, size_t want) {
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < want && i < 100000; ++i) {
    std::string key = "key-" + std::to_string(i);
    if (ResultCache::Fingerprint(key) % 8 == shard) {
      keys.push_back(std::move(key));
    }
  }
  return keys;
}

TEST(ResultCacheTest, LruEvictsUnderByteBudget) {
  // One shard's budget is total/8; entries charge ~1 KiB each via the
  // name payload, so the 4 KiB shard fits ~3 of them.
  ResultCache cache(8 * 4096);
  const auto keys = KeysInShard(0, 6);
  ASSERT_EQ(keys.size(), 6u);
  for (const auto& key : keys) {
    cache.Insert(key, 1, MakeValue(1024));
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.bytes(), 4096u);
  EXPECT_LT(cache.size(), keys.size());
  // The newest key survived; the oldest was evicted first.
  CachedResult out;
  EXPECT_TRUE(cache.Lookup(keys.back(), 1, &out));
  EXPECT_FALSE(cache.Lookup(keys.front(), 1, &out));
}

TEST(ResultCacheTest, LookupTouchesRecency) {
  ResultCache cache(8 * 4096);
  const auto keys = KeysInShard(0, 4);
  ASSERT_EQ(keys.size(), 4u);
  // Two resident entries; A is older than B.
  cache.Insert(keys[0], 1, MakeValue(1024));
  cache.Insert(keys[1], 1, MakeValue(1024));
  // Touch A: now B is the eviction candidate.
  CachedResult out;
  ASSERT_TRUE(cache.Lookup(keys[0], 1, &out));
  // Two more inserts force evictions; A must outlive B.
  cache.Insert(keys[2], 1, MakeValue(1024));
  cache.Insert(keys[3], 1, MakeValue(1024));
  EXPECT_TRUE(cache.Lookup(keys[0], 1, &out));
  EXPECT_FALSE(cache.Lookup(keys[1], 1, &out));
}

TEST(ResultCacheTest, ShardsEvictIndependently) {
  ResultCache cache(8 * 4096);
  const auto shard0 = KeysInShard(0, 3);
  const auto shard1 = KeysInShard(1, 1);
  ASSERT_EQ(shard0.size(), 3u);
  ASSERT_EQ(shard1.size(), 1u);
  // Fill shard 0 to its budget.
  for (const auto& key : shard0) cache.Insert(key, 1, MakeValue(1024));
  const size_t resident_before = cache.size();
  // Pressure on shard 1 must not evict anything from shard 0.
  cache.Insert(shard1[0], 1, MakeValue(1024));
  EXPECT_EQ(cache.size(), resident_before + 1);
  CachedResult out;
  for (const auto& key : shard0) {
    if (cache.Lookup(key, 1, &out)) continue;
    // Only shard-0 self-pressure may have evicted it, never shard 1.
    EXPECT_GT(shard0.size() * 1200, 4096u);
  }
}

TEST(ResultCacheTest, EpochMismatchIsAMissAndDropsTheEntry) {
  ResultCache cache(1 << 20);
  cache.Insert("k", 1, MakeValue(16));
  CachedResult out;
  EXPECT_FALSE(cache.Lookup("k", 2, &out));
  EXPECT_EQ(cache.size(), 0u) << "stale-epoch entry left resident";
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCacheTest, OversizedEntriesAreNeverCached) {
  ResultCache cache(8 * 1024);  // 128-byte shard budget.
  EXPECT_EQ(cache.Insert("k", 1, MakeValue(1 << 16)), 0u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResultCacheTest, ClearResetsAccounting) {
  ResultCache cache(1 << 20);
  cache.Insert("a", 1, MakeValue(64));
  cache.Insert("b", 1, MakeValue(64));
  ASSERT_GT(cache.bytes(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  CachedResult out;
  EXPECT_FALSE(cache.Lookup("a", 1, &out));
}

TEST(ResultCacheTest, ReinsertReplacesInsteadOfDoubleCharging) {
  ResultCache cache(1 << 20);
  cache.Insert("k", 1, MakeValue(64));
  const size_t bytes_once = cache.bytes();
  cache.Insert("k", 1, MakeValue(64));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), bytes_once);
}

// -------------------------------------------------- CanonicalQueryKey.

std::string KeyOf(const std::string& sql) {
  auto query = core::ParseSubjectiveSql(sql);
  EXPECT_TRUE(query.ok()) << sql << ": " << query.status().ToString();
  return core::CanonicalQueryKey(*query);
}

TEST(CanonicalQueryKeyTest, WhitespaceAndCaseInvariantForPredicates) {
  EXPECT_EQ(KeyOf("select * from hotels where \"clean rooms\" limit 5"),
            KeyOf("SELECT  *  FROM hotels  WHERE \" Clean \t ROOMS \" "
                  "LIMIT 5"));
}

TEST(CanonicalQueryKeyTest, NumericLiteralFormattingMerges) {
  // `150` parses as an int literal, `150.0` as a double; the executor
  // compares them numerically, so they must share a key.
  EXPECT_EQ(
      KeyOf("select * from hotels where price_pn < 150 limit 5"),
      KeyOf("select * from hotels where price_pn < 150.0 limit 5"));
  EXPECT_NE(
      KeyOf("select * from hotels where price_pn < 150 limit 5"),
      KeyOf("select * from hotels where price_pn < 151 limit 5"));
}

TEST(CanonicalQueryKeyTest, LimitAndStructureAreKeyed) {
  EXPECT_NE(KeyOf("select * from hotels where \"clean rooms\" limit 5"),
            KeyOf("select * from hotels where \"clean rooms\" limit 6"));
  // AND order is floating-point fold order: a ⊗ b vs b ⊗ a may differ
  // in the last ulp, so reordered conjunctions must not share a key.
  EXPECT_NE(KeyOf("select * from hotels where \"clean rooms\" and "
                  "\"friendly staff\" limit 5"),
            KeyOf("select * from hotels where \"friendly staff\" and "
                  "\"clean rooms\" limit 5"));
  EXPECT_NE(KeyOf("select * from hotels where \"clean rooms\" and "
                  "\"friendly staff\" limit 5"),
            KeyOf("select * from hotels where \"clean rooms\" or "
                  "\"friendly staff\" limit 5"));
}

TEST(CanonicalQueryKeyTest, ExplainIsNotPartOfTheKey) {
  // The engine bypasses the cache for EXPLAIN; the key ignores the
  // flag so the executable query behind an EXPLAIN still correlates.
  EXPECT_EQ(
      KeyOf("select * from hotels where \"clean rooms\" limit 5"),
      KeyOf("explain select * from hotels where \"clean rooms\" limit 5"));
}

// ------------------------------------------------ InterpretationCache.

InterpretationCache::Entry MakeEntry(uint64_t epoch) {
  InterpretationCache::Entry entry;
  entry.interpretation.method = core::InterpretMethod::kWord2Vec;
  entry.interpretation.conjunctive = true;
  entry.interpretation.confidence = 0.625;
  core::AtomInterpretation atom;
  atom.attribute = 2;
  atom.marker = 1;
  atom.score = 0.1234567890123456789;  // Exercises max_digits10.
  entry.interpretation.atoms.push_back(atom);
  entry.rep = {0.25f, -1.0f / 3.0f, 7.25e-12f};
  entry.sentiment = -0.125;
  entry.epoch = epoch;
  return entry;
}

TEST(InterpretationCacheTest, EpochKeyedLookup) {
  InterpretationCache cache;
  cache.Insert("clean rooms", MakeEntry(3));
  InterpretationCache::Entry out;
  EXPECT_TRUE(cache.Lookup("clean rooms", 3, &out));
  EXPECT_FALSE(cache.Lookup("clean rooms", 4, &out));
  EXPECT_FALSE(cache.Lookup("quiet", 3, &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("clean rooms", 3, &out));
}

TEST(InterpretationCacheTest, SerializedFormRoundTripsBitExactly) {
  InterpretationCache cache;
  cache.Insert("clean rooms", MakeEntry(3));
  auto second = MakeEntry(3);
  second.interpretation.method = core::InterpretMethod::kCooccurrence;
  second.rep.clear();  // Text-ish entry with no embedding.
  cache.Insert("quiet at night", second);

  std::ostringstream bytes;
  ASSERT_TRUE(cache::SaveInterpretationCache(cache, &bytes).ok());
  InterpretationCache loaded;
  std::istringstream in(bytes.str());
  ASSERT_TRUE(cache::LoadInterpretationCache(&in, 9, &loaded).ok());
  EXPECT_EQ(loaded.size(), 2u);
  InterpretationCache::Entry out;
  ASSERT_TRUE(loaded.Lookup("clean rooms", 9, &out));
  const auto reference = MakeEntry(3);
  EXPECT_EQ(out.interpretation.method, reference.interpretation.method);
  EXPECT_EQ(out.interpretation.conjunctive,
            reference.interpretation.conjunctive);
  EXPECT_EQ(out.interpretation.confidence,
            reference.interpretation.confidence);
  EXPECT_FALSE(out.interpretation.degraded);
  ASSERT_EQ(out.interpretation.atoms.size(), 1u);
  EXPECT_EQ(out.interpretation.atoms[0].attribute, 2);
  EXPECT_EQ(out.interpretation.atoms[0].marker, 1);
  EXPECT_EQ(out.interpretation.atoms[0].score,
            reference.interpretation.atoms[0].score);
  ASSERT_EQ(out.rep.size(), reference.rep.size());
  for (size_t i = 0; i < out.rep.size(); ++i) {
    EXPECT_EQ(out.rep[i], reference.rep[i]);
  }
  EXPECT_EQ(out.sentiment, reference.sentiment);
}

TEST(InterpretationCacheTest, ReserializingIsByteIdentical) {
  // Deterministic (sorted) output regardless of insertion order or the
  // hash-map iteration order of the instance — the persistence suite
  // pins save → open → save byte-identity on top of this.
  InterpretationCache a;
  a.Insert("zz last", MakeEntry(1));
  a.Insert("aa first", MakeEntry(1));
  a.Insert("mm mid", MakeEntry(1));
  std::ostringstream bytes_a;
  ASSERT_TRUE(cache::SaveInterpretationCache(a, &bytes_a).ok());

  InterpretationCache b;
  std::istringstream in(bytes_a.str());
  ASSERT_TRUE(cache::LoadInterpretationCache(&in, 5, &b).ok());
  std::ostringstream bytes_b;
  ASSERT_TRUE(cache::SaveInterpretationCache(b, &bytes_b).ok());
  EXPECT_EQ(bytes_a.str(), bytes_b.str());
}

// ------------------------------------------- engine never-cache rules.

class CacheEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::BuildOptions options;
    options.generator.num_entities = 20;
    options.generator.min_reviews_per_entity = 8;
    options.generator.max_reviews_per_entity = 14;
    options.generator.seed = 67;
    options.seed = 67;
    options.extractor_training_sentences = 400;
    options.predicate_pool_size = 30;
    options.membership_training_tuples = 400;
    artifacts_ = new eval::DomainArtifacts(
        eval::BuildArtifacts(datagen::HotelDomain(), options));
  }

  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  void SetUp() override {
    cache::CacheConfig on;
    on.enable_interpretation = true;
    on.enable_results = true;
    db().ConfigureCaches(on);
  }

  void TearDown() override {
    db().mutable_options()->force_plan = core::PlanForce::kAuto;
    db().ConfigureCaches(cache::CacheConfig());
    if (fault::CompiledIn()) fault::DisarmAll();
  }

  static core::OpineDb& db() { return *artifacts_->db; }

  static std::string Sql() {
    return "select * from hotels where \"" + artifacts_->pool[0].text +
           "\" limit 5";
  }

  static eval::DomainArtifacts* artifacts_;
};

eval::DomainArtifacts* CacheEngineTest::artifacts_ = nullptr;

void ExpectBitIdentical(const core::QueryResult& reference,
                        const core::QueryResult& actual) {
  ASSERT_EQ(reference.results.size(), actual.results.size());
  for (size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(reference.results[i].entity, actual.results[i].entity);
    EXPECT_EQ(reference.results[i].entity_name,
              actual.results[i].entity_name);
    EXPECT_EQ(reference.results[i].score, actual.results[i].score);
  }
}

TEST_F(CacheEngineTest, HitIsBitIdenticalAcrossTraceLevels) {
  auto fill = db().Execute(Sql());
  ASSERT_TRUE(fill.ok()) << fill.status().ToString();
  EXPECT_FALSE(fill->stats.result_cache_hit);
  ASSERT_EQ(db().result_cache()->size(), 1u);
  for (const auto level :
       {obs::TraceLevel::kOff, obs::TraceLevel::kStats,
        obs::TraceLevel::kFull}) {
    db().SetTraceLevel(level);
    auto hit = db().Execute(Sql());
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    EXPECT_TRUE(hit->stats.result_cache_hit);
    EXPECT_EQ(hit->plan, fill->plan);
    ExpectBitIdentical(*fill, *hit);
    ASSERT_EQ(fill->interpretations.size(), hit->interpretations.size());
    for (size_t c = 0; c < fill->interpretations.size(); ++c) {
      EXPECT_EQ(fill->interpretations[c].method,
                hit->interpretations[c].method);
      EXPECT_EQ(fill->interpretations[c].confidence,
                hit->interpretations[c].confidence);
    }
  }
  db().SetTraceLevel(obs::TraceLevel::kOff);
}

TEST_F(CacheEngineTest, ExplainBypassesTheResultCache) {
  auto fill = db().Execute(Sql());
  ASSERT_TRUE(fill.ok()) << fill.status().ToString();
  const uint64_t hits_before = db().result_cache()->hits();
  auto explain = db().Execute("explain " + Sql());
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_FALSE(explain->stats.result_cache_hit);
  EXPECT_FALSE(explain->plan_text.empty());
  EXPECT_TRUE(explain->results.empty());
  // Neither served from the cache nor inserted into it.
  EXPECT_EQ(db().result_cache()->hits(), hits_before);
  EXPECT_EQ(db().result_cache()->size(), 1u);
}

TEST_F(CacheEngineTest, ForcedPlansBypassTheResultCache) {
  auto fill = db().Execute(Sql());
  ASSERT_TRUE(fill.ok()) << fill.status().ToString();
  ASSERT_EQ(db().result_cache()->size(), 1u);
  db().mutable_options()->force_plan = core::PlanForce::kDenseScan;
  const uint64_t hits_before = db().result_cache()->hits();
  auto forced = db().Execute(Sql());
  ASSERT_TRUE(forced.ok()) << forced.status().ToString();
  EXPECT_FALSE(forced->stats.result_cache_hit);
  EXPECT_EQ(db().result_cache()->hits(), hits_before);
  EXPECT_EQ(db().result_cache()->size(), 1u);
  // Forced execution is still bit-identical to the cached fill (plan
  // equivalence) — the bypass is about honoring the forced work, not
  // about different answers.
  ExpectBitIdentical(*fill, *forced);
}

TEST_F(CacheEngineTest, PartialResultsAreNeverCached) {
  core::QueryControl control;
  control.deadline = QueryDeadline::AfterMillis(0.0);
  auto partial = db().Execute(Sql(), control);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  ASSERT_TRUE(partial->partial);
  EXPECT_EQ(db().result_cache()->size(), 0u)
      << "a deadline-truncated result was cached";
  // And the poisoning direction: a full run now must not serve the
  // partial ranking.
  auto full = db().Execute(Sql());
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->stats.result_cache_hit);
  EXPECT_FALSE(full->partial);
}

TEST_F(CacheEngineTest, DegradedResultsAreNeverCached) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out (plain Release build)";
  }
  fault::Arm("interpret.embed", 1);
  auto degraded = db().Execute(Sql());
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_TRUE(degraded->degraded);
  fault::DisarmAll();
  EXPECT_EQ(db().result_cache()->size(), 0u)
      << "a degraded result was cached";
  EXPECT_EQ(db().interpretation_cache()->size(), 0u)
      << "a degraded interpretation was cached";
}

TEST_F(CacheEngineTest, EpochBumpInvalidatesWholesale) {
  auto fill = db().Execute(Sql());
  ASSERT_TRUE(fill.ok()) << fill.status().ToString();
  ASSERT_GT(db().result_cache()->size(), 0u);
  ASSERT_GT(db().interpretation_cache()->size(), 0u);
  const uint64_t epoch_before = db().cache_epoch();
  const core::AggregationOptions original = db().options().aggregation;
  core::AggregationOptions changed = original;
  changed.fractional = !original.fractional;
  db().Reaggregate(changed);
  EXPECT_EQ(db().cache_epoch(), epoch_before + 1);
  EXPECT_EQ(db().result_cache()->size(), 0u);
  EXPECT_EQ(db().interpretation_cache()->size(), 0u);
  // The post-bump serving agrees with a cache-free engine over the new
  // summaries (then restore fixture state).
  auto after = db().Execute(Sql());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->stats.result_cache_hit);
  db().ConfigureCaches(cache::CacheConfig());
  auto cache_free = db().Execute(Sql());
  ASSERT_TRUE(cache_free.ok()) << cache_free.status().ToString();
  ExpectBitIdentical(*cache_free, *after);
  db().Reaggregate(original);
}

}  // namespace
}  // namespace opinedb
